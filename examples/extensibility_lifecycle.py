#!/usr/bin/env python3
"""The in-field extensibility lifecycle — the paper's central theme, live.

A vehicle ships in year 0 and lives for a decade.  This example walks the
machinery that keeps its security architecture current:

1. **Ship dark**: a "remote-park" feature is manufactured in (bulk
   production, one SKU) but disabled and reserved.
2. **Policy review gate**: year-3 policy update is statically audited --
   the analyzer catches that a hasty new ALLOW rule shadows an existing
   DENY (the verification burden of §6, automated).
3. **Signed in-field update**: the repaired policy and the feature
   activation roll out as authenticated, rollback-protected bundles.
4. **Attack surface check**: fuzzing pressure on the reserved
   configuration space before vs after activation (E14's point).
5. **Capability negotiation**: the car meets year-7 infrastructure
   speaking protocol v3 and agrees on the highest mutual version.
6. **Architecture re-assessment** at each step.

Run:  python examples/extensibility_lifecycle.py
"""

from repro.core import (
    ExtensibilityManager,
    Feature,
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    SecurityPolicy,
    audit,
)

UPDATE_KEY = b"U" * 16


def rule(subjects, objects, actions, decision, name=""):
    return PolicyRule(frozenset(subjects), frozenset(objects),
                      frozenset(actions), decision, frozenset(), name)


def main() -> None:
    # ------------------------------------------------------------------
    print("=== year 0: production ===")
    manager = ExtensibilityManager(UPDATE_KEY, features=[
        Feature("v2x-rx", version=1, enabled=True),
        Feature("ota-client", version=1, enabled=True),
        Feature("remote-park", version=1, enabled=False, reserved=True),
    ])
    engine = PolicyEngine(SecurityPolicy(version=1, rules=[
        rule({"ota-client"}, {"firmware"}, {"write"}, PolicyDecision.ALLOW,
             "ota-may-flash"),
        rule({"*"}, {"she-keys"}, {"read"}, PolicyDecision.DENY,
             "keys-never-readable"),
    ]), update_key=UPDATE_KEY)
    print(f"  enabled features ... {sorted(manager.enabled_features())}")
    print(f"  reserved (dark) .... {sorted(manager.reserved_features())}")
    print(f"  policy v{engine.policy.version}, {len(engine.policy.rules)} rules")
    print()

    # ------------------------------------------------------------------
    print("=== year 3: policy update proposed ===")
    draft = SecurityPolicy(version=2, rules=[
        rule({"*"}, {"park-actuator"}, {"call"}, PolicyDecision.ALLOW,
             "hasty-remote-park-enable"),          # too broad!
        rule({"infotainment"}, {"park-actuator"}, {"call"},
             PolicyDecision.DENY, "infotainment-must-not-park"),
        *engine.policy.rules,
    ])
    findings = audit(draft)
    print(f"  review gate: {len(findings['shadowed'])} shadowed rule(s), "
          f"{len(findings['conflicts'])} conflict(s)")
    for f in findings["shadowed"]:
        print(f"    SHADOWED: {f.detail}")
    print("  -> draft REJECTED by the review gate; narrowing the allow rule")

    fixed = SecurityPolicy(version=2, rules=[
        rule({"park-service"}, {"park-actuator"}, {"call"},
             PolicyDecision.ALLOW, "park-service-only"),
        rule({"infotainment"}, {"park-actuator"}, {"call"},
             PolicyDecision.DENY, "infotainment-must-not-park"),
        *engine.policy.rules,
    ])
    clean = audit(fixed)
    assert not clean["shadowed"]
    blob, tag = engine.export_update(fixed, UPDATE_KEY)
    engine.apply_update(blob, tag)
    print(f"  signed policy v2 applied (history: {engine.update_history})")
    print()

    # ------------------------------------------------------------------
    print("=== year 3: feature activation ===")
    update = ExtensibilityManager.build_update(
        UPDATE_KEY, config_version=1, settings={"remote-park": (2, True)},
    )
    manager.apply_update(update)
    print(f"  remote-park enabled: {manager.is_enabled('remote-park')}")
    print(f"  remaining dark features: {sorted(manager.reserved_features()) or 'none'}")
    allowed = engine.allows("park-service", "park-actuator", "call")
    blocked = engine.allows("infotainment", "park-actuator", "call")
    print(f"  park-service may actuate: {allowed}; infotainment may: {blocked}")
    print()

    # ------------------------------------------------------------------
    print("=== year 3: rollback attempt (attacker replays the v1 policy) ===")
    old_blob, old_tag = engine.export_update(
        SecurityPolicy(version=1, rules=[]), UPDATE_KEY,
    )
    try:
        engine.apply_update(old_blob, old_tag)
        print("  !!! rollback accepted")
    except ValueError as exc:
        print(f"  rejected: {exc}")
    print()

    # ------------------------------------------------------------------
    print("=== year 7: infrastructure speaks V2X protocol v3 ===")
    agreed = ExtensibilityManager.negotiate(
        local_versions={1, 2, 3}, remote_versions={2, 3, 4},
    )
    print(f"  negotiated protocol version: {agreed}")
    legacy = ExtensibilityManager.negotiate({1}, {3, 4})
    print(f"  a never-updated vehicle would negotiate: {legacy} "
          f"(and fall off the network -- the extensibility argument)")


if __name__ == "__main__":
    main()
