#!/usr/bin/env python3
"""Side-channel key extraction via correlation power analysis (§4.2).

The paper's scenario: an adversary with physical access measures power
emissions during cryptographic operations and recovers the key -- which,
if shared across a vehicle class, compromises the class (see
examples/ota_fleet_campaign.py for the downstream consequence).

The demo acquires Hamming-weight power traces from the software AES,
runs CPA per key byte, and shows (a) recovery from a few hundred noisy
traces on the unprotected implementation and (b) failure against the
first-order masked implementation at the same budget.

Run:  python examples/side_channel_cpa.py
"""

import random

from repro.attacks import CpaAttack
from repro.crypto.aes import AES, MaskedAES
from repro.physical import PowerTraceModel

SECRET_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NOISE_STD = 2.0
BUDGET = 800


def attack(engine, label: str) -> None:
    model = PowerTraceModel(engine, noise_std=NOISE_STD,
                            rng=random.Random(1234))
    result = CpaAttack(model).run(BUDGET)
    correct = result.bytes_correct(SECRET_KEY)
    print(f"  [{label}]")
    print(f"    traces acquired ......... {result.traces_used}")
    print(f"    recovered key ........... {result.recovered_key.hex()}")
    print(f"    true key ................ {SECRET_KEY.hex()}")
    print(f"    bytes correct ........... {correct}/16 "
          f"{'-- FULL KEY RECOVERED' if correct == 16 else ''}")
    print()


def main() -> None:
    print(f"CPA attack, noise sigma={NOISE_STD} HW units, "
          f"budget {BUDGET} traces\n")
    attack(AES(SECRET_KEY), "unprotected AES")
    attack(MaskedAES(SECRET_KEY, rng=random.Random(99)),
           "first-order masked AES")
    print("The masked implementation randomises every leaked intermediate,")
    print("so first-order CPA correlations collapse to noise -- the hardware")
    print("countermeasure the paper's secure-processing layer presumes.")


if __name__ == "__main__":
    main()
