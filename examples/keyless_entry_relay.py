#!/usr/bin/env python3
"""Physical access security: PKES relay and immobilizer cracking (§4.3).

Part 1 -- the Francillon relay attack: the owner's fob is 30 m away in
the house; a two-box radio relay convinces the car it is adjacent.  With
RTT distance bounding, the relay's processing latency betrays it.

Part 2 -- the Bono-style transponder crack: eavesdrop a few
challenge/response pairs from a weak 40-bit transponder, brute-force a
reduced key space live, and extrapolate the full-width attack cost.

Run:  python examples/keyless_entry_relay.py
"""

import random

from repro.access import (
    DistanceBounder,
    Immobilizer,
    KeyCracker,
    KeyFob,
    PkesSystem,
    RelayAttack,
    Transponder,
)

FOB_KEY = b"\x42" * 16


def part1_relay() -> None:
    print("=== PKES relay attack ===")
    fob = KeyFob(FOB_KEY)
    owner_distance = 30.0

    for defense, bounder in (("plain PKES", None),
                             ("with distance bounding (3 m)",
                              DistanceBounder(max_distance_m=3.0))):
        pkes = PkesSystem(FOB_KEY, distance_bounder=bounder,
                          rng=random.Random(1))
        baseline = pkes.attempt_unlock(fob, fob_distance_m=owner_distance)
        relay = RelayAttack(relay_latency_s=1e-6)
        relay.engage()
        attacked = pkes.attempt_unlock(fob, fob_distance_m=owner_distance,
                                       relay=relay)
        print(f"  [{defense}]")
        print(f"    fob 30 m away, no relay : "
              f"{'UNLOCKED' if baseline.unlocked else 'locked'} ({baseline.reason})")
        line = "UNLOCKED" if attacked.unlocked else "locked"
        extra = (f", implied distance {attacked.implied_distance_m:.0f} m"
                 if attacked.implied_distance_m else "")
        print(f"    fob 30 m away, relayed  : {line} ({attacked.reason}{extra})")
    print()


def part2_crack() -> None:
    print("=== immobilizer transponder crack ===")
    rng = random.Random(7)
    secret_key = rng.getrandbits(16)  # 16 unknown bits for a live demo
    transponder = Transponder(secret_key)
    immobilizer = Immobilizer(secret_key, rng=rng)

    pairs = KeyCracker.eavesdrop(transponder, 3, rng=rng)
    print(f"  eavesdropped {len(pairs)} challenge/response pairs")
    outcome = KeyCracker(pairs).crack(true_key_prefix=secret_key, known_bits=24)
    rate = outcome.keys_tried / outcome.elapsed_s
    print(f"  cracked 16-bit-effective key {outcome.key:#012x} in "
          f"{outcome.elapsed_s:.2f} s ({outcome.keys_tried} keys, "
          f"{rate:,.0f} keys/s)")
    print(f"  full 40-bit extrapolation: "
          f"{outcome.extrapolate(40) / 86400:.0f} days on this single core")
    print("  (Bono et al. needed ~an hour on 16 parallel FPGA cores -- the")
    print("   scaling argument, not the absolute number, is the result.)")

    clone = Transponder(outcome.key, serial="CLONED")
    started = immobilizer.attempt_start(clone)
    print(f"  cloned transponder starts the engine: "
          f"{'YES' if started else 'no'}")
    print()


if __name__ == "__main__":
    part1_relay()
    part2_crack()
