#!/usr/bin/env python3
"""The workshop diagnostic session — and the dongle listening in.

Narrated E15 chain over a real ISO-TP/UDS stack:

1. A legitimate workshop tester unlocks the ECU's SecurityAccess gate
   and updates a configuration identifier.
2. An attacker's OBD dongle on the same bus records the seed/key
   exchange.
3. Against the (historically typical) fixed-XOR algorithm, one recorded
   exchange yields the secret constant; the attacker unlocks the ECU and
   rewrites the protected configuration at will.
4. The same chain against a CMAC-based algorithm: recovery fails and
   online guessing trips the attempt lockout.

Run:  python examples/diagnostic_workshop.py
"""

import random

from repro.diag import (
    CmacSeedKey,
    IsoTpEndpoint,
    NegativeResponse,
    SeedKeyRecoveryAttack,
    UdsClient,
    UdsServer,
    UdsSession,
    XorSeedKey,
)
from repro.ivn import CanBus
from repro.sim import Simulator

REQ_ID, RSP_ID = 0x7E0, 0x7E8
CONFIG_DID = 0xF015


def scenario(label, algorithm):
    print(f"=== {label} ===")
    sim = Simulator()
    bus = CanBus(sim)
    tester_ep = IsoTpEndpoint(sim, bus, "tester", tx_id=REQ_ID, rx_id=RSP_ID)
    ecu_ep = IsoTpEndpoint(sim, bus, "ecu", tx_id=RSP_ID, rx_id=REQ_ID)
    server = UdsServer(ecu_ep, algorithm, rng=random.Random(11))
    server.add_did(CONFIG_DID, b"\x00\x64", protected=True)  # speed limiter
    client = UdsClient(sim, tester_ep)
    dongle = SeedKeyRecoveryAttack(bus, REQ_ID, RSP_ID)

    # 1. the legitimate workshop session (twice, for the cross-check)
    for _ in range(2):
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        client.ecu_reset()
    print(f"  workshop sessions done; dongle sniffed "
          f"{len(dongle.exchanges)} seed/key exchanges")

    # 2-3. recovery + exploitation
    constant = dongle.recover_xor_constant()
    if constant is not None:
        print(f"  transform RECOVERED: constant {constant.hex()}")
        if SeedKeyRecoveryAttack.exploit(client, constant):
            client.write_did(CONFIG_DID, b"\xFF\xFF")
            print(f"  attacker unlocked the ECU and rewrote the protected "
                  f"config to {server.data_identifiers[CONFIG_DID].hex()}")
    else:
        print("  transform NOT recoverable from sniffed exchanges")
        unlocked, attempts = SeedKeyRecoveryAttack.online_bruteforce(
            client, random.Random(12), attempts=1000,
        )
        print(f"  online guessing: unlocked={unlocked} after {attempts} "
              f"attempts (ECU locked out: {server.locked_out})")
    print()


def main() -> None:
    scenario("fixed-XOR seed/key (legacy practice)",
             XorSeedKey(b"\xde\xad\xbe\xef"))
    scenario("AES-CMAC seed/key (SHE-backed)", CmacSeedKey(b"S" * 16))
    print("One weak transform turns every parked car into an open toolbox;")
    print("a keyed MAC plus attempt lockout reduces the dongle to noise.")


if __name__ == "__main__":
    main()
