#!/usr/bin/env python3
"""V2X intersection: authenticated warnings, forged messages, privacy.

Scene: four vehicles approach an intersection with one RSU.

1. Vehicles exchange signed BSMs; the RSU builds its traffic picture.
2. The RSU broadcasts a signed "ice on road" warning -- accepted by all.
3. An attacker with a self-issued certificate broadcasts a forged
   "brake now!" warning -- rejected by every receiver (trust chain).
4. The attacker replays a captured legitimate warning -- rejected
   (replay cache / freshness).
5. A tracking eavesdropper tries to follow the vehicles through one
   pseudonym rotation.

Run:  python examples/v2x_intersection.py
"""

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.physical import Vehicle, VehicleState
from repro.sim import Simulator
from repro.v2x import (
    BasicSafetyMessage,
    CertificateAuthority,
    MessageVerifier,
    ObuStation,
    PkiHierarchy,
    PseudonymManager,
    RoadsideUnit,
    TrackingAdversary,
    WirelessChannel,
    sign_payload,
)


def main() -> None:
    sim = Simulator()
    pki = PkiHierarchy(seed=b"intersection")
    channel = WirelessChannel(sim, comm_range=400.0)

    # --- four approaching vehicles -----------------------------------------
    stations = []
    truth = {}
    headings = [0.0, 3.14159, 1.5708, -1.5708]
    for i in range(4):
        vid = f"veh-{i}"
        ecert, _ = pki.enroll_vehicle(vid)
        batch = pki.issue_pseudonyms(vid, ecert, count=4, validity_start=0.0)
        for cert, _ in batch.entries:
            truth[cert.subject] = vid
        vehicle = Vehicle(VehicleState(
            x=-150.0 + 40.0 * i, y=2.0 * i, speed=13.0, heading=headings[i],
        ), name=vid)
        stations.append(ObuStation(
            sim, vid, vehicle, channel,
            PseudonymManager(batch, rotation_period=8.0),
            MessageVerifier(pki.trust_store()),
        ))

    # --- the RSU --------------------------------------------------------------
    rsu_keys = EcdsaKeyPair.generate(HmacDrbg(b"intersection/rsu"))
    rsu_cert = pki.root.issue("rsu-main-street", rsu_keys.public, 0.0, 1e9)
    rsu = RoadsideUnit(sim, "rsu", (0.0, 0.0), channel,
                       MessageVerifier(pki.trust_store()),
                       rsu_cert, rsu_keys.private)

    # --- eavesdropper ------------------------------------------------------------
    adversary = TrackingAdversary(silence_window=10.0)
    sniffer = channel.attach("sniffer", lambda: (0.0, 50.0))
    sniffer.on_receive(lambda m, s: adversary.observe(
        sim.now, m.certificate.subject,
        BasicSafetyMessage.decode(m.payload).position,
    ))

    for s in stations:
        s.start_broadcasting()

    def drive():
        for s in stations:
            s.vehicle.step(0.5)
        sim.schedule(0.5, drive)

    sim.schedule(0.5, drive)

    # Legitimate warning at t=3.
    sim.schedule(3.0, rsu.broadcast_warning, "ice on road")

    # Forged warning from a rogue, self-certified sender at t=5.
    rogue_ca = CertificateAuthority("rogue", b"rogue")
    rogue_keys = EcdsaKeyPair.generate(HmacDrbg(b"rogue/keys"))
    rogue_cert = rogue_ca.issue("evil", rogue_keys.public, 0.0, 1e9)
    rogue_radio = channel.attach("rogue", lambda: (10.0, 10.0))

    def forge():
        bsm = BasicSafetyMessage(0, 0.0, 0.0, 0.0, 0.0, event="brake now!")
        rogue_radio.broadcast(sign_payload(
            bsm.encode(), "bsm", sim.now, rogue_cert, rogue_keys.private,
        ))

    sim.schedule(5.0, forge)

    # Replay of the captured legitimate warning at t=7.
    captured = []
    replay_sniffer = channel.attach("replayer", lambda: (5.0, 5.0))
    replay_sniffer.on_receive(
        lambda m, s: captured.append(m)
        if "ice" in str(getattr(m, "payload", b"")) else None
    )
    sim.schedule(7.0, lambda: captured and replay_sniffer.broadcast(captured[0]))

    sim.run_until(12.0)

    # --- report ---------------------------------------------------------------------
    probe = stations[0]
    events = [(t, b.event) for t, b, _ in probe.accepted if b.event]
    print(f"RSU traffic picture ........ {rsu.vehicles_in_picture(max_age=3.0)} "
          f"pseudonymous vehicles")
    print(f"veh-0 accepted BSMs ........ {probe.verified_ok}")
    print(f"veh-0 accepted events ...... {[e for _, e in events]}")
    print(f"veh-0 rejections ........... {probe.rejects}")
    print()
    print(f"tracking adversary links ... {len(adversary.predicted_links)} "
          f"(accuracy {adversary.link_accuracy(truth):.0%})")
    print()
    print("The forged 'brake now!' never appears in accepted events (its")
    print("certificate does not chain to the installed trust store), and the")
    print("replayed warning is dropped by the replay cache / freshness window.")


if __name__ == "__main__":
    main()
