#!/usr/bin/env python3
"""A vehicle under escalating in-vehicle network attack.

Narrated scenario on one powertrain CAN segment:

- t in [0, 10):   clean operation (IDS training window);
- t = 10:         arbitration-flood DoS from a compromised dongle;
- t = 20:         flood stops; bus-off attack silences the brake ECU;
- after bus-off:  the attacker masquerades as the brake ECU at nominal
                  timing -- the attack the timing IDS cannot see;
- throughout:     a frequency+entropy+spec ensemble IDS watches the bus,
                  and an authenticated (SecOC) channel on the brake id
                  shows what cryptography would have caught.

Run:  python examples/vehicle_under_attack.py
"""

from repro.attacks import BusFloodAttack, MasqueradeAttack
from repro.ids import EnsembleIds, EntropyIds, FrequencyIds, SignalSpec, SpecificationIds
from repro.ivn import CanBus, CanFrame, DeadlineMonitor, typical_powertrain_matrix
from repro.ivn.secure_can import SecOcReceiver
from repro.sim import Simulator, TraceRecorder

BRAKE_ID = 0x0D1
SECOC_KEY = b"K" * 16


def main() -> None:
    sim = Simulator()
    trace = TraceRecorder()
    bus = CanBus(sim, bitrate=500_000, trace=trace)
    matrix = typical_powertrain_matrix()
    matrix.install(sim, bus)
    monitor = DeadlineMonitor(trace, {e.can_id: e.period for e in matrix.entries})

    # --- IDS ensemble, trained on a clean rehearsal ---------------------
    rehearsal_sim = Simulator()
    rehearsal = CanBus(rehearsal_sim, name="rehearsal")
    matrix.install(rehearsal_sim, rehearsal)
    clean = []
    rehearsal.tap(lambda f: clean.append((rehearsal_sim.now, f)))
    rehearsal_sim.run_until(20.0)

    ids = EnsembleIds(
        [FrequencyIds(), EntropyIds(window=64),
         SpecificationIds([SignalSpec(e.can_id, e.dlc) for e in matrix.entries])],
        mode="any",
    )
    ids.train(clean)
    ids.attach(bus)

    # --- a cryptographic receiver for the brake signal -------------------
    # (The legitimate brake ECU in this demo does NOT authenticate -- the
    # receiver's rejection count shows what SecOC would have refused.)
    secoc_rx = SecOcReceiver(SECOC_KEY, tag_len=4)
    unauthenticated_brake_frames = []

    def check_brake(frame: CanFrame) -> None:
        if frame.can_id == BRAKE_ID:
            if not secoc_rx.receive_inline(frame):
                unauthenticated_brake_frames.append(sim.now)

    bus.tap(check_brake)

    # --- attack schedule ---------------------------------------------------
    flood = BusFloodAttack(sim, bus, headroom=0.5)
    sim.schedule(10.0, flood.start)
    sim.schedule(20.0, flood.stop)

    masquerade = MasqueradeAttack(
        sim, bus, victim="brake", target_id=BRAKE_ID, period=0.010,
        payload_fn=lambda seq: b"\x00\x00" + bytes(4),  # "no brake pressure"
    )
    sim.schedule(22.0, masquerade.start)

    sim.run_until(40.0)

    # --- report --------------------------------------------------------------
    brake_node = bus.nodes["brake"]
    alerts_by_phase = {"clean": 0, "flood": 0, "masquerade": 0}
    for alert in ids.alerts:
        if alert.time < 10.0:
            alerts_by_phase["clean"] += 1
        elif alert.time < 22.0:
            alerts_by_phase["flood"] += 1
        else:
            alerts_by_phase["masquerade"] += 1

    print("=== phase 1: clean operation (0-10 s) ===")
    print(f"  IDS alerts ................. {alerts_by_phase['clean']}")
    print(f"  brake deadline misses ...... {monitor.misses[BRAKE_ID]}")
    print()
    print("=== phase 2: arbitration flood (10-20 s) ===")
    print(f"  frames injected ............ {flood.injected}")
    print(f"  bus utilization ............ {bus.utilization():.0%}")
    print(f"  brake worst latency ........ {monitor.worst_latency(BRAKE_ID) * 1e3:.1f} ms")
    print(f"  IDS alerts during flood .... {alerts_by_phase['flood']}")
    print()
    print("=== phase 3: bus-off + masquerade (22 s onward) ===")
    print(f"  brake ECU state ............ {brake_node.state.value}")
    print(f"  errors induced ............. {masquerade.busoff.errors_induced}")
    print(f"  forged brake frames sent ... {masquerade.sent}")
    print(f"  IDS alerts (timing-clean!) . {alerts_by_phase['masquerade']}")
    print(f"  frames SecOC would reject .. {len(unauthenticated_brake_frames)}")
    print()
    print("Takeaway: the flood lights up every detector; the masquerade is")
    print("invisible to network heuristics and only authentication (the")
    print("secure-processing layer) closes it -- the paper's layering argument.")


if __name__ == "__main__":
    main()
