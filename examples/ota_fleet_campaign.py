#!/usr/bin/env python3
"""OTA fleet campaign + key-compromise attack matrix.

1. Roll an honest firmware update to a 10-vehicle fleet through the
   role-separated (Uptane-style) pipeline.
2. Replay the paper's §4.2 scenario: an attacker extracts keys from one
   vehicle and tries to push malicious firmware -- against the naive
   shared-key client and against the role-separated client, under
   escalating key-compromise scenarios.

Run:  python examples/ota_fleet_campaign.py
"""

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.ecu import FirmwareImage, FirmwareStore
from repro.ota import (
    CompromiseScenario,
    DirectorRepository,
    FleetCampaign,
    ImageRepository,
    NaiveClient,
    UptaneClient,
)

FLEET_SIZE = 10


def base_store() -> FirmwareStore:
    return FirmwareStore(
        FirmwareImage("body-fw", 1, b"factory body firmware" * 6,
                      hardware_id="mcu-b"),
    )


def main() -> None:
    # --- honest rollout ---------------------------------------------------
    image_repo = ImageRepository(seed=b"example/img")
    director = DirectorRepository(seed=b"example/dir")
    fleet = [
        UptaneClient(f"veh-{i:02d}", base_store(),
                     image_root=image_repo.metadata["root"],
                     director_root=director.metadata["root"])
        for i in range(FLEET_SIZE)
    ]
    campaign = FleetCampaign(director, image_repo, fleet)
    update = FirmwareImage("body-fw", 2, b"patched body firmware" * 6,
                           hardware_id="mcu-b")
    results = campaign.rollout(update, now=1000.0)
    print(f"honest campaign: {campaign.success_rate(results):.0%} of "
          f"{FLEET_SIZE} vehicles now at v2")
    print()

    # --- attack matrix ------------------------------------------------------
    malicious = FirmwareImage("body-fw", 99, b"attacker payload" * 8,
                              hardware_id="mcu-b")
    oem_shared = EcdsaKeyPair.generate(HmacDrbg(b"example/shared-oem"))

    scenarios = [
        ("no keys", {}),
        ("director online keys", {"director": ["targets", "snapshot", "timestamp"]}),
        ("image repo online keys", {"image": ["targets", "snapshot", "timestamp"]}),
        ("both repos' online keys", {
            "director": ["targets", "snapshot", "timestamp"],
            "image": ["targets", "snapshot", "timestamp"],
        }),
    ]
    print(f"{'compromised keys':28s}  {'naive shared-key':18s}  {'role-separated'}")
    print("-" * 68)
    for name, compromised in scenarios:
        naive = NaiveClient("veh-00", base_store(), oem_shared.public)
        naive_result = CompromiseScenario.attack_naive(
            naive, malicious, oem_shared if compromised else None,
        )
        # Fresh repos + client per scenario: a client's version memory
        # (rollback protection) must not leak between what are logically
        # independent what-if worlds.
        img2 = ImageRepository(seed=b"example/img")
        dir2 = DirectorRepository(seed=b"example/dir")
        victim = UptaneClient("veh-00", base_store(),
                              image_root=img2.metadata["root"],
                              director_root=dir2.metadata["root"])
        FleetCampaign(dir2, img2, [victim]).rollout(update, now=1000.0)
        scenario = CompromiseScenario(dir2, img2, compromised)
        uptane_result = scenario.attack_uptane(victim, malicious, now=2000.0)
        fmt = lambda r: "COMPROMISED" if r.installed else f"safe ({r.reason[:24]})"
        print(f"{name:28s}  {fmt(naive_result):18s}  {fmt(uptane_result)}")

    print()
    print("Shape: the naive client falls to ANY signing-key compromise;")
    print("the role-separated client requires the attacker to hold the")
    print("online keys of BOTH repositories simultaneously.")


if __name__ == "__main__":
    main()
