#!/usr/bin/env python3
"""Quickstart: build a two-domain vehicle, attack it, assess the architecture.

Demonstrates the core public API in ~80 lines:

1. a discrete-event simulator and two CAN domains behind a secure gateway;
2. a SHE-equipped ECU that secure-boots;
3. an intrusion detector on the powertrain domain;
4. a spoofing attack from the infotainment side, stopped by the firewall;
5. the 4+1-layer architecture assessment report.

Run:  python examples/quickstart.py
"""

from repro.core import VehicleArchitecture
from repro.ecu import Ecu, FirmwareImage, FirmwareStore, She
from repro.gateway import Firewall, FirewallAction, FirewallRule, SecureGateway
from repro.ids import FrequencyIds
from repro.ivn import CanFrame, typical_powertrain_matrix
from repro.attacks import SpoofAttack
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    arch = VehicleArchitecture(sim, name="demo-vehicle")

    # --- domains behind a default-deny gateway -------------------------
    powertrain = arch.add_domain("powertrain")
    infotainment = arch.add_domain("infotainment")
    firewall = Firewall(default=FirewallAction.DENY)
    firewall.add_rule(FirewallRule(
        "infotainment", "powertrain", FirewallAction.ALLOW,
        id_range=(0x244, 0x244), description="body status only",
    ))
    gateway = arch.install_gateway(SecureGateway(sim, firewall=firewall))
    gateway.add_route("infotainment", 0x244, {"powertrain"})
    gateway.add_route("infotainment", 0x0C9, {"powertrain"})  # routed but firewalled

    # --- a SHE-equipped ECU with secure boot ----------------------------
    image = FirmwareImage("engine-fw", 1, b"application code" * 16,
                          hardware_id="mcu-a")
    she = She(uid=bytes(15))
    she.set_boot_mac(image.canonical_bytes(), boot_mac_key=b"B" * 16)
    engine = arch.add_ecu(
        Ecu(sim, "engine-ecu", she, FirmwareStore(image)), "powertrain",
    )
    engine.power_on()

    # --- background traffic + IDS ---------------------------------------
    typical_powertrain_matrix().install(sim, powertrain)
    ids = FrequencyIds()
    # Train on a clean rehearsal run.
    rehearsal_sim = Simulator()
    from repro.ivn import CanBus
    rehearsal = CanBus(rehearsal_sim, name="rehearsal")
    typical_powertrain_matrix().install(rehearsal_sim, rehearsal)
    clean = []
    rehearsal.tap(lambda f: clean.append((rehearsal_sim.now, f)))
    rehearsal_sim.run_until(10.0)
    ids.train(clean)
    arch.install_ids(ids, "powertrain")
    arch.has_access_protection = True
    arch.has_v2x_security = True

    # --- the attack ------------------------------------------------------
    attack = SpoofAttack(sim, infotainment, target_id=0x0C9,
                         payload=b"\xff" * 8, rate_hz=100.0)
    attack.start()

    sim.run_until(5.0)

    # --- results ----------------------------------------------------------
    print(f"engine ECU state ........ {engine.state.value}")
    print(f"forged frames injected .. {attack.injected}")
    print(f"blocked by firewall ..... {gateway.stats.dropped_firewall}")
    print(f"crossed the gateway ..... {gateway.stats.forwarded}")
    print(f"IDS alerts (powertrain) . {len(ids.alerts)}")
    print()
    print(arch.assess().summary())


if __name__ == "__main__":
    main()
