"""E12 bench: sensor spoofing vs fusion plausibility gating."""

from repro.experiments import e12_sensors


def test_e12_sensor_attack_matrix(benchmark, report):
    result = benchmark.pedantic(e12_sensors.run, rounds=1, iterations=1)
    report(result, "E12")

    rows = {(r["attack"], r["gating"]): r for r in result.rows}
    # Without gating, every attack succeeds undetected.
    for attack in ("gps-jump", "gps-drift", "tpms-blowout", "lidar-phantom"):
        assert rows[(attack, "off")]["success"]
        assert not rows[(attack, "off")]["detected"]
    # Gating stops/flags the crude attacks.
    assert not rows[("gps-jump", "on")]["success"]
    assert rows[("gps-jump", "on")]["detected"]
    assert not rows[("lidar-phantom", "on")]["success"]
    assert rows[("lidar-phantom", "on")]["detected"]
    assert rows[("tpms-blowout", "on")]["detected"]
    # The honest residual: slow GPS drift stays under the innovation gate.
    assert rows[("gps-drift", "on")]["success"]
    assert not rows[("gps-drift", "on")]["detected"]
