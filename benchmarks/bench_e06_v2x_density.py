"""E6 bench: V2X verification load vs vehicle density."""

from repro.experiments import e06_v2x_density


def test_e6_density_sweep(benchmark, report):
    result = benchmark.pedantic(
        e06_v2x_density.run,
        kwargs={"verify_rate": 250.0, "duration": 2.0},
        rounds=1, iterations=1,
    )
    report(result, "E6")

    rows = result.rows
    # Offered load grows with density.
    offered = [r["offered_msgs_per_s"] for r in rows]
    assert offered == sorted(offered)
    # Below the budget everything is verified; above it, drops appear.
    assert rows[0]["verified_fraction"] > 0.99
    assert rows[-1]["verified_fraction"] < 0.8
    assert rows[-1]["dropped_per_s"] > 0
    # Verified throughput saturates at (roughly) the budget.
    assert rows[-1]["verified_per_s"] <= 250.0 * 1.05
