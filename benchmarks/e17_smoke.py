#!/usr/bin/env python
"""E17 benchmark smoke: fast perf-regression gate for CI.

Runs the cheap E17 10^4-vehicle cell plus the correlate-path
microbenchmark, replays the crash-recovery cell (kill-at-pump + durable
restore, byte-identity asserted inside the cell), times the durable-log
append/replay/scan paths, writes a fresh ``BENCH_E17.json``, and (with
``--baseline``) fails if batched or columnar correlate throughput has
regressed more than ``--tolerance`` (default 30 %) against the values
committed in the baseline JSON.  The speedup *ratios* vs the same-run
baselines are also gated (batched >= 5x the per-event reference,
columnar >= 10x the per-event incremental path), which is
hardware-independent and catches an algorithmic regression even when
the absolute numbers moved with the host.  Every microbench run doubles
as a differential check: it asserts the four engines end with equal
counters and that the columnar engine's snapshot is byte-identical to
the per-event engine's.

Usage (CI)::

    PYTHONPATH=src python benchmarks/e17_smoke.py \
        --baseline benchmarks/results/BENCH_E17.json --out BENCH_E17.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import e17_soc

SMOKE_GRID = [(10_000, 0.01)]
MIN_SPEEDUP = 5.0
#: The columnar hot path must stay >= 10x the same-run per-event
#: incremental engine (the ISSUE 7 acceptance bar).  Measured on a 2026
#: dev VM: ~14-19x at this stream size, so 10x leaves real noise
#: headroom while still catching any de-vectorization.
MIN_COLUMNAR_SPEEDUP = 10.0
#: 30 full 4096-event columnar batches: wide enough that per-batch
#: setup amortizes the way production drains do, and the same-run
#: per-event twin runs long enough to average out scheduler noise (the
#: 30k default is too short to hold the ratio steady on a busy host).
CORRELATE_BENCH_EVENTS = 122_880


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_E17.json to "
                        "regression-check against")
    parser.add_argument("--out", default="BENCH_E17.json",
                        help="where to write the fresh measurement")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args(argv)

    timings: dict = {}
    result = e17_soc.run(grid=SMOKE_GRID, timings=timings)
    rows = {int(r["fleet"]): r for r in result.rows}
    cell = rows[10_000]
    if cell["recall"] < 0.9 or cell["precision"] < 0.9:
        print(f"FAIL: 10^4 cell quality degraded: {cell}")
        return 1

    correlate = e17_soc.correlate_microbench(
        n_events=CORRELATE_BENCH_EVENTS, reps=3)
    # Crash-recovery replay: byte-identity between the kill-and-restore
    # run and its uninterrupted twin is asserted inside the cell -- a
    # divergence raises and fails the job.
    recovery = e17_soc.crash_recovery_cell()
    store = e17_soc.store_microbench()
    cells = [
        {"fleet": float(fleet),
         "offered_eps_sim": rows[fleet]["offered_eps"],
         "wall_s": timing["wall_s"],
         "soc_scene_wall_s": timing["soc_scene_wall_s"],
         "ingest_correlate_eps": timing["ingest_correlate_eps"]}
        for fleet, timing in sorted(timings.items())
    ]
    e17_soc.write_bench_json(args.out, cells, correlate,
                             store=store, recovery=recovery)
    print(f"wrote {args.out}")
    print(f"  batched correlate: {correlate['batched_eps']:,.0f} events/s "
          f"({correlate['speedup_batched_vs_reference']:.1f}x the per-event "
          f"reference baseline)")
    print(f"  columnar correlate: {correlate['columnar_eps']:,.0f} events/s "
          f"({correlate['speedup_columnar_vs_per_event']:.1f}x the same-run "
          f"per-event path; {correlate['columnar_e2e_eps']:,.0f} events/s "
          f"incl. drain-time batch build; "
          f"{correlate['columnar_fallbacks']:.0f} scalar fallbacks)")
    print(f"  crash recovery: replayed {recovery['replayed_events']:,.0f} "
          f"events / {recovery['replayed_pumps']:,.0f} pumps in "
          f"{recovery['recovery_wall_s'] * 1e3:.1f} ms, byte-identical")
    print(f"  durable log: append {store['append_eps']:,.0f} events/s, "
          f"replay {store['replay_eps']:,.0f} events/s, scan read "
          f"{store['scan_read_fraction']:.1%} of records for a 10% window")

    failures = []
    if correlate["speedup_batched_vs_reference"] < MIN_SPEEDUP:
        failures.append(
            f"batched speedup {correlate['speedup_batched_vs_reference']:.2f}x "
            f"< required {MIN_SPEEDUP}x over the same-run per-event baseline")
    if correlate["speedup_columnar_vs_per_event"] < MIN_COLUMNAR_SPEEDUP:
        failures.append(
            f"columnar speedup "
            f"{correlate['speedup_columnar_vs_per_event']:.2f}x < required "
            f"{MIN_COLUMNAR_SPEEDUP}x over the same-run per-event path")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        committed = baseline["correlate"]["batched_eps"]
        floor = committed * (1.0 - args.tolerance)
        print(f"  committed baseline: {committed:,.0f} events/s "
              f"(floor at -{args.tolerance:.0%}: {floor:,.0f})")
        if correlate["batched_eps"] < floor:
            failures.append(
                f"batched correlate throughput regressed "
                f">{args.tolerance:.0%}: {correlate['batched_eps']:,.0f} "
                f"events/s vs committed {committed:,.0f}")
        # Pre-columnar baselines lack the key; the gate arms itself the
        # first time a columnar measurement is committed.
        committed_col = baseline["correlate"].get("columnar_eps")
        if committed_col is not None:
            col_floor = committed_col * (1.0 - args.tolerance)
            print(f"  committed columnar baseline: {committed_col:,.0f} "
                  f"events/s (floor at -{args.tolerance:.0%}: "
                  f"{col_floor:,.0f})")
            if correlate["columnar_eps"] < col_floor:
                failures.append(
                    f"columnar correlate throughput regressed "
                    f">{args.tolerance:.0%}: "
                    f"{correlate['columnar_eps']:,.0f} events/s vs "
                    f"committed {committed_col:,.0f}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
