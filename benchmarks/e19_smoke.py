#!/usr/bin/env python
"""E19 benchmark smoke: network-ingest-service perf gate for CI.

Runs the worker-count scaling sweep (1/2/4 shard worker processes, one
asyncio frontend, ``--clients`` concurrent vehicle connections each
pre-serializing its batches), writes a fresh ``BENCH_E19.json``, and
gates:

- **No-loss + conservation (always on)**: every cell asserts
  acked == sent and frontend/worker counter tie-out internally -- a cell
  that drops telemetry raises before any number is reported.
- **Throughput floor (self-arming)**: with ``--baseline``, the best
  cell's sustained acked eps must not regress more than ``--tolerance``
  (default 30 %) below the committed figure -- mirroring E17/E18.
- **p99 latency ceiling (self-arming)**: the 1-worker cell's p99 ACK
  round trip must stay within ``--p99-tolerance`` (default 100 %,
  i.e. 2x) of the committed baseline, with a 5 ms absolute grace floor
  so sub-millisecond baselines don't gate on scheduler noise.
- **Scaling gate (core-gated)**: the >=3x-at-4-workers acceptance is
  physically expressible only when the host can actually run 4 workers
  plus the frontend in parallel; the gate arms when the machine has at
  least ``--min-cores-for-scaling`` (default 6) CPUs.  ``cpu_count``
  and per-cell ``speedup`` are recorded in the JSON on every host
  regardless, so a capable machine can always audit the claim.

Usage (CI)::

    PYTHONPATH=src python benchmarks/e19_smoke.py \
        --baseline benchmarks/results/BENCH_E19.json --out BENCH_E19.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import e19_service

SMOKE_WORKERS = (1, 2, 4)
SMOKE_CLIENTS = 500
SMOKE_ROUNDS = 6
SMOKE_PER_BATCH = 20
SCALING_TARGET = 3.0
P99_GRACE_MS = 5.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_E19.json to "
                        "regression-check against")
    parser.add_argument("--out", default="BENCH_E19.json",
                        help="where to write the fresh measurement")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional eps regression "
                        "(default 0.30)")
    parser.add_argument("--p99-tolerance", type=float, default=1.00,
                        help="allowed fractional p99 latency growth vs "
                        "baseline (default 1.00 = 2x ceiling)")
    parser.add_argument("--clients", type=int, default=SMOKE_CLIENTS,
                        help=f"concurrent connections (default "
                        f"{SMOKE_CLIENTS})")
    parser.add_argument("--min-cores-for-scaling", type=int, default=6,
                        help="arm the >=3x scaling gate only at/above "
                        "this many CPUs (default 6)")
    args = parser.parse_args(argv)

    failures = []

    cells = e19_service.scaling_cells(
        seed=0, workers=SMOKE_WORKERS, n_clients=args.clients,
        rounds=SMOKE_ROUNDS, per_batch=SMOKE_PER_BATCH)
    # The deterministic fallback, same scale, for the record: it shares
    # every code path with process mode except the queues.
    inline = e19_service.service_cell(
        1, seed=0, n_clients=args.clients, rounds=SMOKE_ROUNDS,
        per_batch=SMOKE_PER_BATCH, mode="inline")

    payload = e19_service.write_bench_json(args.out, cells,
                                           inline_cell=inline)
    cpu_count = payload["cpu_count"]
    print(f"wrote {args.out} (host cpus: {cpu_count})")
    for cell in cells:
        print(f"  {cell['workers']:.0f} worker(s): "
              f"{cell['eps']:,.0f} eps sustained over "
              f"{cell['events']:,.0f} events from "
              f"{cell['clients']:,.0f} connections, ACK p50 "
              f"{cell['p50_ms']:.1f} ms / p99 {cell['p99_ms']:.1f} ms "
              f"(speedup {cell['speedup']:.2f}x)")
    print(f"  inline fallback: {inline['eps']:,.0f} eps, "
          f"p99 {inline['p99_ms']:.1f} ms")

    best = max(cell["eps"] for cell in cells)
    p99_1w = cells[0]["p99_ms"]

    scaling_armed = cpu_count >= args.min_cores_for_scaling
    if scaling_armed:
        at_4 = next(c for c in cells if c["workers"] == 4.0)
        if at_4["speedup"] < SCALING_TARGET:
            failures.append(
                f"scaling gate: {at_4['speedup']:.2f}x at 4 workers "
                f"< {SCALING_TARGET:.1f}x target ({cpu_count} cpus)")
        else:
            print(f"  scaling gate armed ({cpu_count} cpus): "
                  f"{at_4['speedup']:.2f}x >= {SCALING_TARGET:.1f}x")
    else:
        print(f"  scaling gate not armed: {cpu_count} cpus < "
              f"{args.min_cores_for_scaling} (speedups recorded, "
              "not gated)")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        committed = max(cell["eps"] for cell in baseline["cells"])
        floor = committed * (1.0 - args.tolerance)
        print(f"  committed baseline: {committed:,.0f} eps "
              f"(floor at -{args.tolerance:.0%}: {floor:,.0f})")
        if best < floor:
            failures.append(
                f"ingest throughput regressed >{args.tolerance:.0%}: "
                f"{best:,.0f} eps vs committed {committed:,.0f}")
        committed_p99 = baseline["cells"][0]["p99_ms"]
        ceiling = max(committed_p99 * (1.0 + args.p99_tolerance),
                      committed_p99 + P99_GRACE_MS)
        print(f"  committed p99 (1 worker): {committed_p99:.1f} ms "
              f"(ceiling: {ceiling:.1f} ms)")
        if p99_1w > ceiling:
            failures.append(
                f"ACK p99 latency regressed: {p99_1w:.1f} ms vs "
                f"committed {committed_p99:.1f} ms "
                f"(ceiling {ceiling:.1f} ms)")
        if "cpu_count" not in baseline:
            failures.append("committed baseline lacks cpu_count")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
