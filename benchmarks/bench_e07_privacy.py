"""E7 bench: pseudonym rotation + mix zones vs the tracking adversary."""

from repro.experiments import e07_privacy


def test_e7_privacy_sweep(benchmark, report):
    result = benchmark.pedantic(
        e07_privacy.run, kwargs={"duration": 120.0}, rounds=1, iterations=1,
    )
    report(result, "E7")

    rows = {(r["rotation_period_s"], r["mix_zone"]): r for r in result.rows}
    # Rotation alone barely helps: the tracker stays strong.
    plain = [r for (p, mz), r in rows.items() if mz == "no" and p <= 30.0]
    assert all(r["link_accuracy"] > 0.5 for r in plain)
    # Mix-zone silence collapses tracking accuracy.
    for period in (15.0, 30.0):
        assert (rows[(period, "yes")]["link_accuracy"]
                < rows[(period, "no")]["link_accuracy"] * 0.5)
    # Faster rotation costs more certificates.
    assert (rows[(15.0, "no")]["certs_per_vehicle_hour"]
            > rows[(60.0, "no")]["certs_per_vehicle_hour"])
