"""E4 bench: CPA traces-to-recovery, unprotected vs masked AES."""

from repro.experiments import e04_sidechannel


def test_e4_cpa_vs_masking(benchmark, report):
    result = benchmark.pedantic(
        e04_sidechannel.run, kwargs={"max_traces": 600}, rounds=1, iterations=1,
    )
    report(result, "E4")

    unprotected = [r for r in result.rows if r["implementation"] == "unprotected"]
    masked = [r for r in result.rows if r["implementation"] == "masked"]
    # The unprotected implementation falls at every noise level tested.
    assert all(r["recovered"] for r in unprotected)
    # More noise never makes recovery *cheaper* (grid granularity aside).
    needed = [r["traces_needed"] for r in unprotected]
    assert needed == sorted(needed)
    # Masking defeats first-order CPA within the full budget.
    assert not any(r["recovered"] for r in masked)
