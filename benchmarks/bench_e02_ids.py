"""E2 bench: IDS detection matrix across attack classes."""

from repro.experiments import e02_ids


def test_e2_ids_matrix(benchmark, report):
    result = benchmark.pedantic(e02_ids.run, rounds=1, iterations=1)
    report(result, "E2")

    rows = {(r["attack"], r["detector"]): r for r in result.rows}
    # Every detector stays quiet on clean traffic.
    assert all(r["clean_fpr"] < 0.02 for r in result.rows)
    # Flood: entropy and spec catch it; the ensemble inherits the best.
    assert rows[("flood", "spec")]["recall"] > 0.95
    assert rows[("flood", "ensemble")]["recall"] > 0.95
    # Fuzz: spec catches unknown ids.
    assert rows[("fuzz", "spec")]["recall"] > 0.95
    # Targeted spoofing with an implausible payload: the learned payload
    # envelope catches what spec (in-spec id+dlc) and timing miss.
    assert rows[("spoof", "payload")]["recall"] > 0.9
    # Masquerade evades every network-level heuristic (the blind spot) --
    # including payload ranges, since the forged values are plausible.
    assert all(rows[("masquerade", d)]["recall"] == 0.0
               for d in ("frequency", "entropy", "spec", "payload", "ensemble"))
    # The ensemble dominates or matches each member per attack.
    for attack in ("flood", "spoof", "fuzz"):
        best_single = max(rows[(attack, d)]["recall"]
                          for d in ("frequency", "entropy", "spec", "payload"))
        assert rows[(attack, "ensemble")]["recall"] >= best_single - 1e-9
