"""Shared helpers for the benchmark harness.

Every experiment bench times its driver with pytest-benchmark AND emits
the experiment's results table -- the repository's substitute for the
paper's (nonexistent) tables -- both to the terminal (bypassing capture)
and to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Emit a SweepResult table to the terminal and the results dir."""

    def _report(result, name: str) -> None:
        table = result.to_table()
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        existing = path.read_text() if path.exists() else ""
        if result.name not in existing:
            with path.open("a") as fh:
                fh.write(table + "\n\n")
        with capsys.disabled():
            print()
            print(table)

    return _report
