"""E1 bench: gateway isolation vs forged-frame propagation.

Regenerates the E1 table (DESIGN.md §3) and checks its shape: only
id-allowlist granularity (and quarantine) stop the forged engine frames.
"""

from repro.experiments import e01_gateway


def test_e1_gateway_isolation(benchmark, report):
    result = benchmark.pedantic(e01_gateway.run, rounds=1, iterations=1)
    report(result, "E1")

    by_config = {row["config"]: row for row in result.rows}
    # Shape assertions: flat bus and coarse rules leak, allowlist blocks.
    assert by_config["flat-bus"]["forged_delivered"] > 100
    assert by_config["gateway-open"]["forged_delivered"] > 100
    assert by_config["gateway-domain"]["forged_delivered"] > 100
    assert by_config["gateway-allowlist"]["forged_delivered"] == 0
    assert by_config["gateway-quarantine"]["forged_delivered"] == 0
