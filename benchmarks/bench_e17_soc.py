"""E17 bench: fleet VSOC ingest/correlate/contain vs no-SOC baseline.

Every cell runs with the conservation audit enabled (a single
unaccounted event in any pump raises inside the driver); cells at/above
10^6 exercise the sharded worker pool, shard-local correlators behind
the global campaign merger, batched sink delivery, and the vectorized
workload generator.  The 10^7 cell must finish inside the 120 s
acceptance bound, and the whole run writes ``BENCH_E17.json`` -- the
machine-readable perf record (per-cell wall clock + correlate-path
throughput vs the same-run per-event baseline) that the CI smoke job
regression-checks.
"""

import pathlib
import time

from repro.experiments import e17_soc

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_e17_fleet_soc(benchmark, report):
    timings = {}
    start = time.perf_counter()
    result = benchmark.pedantic(e17_soc.run, kwargs={"timings": timings},
                                rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    report(result, "E17")

    rows = {int(r["fleet"]): r for r in result.rows}
    assert set(rows) == {100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

    # Acceptance bound: the 10^7 cell (with its no-SOC twin) < 120 s.
    assert timings[10_000_000]["wall_s"] < 120, timings[10_000_000]
    assert elapsed < 240, f"E17 sweep took {elapsed:.0f}s"

    # Ingest sustains a 10^4-vehicle fleet: bounded queue, no shedding,
    # sub-second dispatch latency.
    sustained = rows[10_000]
    assert sustained["queue_peak"] < 2048
    assert sustained["shed_rate"] == 0
    assert sustained["latency_ms"] < 1000

    # Overload degrades explicitly, never silently: past backend capacity
    # the backpressure path visibly suppresses low-severity telemetry at
    # the source while every queue stays bounded.  At 10^5 a single
    # pipeline saturates against CAPACITY_EPS; at 10^6 the 8-shard pool
    # saturates against its shared budget; at 10^7 the 16-shard pool does
    # -- and queue_peak is always the *hottest single shard's* bounded
    # peak.
    overload = rows[100_000]
    assert overload["offered_eps"] > e17_soc.CAPACITY_EPS
    assert overload["shed_rate"] + overload["src_suppressed"] > 0
    assert overload["queue_peak"] < 2048

    sharded = rows[1_000_000]
    assert sharded["offered_eps"] > e17_soc.CAPACITY_EPS * e17_soc.NUM_SHARDS
    assert sharded["shed_rate"] + sharded["src_suppressed"] > 0
    assert sharded["queue_peak"] < 2048

    mega = rows[10_000_000]
    total_pressure_eps = (mega["offered_eps"]
                          + mega["src_suppressed"] / e17_soc.DURATION_S)
    assert total_pressure_eps > e17_soc.CAPACITY_EPS * e17_soc.MEGA_SHARDS
    assert mega["src_suppressed"] > sharded["src_suppressed"]
    assert mega["queue_peak"] < 2048

    # Underload cells never shed nor suppress: overload-only degradation.
    for fleet in (100, 1_000, 10_000):
        row = rows[fleet]
        assert row["shed_rate"] + row["src_suppressed"] == 0

    for fleet, row in rows.items():
        # Correlation quality at k=3 against the seeded campaigns.
        assert row["precision"] >= 0.9, (fleet, row["precision"])
        assert row["recall"] >= 0.9, (fleet, row["recall"])
        # The loop actually closes: authenticated policy pushes and
        # verified Uptane installs for every planted campaign.
        assert row["policy_pushes"] >= 3
        assert row["ota_installs"] >= 3
        assert row["t_contain_s"] > 0

    # Closed-loop remediation shrinks the blast radius vs the identical
    # scenario without a SOC -- decisively so at fleet scale.
    for fleet in (1_000, 10_000, 100_000, 1_000_000, 10_000_000):
        row = rows[fleet]
        assert row["compromised_soc"] < row["compromised_nosoc"]
        assert row["averted"] > 0
    for fleet in (100_000, 1_000_000, 10_000_000):
        assert rows[fleet]["compromised_soc"] * 2 < rows[fleet]["compromised_nosoc"]

    # Perf trajectory: batched correlate fast path vs the same-run
    # per-event baseline (the pre-optimization reference engine).
    correlate = e17_soc.correlate_microbench()
    assert correlate["speedup_batched_vs_reference"] >= 5.0, correlate

    cells = [
        {"fleet": float(fleet),
         "offered_eps_sim": rows[fleet]["offered_eps"],
         "wall_s": timings[fleet]["wall_s"],
         "soc_scene_wall_s": timings[fleet]["soc_scene_wall_s"],
         "ingest_correlate_eps": timings[fleet]["ingest_correlate_eps"]}
        for fleet in sorted(rows)
    ]
    e17_soc.write_bench_json(RESULTS_DIR / "BENCH_E17.json", cells, correlate)
