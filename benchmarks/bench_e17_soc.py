"""E17 bench: fleet VSOC ingest/correlate/contain vs no-SOC baseline."""

from repro.experiments import e17_soc


def test_e17_fleet_soc(benchmark, report):
    result = benchmark.pedantic(e17_soc.run, rounds=1, iterations=1)
    report(result, "E17")

    rows = {int(r["fleet"]): r for r in result.rows}
    assert set(rows) == {100, 1_000, 10_000, 100_000}

    # Ingest sustains a 10^4-vehicle fleet: bounded queue, no shedding,
    # sub-second dispatch latency.
    sustained = rows[10_000]
    assert sustained["queue_peak"] < 2048
    assert sustained["shed_rate"] == 0
    assert sustained["latency_ms"] < 1000

    # Overload degrades explicitly, never silently: at 10^5 vehicles the
    # offered load exceeds backend capacity and the backpressure path
    # visibly suppresses low-severity telemetry at the source while the
    # queue stays bounded.
    overload = rows[100_000]
    assert overload["offered_eps"] > e17_soc.CAPACITY_EPS
    assert overload["shed_rate"] + overload["src_suppressed"] > 0
    assert overload["queue_peak"] < 2048

    for fleet, row in rows.items():
        # Correlation quality at k=3 against the seeded campaigns.
        assert row["precision"] >= 0.9, (fleet, row["precision"])
        assert row["recall"] >= 0.9, (fleet, row["recall"])
        # The loop actually closes: authenticated policy pushes and
        # verified Uptane installs for every planted campaign.
        assert row["policy_pushes"] >= 3
        assert row["ota_installs"] >= 3
        assert row["t_contain_s"] > 0

    # Closed-loop remediation shrinks the blast radius vs the identical
    # scenario without a SOC -- decisively so at fleet scale.
    for fleet in (1_000, 10_000, 100_000):
        row = rows[fleet]
        assert row["compromised_soc"] < row["compromised_nosoc"]
        assert row["averted"] > 0
    assert rows[100_000]["compromised_soc"] * 2 < rows[100_000]["compromised_nosoc"]
