"""E17 bench: fleet VSOC ingest/correlate/contain vs no-SOC baseline.

Every cell runs with the conservation audit enabled (a single
unaccounted event in any pump raises inside the driver); the 10^6 cell
additionally exercises the sharded worker pool and the vectorized
workload generator, and must finish the whole sweep in CI-friendly
wall-clock time.
"""

import time

from repro.experiments import e17_soc


def test_e17_fleet_soc(benchmark, report):
    start = time.perf_counter()
    result = benchmark.pedantic(e17_soc.run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    report(result, "E17")

    rows = {int(r["fleet"]): r for r in result.rows}
    assert set(rows) == {100, 1_000, 10_000, 100_000, 1_000_000}

    # The sweep -- including the sharded 10^6 cell and its no-SOC twin --
    # stays affordable (acceptance bound: the mega cell alone < 120 s).
    assert elapsed < 120, f"E17 sweep took {elapsed:.0f}s"

    # Ingest sustains a 10^4-vehicle fleet: bounded queue, no shedding,
    # sub-second dispatch latency.
    sustained = rows[10_000]
    assert sustained["queue_peak"] < 2048
    assert sustained["shed_rate"] == 0
    assert sustained["latency_ms"] < 1000

    # Overload degrades explicitly, never silently: past backend capacity
    # the backpressure path visibly suppresses low-severity telemetry at
    # the source while every queue stays bounded.  At 10^5 a single
    # pipeline saturates against CAPACITY_EPS; at 10^6 the sharded pool
    # saturates against its NUM_SHARDS-scaled shared budget and
    # queue_peak is the *hottest single shard's* bounded peak.
    overload = rows[100_000]
    assert overload["offered_eps"] > e17_soc.CAPACITY_EPS
    assert overload["shed_rate"] + overload["src_suppressed"] > 0
    assert overload["queue_peak"] < 2048

    mega = rows[1_000_000]
    assert mega["offered_eps"] > e17_soc.CAPACITY_EPS * e17_soc.NUM_SHARDS
    assert mega["shed_rate"] + mega["src_suppressed"] > 0
    assert mega["queue_peak"] < 2048

    # Underload cells never shed nor suppress: overload-only degradation.
    for fleet in (100, 1_000, 10_000):
        row = rows[fleet]
        assert row["shed_rate"] + row["src_suppressed"] == 0

    for fleet, row in rows.items():
        # Correlation quality at k=3 against the seeded campaigns.
        assert row["precision"] >= 0.9, (fleet, row["precision"])
        assert row["recall"] >= 0.9, (fleet, row["recall"])
        # The loop actually closes: authenticated policy pushes and
        # verified Uptane installs for every planted campaign.
        assert row["policy_pushes"] >= 3
        assert row["ota_installs"] >= 3
        assert row["t_contain_s"] > 0

    # Closed-loop remediation shrinks the blast radius vs the identical
    # scenario without a SOC -- decisively so at fleet scale.
    for fleet in (1_000, 10_000, 100_000, 1_000_000):
        row = rows[fleet]
        assert row["compromised_soc"] < row["compromised_nosoc"]
        assert row["averted"] > 0
    assert rows[100_000]["compromised_soc"] * 2 < rows[100_000]["compromised_nosoc"]
    assert rows[1_000_000]["compromised_soc"] * 2 < rows[1_000_000]["compromised_nosoc"]
