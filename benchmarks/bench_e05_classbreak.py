"""E5 bench: one-vehicle compromise blast radius by key regime."""

from repro.experiments import e05_classbreak


def test_e5_class_break(benchmark, report):
    result = benchmark.pedantic(
        e05_classbreak.run, kwargs={"fleet_size": 12}, rounds=1, iterations=1,
    )
    report(result, "E5")

    radius = {r["regime"]: r["blast_radius"] for r in result.rows}
    assert radius["naive-shared"] == 1.0          # whole class falls
    assert radius["naive-per-device"] == 1.0 / 12  # only the broken car
    assert radius["uptane"] == 0.0                 # vehicle keys sign nothing
