"""E8 bench: PKES relay matrix + immobilizer crack scaling."""

from repro.experiments import e08_access


def test_e8_relay_matrix(benchmark, report):
    result = benchmark.pedantic(e08_access.run_relay, rounds=1, iterations=1)
    report(result, "E8")

    rows = {(r["defense"], r["scenario"]): r["unlocked"] for r in result.rows}
    # Undefended PKES falls to every relay.
    assert rows[("none", "relay-digital-1us")]
    assert rows[("none", "relay-analog-5ns")]
    # Distance bounding stops them...
    assert not rows[("distance-bounding-3m", "relay-digital-1us")]
    assert not rows[("distance-bounding-3m", "relay-analog-5ns")]
    # ...without locking out the legitimate owner.
    assert rows[("distance-bounding-3m", "owner-at-car")]


def test_e8_crack_scaling(benchmark, report):
    result = benchmark.pedantic(e08_access.run_crack, rounds=1, iterations=1)
    report(result, "E8")

    rows = result.rows
    # Work grows ~exponentially with unknown bits; extrapolated full-width
    # cost stays in the same order of magnitude across measurements
    # (constant keys/s), which is the scaling argument.
    tried = [r["keys_tried"] for r in rows]
    assert tried[-1] > tried[0] * 4
    days = [r["extrapolated_40bit_days"] for r in rows]
    assert max(days) / min(days) < 10.0
