"""E10 bench: malicious-update success matrix under key compromise."""

from repro.experiments import e10_ota


def test_e10_compromise_matrix(benchmark, report):
    result = benchmark.pedantic(e10_ota.run, rounds=1, iterations=1)
    report(result, "E10")

    rows = {r["compromised_keys"]: r for r in result.rows}
    # The naive client survives only the no-compromise row.
    assert rows["none"]["naive_client"] == "safe"
    for scenario in ("timestamp-keys", "director-online-all",
                     "image-targets-only", "both-repos-all-online"):
        assert rows[scenario]["naive_client"] == "COMPROMISED"
    # The role-separated client survives every single-repo compromise...
    for scenario in ("none", "timestamp-keys", "snapshot+timestamp",
                     "director-online-all", "image-targets-only"):
        assert rows[scenario]["uptane_client"] == "safe"
    # ...and falls only when both repositories' online roles are taken.
    assert rows["both-repos-all-online"]["uptane_client"] == "COMPROMISED"
