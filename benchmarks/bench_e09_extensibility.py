"""E9 bench: extensible vs custom architecture cost trajectories."""

from repro.experiments import e09_extensibility


def test_e9_cost_trajectories(benchmark, report):
    result = benchmark.pedantic(e09_extensibility.run, rounds=1, iterations=1)
    report(result, "E9")

    rows = result.rows
    # Generation 1: extensibility costs more (the time-to-market penalty).
    assert rows[0]["extensible_cost"] > rows[0]["custom_cost"]
    # By the final generation the extensible architecture has won.
    assert rows[-1]["extensible_cost"] < rows[-1]["custom_cost"]
    # Exactly one crossover (monotone difference).
    wins = [r["extensible_wins"] for r in rows]
    assert wins == sorted(wins)  # False... then True...


def test_e9_ablation(benchmark, report):
    result = benchmark.pedantic(e09_extensibility.run_ablation,
                                rounds=1, iterations=1)
    report(result, "E9")

    rows = result.rows
    # The worse the per-generation reconfiguration cost, the later (or
    # never) the crossover.
    crossovers = [
        r["crossover_generation"] for r in rows
        if r["crossover_generation"] != "never"
    ]
    assert crossovers == sorted(crossovers)
    assert rows[-1]["crossover_generation"] == "never"
