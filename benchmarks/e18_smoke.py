#!/usr/bin/env python
"""E18 benchmark smoke: federated-VSOC perf-regression gate for CI.

Runs a micro federated cell (3 regions, sub-``k``-per-region campaigns,
zero and one-second shipping lag), the partition/heal cell (verdict
equality against the no-outage twin is asserted inside the cell), the
determinism-vs-availability cell (optimistic vs strict under the same
partition; reconciled-state byte-identity is asserted inside the cell
and the optimistic paging latency is gated at 1.5x the no-partition
twin), and the hub apply microbenchmark, writes a fresh
``BENCH_E18.json``, and
(with ``--baseline``) fails if the hub's watermark-gated apply
throughput has regressed more than ``--tolerance`` (default 30 %)
against the committed baseline -- mirroring the E17 gate.

Quality gates (always on): every planted cross-region campaign must be
detected at the hub in both lag cells, no records may be left
unapplied, and detection latency must not *decrease* as lag grows.

Usage (CI)::

    PYTHONPATH=src python benchmarks/e18_smoke.py \
        --baseline benchmarks/results/BENCH_E18.json --out BENCH_E18.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.experiments import e18_federation

SMOKE_LAGS = (0.0, 1.0)
SMOKE_N_PER_REGION = 500
SMOKE_DURATION_S = 24.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_E18.json to "
                        "regression-check against")
    parser.add_argument("--out", default="BENCH_E18.json",
                        help="where to write the fresh measurement")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args(argv)

    failures = []

    lag_cells = []
    for lag_s in SMOKE_LAGS:
        cell = e18_federation._lag_cell(
            seed=0, lag_s=lag_s, jitter_s=0.1, duplicate_p=0.02,
            duration_s=SMOKE_DURATION_S, n_per_region=SMOKE_N_PER_REGION)
        lag_cells.append(cell)
        if cell["campaigns_detected"] < cell["campaigns_planted"]:
            failures.append(
                f"lag={lag_s}s cell missed campaigns: "
                f"{cell['campaigns_detected']:.0f}/"
                f"{cell['campaigns_planted']:.0f}")
        if cell["unapplied"]:
            failures.append(
                f"lag={lag_s}s cell left {cell['unapplied']:.0f} records "
                "unapplied after finalize")
    if (not math.isnan(lag_cells[0]["mean_latency_s"])
            and not math.isnan(lag_cells[-1]["mean_latency_s"])
            and lag_cells[-1]["mean_latency_s"]
            < lag_cells[0]["mean_latency_s"] - 1e-9):
        failures.append(
            "detection latency decreased as shipping lag grew: "
            f"{lag_cells[0]['mean_latency_s']:.3f}s @0s vs "
            f"{lag_cells[-1]['mean_latency_s']:.3f}s "
            f"@{SMOKE_LAGS[-1]}s")

    # Partition/heal: verdict-set equality vs the no-outage twin is
    # asserted inside the cell -- a lost campaign raises and fails us.
    partition = e18_federation.partition_heal_cell(
        seed=0, duration_s=SMOKE_DURATION_S,
        n_per_region=SMOKE_N_PER_REGION)
    # Determinism-vs-availability: the optimistic hub rides out the same
    # partition.  Reconciled-state byte-identity with the strict gate is
    # asserted inside the cell; here we gate the payoff -- provisional
    # paging latency under partition must stay within 1.5x the
    # no-partition twin (the strict gate pays far more by stalling).
    availability = e18_federation.availability_cell(
        seed=0, duration_s=SMOKE_DURATION_S,
        n_per_region=SMOKE_N_PER_REGION)
    if availability["latency_ratio"] > 1.5:
        failures.append(
            "optimistic mean latency under partition exceeded 1.5x the "
            f"no-partition twin: ratio {availability['latency_ratio']:.2f}")
    hub_apply = e18_federation.hub_apply_microbench()

    e18_federation.write_bench_json(args.out, lag_cells, partition,
                                    hub_apply, availability=availability)
    print(f"wrote {args.out}")
    for cell in lag_cells:
        print(f"  lag {cell['lag_s']:.1f}s: "
              f"{cell['campaigns_detected']:.0f}/"
              f"{cell['campaigns_planted']:.0f} campaigns, mean latency "
              f"{cell['mean_latency_s']:.3f}s, "
              f"{cell['records_shipped']:,.0f} records shipped "
              f"({cell['receiver_duplicates']:,.0f} dups absorbed)")
    print(f"  partition [{partition['outage_start_s']:.0f},"
          f"{partition['outage_end_s']:.0f}]s: mean latency "
          f"{partition['mean_latency_s']:.3f}s (twin "
          f"{partition['twin_mean_latency_s']:.3f}s), verdicts match twin")
    print(f"  availability: optimistic "
          f"{availability['optimistic_mean_latency_s']:.3f}s"
          f" = {availability['latency_ratio']:.2f}x twin (strict pays "
          f"{availability['strict_latency_ratio']:.2f}x), "
          f"{availability['episodes']:.0f} episodes, "
          f"{availability['amendments_confirmed']:.0f} confirmed / "
          f"{availability['amendments_amended']:.0f} amended / "
          f"{availability['amendments_retracted']:.0f} retracted, "
          f"reconciled state byte-identical to strict")
    print(f"  hub apply: {hub_apply['apply_eps']:,.0f} events/s over "
          f"{hub_apply['regions']:.0f} regions x "
          f"{hub_apply['num_shards']:.0f} shards")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        committed = baseline["hub_apply"]["apply_eps"]
        floor = committed * (1.0 - args.tolerance)
        print(f"  committed baseline: {committed:,.0f} events/s "
              f"(floor at -{args.tolerance:.0%}: {floor:,.0f})")
        if hub_apply["apply_eps"] < floor:
            failures.append(
                f"hub apply throughput regressed >{args.tolerance:.0%}: "
                f"{hub_apply['apply_eps']:,.0f} events/s vs committed "
                f"{committed:,.0f}")
        if "partition" not in baseline:
            failures.append("committed baseline lacks the partition cell")
        if "availability" not in baseline:
            failures.append(
                "committed baseline lacks the availability cell")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
