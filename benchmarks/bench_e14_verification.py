"""E14 bench: verification-space growth + reserved-config exposure."""

from repro.experiments import e14_verification


def test_e14_configuration_space(benchmark, report):
    result = benchmark.pedantic(e14_verification.run, rounds=1, iterations=1)
    report(result, "E14")

    rows = result.rows
    spaces = [r["config_space"] for r in rows]
    times = [r["exhaustive_eval_ms"] for r in rows]
    # The space (and the cost of exhaustively covering it) explodes with
    # extensibility level.
    assert spaces == sorted(spaces)
    assert spaces[-1] > spaces[0] * 50
    assert times[-1] > times[0] * 10


def test_e14_reserved_surface(benchmark, report):
    result = benchmark.pedantic(e14_verification.run_reserved,
                                rounds=1, iterations=1)
    report(result, "E14")

    rows = result.rows
    # No reserved ids -> no reserved surface; surface grows with the
    # fraction of "future use" configuration shipped dark.
    assert rows[0]["fuzz_hits_reserved"] == 0
    hits = [r["fuzz_hits_reserved"] for r in rows]
    assert hits == sorted(hits)
    assert hits[-1] > 0
