"""E3 bench: CAN authentication vs real-time deadlines."""

from repro.experiments import e03_realtime


def test_e3_auth_vs_deadlines(benchmark, report):
    result = benchmark.pedantic(
        e03_realtime.run, kwargs={"bitrate": 125_000.0, "duration": 5.0},
        rounds=1, iterations=1,
    )
    report(result, "E3")

    rows = {r["config"]: r for r in result.rows}
    # Baseline: comfortable utilisation, no misses.
    assert rows["none"]["utilization"] < 0.6
    assert rows["none"]["miss_rate"] == 0.0
    # Utilisation rises monotonically with inline tag length.
    assert (rows["none"]["utilization"] < rows["inline-2B"]["utilization"]
            <= rows["inline-4B"]["utilization"])
    # Strong inline auth saturates the bus and misses deadlines.
    assert rows["inline-6B"]["utilization"] > 0.95
    assert rows["inline-6B"]["miss_rate"] > rows["inline-2B"]["miss_rate"]
    # Separate-tag mode also saturates (two frames per message).
    assert rows["separate-7B"]["utilization"] > 0.95


def test_e3b_canfd_dissolves_the_dilemma(benchmark, report):
    """Ablation: on CAN FD a full 128-bit tag costs a few percent of bus
    load instead of saturation -- the protocol-evolution answer to E3."""
    result = benchmark.pedantic(e03_realtime.run_canfd, rounds=1, iterations=1)
    report(result, "E3")

    rows = {r["config"]: r for r in result.rows}
    assert rows["full-16B-tag"]["security_bits"] == 128
    assert rows["full-16B-tag"]["miss_rate"] == 0.0
    # The full-strength tag costs under 10 points of utilisation.
    assert (rows["full-16B-tag"]["utilization"]
            - rows["none"]["utilization"]) < 0.10
