"""E13 bench: secure-boot guarantees and authentication cost curve."""

from repro.experiments import e13_secureboot


def test_e13_boot_outcomes(benchmark, report):
    result = benchmark.pedantic(e13_secureboot.run, rounds=1, iterations=1)
    report(result, "E13")

    rows = {r["mutation"]: r for r in result.rows}
    assert rows["authentic"]["policy_degrade"] == "running"
    assert rows["authentic"]["policy_halt"] == "running"
    for mutation in ("payload-flip", "version-swap", "wrong-image"):
        assert rows[mutation]["policy_degrade"] == "degraded"
        assert rows[mutation]["policy_halt"] == "locked"


def test_e13_cmac_cost_curve(benchmark, report):
    result = benchmark.pedantic(e13_secureboot.run_cost, rounds=1, iterations=1)
    report(result, "E13")

    rows = result.rows
    # Cost grows with image size; throughput is roughly size-independent
    # (linear scaling), within a generous tolerance for timer noise.
    times = [r["cmac_ms"] for r in rows]
    assert times == sorted(times)
    throughputs = [r["throughput_kib_s"] for r in rows]
    assert max(throughputs) / min(throughputs) < 3.0
