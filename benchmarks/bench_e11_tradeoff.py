"""E11 bench: adaptive vs static operating policies over a commute."""

from repro.experiments import e11_tradeoff


def test_e11_policy_comparison(benchmark, report):
    result = benchmark.pedantic(e11_tradeoff.run, rounds=1, iterations=1)
    report(result, "E11")

    rows = {r["policy"]: r for r in result.rows}
    adaptive, smax, smin = rows["adaptive"], rows["static-max"], rows["static-min"]
    # Adaptive is cheaper than always-max on both energy and bandwidth...
    assert adaptive["energy_wh"] < smax["energy_wh"]
    assert adaptive["data_mb"] < smax["data_mb"]
    # ...and never leaves urban driving under-verified, unlike always-min.
    assert adaptive["urban_underverified_fraction"] == 0.0
    assert smin["urban_underverified_fraction"] == 1.0
    # The static-min policy is the cheapest -- the point is what it costs
    # in exposure, not energy.
    assert smin["energy_wh"] < adaptive["energy_wh"]
