"""Micro-benchmarks for the crypto substrate.

These numbers calibrate the simulation's cost models: the E6 station
``verify_rate`` is the measured ECDSA verify throughput of the platform
(here: this pure-Python implementation; on automotive silicon, the SHE /
HSM datasheet figure), and E13's boot-time curve comes from the CMAC
throughput.
"""

import pytest

from repro.crypto import (
    AES,
    EcdsaKeyPair,
    HmacDrbg,
    MaskedAES,
    aes_cmac,
    ecdsa_sign,
    ecdsa_verify,
    hkdf,
    she_kdf,
    sha256,
    SHE_KEY_UPDATE_ENC_C,
)

KEY16 = bytes(range(16))
BLOCK = bytes(range(16, 32))


def test_aes_block_encrypt(benchmark):
    aes = AES(KEY16)
    benchmark(aes.encrypt_block, BLOCK)


def test_aes_block_decrypt(benchmark):
    aes = AES(KEY16)
    ct = aes.encrypt_block(BLOCK)
    benchmark(aes.decrypt_block, ct)


def test_masked_aes_block(benchmark):
    import random
    aes = MaskedAES(KEY16, rng=random.Random(0))
    benchmark(aes.encrypt_block, BLOCK)


def test_cmac_64_bytes(benchmark):
    message = bytes(64)
    benchmark(aes_cmac, KEY16, message)


def test_cmac_4k_firmware(benchmark):
    image = bytes(4096)
    benchmark(aes_cmac, KEY16, image)


def test_sha256_1k(benchmark):
    data = bytes(1024)
    benchmark(sha256, data)


def test_she_kdf(benchmark):
    benchmark(she_kdf, KEY16, SHE_KEY_UPDATE_ENC_C)


def test_hkdf_expand(benchmark):
    benchmark(hkdf, b"input keying material", 64)


@pytest.fixture(scope="module")
def keypair():
    return EcdsaKeyPair.generate(HmacDrbg(b"bench-key"))


def test_ecdsa_sign(benchmark, keypair):
    benchmark(ecdsa_sign, keypair.private, b"basic safety message payload")


def test_ecdsa_verify(benchmark, keypair):
    msg = b"basic safety message payload"
    sig = ecdsa_sign(keypair.private, msg)
    result = benchmark(ecdsa_verify, keypair.public, msg, sig)
    assert result


def test_ecdsa_keygen(benchmark):
    counter = [0]

    def gen():
        counter[0] += 1
        return EcdsaKeyPair.generate(HmacDrbg(f"k{counter[0]}".encode()))

    benchmark(gen)
