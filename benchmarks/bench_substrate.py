"""Micro-benchmarks for the simulation substrate (kernel, CAN, channel)."""

from repro.ivn import CanBus, CanFrame, typical_powertrain_matrix
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch cost of 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.processed_events

    assert benchmark(run) == 10_000


def test_can_frame_encoding(benchmark):
    """Stuffed-bit-accurate frame length computation."""
    frame = CanFrame(0x123, bytes(range(8)))
    benchmark(frame.bit_length)


def test_can_bus_simulated_second(benchmark):
    """Wall-clock cost of simulating 1 s of loaded powertrain CAN."""

    def run():
        sim = Simulator()
        bus = CanBus(sim)
        typical_powertrain_matrix().install(sim, bus)
        sim.run_until(1.0)
        return bus.frames_on_wire

    frames = benchmark(run)
    assert frames > 400  # ~442 frames/s for the matrix


def test_can_bus_saturated_arbitration(benchmark):
    """Arbitration among 8 contending nodes, 1000 frames."""

    def run():
        sim = Simulator()
        bus = CanBus(sim)
        nodes = [bus.attach(f"n{i}") for i in range(8)]
        for k in range(1000):
            nodes[k % 8].send(CanFrame(0x100 + (k % 64), bytes(8)))
        sim.run()
        return bus.frames_on_wire

    assert benchmark(run) == 1000
