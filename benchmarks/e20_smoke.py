#!/usr/bin/env python
"""E20 benchmark smoke: ingest-hardening perf + recovery gate for CI.

Runs the three E20 hardening cells (plain-vs-CMAC-authenticated
throughput, quota fencing with one hostile flooder, SIGKILL-every-worker
MTTR with a byte-identical differential twin), writes a fresh
``BENCH_E20.json``, and gates:

- **Correctness (always on)**: every cell asserts its own invariants
  before reporting a number -- acked == sent for honest fleets, zero
  honest quota refusals, the flood actually refused *and* disconnected,
  zero admitted-batch ACKs lost across the kills, and the killed run
  byte-identical (raw log segments + analytics snapshots) to its
  uninterrupted twin.
- **Authenticated-eps floor (self-arming)**: with ``--baseline``, the
  authenticated cell's sustained acked eps must not regress more than
  ``--tolerance`` (default 30 %) below the committed figure.  The floor
  is on the *authenticated* eps, not the overhead fraction: the plain
  cell's speed is E19's gate, and a fraction would pass if both modes
  got uniformly slower.
- **Goodput-ratio floor (self-arming)**: honest goodput under attack
  must stay >= ``--goodput-floor`` (default 0.95) of the hostile-free
  baseline run -- the quota layer's whole point.
- **MTTR ceiling (self-arming)**: worst kill-to-recovered time must
  stay within ``--mttr-tolerance`` (default 100 %, i.e. 2x) of the
  committed baseline, with a 100 ms absolute grace floor so a
  millisecond-scale baseline doesn't gate on process-spawn jitter.

Usage (CI)::

    PYTHONPATH=src python benchmarks/e20_smoke.py \
        --baseline benchmarks/results/BENCH_E20.json --out BENCH_E20.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import e20_hardening

SMOKE_CLIENTS = 40
SMOKE_ROUNDS = 5
MTTR_GRACE_S = 0.100


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_E20.json to "
                        "regression-check against")
    parser.add_argument("--out", default="BENCH_E20.json",
                        help="where to write the fresh measurement")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression of the "
                        "authenticated-cell eps (default 0.30)")
    parser.add_argument("--goodput-floor", type=float, default=0.95,
                        help="minimum honest goodput ratio under attack "
                        "(default 0.95)")
    parser.add_argument("--mttr-tolerance", type=float, default=1.00,
                        help="allowed fractional MTTR growth vs baseline "
                        "(default 1.00 = 2x ceiling)")
    parser.add_argument("--clients", type=int, default=SMOKE_CLIENTS,
                        help=f"overhead-cell connections (default "
                        f"{SMOKE_CLIENTS})")
    args = parser.parse_args(argv)

    failures = []

    cells = e20_hardening.all_cells(seed=0, n_clients=args.clients,
                                    rounds=SMOKE_ROUNDS)
    payload = e20_hardening.write_bench_json(args.out, cells)
    over, quota, mttr = (cells["overhead"], cells["quota"], cells["mttr"])
    print(f"wrote {args.out} (host cpus: {payload['cpu_count']})")
    print(f"  plain: {over['plain']['eps']:,.0f} eps, authenticated: "
          f"{over['authenticated']['eps']:,.0f} eps "
          f"(overhead {over['overhead_frac']:.0%} -- pure-Python "
          "per-batch CMAC)")
    print(f"  quota: honest goodput ratio {quota['goodput_ratio']:.3f} "
          f"({quota['quota_refused']:.0f} hostile batches refused, "
          f"{quota['quota_disconnects']:.0f} disconnect)")
    print(f"  mttr: max {mttr['mttr_max_s'] * 1e3:.1f} ms over "
          f"{mttr['workers_killed']:.0f} worker kills, "
          f"{mttr['acks_lost']:.0f} ACKs lost, byte_identical="
          f"{mttr['byte_identical']:.0f}")

    # Correctness re-checks at the gate (the cells already raised if
    # violated; belt and braces for the record in CI logs).
    if mttr["acks_lost"] != 0.0:
        failures.append(f"MTTR cell lost {mttr['acks_lost']:.0f} ACKs")
    if mttr["byte_identical"] != 1.0:
        failures.append("restarted run not byte-identical to its twin")
    if quota["hostile_events_admitted"] > quota["honest_events"]:
        failures.append("quota fence leaked the flood through")

    if quota["goodput_ratio"] < args.goodput_floor:
        failures.append(
            f"honest goodput under attack {quota['goodput_ratio']:.3f} "
            f"< floor {args.goodput_floor:.2f}")
    else:
        print(f"  goodput gate: {quota['goodput_ratio']:.3f} >= "
              f"{args.goodput_floor:.2f}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        committed = baseline["cells"]["overhead"]["authenticated"]["eps"]
        floor = committed * (1.0 - args.tolerance)
        authed = over["authenticated"]["eps"]
        print(f"  committed authenticated eps: {committed:,.0f} "
              f"(floor at -{args.tolerance:.0%}: {floor:,.0f})")
        if authed < floor:
            failures.append(
                f"authenticated ingest regressed >{args.tolerance:.0%}: "
                f"{authed:,.0f} eps vs committed {committed:,.0f}")
        committed_mttr = baseline["cells"]["mttr"]["mttr_max_s"]
        ceiling = max(committed_mttr * (1.0 + args.mttr_tolerance),
                      committed_mttr + MTTR_GRACE_S)
        print(f"  committed MTTR max: {committed_mttr * 1e3:.1f} ms "
              f"(ceiling: {ceiling * 1e3:.1f} ms)")
        if mttr["mttr_max_s"] > ceiling:
            failures.append(
                f"worker MTTR regressed: {mttr['mttr_max_s'] * 1e3:.1f} "
                f"ms vs committed {committed_mttr * 1e3:.1f} ms "
                f"(ceiling {ceiling * 1e3:.1f} ms)")
        if "cpu_count" not in baseline:
            failures.append("committed baseline lacks cpu_count")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
