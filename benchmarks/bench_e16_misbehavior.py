"""E16 bench: ghost-vehicle insider vs misbehavior detection."""

from repro.experiments import e16_misbehavior


def test_e16_ghost_vehicle(benchmark, report):
    result = benchmark.pedantic(e16_misbehavior.run, rounds=1, iterations=1)
    report(result, "E16")

    rows = result.rows
    for row in rows:
        # The insider is always caught and revoked...
        assert row["revoked"]
        assert row["time_to_revocation_s"] < 5.0
        # ...revocation is airtight (CRL rejects every later lie)...
        assert row["lies_accepted_after"] == 0
        assert row["crl_rejections"] > 0
        # ...and no honest vehicle is ever falsely revoked.
        assert row["honest_revoked"] == 0
    # Higher thresholds admit (slightly) more lies before tripping.
    before = [r["lies_accepted_before"] for r in rows]
    assert before == sorted(before)
