"""E15 bench: UDS SecurityAccess attack chain by seed/key algorithm."""

from repro.experiments import e15_diagnostics


def test_e15_seedkey_attack_chain(benchmark, report):
    result = benchmark.pedantic(e15_diagnostics.run, rounds=1, iterations=1)
    report(result, "E15")

    rows = {r["algorithm"]: r for r in result.rows}
    weak, sound = rows["xor-constant"], rows["aes-cmac"]
    # One sniffed exchange breaks the XOR scheme end to end.
    assert weak["transform_recovered"]
    assert weak["ecu_unlocked"]
    assert weak["protected_write"]
    # The CMAC scheme resists recovery, and online guessing hits lockout.
    assert not sound["transform_recovered"]
    assert not sound["ecu_unlocked"]
    assert sound["lockout"]
