"""Tests for analysis: metrics, statistics, sweep tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ConfusionMatrix,
    Sweep,
    detection_metrics,
    mean,
    percentile,
    roc_points,
    score_alerts,
    stdev,
    summarize,
)
from repro.analysis.metrics import auc
from repro.ids.base import Alert


class TestConfusionMatrix:
    def test_perfect(self):
        cm = ConfusionMatrix(tp=10, tn=90)
        assert cm.precision == 1.0 and cm.recall == 1.0
        assert cm.false_positive_rate == 0.0
        assert cm.f1 == 1.0 and cm.accuracy == 1.0

    def test_all_zero(self):
        cm = ConfusionMatrix()
        assert cm.precision == 0.0 and cm.recall == 0.0
        assert cm.f1 == 0.0 and cm.accuracy == 0.0

    def test_mixed(self):
        cm = ConfusionMatrix(tp=8, fp=2, tn=88, fn=2)
        assert cm.precision == pytest.approx(0.8)
        assert cm.recall == pytest.approx(0.8)
        assert cm.false_positive_rate == pytest.approx(2 / 90)

    def test_detection_metrics_dict(self):
        metrics = detection_metrics(ConfusionMatrix(tp=1, tn=1))
        assert set(metrics) == {"precision", "recall", "fpr", "f1", "accuracy"}


class TestScoreAlerts:
    def test_exact_time_matching(self):
        observations = [(1.0, True), (2.0, False), (3.0, True)]
        alerts = [Alert(1.0, "d", 0x1, "x"), Alert(2.0, "d", 0x1, "x")]
        cm = score_alerts(observations, alerts)
        assert cm.tp == 1 and cm.fn == 1 and cm.fp == 1 and cm.tn == 0

    def test_tolerance_window(self):
        observations = [(1.0, True)]
        alerts = [Alert(1.05, "d", 0x1, "x")]
        assert score_alerts(observations, alerts).tp == 0
        assert score_alerts(observations, alerts, tolerance=0.1).tp == 1

    def test_empty(self):
        cm = score_alerts([], [])
        assert cm.tp == cm.fp == cm.tn == cm.fn == 0


class TestRoc:
    def test_perfect_separation(self):
        scored = [(0.9, True), (0.8, True), (0.2, False), (0.1, False)]
        points = roc_points(scored)
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (1.0, 1.0)
        assert auc(points) == pytest.approx(1.0)

    def test_random_scores_auc_half(self):
        scored = [(0.5, True), (0.5, False)] * 50
        assert 0.3 < auc(roc_points(scored)) < 0.7

    def test_inverted_scores_auc_zero(self):
        scored = [(0.1, True), (0.9, False)]
        assert auc(roc_points(scored)) == 0.0


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([2.0, 2.0, 2.0]) == 0.0
        assert stdev([1.0]) == 0.0
        assert stdev([0.0, 2.0]) == 1.0

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 50) == 50
        assert percentile(values, 100) == 100
        assert percentile(values, 95) == pytest.approx(95)

    def test_percentile_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentile_empty_and_single(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_summarize_empty(self):
        assert summarize([])["p99"] == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_percentile_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)


class TestSweep:
    def test_run_collects_rows(self):
        sweep = Sweep("test", lambda x: {"double": 2 * x})
        result = sweep.run([{"x": 1}, {"x": 5}])
        assert result.column("double") == [2, 10]
        assert result.column("x") == [1, 5]

    def test_table_rendering(self):
        sweep = Sweep("demo", lambda n: {"value": n * 1.5, "ok": n > 1})
        table = sweep.run([{"n": 1}, {"n": 2}]).to_table()
        assert "== demo ==" in table
        assert "value" in table and "yes" in table and "no" in table

    def test_explicit_columns(self):
        sweep = Sweep("t", lambda a: {"b": a, "c": a})
        result = sweep.run([{"a": 1}], columns=["a", "b"])
        assert "c" not in result.to_table().splitlines()[1]

    def test_empty_grid(self):
        result = Sweep("empty", lambda: {}).run([])
        assert result.rows == []
        assert "== empty ==" in result.to_table()
