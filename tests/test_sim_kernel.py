"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Process, RngStreams, SimulationError, Simulator, TraceRecorder


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.run()
        assert log == ["early", "late"]

    def test_equal_time_fifo_order(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_priority_overrides_fifo(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "low", priority=5)
        sim.schedule(1.0, log.append, "high", priority=1)
        sim.run()
        assert log == ["high", "low"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, log.append, "x")
        ev.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.run() == 0

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.schedule(3.0, log.append, "c")
        executed = sim.run_until(2.0)
        assert executed == 2
        assert log == ["a", "b"]
        assert sim.now == 2.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_max_events_bound(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 5

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_property_fires_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestProcess:
    def test_sequential_delays(self):
        sim = Simulator()
        out = []

        def proc():
            out.append(sim.now)
            yield 1.0
            out.append(sim.now)
            yield 2.5
            out.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert out == [0.0, 1.0, 3.5]

    def test_finished_flag(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = Process(sim, proc())
        assert not p.finished
        sim.run()
        assert p.finished

    def test_cancel_stops_process(self):
        sim = Simulator()
        out = []

        def proc():
            yield 1.0
            out.append("should not happen")

        p = Process(sim, proc())
        sim.run_until(0.5)
        p.cancel()
        sim.run()
        assert out == []
        assert p.finished

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        Process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).get("x").random()
        b = RngStreams(7).get("x").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RngStreams(7)
        assert streams.get("x").random() != streams.get("y").random()

    def test_stream_cached(self):
        streams = RngStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RngStreams(3)
        first = s1.get("bus").random()
        s2 = RngStreams(3)
        s2.get("new_component")  # extra stream created first
        assert s2.get("bus").random() == first

    def test_fork_is_deterministic(self):
        a = RngStreams(1).fork("child").get("s").random()
        b = RngStreams(1).fork("child").get("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngStreams(1)
        child = parent.fork("child")
        assert parent.get("s").random() != child.get("s").random()

    def test_randbytes(self):
        data = RngStreams(5).randbytes("k", 32)
        assert len(data) == 32

    def test_contains(self):
        streams = RngStreams(0)
        assert "x" not in streams
        streams.get("x")
        assert "x" in streams


class TestTraceRecorder:
    def test_emit_and_len(self):
        tr = TraceRecorder()
        tr.emit(0.0, "bus0", "can.tx", frame_id=0x100)
        assert len(tr) == 1

    def test_filter_by_kind_prefix(self):
        tr = TraceRecorder()
        tr.emit(0.0, "a", "can.tx")
        tr.emit(0.1, "a", "can.rx")
        tr.emit(0.2, "b", "ids.alert")
        assert tr.count("can") == 2
        assert tr.count("can.tx") == 1
        assert tr.count("ids.alert") == 1

    def test_kind_prefix_does_not_match_substring(self):
        tr = TraceRecorder()
        tr.emit(0.0, "a", "can.tx")
        tr.emit(0.0, "a", "canister")
        assert tr.count("can") == 1

    def test_filter_by_source(self):
        tr = TraceRecorder()
        tr.emit(0.0, "a", "x")
        tr.emit(0.0, "b", "x")
        assert tr.count(source="a") == 1

    def test_last(self):
        tr = TraceRecorder()
        tr.emit(0.0, "a", "x", v=1)
        tr.emit(1.0, "a", "x", v=2)
        assert tr.last("x").data["v"] == 2
        assert tr.last("nope") is None

    def test_capacity_drops_and_counts(self):
        tr = TraceRecorder(capacity=2)
        for i in range(5):
            tr.emit(float(i), "a", "x")
        assert len(tr) == 2
        assert tr.dropped == 3

    def test_listener_sees_all_records(self):
        tr = TraceRecorder(capacity=1)
        seen = []
        tr.subscribe(seen.append)
        tr.emit(0.0, "a", "x")
        tr.emit(1.0, "a", "y")  # over capacity but listener still notified
        assert [r.kind for r in seen] == ["x", "y"]

    def test_clear(self):
        tr = TraceRecorder()
        tr.emit(0.0, "a", "x")
        tr.clear()
        assert len(tr) == 0
