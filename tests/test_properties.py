"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import (
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    SecurityPolicy,
)
from repro.diag import IsoTpEndpoint
from repro.ivn import CanBus, CanFdFrame, CanFrame, fd_dlc_for
from repro.ivn.secure_can import SecOcReceiver, SecOcSender
from repro.sim import Simulator
from repro.v2x import BasicSafetyMessage

KEY = b"P" * 16


class TestCanArbitrationProperties:
    @given(st.lists(st.integers(min_value=0, max_value=0x7FF),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_same_instant_queue_drains_priority_ordered(self, ids):
        """Frames queued while the bus is busy transmit in id order."""
        sim = Simulator()
        bus = CanBus(sim)
        node = bus.attach("n")
        order = []
        bus.tap(lambda f: order.append(f.can_id))
        for can_id in ids:
            node.send(CanFrame(can_id))
        sim.run()
        # First frame starts immediately (whatever was queued first wins
        # only among frames present at arbitration); everything queued at
        # t=0 contends at once, so the whole sequence is sorted.
        assert order == sorted(ids)
        assert bus.frames_on_wire == len(ids)

    @given(st.lists(st.binary(max_size=8), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_all_frames_delivered_exactly_once(self, payloads):
        sim = Simulator()
        bus = CanBus(sim)
        tx = bus.attach("tx")
        rx = bus.attach("rx")
        got = []
        rx.on_receive(got.append)
        for i, payload in enumerate(payloads):
            tx.send(CanFrame(0x100 + (i % 0x400), payload))
        sim.run()
        assert len(got) == len(payloads)
        assert sorted(f.data for f in got) == sorted(payloads)


class TestSecOcProperties:
    @given(st.integers(min_value=0, max_value=0x7FF), st.binary(min_size=0, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_inline_roundtrip(self, can_id, payload):
        sim = Simulator()
        bus = CanBus(sim)
        tx = bus.attach("tx")
        rx_node = bus.attach("rx")
        accepted = []
        receiver = SecOcReceiver(KEY, tag_len=4,
                                 on_accept=lambda cid, d: accepted.append((cid, d)))
        rx_node.on_receive(receiver.receive_inline)
        SecOcSender(tx, KEY, tag_len=4).send(can_id, payload)
        sim.run()
        assert accepted == [(can_id, payload)]

    @given(st.binary(min_size=6, max_size=8), st.integers(min_value=0, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_any_single_byte_flip_rejected(self, payload_seed, flip_index):
        sim = Simulator()
        bus = CanBus(sim)
        tx = bus.attach("tx")
        captured = []
        bus.tap(lambda f: captured.append(f))
        SecOcSender(tx, KEY, tag_len=4).send(0x100, payload_seed[:3])
        sim.run()
        frame = captured[0]
        mutated = bytearray(frame.data)
        if flip_index >= len(mutated):
            flip_index = len(mutated) - 1
        mutated[flip_index] ^= 0x01
        receiver = SecOcReceiver(KEY, tag_len=4)
        assert not receiver.receive_inline(CanFrame(0x100, bytes(mutated)))


class TestIsoTpProperties:
    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_any_length(self, payload):
        sim = Simulator()
        bus = CanBus(sim)
        tx = IsoTpEndpoint(sim, bus, "tx", tx_id=0x700, rx_id=0x708)
        rx = IsoTpEndpoint(sim, bus, "rx", tx_id=0x708, rx_id=0x700)
        got = []
        rx.on_message = got.append
        tx.send(payload)
        sim.run()
        assert got == [payload]

    @given(st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_sequential_messages_in_order(self, payloads):
        sim = Simulator()
        bus = CanBus(sim)
        tx = IsoTpEndpoint(sim, bus, "tx", tx_id=0x700, rx_id=0x708)
        rx = IsoTpEndpoint(sim, bus, "rx", tx_id=0x708, rx_id=0x700)
        got = []
        rx.on_message = got.append

        def send_next(remaining):
            if remaining:
                tx.send(remaining[0])
                # Wait for delivery before the next message (half-duplex
                # diagnostic discipline).
                def wait():
                    if len(got) == len(payloads) - len(remaining) + 1:
                        send_next(remaining[1:])
                    else:
                        sim.schedule(0.01, wait)
                sim.schedule(0.01, wait)

        send_next(payloads)
        sim.run(max_events=200_000)
        assert got == payloads


class TestBsmProperties:
    @given(
        st.integers(min_value=0, max_value=127),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=-7, max_value=7, allow_nan=False),
        st.text(alphabet=st.characters(codec="ascii", categories=("L", "N")), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, count, x, y, speed, heading, event):
        bsm = BasicSafetyMessage(count, x, y, speed, heading, event)
        assert BasicSafetyMessage.decode(bsm.encode()) == bsm


class TestCanFdProperties:
    @given(st.integers(min_value=0, max_value=64))
    @settings(max_examples=65, deadline=None)
    def test_dlc_is_smallest_valid(self, length):
        from repro.ivn.canfd import FD_PAYLOAD_SIZES
        dlc = fd_dlc_for(length)
        assert dlc >= length
        assert dlc in FD_PAYLOAD_SIZES
        smaller = [s for s in FD_PAYLOAD_SIZES if s < dlc]
        assert all(s < length for s in smaller)

    @given(st.binary(max_size=64),
           st.floats(min_value=1e5, max_value=1e6),
           st.floats(min_value=1e6, max_value=8e6))
    @settings(max_examples=30, deadline=None)
    def test_faster_data_phase_never_slower(self, data, nominal, fast):
        frame = CanFdFrame(0x100, data)
        assert frame.wire_time(nominal, fast) <= frame.wire_time(nominal, 1e6) \
            or fast >= 1e6


class TestPolicyProperties:
    @st.composite
    def rules(draw):
        names = ["a", "b", "c", "*"]
        return PolicyRule(
            frozenset(draw(st.sets(st.sampled_from(names), min_size=1, max_size=2))),
            frozenset(draw(st.sets(st.sampled_from(names), min_size=1, max_size=2))),
            frozenset(draw(st.sets(st.sampled_from(["r", "w", "*"]), min_size=1))),
            draw(st.sampled_from(list(PolicyDecision))),
        )

    @given(st.lists(rules(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_serialization_roundtrip_preserves_decisions(self, rule_list):
        policy = SecurityPolicy(version=1, rules=rule_list)
        restored = SecurityPolicy.deserialize(policy.serialize())
        engine_a = PolicyEngine(policy)
        engine_b = PolicyEngine(restored)
        for subject in ("a", "b", "z"):
            for obj in ("a", "c", "z"):
                for action in ("r", "w"):
                    assert engine_a.check(subject, obj, action) == \
                        engine_b.check(subject, obj, action)

    @given(st.lists(rules(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_default_deny_is_fail_closed(self, rule_list):
        """With no wildcard rules, an unknown subject is always denied."""
        concrete = [r for r in rule_list if "*" not in r.subjects]
        engine = PolicyEngine(SecurityPolicy(version=1, rules=concrete))
        decision = engine.check("never-mentioned", "nor-this", "x")
        assert decision is PolicyDecision.DENY
