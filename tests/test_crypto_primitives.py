"""Tests for the crypto substrate against published vectors."""

import hashlib
import hmac as std_hmac
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    AES,
    MaskedAES,
    aes_cmac,
    cbc_decrypt,
    cbc_encrypt,
    cmac_verify,
    constant_time_eq,
    ctr_xcrypt,
    hkdf,
    hmac_sha256,
    she_kdf,
    sha256,
    xor_bytes,
    SHE_KEY_UPDATE_ENC_C,
    SHE_KEY_UPDATE_MAC_C,
)
from repro.crypto.util import pkcs7_pad, pkcs7_unpad


class TestAesVectors:
    """FIPS-197 Appendix C known-answer tests."""

    PT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = AES(key).encrypt_block(self.PT)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        ct = AES(key).encrypt_block(self.PT)
        assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        ct = AES(key).encrypt_block(self.PT)
        assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_decrypt_inverts_encrypt_all_sizes(self):
        for klen in (16, 24, 32):
            key = bytes(range(klen))
            aes = AES(key)
            assert aes.decrypt_block(aes.encrypt_block(self.PT)) == self.PT

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"tiny")
        with pytest.raises(ValueError):
            AES(bytes(16)).decrypt_block(b"tiny")

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_leak_callback_fires_16_times(self):
        leaks = []
        AES(bytes(16)).encrypt_block(bytes(16), leak=lambda r, i, v: leaks.append((r, i, v)))
        assert len(leaks) == 16
        assert all(r == 1 for r, _, _ in leaks)

    def test_leak_value_matches_sbox_model(self):
        """The round-1 leak must equal SBOX[pt ^ key] (the CPA hypothesis)."""
        from repro.crypto.aes import SBOX

        key = bytes(range(16))
        pt = bytes(range(100, 116))
        leaks = {}
        AES(key).encrypt_block(pt, leak=lambda r, i, v: leaks.setdefault(i, v))
        for i in range(16):
            assert leaks[i] == SBOX[pt[i] ^ key[i]]


class TestMaskedAes:
    def test_ciphertext_identical_to_plain(self):
        key = bytes(range(16))
        pt = bytes(range(16, 32))
        plain = AES(key).encrypt_block(pt)
        masked = MaskedAES(key, rng=random.Random(1)).encrypt_block(pt)
        assert plain == masked

    def test_masked_256(self):
        key = bytes(range(32))
        pt = bytes(16)
        assert MaskedAES(key, rng=random.Random(2)).encrypt_block(pt) == AES(key).encrypt_block(pt)

    def test_leaks_are_randomized(self):
        """Same (pt, key) must leak different intermediates across runs."""
        key = bytes(16)
        pt = bytes(16)
        aes = MaskedAES(key, rng=random.Random(3))
        runs = []
        for _ in range(4):
            leaks = []
            aes.encrypt_block(pt, leak=lambda r, i, v: leaks.append(v))
            runs.append(tuple(leaks[:16]))
        assert len(set(runs)) > 1

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_property_masked_equals_plain(self, pt):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        assert MaskedAES(key, rng=random.Random(0)).encrypt_block(pt) == AES(key).encrypt_block(pt)


class TestSha256:
    def test_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(msg).hex() == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    @given(st.binary(max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()


class TestHmac:
    def test_rfc4231_case1(self):
        key = b"\x0b" * 20
        assert hmac_sha256(key, b"Hi There").hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_long_key_is_hashed(self):
        key = b"k" * 200
        assert hmac_sha256(key, b"m") == std_hmac.new(key, b"m", hashlib.sha256).digest()

    @given(st.binary(max_size=100), st.binary(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_stdlib(self, key, msg):
        assert hmac_sha256(key, msg) == std_hmac.new(key, msg, hashlib.sha256).digest()


class TestCmac:
    """NIST SP 800-38B / RFC 4493 vectors."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    def test_empty_message(self):
        assert aes_cmac(self.KEY, b"").hex() == "bb1d6929e95937287fa37d129b756746"

    def test_one_block(self):
        msg = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert aes_cmac(self.KEY, msg).hex() == "070a16b46b4d4144f79bdd9dd04a287c"

    def test_forty_bytes(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        )
        assert aes_cmac(self.KEY, msg).hex() == "dfa66747de9ae63030ca32611497c827"

    def test_four_blocks(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710"
        )
        assert aes_cmac(self.KEY, msg).hex() == "51f0bebf7e3b9d92fc49741779363cfe"

    def test_truncated_tag_is_prefix(self):
        msg = b"hello CAN frame"
        full = aes_cmac(self.KEY, msg)
        assert aes_cmac(self.KEY, msg, tag_len=4) == full[:4]

    def test_verify_accepts_and_rejects(self):
        tag = aes_cmac(self.KEY, b"msg", tag_len=8)
        assert cmac_verify(self.KEY, b"msg", tag)
        assert not cmac_verify(self.KEY, b"msG", tag)
        assert not cmac_verify(self.KEY, b"msg", tag[:-1] + bytes([tag[-1] ^ 1]))

    def test_invalid_tag_len(self):
        with pytest.raises(ValueError):
            aes_cmac(self.KEY, b"", tag_len=0)
        with pytest.raises(ValueError):
            aes_cmac(self.KEY, b"", tag_len=17)

    @given(st.binary(max_size=100), st.binary(max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_property_distinct_messages_distinct_tags(self, m1, m2):
        if m1 == m2:
            return
        assert aes_cmac(self.KEY, m1) != aes_cmac(self.KEY, m2)


class TestModes:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")

    def test_cbc_first_block_vector(self):
        """SP 800-38A F.2.1 first block (padding only affects later blocks)."""
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ct = cbc_encrypt(self.KEY, self.IV, pt)
        assert ct[:16].hex() == "7649abac8119b246cee98e9b12e9197d"

    def test_cbc_roundtrip(self):
        pt = b"the quick brown fox" * 3
        assert cbc_decrypt(self.KEY, self.IV, cbc_encrypt(self.KEY, self.IV, pt)) == pt

    def test_cbc_empty_plaintext(self):
        assert cbc_decrypt(self.KEY, self.IV, cbc_encrypt(self.KEY, self.IV, b"")) == b""

    def test_cbc_rejects_bad_iv(self):
        with pytest.raises(ValueError):
            cbc_encrypt(self.KEY, b"short", b"data")

    def test_cbc_rejects_truncated_ciphertext(self):
        with pytest.raises(ValueError):
            cbc_decrypt(self.KEY, self.IV, b"123")

    def test_ctr_vector(self):
        """SP 800-38A F.5.1 first block."""
        nonce = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert ctr_xcrypt(self.KEY, nonce, pt).hex() == "874d6191b620e3261bef6864990db6ce"

    def test_ctr_is_involution(self):
        nonce = b"12-byte-nonc"
        data = b"arbitrary length payload!"
        assert ctr_xcrypt(self.KEY, nonce, ctr_xcrypt(self.KEY, nonce, data)) == data

    @given(st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_property_cbc_roundtrip(self, pt):
        assert cbc_decrypt(self.KEY, self.IV, cbc_encrypt(self.KEY, self.IV, pt)) == pt


class TestKdf:
    def test_hkdf_rfc5869_case1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, 42, salt=salt, info=info)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_hkdf_no_salt(self):
        assert len(hkdf(b"ikm", 64)) == 64

    def test_hkdf_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf(b"x", 0)

    def test_she_kdf_domain_separation(self):
        key = bytes(range(16))
        assert she_kdf(key, SHE_KEY_UPDATE_ENC_C) != she_kdf(key, SHE_KEY_UPDATE_MAC_C)

    def test_she_kdf_known_vector(self):
        """SHE spec example: K1 derived from the master key 000...f."""
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        k1 = she_kdf(key, SHE_KEY_UPDATE_ENC_C)
        assert k1.hex() == "118a46447a770d87828a69c222e2d17e"

    def test_she_kdf_requires_16_bytes(self):
        with pytest.raises(ValueError):
            she_kdf(b"short", SHE_KEY_UPDATE_ENC_C)


class TestUtil:
    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"a", b"ab")

    def test_constant_time_eq(self):
        assert constant_time_eq(b"abc", b"abc")
        assert not constant_time_eq(b"abc", b"abd")
        assert not constant_time_eq(b"abc", b"ab")

    def test_pkcs7_roundtrip(self):
        for n in range(0, 33):
            data = bytes(n)
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_pkcs7_full_block_when_aligned(self):
        assert len(pkcs7_pad(bytes(16))) == 32

    def test_pkcs7_bad_padding_rejected(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(16))  # last byte 0 invalid
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")
        with pytest.raises(ValueError):
            pkcs7_unpad(b"\x01" * 15)  # not block aligned
