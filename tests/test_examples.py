"""Every example script must run to completion (exit 0) as a subprocess.

Examples are public-facing deliverables; a refactor that silently breaks
one should fail the test suite, not a user's first contact with the repo.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

# Expected key phrases in each example's output (smoke-level correctness,
# not golden files).
EXPECTED_SNIPPETS = {
    "quickstart.py": ["threat coverage : 17/17", "blocked by firewall"],
    "vehicle_under_attack.py": ["bus_off", "SecOC would reject"],
    "ota_fleet_campaign.py": ["honest campaign: 100%", "COMPROMISED"],
    "v2x_intersection.py": ["ice on road", "rejections"],
    "keyless_entry_relay.py": ["UNLOCKED", "distance bound exceeded",
                               "cloned transponder starts the engine: YES"],
    "side_channel_cpa.py": ["FULL KEY RECOVERED", "0/16"],
    "diagnostic_workshop.py": ["RECOVERED", "locked out: True"],
    "extensibility_lifecycle.py": ["SHADOWED", "rollback rejected",
                                   "negotiated protocol version: 3"],
}


def test_every_example_has_expectations():
    names = {path.name for path in EXAMPLES}
    assert names == set(EXPECTED_SNIPPETS), (
        "examples/ and EXPECTED_SNIPPETS out of sync"
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for snippet in EXPECTED_SNIPPETS[script.name]:
        assert snippet in result.stdout, (
            f"{script.name}: expected {snippet!r} in output"
        )
