"""Tests for the command-line experiment runner."""

import subprocess
import sys

import pytest

from repro.experiments.__main__ import main


class TestCliRunner:
    def test_runs_single_experiment(self, capsys):
        assert main(["E9"]) == 0
        out = capsys.readouterr().out
        assert "E9: cumulative cost" in out
        assert "[E9 completed" in out

    def test_case_insensitive(self, capsys):
        assert main(["e11"]) == 0
        assert "E11" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["E13", "--seed", "5"]) == 0
        assert "secure-boot outcomes" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit) as exc:
            main(["E99"])
        assert exc.value.code == 2

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "E9"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "extensible_wins" in result.stdout
