"""Tests for in-vehicle key distribution (diversified SHE provisioning)."""

import pytest

from repro.ecu import She, SheError, SheFlags, SLOT_KEY_1, SLOT_MASTER_ECU_KEY
from repro.ecu.keymaster import (
    DistributionReport,
    KeyBackend,
    KeyDistributionService,
    derive_master_key,
)

FLEET_SECRET = b"fleet-secret-material-0001"


def uid(n: int) -> bytes:
    return bytes([n]) * 15


class TestKeyDerivation:
    def test_deterministic(self):
        assert derive_master_key(FLEET_SECRET, uid(1)) == \
            derive_master_key(FLEET_SECRET, uid(1))

    def test_diversified_per_device(self):
        assert derive_master_key(FLEET_SECRET, uid(1)) != \
            derive_master_key(FLEET_SECRET, uid(2))

    def test_secret_matters(self):
        assert derive_master_key(FLEET_SECRET, uid(1)) != \
            derive_master_key(b"other-secret-material-123", uid(1))

    def test_uid_validation(self):
        with pytest.raises(ValueError):
            derive_master_key(FLEET_SECRET, b"short")


class TestKeyBackend:
    def test_factory_provisioning(self):
        backend = KeyBackend(FLEET_SECRET)
        she = She(uid=uid(3))
        backend.provision_factory(she)
        assert she.has_key(SLOT_MASTER_ECU_KEY)

    def test_update_installs_on_target_device(self):
        backend = KeyBackend(FLEET_SECRET)
        she = She(uid=uid(3))
        backend.provision_factory(she)
        update = backend.build_update(she.uid, SLOT_KEY_1, b"N" * 16)
        she.load_key(update)
        assert she.has_key(SLOT_KEY_1)

    def test_update_for_one_uid_useless_on_another(self):
        """The class-break fix: bundles are device-bound."""
        backend = KeyBackend(FLEET_SECRET)
        victim, other = She(uid=uid(1)), She(uid=uid(2))
        backend.provision_factory(victim)
        backend.provision_factory(other)
        update = backend.build_update(victim.uid, SLOT_KEY_1, b"N" * 16)
        with pytest.raises(SheError, match="UID"):
            other.load_key(update)

    def test_counters_monotonic_per_device_and_slot(self):
        backend = KeyBackend(FLEET_SECRET)
        she = She(uid=uid(4))
        backend.provision_factory(she)
        she.load_key(backend.build_update(she.uid, SLOT_KEY_1, b"A" * 16))
        she.load_key(backend.build_update(she.uid, SLOT_KEY_1, b"B" * 16))
        assert she.slot_counter(SLOT_KEY_1) == 2

    def test_replayed_bundle_rejected(self):
        backend = KeyBackend(FLEET_SECRET)
        she = She(uid=uid(5))
        backend.provision_factory(she)
        update = backend.build_update(she.uid, SLOT_KEY_1, b"A" * 16)
        she.load_key(update)
        with pytest.raises(SheError, match="rollback"):
            she.load_key(update)

    def test_secret_length_validated(self):
        with pytest.raises(ValueError):
            KeyBackend(b"short")


class TestDistributionService:
    def _vehicle(self, n_ecus=3):
        backend = KeyBackend(FLEET_SECRET)
        shes = {}
        for i in range(n_ecus):
            she = She(uid=uid(10 + i))
            backend.provision_factory(she)
            shes[f"ecu-{i}"] = she
        return backend, shes, KeyDistributionService(shes)

    def test_full_rollout(self):
        backend, shes, service = self._vehicle()
        keys = {name: bytes([i]) * 16 for i, name in enumerate(shes)}
        report = service.distribute(backend, SLOT_KEY_1, keys,
                                    flags=SheFlags.KEY_USAGE_MAC)
        assert report.complete
        assert sorted(report.installed) == sorted(shes)
        for she in shes.values():
            she.generate_mac(SLOT_KEY_1, b"works")

    def test_unknown_ecu_reported(self):
        backend, _, service = self._vehicle()
        report = service.distribute(backend, SLOT_KEY_1, {"ghost": b"K" * 16})
        assert not report.complete
        assert report.failed == [("ghost", "unknown ECU")]

    def test_locked_she_failure_surfaces(self):
        backend, shes, service = self._vehicle(n_ecus=1)
        next(iter(shes.values())).lock()
        report = service.distribute(backend, SLOT_KEY_1, {"ecu-0": b"K" * 16})
        assert not report.complete
        assert "locked" in report.failed[0][1]

    def test_per_ecu_keys_are_distinct_capability(self):
        """After diversified rollout, one ECU's key cannot MAC for another."""
        backend, shes, service = self._vehicle(n_ecus=2)
        keys = {"ecu-0": b"\x01" * 16, "ecu-1": b"\x02" * 16}
        service.distribute(backend, SLOT_KEY_1, keys, flags=SheFlags.KEY_USAGE_MAC)
        tag0 = shes["ecu-0"].generate_mac(SLOT_KEY_1, b"m")
        assert not shes["ecu-1"].verify_mac(SLOT_KEY_1, b"m", tag0)
