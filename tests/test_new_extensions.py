"""Tests for CAN FD, the payload-range IDS, and V2X misbehavior detection."""

import pytest

from repro.ids import PayloadRangeIds
from repro.ivn import CanFdBus, CanFdFrame, CanFrame, fd_dlc_for
from repro.sim import Simulator
from repro.v2x import BasicSafetyMessage
from repro.v2x.misbehavior import (
    BsmPlausibilityChecker,
    MisbehaviorAuthority,
    MisbehaviorReport,
)
from repro.v2x.pki import PkiHierarchy


class TestCanFdFrame:
    def test_dlc_padding_table(self):
        assert fd_dlc_for(0) == 0
        assert fd_dlc_for(8) == 8
        assert fd_dlc_for(9) == 12
        assert fd_dlc_for(13) == 16
        assert fd_dlc_for(33) == 48
        assert fd_dlc_for(64) == 64

    def test_dlc_overflow(self):
        with pytest.raises(ValueError):
            fd_dlc_for(65)

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            CanFdFrame(0x800)
        with pytest.raises(ValueError):
            CanFdFrame(0x100, bytes(65))

    def test_wire_time_dual_rate(self):
        frame = CanFdFrame(0x100, bytes(64))
        slow = frame.wire_time(500_000, 500_000)
        fast = frame.wire_time(500_000, 4_000_000)
        assert fast < slow
        # The arbitration portion is rate-invariant, so speedup < 8x.
        assert slow / fast < 8.0

    def test_wire_time_validation(self):
        with pytest.raises(ValueError):
            CanFdFrame(0x1).wire_time(0, 1)

    def test_stamped_preserves_type(self):
        stamped = CanFdFrame(0x100, bytes(16)).stamped("ecu", 1.5)
        assert isinstance(stamped, CanFdFrame)
        assert stamped.sender == "ecu" and stamped.timestamp == 1.5


class TestCanFdBus:
    def test_large_payload_single_frame(self):
        sim = Simulator()
        bus = CanFdBus(sim)
        tx, rx = bus.attach("tx"), bus.attach("rx")
        got = []
        rx.on_receive(got.append)
        tx.send(CanFdFrame(0x100, bytes(48)))
        sim.run()
        assert len(got) == 1 and len(got[0].data) == 48

    def test_mixed_classic_and_fd_traffic(self):
        sim = Simulator()
        bus = CanFdBus(sim)
        a, b = bus.attach("a"), bus.attach("b")
        got = []
        b.on_receive(got.append)
        a.send(CanFrame(0x200, bytes(8)))
        a.send(CanFdFrame(0x100, bytes(32)))
        sim.run()
        # Arbitration still by id: the FD frame (0x100) wins.
        assert [f.can_id for f in got] == [0x100, 0x200]

    def test_fd_moves_data_faster_than_classic(self):
        """64 authenticated bytes: one FD frame beats 9 classic frames."""
        fd_time = CanFdFrame(0x100, bytes(64)).wire_time(500_000, 2_000_000)
        classic_time = 9 * CanFrame(0x100, bytes(8)).wire_time(500_000)
        assert fd_time < classic_time / 2

    def test_full_mac_fits_one_fd_frame(self):
        """E3's dilemma dissolves: payload + 16B CMAC + counter in one frame."""
        payload = bytes(8) + bytes(16) + bytes([1])  # data + tag + counter
        frame = CanFdFrame(0x100, payload)
        assert frame.dlc == 32  # padded, still one frame


class TestPayloadRangeIds:
    def _trained(self):
        ids = PayloadRangeIds(margin=4, min_training_frames=5)
        frames = [
            (t * 0.01, CanFrame(0x100, bytes([100 + (t % 10), 50])))
            for t in range(50)
        ]
        ids.train(frames)
        return ids

    def test_learns_envelope(self):
        ids = self._trained()
        envelope = ids.learned_envelope(0x100)
        assert envelope[0] == (100, 109)
        assert envelope[1] == (50, 50)

    def test_in_range_quiet(self):
        ids = self._trained()
        assert ids.observe(1.0, CanFrame(0x100, bytes([105, 50]))) is None

    def test_margin_absorbs_drift(self):
        ids = self._trained()
        assert ids.observe(1.0, CanFrame(0x100, bytes([113, 50]))) is None  # 109+4

    def test_out_of_range_alerts(self):
        ids = self._trained()
        alert = ids.observe(1.0, CanFrame(0x100, bytes([200, 50])))
        assert alert is not None and "byte 0" in alert.reason

    def test_second_byte_checked(self):
        ids = self._trained()
        alert = ids.observe(1.0, CanFrame(0x100, bytes([105, 99])))
        assert alert is not None and "byte 1" in alert.reason

    def test_dlc_change_alerts(self):
        ids = self._trained()
        alert = ids.observe(1.0, CanFrame(0x100, bytes(5)))
        assert alert is not None and "dlc" in alert.reason

    def test_unknown_id_ignored(self):
        ids = self._trained()
        assert ids.observe(1.0, CanFrame(0x7FF, bytes([255] * 8))) is None

    def test_undertrained_id_dropped(self):
        ids = PayloadRangeIds(min_training_frames=10)
        ids.train([(0.0, CanFrame(0x200, b"\x01"))] * 3)
        assert ids.learned_envelope(0x200) is None

    def test_plausible_forgery_passes(self):
        """Documented blind spot: in-envelope forgeries are invisible."""
        ids = self._trained()
        assert ids.observe(1.0, CanFrame(0x100, bytes([104, 50]))) is None

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            PayloadRangeIds(margin=-1)


def bsm(x, y, speed=20.0, count=0):
    return BasicSafetyMessage(count, x, y, speed, 0.0)


class TestBsmPlausibility:
    def test_plausible_track_quiet(self):
        checker = BsmPlausibilityChecker()
        assert checker.check(0.0, "p1", bsm(100, 0), (0, 0)) is None
        assert checker.check(1.0, "p1", bsm(120, 0), (0, 0)) is None
        assert checker.flagged == 0

    def test_beyond_radio_range_flagged(self):
        checker = BsmPlausibilityChecker(max_range=300)
        reason = checker.check(0.0, "p1", bsm(5000, 0), (0, 0))
        assert reason and "radio range" in reason

    def test_impossible_speed_flagged(self):
        checker = BsmPlausibilityChecker(max_speed=70)
        reason = checker.check(0.0, "p1", bsm(0, 0, speed=150), (0, 0))
        assert reason and "ceiling" in reason

    def test_teleport_flagged(self):
        checker = BsmPlausibilityChecker(max_speed=70)
        checker.check(0.0, "p1", bsm(0, 0), (0, 0))
        reason = checker.check(1.0, "p1", bsm(500, 0), (0, 0))
        assert reason and "teleport" in reason

    def test_speed_inconsistency_flagged(self):
        checker = BsmPlausibilityChecker(speed_tolerance=10)
        checker.check(0.0, "p1", bsm(0, 0, speed=0.0), (0, 0))
        # Claims stationary but moved 40 m in 1 s.
        reason = checker.check(1.0, "p1", bsm(40, 0, speed=0.0), (0, 0))
        assert reason and "inconsistent" in reason

    def test_independent_tracks_per_subject(self):
        checker = BsmPlausibilityChecker()
        checker.check(0.0, "p1", bsm(0, 0), (0, 0))
        # A different pseudonym far away is a new track, not a teleport.
        assert checker.check(0.1, "p2", bsm(400, 0), (0, 0)) is None


class TestMisbehaviorAuthority:
    def _setup(self, threshold=3):
        pki = PkiHierarchy(seed=b"mba")
        cert, _ = pki.enroll_vehicle("liar")
        batch = pki.issue_pseudonyms("liar", cert, count=2, validity_start=0.0)
        accused_cert = batch.entries[0][0]
        authority = MisbehaviorAuthority(pki, report_threshold=threshold)
        return pki, authority, accused_cert

    def _report(self, reporter, cert, t=0.0):
        return MisbehaviorReport(t, reporter, cert.subject, cert.digest,
                                 "teleport")

    def test_single_report_insufficient(self):
        _, authority, cert = self._setup(threshold=3)
        assert authority.submit(self._report("honest-1", cert)) is None
        assert authority.accusation_count(cert.subject) == 1

    def test_duplicate_reporter_not_counted_twice(self):
        _, authority, cert = self._setup(threshold=2)
        authority.submit(self._report("honest-1", cert))
        assert authority.submit(self._report("honest-1", cert)) is None

    def test_threshold_triggers_revocation(self):
        pki, authority, cert = self._setup(threshold=3)
        authority.submit(self._report("honest-1", cert))
        authority.submit(self._report("honest-2", cert))
        revoked = authority.submit(self._report("honest-3", cert))
        assert revoked == "liar"
        assert "liar" in authority.revoked_vehicles

    def test_revocation_covers_all_pseudonyms(self):
        pki, authority, cert = self._setup(threshold=1)
        authority.submit(self._report("honest-1", cert))
        from repro.v2x.certificates import CertificateError, verify_chain
        # Both of the liar's pseudonyms are now on the CRL.
        for digest, vid in pki.linkage_map.items():
            if vid == "liar":
                assert digest in pki.pseudonym_ca.crl._revoked

    def test_no_double_revocation(self):
        pki, authority, cert = self._setup(threshold=1)
        assert authority.submit(self._report("honest-1", cert)) == "liar"
        assert authority.submit(self._report("honest-2", cert)) is None

    def test_threshold_validation(self):
        pki = PkiHierarchy(seed=b"x")
        with pytest.raises(ValueError):
            MisbehaviorAuthority(pki, report_threshold=0)
