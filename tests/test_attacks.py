"""Tests for the attack library."""

import random

import pytest

from repro.attacks import (
    AcousticMemsAttack,
    BusFloodAttack,
    BusOffAttack,
    CpaAttack,
    FuzzAttack,
    GpsSpoofingAttack,
    InjectionAttack,
    LidarPhantomAttack,
    MasqueradeAttack,
    ReplayAttack,
    SpoofAttack,
    TpmsSpoofingAttack,
    VoltageGlitchAttack,
)
from repro.crypto.aes import AES, MaskedAES
from repro.ecu import TamperDetector
from repro.ivn import CanBus, CanFrame, PeriodicSender
from repro.physical import (
    Accelerometer,
    GpsSensor,
    LidarSensor,
    PowerTraceModel,
    TpmsSensor,
    Vehicle,
    VehicleState,
)
from repro.sim import Simulator


class TestInjection:
    def test_injects_at_rate(self):
        sim = Simulator()
        bus = CanBus(sim)
        bus.attach("victim")
        attack = SpoofAttack(sim, bus, 0x0C9, b"\xff" * 8, rate_hz=100)
        attack.start()
        sim.run_until(0.1)
        assert 9 <= attack.injected <= 12

    def test_stop_halts(self):
        sim = Simulator()
        bus = CanBus(sim)
        attack = SpoofAttack(sim, bus, 0x100, b"", rate_hz=100)
        attack.start()
        sim.run_until(0.05)
        attack.stop()
        count = attack.injected
        sim.run_until(0.2)
        assert attack.injected == count

    def test_ground_truth_window(self):
        sim = Simulator()
        bus = CanBus(sim)
        attack = SpoofAttack(sim, bus, 0x100, b"", rate_hz=10)
        sim.run_until(1.0)
        attack.start()
        sim.run_until(2.0)
        attack.stop()
        assert not attack.was_active_at(0.5)
        assert attack.was_active_at(1.5)
        assert not attack.was_active_at(2.5)

    def test_rate_validation(self):
        sim = Simulator()
        bus = CanBus(sim)
        with pytest.raises(ValueError):
            InjectionAttack(sim, bus, lambda s: CanFrame(0), rate_hz=0)

    def test_spoofed_frames_reach_receivers(self):
        sim = Simulator()
        bus = CanBus(sim)
        victim = bus.attach("dashboard")
        got = []
        victim.on_receive(got.append)
        attack = SpoofAttack(sim, bus, 0x0C9, b"\x88" * 8, rate_hz=50)
        attack.start()
        sim.run_until(0.1)
        assert got and all(f.can_id == 0x0C9 and f.data == b"\x88" * 8 for f in got)


class TestBusFlood:
    def test_starves_legitimate_traffic(self):
        sim = Simulator()
        bus = CanBus(sim)
        legit = bus.attach("legit")
        PeriodicSender(sim, legit, 0x200, period=0.01, start_offset=0.0)
        flood = BusFloodAttack(sim, bus)
        flood.start()
        sim.run_until(0.5)
        # Legit node queued ~50 frames but sent almost none.
        assert legit.frames_sent <= 2
        assert len(legit.tx_queue) > 30

    def test_bus_saturated(self):
        sim = Simulator()
        bus = CanBus(sim)
        flood = BusFloodAttack(sim, bus)
        flood.start()
        sim.run_until(0.2)
        assert bus.utilization() > 0.95

    def test_headroom_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BusFloodAttack(sim, CanBus(sim), headroom=0)


class TestBusOff:
    def test_silences_victim(self):
        sim = Simulator()
        bus = CanBus(sim)
        victim = bus.attach("brake")
        bus.attach("other")
        PeriodicSender(sim, victim, 0x0D1, period=0.01, start_offset=0.0)
        attack = BusOffAttack(sim, bus, "brake")
        attack.start()
        sim.run_until(2.0)
        assert attack.succeeded
        assert attack.errors_induced >= attack.frames_to_bus_off()

    def test_other_nodes_unaffected(self):
        sim = Simulator()
        bus = CanBus(sim)
        victim = bus.attach("brake")
        other = bus.attach("engine")
        PeriodicSender(sim, victim, 0x0D1, period=0.01, start_offset=0.0)
        PeriodicSender(sim, other, 0x0C9, period=0.01, start_offset=0.0)
        attack = BusOffAttack(sim, bus, "brake")
        attack.start()
        sim.run_until(2.0)
        assert attack.succeeded
        assert not other.bus_off
        assert other.frames_sent > 100

    def test_unknown_victim_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BusOffAttack(sim, CanBus(sim), "ghost")

    def test_stop_restores_hook(self):
        sim = Simulator()
        bus = CanBus(sim)
        bus.attach("v")
        attack = BusOffAttack(sim, bus, "v")
        attack.start()
        attack.stop()
        assert bus.corruption_hook is None


class TestReplay:
    def test_records_then_replays(self):
        sim = Simulator()
        bus = CanBus(sim)
        legit = bus.attach("legit")
        attack = ReplayAttack(sim, bus, target_ids={0x100})
        attack.start_recording()
        legit.send(CanFrame(0x100, b"\x01"))
        legit.send(CanFrame(0x200, b"\x02"))  # filtered out
        sim.run()
        attack.stop_recording()
        assert len(attack.recorded) == 1
        scheduled = attack.replay()
        assert scheduled == 1
        sim.run()
        assert attack.replayed == 1
        assert bus.frames_on_wire == 3  # 2 legit + 1 replayed

    def test_replay_preserves_relative_timing(self):
        sim = Simulator()
        bus = CanBus(sim)
        legit = bus.attach("legit")
        attack = ReplayAttack(sim, bus)
        attack.start_recording()
        legit.send(CanFrame(0x100))
        sim.run_until(0.5)
        legit.send(CanFrame(0x101))
        sim.run()
        attack.stop_recording()
        start = sim.now
        attack.replay()
        times = []
        bus.tap(lambda f: times.append(sim.now))
        sim.run()
        assert times[-1] - times[0] == pytest.approx(0.5, abs=0.01)

    def test_does_not_record_own_replays(self):
        sim = Simulator()
        bus = CanBus(sim)
        legit = bus.attach("legit")
        attack = ReplayAttack(sim, bus)
        attack.start_recording()
        legit.send(CanFrame(0x100))
        sim.run()
        attack.replay()
        sim.run()
        assert len(attack.recorded) == 1

    def test_empty_replay(self):
        sim = Simulator()
        attack = ReplayAttack(sim, CanBus(sim))
        assert attack.replay() == 0

    def test_speedup_validation(self):
        sim = Simulator()
        bus = CanBus(sim)
        legit = bus.attach("l")
        attack = ReplayAttack(sim, bus)
        attack.start_recording()
        legit.send(CanFrame(0x1))
        sim.run()
        with pytest.raises(ValueError):
            attack.replay(speedup=0)


class TestFuzz:
    def test_random_ids_within_range(self):
        sim = Simulator()
        bus = CanBus(sim)
        seen = []
        bus.tap(lambda f: seen.append(f.can_id))
        attack = FuzzAttack(sim, bus, rate_hz=500, rng=random.Random(0),
                            id_range=(0x400, 0x4FF))
        attack.start()
        sim.run_until(0.1)
        assert seen and all(0x400 <= i <= 0x4FF for i in seen)
        assert len(set(seen)) > 5

    def test_id_range_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FuzzAttack(sim, CanBus(sim), 10, id_range=(0x500, 0x100))


class TestMasquerade:
    def test_full_attack_chain(self):
        sim = Simulator()
        bus = CanBus(sim)
        victim = bus.attach("brake")
        monitor = bus.attach("monitor")
        PeriodicSender(sim, victim, 0x0D1, period=0.01, start_offset=0.0)
        received = []
        monitor.on_receive(lambda f: received.append((sim.now, f)))
        attack = MasqueradeAttack(
            sim, bus, victim="brake", target_id=0x0D1, period=0.01,
            payload_fn=lambda seq: b"\xde\xad" + bytes(6),
        )
        attack.start()
        sim.run_until(5.0)
        assert attack.busoff.succeeded
        assert attack.impersonating
        assert attack.sent > 50
        # After takeover the 0x0D1 frames carry the attacker payload.
        late = [f for t, f in received if t > 4.0 and f.can_id == 0x0D1]
        assert late and all(f.data.startswith(b"\xde\xad") for f in late)

    def test_masquerade_timing_mimics_victim(self):
        """Inter-arrival of the forged id stays at the victim's period."""
        sim = Simulator()
        bus = CanBus(sim)
        victim = bus.attach("brake")
        bus.attach("monitor")
        PeriodicSender(sim, victim, 0x0D1, period=0.01, start_offset=0.0)
        times = []
        bus.tap(lambda f: times.append(sim.now) if f.can_id == 0x0D1 else None)
        attack = MasqueradeAttack(
            sim, bus, "brake", 0x0D1, 0.01, lambda s: bytes(8),
        )
        attack.start()
        sim.run_until(5.0)
        late = [t for t in times if t > 4.0]
        gaps = [b - a for a, b in zip(late, late[1:])]
        assert gaps and all(abs(g - 0.01) < 0.002 for g in gaps)

    def test_period_validation(self):
        sim = Simulator()
        bus = CanBus(sim)
        bus.attach("v")
        with pytest.raises(ValueError):
            MasqueradeAttack(sim, bus, "v", 0x1, 0, lambda s: b"")


class TestCpa:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    def test_recovers_key_from_clean_traces(self):
        model = PowerTraceModel(AES(self.KEY), noise_std=0.1, rng=random.Random(42))
        result = CpaAttack(model).run(150)
        assert result.success(self.KEY)

    def test_noise_requires_more_traces(self):
        noisy = PowerTraceModel(AES(self.KEY), noise_std=3.0, rng=random.Random(42))
        few = CpaAttack(noisy).run(30)
        assert few.bytes_correct(self.KEY) < 16
        many = CpaAttack(
            PowerTraceModel(AES(self.KEY), noise_std=3.0, rng=random.Random(42))
        ).run(1500)
        assert many.bytes_correct(self.KEY) >= 14

    def test_masking_defeats_cpa(self):
        engine = MaskedAES(self.KEY, rng=random.Random(7))
        model = PowerTraceModel(engine, noise_std=0.1, rng=random.Random(42))
        result = CpaAttack(model).run(800)
        assert result.bytes_correct(self.KEY) <= 3  # chance level

    def test_traces_to_success_grid(self):
        model = PowerTraceModel(AES(self.KEY), noise_std=0.5, rng=random.Random(1))
        n = CpaAttack(model).traces_to_success(self.KEY, max_traces=600, step=50)
        assert n is not None and n <= 600

    def test_minimum_traces_enforced(self):
        with pytest.raises(ValueError):
            CpaAttack.analyze([bytes(16)] * 2, [[0.0] * 16] * 2)


class TestSensorAttacks:
    def test_gps_jump(self):
        v = Vehicle()
        gps = GpsSensor(v, noise_std=0.0, rng=random.Random(0))
        attack = GpsSpoofingAttack(gps, v)
        attack.start_jump((1000.0, 0.0))
        assert gps.read() == (1000.0, 0.0)
        attack.stop()
        assert not gps.spoofed

    def test_gps_drift_accumulates(self):
        v = Vehicle(VehicleState(speed=10.0))
        gps = GpsSensor(v, noise_std=0.0, rng=random.Random(0))
        attack = GpsSpoofingAttack(gps, v)
        attack.start_drift(rate_m_s=2.0, bearing=0.0)
        for _ in range(10):
            v.step(0.1)
            attack.step_drift(0.1)
        assert attack.induced_error() == pytest.approx(2.0)
        fix = gps.read()
        assert fix[0] - v.state.x == pytest.approx(2.0, abs=1e-6)

    def test_tpms_fake_blowout_and_stop(self):
        tpms = TpmsSensor(rng=random.Random(0))
        attack = TpmsSpoofingAttack(tpms)
        sid = tpms.sensor_ids[1]
        attack.fake_blowout(sid)
        assert tpms.read(sid) == 0.0
        attack.stop()
        assert tpms.read(sid) > 100

    def test_tpms_mask_real_blowout(self):
        tpms = TpmsSensor(rng=random.Random(0))
        sid = tpms.sensor_ids[0]
        tpms.true_pressures[sid] = 60.0  # real deflation
        attack = TpmsSpoofingAttack(tpms)
        attack.mask_real_pressure(sid)
        assert tpms.read(sid) == pytest.approx(TpmsSensor.NOMINAL_KPA)

    def test_lidar_phantom_count(self):
        lidar = LidarSensor(Vehicle(), rng=random.Random(0))
        attack = LidarPhantomAttack(lidar)
        attack.inject(30.0, 0.0, count=3)
        assert len(lidar.scan()) == 3
        attack.stop()
        assert lidar.scan() == []

    def test_acoustic_on_resonance_effective(self):
        acc = Accelerometer(Vehicle(), rng=random.Random(0))
        attack = AcousticMemsAttack(acc)
        attack.start(amplitude=3.0)
        assert attack.effectiveness() == pytest.approx(1.0)
        attack.stop()
        assert attack.effectiveness() == 0.0

    def test_acoustic_off_resonance_ineffective(self):
        acc = Accelerometer(Vehicle(), rng=random.Random(0))
        attack = AcousticMemsAttack(acc)
        attack.start(amplitude=3.0, freq_hz=acc.resonant_hz * 3)
        assert attack.effectiveness() < 0.01


class TestGlitch:
    def test_perfect_detector_blocks_campaign(self):
        sim = Simulator()
        det = TamperDetector(sim, detection_probability=1.0)
        attack = VoltageGlitchAttack(det, rng=random.Random(0))
        result = attack.campaign(max_attempts=100)
        assert result.detected_at_attempt == 1
        assert result.faults_landed == 0

    def test_weak_detector_eventually_faulted(self):
        sim = Simulator()
        det = TamperDetector(
            sim, detection_probability=0.1, rng=random.Random(3),
        )
        attack = VoltageGlitchAttack(
            det, fault_probability=0.2, rng=random.Random(4),
        )
        result = attack.campaign(max_attempts=500)
        assert result.faults_landed == 1 or result.detected_at_attempt is not None

    def test_campaign_stops_on_detection(self):
        sim = Simulator()
        det = TamperDetector(sim, detection_probability=1.0)
        attack = VoltageGlitchAttack(det, rng=random.Random(0))
        result = attack.campaign(max_attempts=100, stop_on_detection=True)
        assert result.attempts == 1
