"""Tests for the policy engine, extensibility manager, trade-off controller."""

import pytest

from repro.core import (
    ConfigUpdate,
    ExtensibilityManager,
    Feature,
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    SecurityPolicy,
    UpdateRejected,
)
from repro.core.extensibility import GenerationCostModel
from repro.core.tradeoff import (
    ContextEstimate,
    DEFAULT_MODE_TABLE,
    DrivingContext,
    OperatingPoint,
    TradeoffController,
    classify_context,
)

KEY = b"P" * 16


def rule(subjects, objects, actions, decision, contexts=(), name=""):
    return PolicyRule(
        frozenset(subjects), frozenset(objects), frozenset(actions),
        decision, frozenset(contexts), name,
    )


class TestPolicyEngine:
    def _engine(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"diag-tool"}, {"engine"}, {"read"}, PolicyDecision.ALLOW,
                 name="diag-read"),
            rule({"diag-tool"}, {"engine"}, {"write"}, PolicyDecision.ALLOW,
                 contexts={"workshop"}, name="diag-write-workshop"),
            rule({"*"}, {"she-keys"}, {"read"}, PolicyDecision.DENY,
                 name="keys-never-readable"),
        ])
        return PolicyEngine(policy, update_key=KEY)

    def test_allow_rule(self):
        assert self._engine().allows("diag-tool", "engine", "read")

    def test_default_deny(self):
        assert not self._engine().allows("infotainment", "engine", "write")

    def test_context_gating(self):
        engine = self._engine()
        assert not engine.allows("diag-tool", "engine", "write", context="normal")
        assert engine.allows("diag-tool", "engine", "write", context="workshop")

    def test_wildcard_subject(self):
        assert not self._engine().allows("anything", "she-keys", "read")

    def test_first_match_wins(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"a"}, {"x"}, {"op"}, PolicyDecision.DENY),
            rule({"*"}, {"x"}, {"op"}, PolicyDecision.ALLOW),
        ])
        engine = PolicyEngine(policy)
        assert not engine.allows("a", "x", "op")
        assert engine.allows("b", "x", "op")

    def test_denial_counter(self):
        engine = self._engine()
        engine.allows("x", "y", "z")
        assert engine.denials == 1

    def test_signed_update_applies(self):
        engine = self._engine()
        new = SecurityPolicy(version=2, rules=[
            rule({"ota-agent"}, {"firmware"}, {"write"}, PolicyDecision.ALLOW),
        ])
        blob, tag = engine.export_update(new, KEY)
        engine.apply_update(blob, tag)
        assert engine.policy.version == 2
        assert engine.allows("ota-agent", "firmware", "write")
        assert engine.update_history == [1, 2]

    def test_forged_update_rejected(self):
        engine = self._engine()
        new = SecurityPolicy(version=2)
        blob, _ = engine.export_update(new, KEY)
        with pytest.raises(PermissionError):
            engine.apply_update(blob, b"\x00" * 16)

    def test_rollback_update_rejected(self):
        engine = self._engine()
        old = SecurityPolicy(version=1)
        blob, tag = engine.export_update(old, KEY)
        with pytest.raises(ValueError, match="rollback"):
            engine.apply_update(blob, tag)

    def test_no_update_key_disables_updates(self):
        engine = PolicyEngine(SecurityPolicy(version=1))
        with pytest.raises(PermissionError, match="disabled"):
            engine.apply_update(b"x", b"y")

    def test_serialization_roundtrip(self):
        policy = self._engine().policy
        restored = SecurityPolicy.deserialize(policy.serialize())
        assert restored.version == policy.version
        assert restored.rules == policy.rules
        assert restored.default == policy.default

    def test_configuration_space_size(self):
        engine = self._engine()
        assert engine.configuration_space(
            ["a", "b"], ["x"], ["r", "w"], ["normal", "workshop"],
        ) == 8

    def test_decision_table_exhaustive(self):
        engine = self._engine()
        table = engine.decision_table(["diag-tool"], ["engine"], ["read", "write"])
        assert table[("diag-tool", "engine", "read", "normal")] is PolicyDecision.ALLOW
        assert table[("diag-tool", "engine", "write", "normal")] is PolicyDecision.DENY


class TestExtensibilityManager:
    def _manager(self):
        return ExtensibilityManager(KEY, features=[
            Feature("v2x-rx", version=1, enabled=True),
            Feature("remote-park", version=1, enabled=False, reserved=True),
        ])

    def test_registry(self):
        mgr = self._manager()
        assert mgr.enabled_features() == {"v2x-rx"}
        assert mgr.reserved_features() == {"remote-park"}
        assert mgr.is_enabled("v2x-rx")
        assert not mgr.is_enabled("missing")

    def test_duplicate_feature_rejected(self):
        mgr = self._manager()
        with pytest.raises(ValueError):
            mgr.register(Feature("v2x-rx"))

    def test_signed_enable_of_reserved_feature(self):
        mgr = self._manager()
        update = ExtensibilityManager.build_update(
            KEY, config_version=1, settings={"remote-park": (2, True)},
        )
        mgr.apply_update(update)
        assert mgr.is_enabled("remote-park")
        assert "remote-park" not in mgr.reserved_features()

    def test_update_can_introduce_new_feature(self):
        mgr = self._manager()
        update = ExtensibilityManager.build_update(
            KEY, 1, {"platoon-mode": (1, True)},
        )
        mgr.apply_update(update)
        assert mgr.is_enabled("platoon-mode")

    def test_forged_update_rejected(self):
        mgr = self._manager()
        update = ExtensibilityManager.build_update(
            b"W" * 16, 1, {"remote-park": (2, True)},
        )
        with pytest.raises(UpdateRejected, match="authentication"):
            mgr.apply_update(update)
        assert mgr.rejected_updates == 1

    def test_config_rollback_rejected(self):
        mgr = self._manager()
        mgr.apply_update(ExtensibilityManager.build_update(KEY, 5, {}))
        with pytest.raises(UpdateRejected, match="rollback"):
            mgr.apply_update(ExtensibilityManager.build_update(KEY, 5, {}))

    def test_feature_version_rollback_rejected(self):
        mgr = self._manager()
        mgr.apply_update(ExtensibilityManager.build_update(
            KEY, 1, {"v2x-rx": (3, True)},
        ))
        with pytest.raises(UpdateRejected, match="version rollback"):
            mgr.apply_update(ExtensibilityManager.build_update(
                KEY, 2, {"v2x-rx": (2, True)},
            ))

    def test_negotiation(self):
        assert ExtensibilityManager.negotiate({1, 2, 3}, {2, 3, 4}) == 3
        assert ExtensibilityManager.negotiate({1}, {2}) is None

    def test_key_validation(self):
        with pytest.raises(ValueError):
            ExtensibilityManager(b"short")


class TestGenerationCostModel:
    def test_extensible_more_expensive_first(self):
        model = GenerationCostModel()
        custom = model.custom_cumulative(1)
        extensible = model.extensible_cumulative(1)
        assert extensible[0] > custom[0]

    def test_crossover_exists(self):
        model = GenerationCostModel()
        crossover = model.crossover_generation()
        assert crossover is not None and crossover > 1

    def test_extensible_wins_long_run(self):
        model = GenerationCostModel()
        custom = model.custom_cumulative(10)
        extensible = model.extensible_cumulative(10)
        assert extensible[-1] < custom[-1]

    def test_time_to_market_penalty_above_one(self):
        assert GenerationCostModel().time_to_market_penalty() > 1.0

    def test_no_crossover_when_extensible_too_costly(self):
        model = GenerationCostModel(extensible_gen_cost=1000.0)
        assert model.crossover_generation(max_generations=10) is None


class TestTradeoffController:
    def test_classification(self):
        assert classify_context(ContextEstimate(0.0, 0, 0)) is DrivingContext.PARKED
        assert classify_context(ContextEstimate(30.0, 1, 2)) is DrivingContext.HIGHWAY
        assert classify_context(ContextEstimate(10.0, 8, 20)) is DrivingContext.URBAN
        assert classify_context(ContextEstimate(5.0, 15, 50)) is DrivingContext.DENSE_URBAN
        assert classify_context(ContextEstimate(15.0, 2, 3)) is DrivingContext.RURAL

    def test_mode_switch_changes_operating_point(self):
        ctrl = TradeoffController(dwell_time=0.0)
        highway = ctrl.update(0.0, ContextEstimate(30.0, 1, 2))
        city = ctrl.update(10.0, ContextEstimate(10.0, 8, 20))
        assert city.analytics_load > highway.analytics_load
        assert city.cloud_bandwidth_mbps > highway.cloud_bandwidth_mbps

    def test_dwell_time_prevents_thrash(self):
        ctrl = TradeoffController(dwell_time=5.0,
                                  initial=DrivingContext.HIGHWAY)
        # First switch always passes (controller starts unlatched) ...
        ctrl.update(0.0, ContextEstimate(10.0, 8, 20))   # urban evidence
        assert ctrl.context is DrivingContext.URBAN
        # ... then flapping within the dwell window is suppressed ...
        ctrl.update(1.0, ContextEstimate(30.0, 1, 2))    # highway again, too soon
        assert ctrl.context is DrivingContext.URBAN
        # ... and allowed again once the dwell time has elapsed.
        ctrl.update(10.0, ContextEstimate(30.0, 1, 2))
        assert ctrl.context is DrivingContext.HIGHWAY

    def test_register_mode_in_field(self):
        ctrl = TradeoffController()
        custom = OperatingPoint(0.5, 3.0, 0.8, 100.0)
        ctrl.register_mode(DrivingContext.RURAL, custom)
        assert ctrl.mode_table[DrivingContext.RURAL] is custom

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(1.5, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(0.5, 1.0, 2.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(0.5, -1.0, 1.0, 1.0)

    def test_integrate_accounting(self):
        ctrl = TradeoffController(dwell_time=0.0)
        timeline = [
            (float(t), ContextEstimate(30.0, 1, 2)) for t in range(10)
        ] + [
            (float(t), ContextEstimate(10.0, 8, 20)) for t in range(10, 20)
        ]
        totals = ctrl.integrate(timeline, dt=1.0)
        assert totals["energy_wh"] > 0
        assert totals["data_mb"] > 0
        assert 0 < totals["mean_verify_fraction"] <= 1
        assert totals["mode_switches"] >= 1

    def test_adaptive_cheaper_than_static_worstcase(self):
        """The E11 claim in miniature: context-adaptive beats always-max."""
        timeline = [(float(t), ContextEstimate(30.0, 1, 2)) for t in range(100)]
        adaptive = TradeoffController(dwell_time=0.0).integrate(timeline, dt=1.0)
        static_max = DEFAULT_MODE_TABLE[DrivingContext.DENSE_URBAN]
        static_energy_wh = static_max.power_w * 100 / 3600.0
        assert adaptive["energy_wh"] < static_energy_wh
