"""Tests for policy static analysis, exporters, and calibration."""

import csv
import io
import json

import pytest

from repro.analysis.calibration import calibration_report
from repro.analysis.export import sweep_to_csv, trace_to_csv, trace_to_jsonl
from repro.analysis.sweep import SweepResult
from repro.core.policy import PolicyDecision, PolicyRule, SecurityPolicy
from repro.core.policy_analysis import (
    audit,
    explicit_coverage,
    find_conflicts,
    find_shadowed_rules,
    rule_covers,
    rules_overlap,
)
from repro.sim import TraceRecorder


def rule(subjects, objects, actions, decision, contexts=(), name=""):
    return PolicyRule(frozenset(subjects), frozenset(objects),
                      frozenset(actions), decision, frozenset(contexts), name)

ALLOW, DENY = PolicyDecision.ALLOW, PolicyDecision.DENY


class TestRuleRelations:
    def test_overlap_on_shared_member(self):
        a = rule({"x"}, {"o"}, {"r"}, ALLOW)
        b = rule({"x", "y"}, {"o"}, {"r"}, DENY)
        assert rules_overlap(a, b)

    def test_no_overlap_disjoint_subjects(self):
        a = rule({"x"}, {"o"}, {"r"}, ALLOW)
        b = rule({"y"}, {"o"}, {"r"}, DENY)
        assert not rules_overlap(a, b)

    def test_wildcard_overlaps_everything(self):
        a = rule({"*"}, {"o"}, {"r"}, ALLOW)
        b = rule({"anything"}, {"o"}, {"r"}, DENY)
        assert rules_overlap(a, b)

    def test_context_disjoint_no_overlap(self):
        a = rule({"x"}, {"o"}, {"r"}, ALLOW, contexts={"workshop"})
        b = rule({"x"}, {"o"}, {"r"}, DENY, contexts={"normal"})
        assert not rules_overlap(a, b)

    def test_empty_contexts_overlap_any(self):
        a = rule({"x"}, {"o"}, {"r"}, ALLOW)
        b = rule({"x"}, {"o"}, {"r"}, DENY, contexts={"workshop"})
        assert rules_overlap(a, b)

    def test_covers_subset(self):
        outer = rule({"x", "y"}, {"o"}, {"r", "w"}, ALLOW)
        inner = rule({"x"}, {"o"}, {"r"}, DENY)
        assert rule_covers(outer, inner)
        assert not rule_covers(inner, outer)

    def test_wildcard_covers_concrete_not_vice_versa(self):
        outer = rule({"*"}, {"*"}, {"*"}, ALLOW)
        inner = rule({"x"}, {"o"}, {"r"}, DENY)
        assert rule_covers(outer, inner)
        assert not rule_covers(inner, outer)

    def test_any_context_covers_specific(self):
        outer = rule({"x"}, {"o"}, {"r"}, ALLOW)  # any context
        inner = rule({"x"}, {"o"}, {"r"}, DENY, contexts={"workshop"})
        assert rule_covers(outer, inner)
        assert not rule_covers(inner, outer)


class TestShadowing:
    def test_shadowed_deny_detected(self):
        """The dangerous case: a DENY someone added is dead code."""
        policy = SecurityPolicy(version=1, rules=[
            rule({"*"}, {"fw"}, {"w"}, ALLOW, name="broad-allow"),
            rule({"ota"}, {"fw"}, {"w"}, DENY, name="intended-block"),
        ])
        findings = find_shadowed_rules(policy)
        assert len(findings) == 1
        assert findings[0].rule_index == 1
        assert "unreachable" in findings[0].detail

    def test_no_false_positive_for_disjoint_rules(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"a"}, {"x"}, {"r"}, ALLOW),
            rule({"b"}, {"y"}, {"w"}, DENY),
        ])
        assert find_shadowed_rules(policy) == []

    def test_partial_overlap_is_not_shadowing(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"a"}, {"x"}, {"r"}, ALLOW),
            rule({"a", "b"}, {"x"}, {"r"}, DENY),  # b-traffic still reachable
        ])
        assert find_shadowed_rules(policy) == []


class TestConflicts:
    def test_opposite_decisions_on_overlap(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"a", "b"}, {"x"}, {"r"}, ALLOW),
            rule({"b", "c"}, {"x"}, {"r"}, DENY),
        ])
        findings = find_conflicts(policy)
        assert len(findings) == 1
        assert "ordering" in findings[0].detail

    def test_same_decision_no_conflict(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"a"}, {"x"}, {"r"}, ALLOW),
            rule({"a"}, {"x"}, {"r", "w"}, ALLOW),
        ])
        assert find_conflicts(policy) == []

    def test_audit_bundles_both(self):
        policy = SecurityPolicy(version=1, rules=[
            rule({"*"}, {"x"}, {"r"}, ALLOW),
            rule({"a"}, {"x"}, {"r"}, DENY),
        ])
        results = audit(policy)
        assert results["shadowed"] and results["conflicts"]


class TestCoverage:
    def test_full_wildcard_coverage(self):
        policy = SecurityPolicy(version=1, rules=[rule({"*"}, {"*"}, {"*"}, DENY)])
        assert explicit_coverage(policy, ["a", "b"], ["x"], ["r", "w"]) == 1.0

    def test_partial_coverage(self):
        policy = SecurityPolicy(version=1, rules=[rule({"a"}, {"x"}, {"r"}, ALLOW)])
        coverage = explicit_coverage(policy, ["a", "b"], ["x"], ["r", "w"])
        assert coverage == 0.25  # 1 of 4 combinations

    def test_empty_space(self):
        policy = SecurityPolicy(version=1)
        assert explicit_coverage(policy, [], [], []) == 1.0


class TestExport:
    def _trace(self):
        tr = TraceRecorder()
        tr.emit(0.0, "can0", "can.tx", can_id=0x100, latency=0.001)
        tr.emit(0.5, "gw", "gateway.drop", reason="firewall")
        return tr

    def test_jsonl_roundtrip(self):
        text = trace_to_jsonl(self._trace())
        lines = [json.loads(l) for l in text.strip().splitlines()]
        assert len(lines) == 2
        assert lines[0]["kind"] == "can.tx"
        assert lines[0]["data_can_id"] == 0x100
        assert lines[1]["data_reason"] == "firewall"

    def test_csv_unified_columns(self):
        text = trace_to_csv(self._trace())
        rows = list(csv.reader(io.StringIO(text)))
        header = rows[0]
        assert header[:3] == ["time", "source", "kind"]
        assert "data_can_id" not in header  # raw keys, not prefixed
        assert "can_id" in header and "reason" in header
        assert len(rows) == 3

    def test_csv_into_stream(self):
        buffer = io.StringIO()
        trace_to_csv(self._trace(), stream=buffer)
        assert "can.tx" in buffer.getvalue()

    def test_sweep_csv(self):
        result = SweepResult("t", ["a", "b"])
        result.add(a=1, b="x")
        result.add(a=2, b=b"\xff")
        rows = list(csv.reader(io.StringIO(sweep_to_csv(result))))
        assert rows[0] == ["a", "b"]
        assert rows[2] == ["2", "ff"]  # bytes hex-encoded

    def test_bytes_in_jsonl(self):
        tr = TraceRecorder()
        tr.emit(0.0, "x", "k", blob=b"\x01\x02")
        line = json.loads(trace_to_jsonl(tr).strip())
        assert line["data_blob"] == "0102"


class TestCalibration:
    def test_report_keys_and_positive(self):
        report = calibration_report(quick=True)
        assert set(report) == {
            "ecdsa_verify_per_s", "ecdsa_sign_per_s",
            "cmac64_per_s", "aes_block_per_s",
        }
        assert all(v > 0 for v in report.values())

    def test_relative_ordering(self):
        """AES blocks are orders of magnitude cheaper than ECDSA ops."""
        report = calibration_report(quick=True)
        assert report["aes_block_per_s"] > report["ecdsa_verify_per_s"] * 10
