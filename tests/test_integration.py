"""Cross-module integration tests: full scenarios spanning many subsystems."""

import random

import pytest

from repro.attacks import BusFloodAttack, MasqueradeAttack, SpoofAttack
from repro.core import VehicleArchitecture
from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.ecu import Ecu, EcuState, FirmwareImage, FirmwareStore, She, TamperDetector
from repro.gateway import Firewall, FirewallAction, FirewallRule, SecureGateway
from repro.ids import EnsembleIds, EntropyIds, FrequencyIds, SignalSpec, SpecificationIds
from repro.ivn import CanBus, CanFrame, typical_body_matrix, typical_powertrain_matrix
from repro.ivn.secure_can import SecOcReceiver, SecOcSender
from repro.ota import DirectorRepository, FleetCampaign, ImageRepository, UptaneClient
from repro.physical import Vehicle, VehicleState
from repro.sim import Simulator, TraceRecorder
from repro.v2x import (
    MessageVerifier,
    ObuStation,
    PkiHierarchy,
    PseudonymManager,
    WirelessChannel,
)


class TestGatewayPlusIdsResponse:
    """Detection-to-quarantine closed loop across gateway + IDS."""

    def test_ids_triggered_quarantine_stops_attack(self):
        sim = Simulator()
        trace = TraceRecorder()
        powertrain = CanBus(sim, name="powertrain", trace=trace)
        infotainment = CanBus(sim, name="infotainment", trace=trace)
        typical_powertrain_matrix().install(sim, powertrain)
        typical_body_matrix().install(sim, infotainment)

        fw = Firewall(default=FirewallAction.ALLOW)
        gateway = SecureGateway(sim, firewall=fw, trace=trace)
        gateway.attach_domain("powertrain", powertrain)
        gateway.attach_domain("infotainment", infotainment)
        gateway.add_route("infotainment", 0x0C9, {"powertrain"})

        # Spec IDS on the infotainment domain: the body-matrix signal
        # database is its whitelist, so the forged powertrain id 0x0C9
        # appearing there is an immediate anomaly.
        ids = SpecificationIds(
            [SignalSpec(e.can_id, e.dlc) for e in typical_body_matrix().entries],
        )

        def respond(frame):
            if ids.observe(sim.now, frame) and "infotainment" not in gateway.quarantined:
                gateway.quarantine("infotainment")

        infotainment.tap(respond)

        forged = []
        powertrain.tap(
            lambda f: forged.append(f)
            if f.can_id == 0x0C9 and f.sender.startswith("gateway.") else None
        )

        attack = SpoofAttack(sim, infotainment, 0x0C9, b"\xff" * 8, rate_hz=200)
        sim.schedule(1.0, attack.start)
        sim.run_until(5.0)

        assert "infotainment" in gateway.quarantined
        # A handful may slip through before detection; the flood must not.
        assert len(forged) < 20
        assert gateway.stats.dropped_quarantine > 100


class TestSecureBootGatesNetworkParticipation:
    def test_tampered_ecu_locked_off_the_bus(self):
        sim = Simulator()
        bus = CanBus(sim)
        image = FirmwareImage("fw", 1, b"good" * 20, hardware_id="m")
        she = She(uid=bytes(15))
        she.set_boot_mac(image.canonical_bytes(), b"B" * 16)
        ecu = Ecu(sim, "victim", she, FirmwareStore(image),
                  halt_on_boot_failure=True)
        ecu.attach_can(bus)
        bus.attach("peer")
        # Attacker reflashes the active bank.
        ecu.firmware.active = image.tampered()
        ecu.power_on()
        sim.run()
        assert ecu.state == EcuState.LOCKED
        ecu.send(CanFrame(0x100))
        sim.run()
        assert bus.frames_on_wire == 0


class TestAuthenticatedCanDefeatsMasquerade:
    """The E2 blind spot closed by the secure-processing layer."""

    def test_masquerade_rejected_by_secoc(self):
        sim = Simulator()
        bus = CanBus(sim)
        victim_node = bus.attach("brake")
        receiver_node = bus.attach("abs-ecu")
        key = b"S" * 16

        sender = SecOcSender(victim_node, key, tag_len=4)
        accepted = []
        receiver = SecOcReceiver(
            key, tag_len=4, on_accept=lambda cid, data: accepted.append(data),
        )
        receiver_node.on_receive(
            lambda f: receiver.receive_inline(f) if f.can_id == 0x0D1 else None
        )

        # Legitimate authenticated traffic.
        def legit():
            sender.send(0x0D1, b"\x55\x55")
            sim.schedule(0.01, legit)

        sim.schedule(0.0, legit)
        sim.run_until(0.5)
        legit_accepted = len(accepted)
        assert legit_accepted >= 49

        # Masquerade: attacker silences the victim, forges the id with a
        # plausible payload -- but cannot compute the CMAC.
        attack = MasqueradeAttack(
            sim, bus, victim="brake", target_id=0x0D1, period=0.010,
            payload_fn=lambda seq: b"\x55\x55" + bytes([seq % 256]) + bytes(4),
        )
        attack.start()
        sim.run_until(3.0)
        assert attack.busoff.succeeded
        assert attack.sent > 50
        # No forged frame was accepted after the takeover.
        assert receiver.stats.rejected_mac + receiver.stats.rejected_freshness >= attack.sent - 1
        assert len(accepted) <= legit_accepted + 2  # victim died early on


class TestOtaIntoSecureBoot:
    """Full update pipeline: repositories -> client -> flash -> secure boot."""

    def test_update_then_reboot_runs_new_image(self):
        sim = Simulator()
        v1 = FirmwareImage("engine-fw", 1, b"v1" * 30, hardware_id="mcu")
        v2 = FirmwareImage("engine-fw", 2, b"v2" * 30, hardware_id="mcu")
        boot_key = b"B" * 16

        she = She(uid=bytes(15))
        she.set_boot_mac(v1.canonical_bytes(), boot_key)
        store = FirmwareStore(v1)
        ecu = Ecu(sim, "engine", she, store)
        ecu.power_on()
        sim.run()
        assert ecu.state == EcuState.RUNNING

        image_repo = ImageRepository(seed=b"int/img")
        director = DirectorRepository(seed=b"int/dir")
        client = UptaneClient("veh-0", store,
                              image_root=image_repo.metadata["root"],
                              director_root=director.metadata["root"])
        results = FleetCampaign(director, image_repo, [client]).rollout(v2, now=50.0)
        assert results["veh-0"].installed

        # BOOT_MAC must be updated for the new image (the OEM ships it in
        # the campaign); without it the reboot degrades.
        ecu.reboot()
        sim.run()
        assert ecu.state == EcuState.DEGRADED

        # With the BOOT_MAC refreshed, the new image boots cleanly.
        from repro.crypto import aes_cmac
        from repro.ecu.she import SLOT_BOOT_MAC, KeySlot
        she._slots[SLOT_BOOT_MAC] = KeySlot(
            aes_cmac(boot_key, v2.canonical_bytes()))
        ecu.reboot()
        sim.run()
        assert ecu.state == EcuState.RUNNING
        assert store.active.version == 2


class TestV2xWithDrivingVehicles:
    def test_hazard_warning_propagates_while_moving(self):
        sim = Simulator()
        pki = PkiHierarchy(seed=b"int/v2x")
        channel = WirelessChannel(sim, comm_range=300.0)
        stations = []
        for i in range(3):
            vid = f"veh-{i}"
            ecert, _ = pki.enroll_vehicle(vid)
            batch = pki.issue_pseudonyms(vid, ecert, count=2, validity_start=0.0)
            vehicle = Vehicle(VehicleState(x=50.0 * i, speed=20.0), name=vid)
            stations.append(ObuStation(
                sim, vid, vehicle, channel,
                PseudonymManager(batch, rotation_period=1e9),
                MessageVerifier(pki.trust_store()),
            ))

        def drive():
            for s in stations:
                s.vehicle.step(0.5)
            sim.schedule(0.5, drive)

        sim.schedule(0.5, drive)
        for s in stations:
            s.start_broadcasting()
        # The lead vehicle spots a hazard at t=1.
        sim.schedule(1.0, stations[2].send_event, "pothole")
        sim.run_until(3.0)

        for receiver in stations[:2]:
            events = [b.event for _, b, _ in receiver.accepted if b.event]
            assert "pothole" in events


class TestTamperResponseChain:
    def test_glitch_locks_she_and_kills_boot(self):
        sim = Simulator()
        image = FirmwareImage("fw", 1, b"app" * 20, hardware_id="m")
        she = She(uid=bytes(15))
        she.set_boot_mac(image.canonical_bytes(), b"B" * 16)
        detector = TamperDetector(sim, she=she, detection_probability=1.0)
        ecu = Ecu(sim, "ecu", she, FirmwareStore(image))

        detector.sample("voltage", 1.0)  # glitch detected -> SHE locked
        ecu.power_on()
        sim.run()
        # Locked SHE cannot secure-boot: ECU cannot reach RUNNING.
        assert ecu.state in (EcuState.DEGRADED, EcuState.LOCKED)
