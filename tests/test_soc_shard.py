"""Tests for repro.soc.shard: sharded ingest + conservation auditing.

Three layers of machine-checked accounting:

- Hypothesis property tests prove the :class:`BoundedQueue` conservation
  invariants (``offered == accepted + shed``,
  ``len(q) == accepted - drained - evicted``) under arbitrary
  offer/drain interleavings for all three shed policies, including the
  LOWEST_SEVERITY "never evict to admit less-severe" edge;
- differential tests prove a ``ShardedIngestPipeline`` with
  ``num_shards=1`` is byte-identical to a plain ``IngestPipeline`` on
  the same deterministic stream, and that N-shard merged counters equal
  the sum of per-shard counters;
- :class:`ConservationAudit` is exercised both as the oracle inside the
  differential drives and directly (it must *detect* a cooked ledger).
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.sim import RngStreams, Simulator
from repro.soc import (
    BoundedQueue,
    ConservationAudit,
    ConservationError,
    EventSource,
    FleetModel,
    FleetWorkloadGenerator,
    IngestPipeline,
    SecurityOperationsCenter,
    ShardedIngestPipeline,
    ShedPolicy,
    make_event,
    region_shard_key,
    seeded_campaigns,
    signature_shard_key,
)


def ev(vehicle, sig, time, seq, severity=Asil.B):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


# ----------------------------------------------------------------------
# Shard keys
# ----------------------------------------------------------------------
class TestShardKeys:
    def test_keys_deterministic_and_in_range(self):
        for key in (signature_shard_key, region_shard_key):
            for seq in range(64):
                event = ev(f"v{seq:06d}", f"sig-{seq % 7}", 1.0, seq)
                index = key(event, 8)
                assert 0 <= index < 8
                assert index == key(event, 8)  # stable across calls

    def test_signature_key_groups_campaigns(self):
        # Same signature from different vehicles -> same shard: a
        # shard-local consumer sees whole campaigns.
        indices = {
            signature_shard_key(ev(f"v{i:06d}", "ids.spec:0x0c9", 1.0, i), 8)
            for i in range(50)
        }
        assert len(indices) == 1

    def test_region_key_groups_vehicles(self):
        indices = {
            region_shard_key(ev("v000007", f"sig-{i}", 1.0, i), 8)
            for i in range(50)
        }
        assert len(indices) == 1

    def test_keys_actually_distribute(self):
        events = [ev(f"v{i:06d}", f"sig-{i}", 1.0, i) for i in range(200)]
        for key in (signature_shard_key, region_shard_key):
            assert len({key(e, 8) for e in events}) > 4


# ----------------------------------------------------------------------
# BoundedQueue conservation: property tests
# ----------------------------------------------------------------------
QUEUE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(list(Asil))),
        st.tuples(st.just("drain"), st.integers(min_value=0, max_value=5)),
    ),
    min_size=0, max_size=60,
)


class TestBoundedQueueConservation:
    @given(policy=st.sampled_from(list(ShedPolicy)), ops=QUEUE_OPS)
    @settings(max_examples=120, deadline=None)
    def test_invariants_under_interleavings(self, policy, ops):
        q = BoundedQueue(4, policy)
        shadow = []  # model of the queue's contents
        seq = 0
        for op, arg in ops:
            if op == "offer":
                event = ev(f"v{seq}", "s", float(seq), seq, severity=arg)
                seq += 1
                was_full = q.full
                min_before = min((x.severity for x in shadow), default=None)
                victim = q.offer(event)
                if victim is None:
                    assert not was_full
                    shadow.append(event)
                elif victim is event:
                    # Arrival refused at the door.
                    assert was_full
                    if policy is ShedPolicy.LOWEST_SEVERITY:
                        # ...only because nothing queued is less severe:
                        # the "never evict to admit less-severe" edge.
                        assert min_before >= event.severity
                    else:
                        assert policy is ShedPolicy.DROP_NEWEST
                else:
                    # A queued event was evicted to admit the arrival.
                    assert was_full
                    assert policy is not ShedPolicy.DROP_NEWEST
                    shadow.remove(victim)
                    shadow.append(event)
                    if policy is ShedPolicy.LOWEST_SEVERITY:
                        assert victim.severity == min_before
                        assert victim.severity < event.severity
            else:
                out = q.drain(arg)
                assert len(out) <= arg
                # Highest severity first, FIFO within a level.
                for left, right in zip(out, out[1:]):
                    assert left.severity >= right.severity
                for event in out:
                    shadow.remove(event)

            # Conservation after *every* operation.
            assert q.offered == q.accepted + q.shed
            assert len(q) == q.accepted - q.drained - q.evicted
            assert q.lost == q.shed + q.evicted
            assert len(q) == len(shadow)
            assert len(q) <= q.capacity

    @given(ops=QUEUE_OPS)
    @settings(max_examples=60, deadline=None)
    def test_lowest_severity_offers_never_lower_the_queue_max(self, ops):
        # Under LOWEST_SEVERITY an offer may only evict something strictly
        # less severe than the arrival, so the most severe queued level is
        # monotone under offers -- only drain may take it out.
        q = BoundedQueue(3, ShedPolicy.LOWEST_SEVERITY)
        shadow = []
        seq = 0
        for op, arg in ops:
            if op == "offer":
                event = ev(f"v{seq}", "s", float(seq), seq, severity=arg)
                seq += 1
                max_before = max((x.severity for x in shadow), default=None)
                victim = q.offer(event)
                if victim is None:
                    shadow.append(event)
                elif victim is not event:
                    shadow.remove(victim)
                    shadow.append(event)
                max_after = max((x.severity for x in shadow), default=None)
                if max_before is not None:
                    assert max_after >= max_before
            else:
                for drained in q.drain(arg):
                    shadow.remove(drained)


# ----------------------------------------------------------------------
# Differential: sharded(1) == plain, merged == sum of shards
# ----------------------------------------------------------------------
def _stream(n_events=400, seed=7):
    """Deterministic event stream with invalid/low-severity/overload mix."""
    rng = random.Random(seed)
    severities = [Asil.QM, Asil.A, Asil.B, Asil.C, Asil.D]
    events = []
    now = 0.0
    for seq in range(n_events):
        now += rng.random() * 0.05
        kind = rng.random()
        if kind < 0.04:
            event = ev("", f"sig-{seq % 11}", now, seq)          # invalid
        elif kind < 0.08:
            event = ev(f"v{seq:06d}", "future", now + 99.0, seq)  # invalid
        else:
            event = ev(f"v{rng.randrange(40):06d}", f"sig-{rng.randrange(11)}",
                       now, seq, severity=rng.choice(severities))
        events.append((now, event))
    return events


def _drive(pipeline, events, pump_every=25):
    """Offer the stream, pumping periodically; returns the sink log."""
    audit = ConservationAudit()
    seen = []
    pipeline.add_sink(lambda now, e: seen.append((now, e.event_id)))
    for index, (now, event) in enumerate(events):
        pipeline.offer(now, event)
        if (index + 1) % pump_every == 0:
            pipeline.pump(now)
            audit.check(pipeline)      # the oracle: accounting adds up
    final = events[-1][0] + 1.0
    pipeline.pump(final)
    audit.check(pipeline)
    assert audit.checks > 0 and audit.failures == 0
    return seen


PIPE_KW = dict(capacity_eps=40.0, queue_capacity=32, batch_size=8,
               min_severity=Asil.A)


class TestDifferential:
    def test_one_shard_byte_identical_to_plain(self):
        events = _stream()
        plain = IngestPipeline(**PIPE_KW)
        sharded = ShardedIngestPipeline(num_shards=1, **PIPE_KW)
        seen_plain = _drive(plain, events)
        seen_sharded = _drive(sharded, events)

        assert seen_plain == seen_sharded        # same events, same order
        assert plain.metrics() == sharded.metrics()
        # Byte-identical, not merely approximately equal.
        assert (json.dumps(plain.metrics(), sort_keys=True)
                == json.dumps(sharded.metrics(), sort_keys=True))
        # The stream actually exercised every accounting path.
        assert plain.rejected_invalid > 0
        assert plain.rejected_severity > 0
        assert plain.queue.lost > 0
        assert plain.stats["dispatch"].exited > 0

    def test_one_shard_congestion_signal_matches_plain(self):
        plain = IngestPipeline(**PIPE_KW)
        sharded = ShardedIngestPipeline(num_shards=1, **PIPE_KW)
        for pipe in (plain, sharded):
            for seq in range(20):
                pipe.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        event = ev("v0", "s", 0.0, 999)
        assert plain.congested == sharded.congested
        assert plain.fully_congested == sharded.fully_congested
        assert plain.congested_for(event) == sharded.congested_for(event)

    def test_merged_counters_equal_sum_of_shards(self):
        events = _stream(n_events=600, seed=11)
        sharded = ShardedIngestPipeline(num_shards=4, **PIPE_KW)
        _drive(sharded, events)

        merged = sharded.metrics()
        per_shard = sharded.shard_metrics()
        assert len(per_shard) == 4
        assert sum(1 for m in per_shard if m["offered"]) > 1  # really spread
        for counter in ("offered", "rejected_invalid", "admitted",
                        "queued_shed", "dispatched", "batches", "queue_depth"):
            assert merged[counter] == sum(m[counter] for m in per_shard), counter
        for gauge in ("queue_depth_max", "max_dispatch_latency_s"):
            assert merged[gauge] == max(m[gauge] for m in per_shard), gauge

    @given(st.lists(
        st.tuples(st.integers(0, 30),                    # vehicle
                  st.integers(0, 6),                     # signature
                  st.sampled_from([Asil.A, Asil.B, Asil.D])),
        min_size=1, max_size=120,
    ))
    @settings(max_examples=40, deadline=None)
    def test_shard_merge_accounting_always_conserves(self, rows):
        sharded = ShardedIngestPipeline(num_shards=3, capacity_eps=20.0,
                                        queue_capacity=8, batch_size=4)
        audit = ConservationAudit()
        for seq, (vehicle, sig, severity) in enumerate(rows):
            now = seq * 0.01
            sharded.offer(now, ev(f"v{vehicle:06d}", f"sig-{sig}", now, seq,
                                  severity=severity))
            if seq % 10 == 9:
                sharded.pump(now)
                audit.check(sharded)
        sharded.pump(len(rows) * 0.01 + 1.0)
        audit.check(sharded)
        assert audit.failures == 0
        merged = sharded.metrics()
        assert merged["offered"] == len(rows)
        per_shard = sharded.shard_metrics()
        for counter in ("offered", "queued_shed", "dispatched", "queue_depth"):
            assert merged[counter] == sum(m[counter] for m in per_shard)


# ----------------------------------------------------------------------
# Worker pool semantics
# ----------------------------------------------------------------------
class TestShardedDrain:
    def test_first_pump_grants_one_cold_batch_per_worker(self):
        sharded = ShardedIngestPipeline(num_shards=4, capacity_eps=1000.0,
                                        queue_capacity=256, batch_size=8,
                                        shard_key=lambda e, n: int(e.vehicle_id[1:]) % n)
        for seq in range(200):
            sharded.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        # Regardless of elapsed time, a cold pool drains exactly
        # batch_size * num_shards -- the plain pipeline's first-pump
        # quirk scaled to the worker count.
        assert sharded.pump(50.0) == 8 * 4
        assert sharded.pump(50.0) == 0          # zero elapsed, zero budget
        assert sharded.pump(51.0) == 200 - 32   # then capacity_eps * dt

    def test_budget_is_shared_and_work_conserving(self):
        # All events land on one hot shard; it may consume the whole
        # pool budget, not just 1/N of it.
        sharded = ShardedIngestPipeline(num_shards=4, capacity_eps=100.0,
                                        queue_capacity=512, batch_size=8,
                                        shard_key=lambda e, n: 0)
        for seq in range(300):
            sharded.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        sharded.pump(0.0)                        # cold batches
        assert sharded.pump(1.0) == 100          # full shared budget, one shard
        assert sharded.shards[0].stats["dispatch"].exited == 132
        assert all(s.stats["dispatch"].exited == 0 for s in sharded.shards[1:])

    def test_round_robin_spreads_budget_across_hot_shards(self):
        sharded = ShardedIngestPipeline(num_shards=2, capacity_eps=40.0,
                                        queue_capacity=512, batch_size=8,
                                        shard_key=lambda e, n: int(e.vehicle_id[1:]) % n)
        for seq in range(200):
            sharded.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        sharded.pump(0.0)
        sharded.pump(1.0)                        # 40-event budget
        drained = [s.stats["dispatch"].exited for s in sharded.shards]
        assert sum(drained) == 16 + 40
        assert abs(drained[0] - drained[1]) <= 8  # within one batch of fair

    def test_per_shard_congestion_only_throttles_hot_partition(self):
        key = lambda e, n: int(e.vehicle_id[1:]) % n
        sharded = ShardedIngestPipeline(num_shards=2, capacity_eps=10.0,
                                        queue_capacity=16, batch_size=4,
                                        shard_key=key)
        for seq in range(0, 40, 2):              # even vehicles -> shard 0
            sharded.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        hot = ev("v2", "s", 0.0, 1000)
        cold = ev("v3", "s", 0.0, 1001)
        assert sharded.congested_for(hot)
        assert not sharded.congested_for(cold)
        assert sharded.congested
        assert not sharded.fully_congested

    def test_generator_suppression_is_per_shard(self):
        key = lambda e, n: int(e.vehicle_id[1:]) % n
        sharded = ShardedIngestPipeline(num_shards=2, capacity_eps=10.0,
                                        queue_capacity=16, batch_size=4,
                                        shard_key=key)
        sim = Simulator()
        fleet = FleetModel(10, [])
        generator = FleetWorkloadGenerator(sim, RngStreams(0), fleet, sharded,
                                           vectorized=False)
        for seq in range(0, 40, 2):              # congest shard 0 only
            sharded.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        generator._offer(ev("v2", "noise", 0.0, 2000, severity=Asil.A))
        generator._offer(ev("v3", "noise", 0.0, 2001, severity=Asil.A))
        generator._offer(ev("v4", "alert", 0.0, 2002, severity=Asil.D))
        assert generator.suppressed_at_source == 1   # only the hot-shard A
        assert generator.emitted == 2                # cold A + hot D flow


# ----------------------------------------------------------------------
# ConservationAudit as a detector
# ----------------------------------------------------------------------
class TestConservationAudit:
    def test_detects_cooked_queue_ledger(self):
        pipe = IngestPipeline(**PIPE_KW)
        for seq in range(10):
            pipe.offer(0.0, ev(f"v{seq}", "s", 0.0, seq))
        audit = ConservationAudit()
        audit.check(pipe)
        assert audit.checks == 1
        pipe.queue.shed += 1                      # cook the books
        with pytest.raises(ConservationError):
            audit.check(pipe)
        assert audit.failures == 1
        assert "offered" in audit.last_error

    def test_detects_vanished_dispatch_on_a_shard(self):
        sharded = ShardedIngestPipeline(num_shards=2, **PIPE_KW)
        for seq in range(20):
            sharded.offer(0.0, ev(f"v{seq}", f"sig-{seq}", 0.0, seq))
        sharded.pump(1.0)
        audit = ConservationAudit()
        audit.check(sharded)
        victim = next(s for s in sharded.shards
                      if s.stats["dispatch"].exited > 0)
        victim.stats["dispatch"].exited -= 1      # lose one dispatched event
        with pytest.raises(ConservationError):
            audit.check(sharded)


# ----------------------------------------------------------------------
# Per-shard refusal counters in the merged metrics
# ----------------------------------------------------------------------
class TestMergedRefusalCounters:
    """``metrics()`` must surface queue refusals/evictions per shard and
    merged, and the admit-side conservation identity

        admitted == queue_refused + queue_evicted + dispatched + queued

    must be provable from the published numbers alone -- for each shard
    and for the merge (the frontend has no access to raw queue objects,
    only metrics dicts)."""

    @staticmethod
    def _overloaded(policy):
        # 4 shards x capacity 8: route vehicles round-robin, overfill two
        # shards so both refusal kinds occur, then drain everything.
        sharded = ShardedIngestPipeline(
            num_shards=4, capacity_eps=40.0, queue_capacity=8, batch_size=4,
            shed_policy=policy,
            shard_key=lambda e, n: int(e.vehicle_id[1:]) % n)
        for seq in range(24):                    # shards 0/1 get 12 each
            sev = Asil.A if seq % 3 else Asil.D  # mixed, so eviction can pick
            sharded.offer(0.0, ev(f"v{seq % 2}", "s", 0.0, seq, severity=sev))
        sharded.drain_all(1.0)
        return sharded

    def test_refusals_surface_and_conserve_drop_newest(self):
        sharded = self._overloaded(ShedPolicy.DROP_NEWEST)
        merged = sharded.metrics()
        per_shard = sharded.shard_metrics()
        # Pinned: 24 offered, 8+8 fit, 4+4 refused at the door, none
        # evicted (DROP_NEWEST never removes queued events).
        assert merged["admitted"] == 24.0
        assert merged["queue_refused"] == 8.0
        assert merged["queue_evicted"] == 0.0
        assert merged["dispatched"] == 16.0
        assert merged["queue_depth"] == 0.0
        assert [m["queue_refused"] for m in per_shard] == [4.0, 4.0, 0.0, 0.0]
        # Merged counters are exactly the per-shard sums.
        for key in ("queue_refused", "queue_evicted", "queued_shed",
                    "admitted", "dispatched"):
            assert merged[key] == sum(m[key] for m in per_shard)
        # The conservation identity holds from published metrics alone.
        assert merged["admitted"] == (
            merged["queue_refused"] + merged["queue_evicted"]
            + merged["dispatched"] + merged["queue_depth"])
        ConservationAudit().check(sharded)

    def test_evictions_surface_and_conserve_lowest_severity(self):
        sharded = self._overloaded(ShedPolicy.LOWEST_SEVERITY)
        merged = sharded.metrics()
        # Same overload, severity-aware policy: ASIL-D arrivals evict
        # queued ASIL-A noise; ASIL-A arrivals into full queues of equal
        # severity are refused.  Both kinds are published and the split
        # still sums to the total loss.
        assert merged["queue_evicted"] > 0.0
        assert merged["queued_shed"] == (
            merged["queue_refused"] + merged["queue_evicted"]) == 8.0
        assert merged["admitted"] == (
            merged["queue_refused"] + merged["queue_evicted"]
            + merged["dispatched"] + merged["queue_depth"])
        ConservationAudit().check(sharded)

    def test_audit_detects_cooked_refusal_counter(self):
        sharded = self._overloaded(ShedPolicy.DROP_NEWEST)
        audit = ConservationAudit()
        audit.check(sharded)
        sharded.shards[0].queue.shed -= 1         # hide one refusal
        with pytest.raises(ConservationError):
            audit.check(sharded)


# ----------------------------------------------------------------------
# Vectorized workload + end-to-end sharded SOC
# ----------------------------------------------------------------------
class TestVectorizedWorkload:
    def _run(self, seed=3, n=3000, **gen_kw):
        sim = Simulator()
        rng = RngStreams(seed)
        campaigns = seeded_campaigns(rng, n, 0.01)
        fleet = FleetModel(n, campaigns)
        soc = SecurityOperationsCenter(sim, fleet, capacity_eps=120.0,
                                       num_shards=4)
        generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline,
                                           vectorized=True, **gen_kw)
        soc.start()
        generator.start()
        sim.run_until(20.0)
        soc.pipeline.pump(sim.now)
        soc.audit.check(soc.pipeline)
        metrics = soc.metrics()
        metrics["emitted"] = float(generator.emitted)
        metrics["suppressed"] = float(generator.suppressed_at_source)
        return metrics

    def test_vectorized_runs_deterministically(self):
        a = self._run(seed=3)
        b = self._run(seed=3)
        assert a == b
        assert self._run(seed=4) != a

    def test_vectorized_overload_bulk_suppresses_but_counts(self):
        # 40x the benign volume vs a tiny backend: every shard congests
        # and whole ticks of ASIL-A noise take the bulk-suppression path.
        metrics = self._run(seed=3, benign_rate_eps=0.16)
        assert metrics["suppressed"] > 0
        assert metrics["audit_checks"] > 0
        assert metrics["queue_depth_max"] <= 2048
        # Nothing vanished: generator-side accounting closes too.
        assert metrics["emitted"] == metrics["offered"]

    def test_sharded_soc_closes_the_loop(self):
        metrics = self._run(seed=5)
        assert metrics["recall"] == 1.0
        assert metrics["policy_pushes"] >= 3
        assert metrics["audit_checks"] > 0
