"""Tests for repro.soc.chaos and the optimistic federation mode.

Covers the :class:`FaultPlan` schema (validation, seeded generation
determinism, federation/service split), the torn-shipment corruption
knob on the channel, the :class:`Amendment` journal and its incident
lifecycle effects (confirm clears ``provisional``, retract walks an
open incident to false-positive, retract after containment only
journals), the optimistic hub's episode lifecycle (open on stale
blockers, reconcile on catch-up, ``declare_dead`` unblocking, the
retract classification path, the amendment export feed), the tentpole
differentials -- a Hypothesis-driven space of outage schedules,
duplication, and reorder, at one shard and at four, always converging
byte-identical to the strict gate with the amendment counters tying
out -- and full chaos runs (federation scene under outage + degrade +
torn shipment; ingest service under worker SIGKILLs) asserting zero
conservation violations and zero admitted-batch ACK loss.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.sim import Simulator
from repro.soc import (
    AMENDMENT_KINDS,
    Amendment,
    CampaignDetection,
    ChaosInvariantViolation,
    EventLog,
    EventSource,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    FederationChaosRunner,
    FederationHub,
    FleetModel,
    IncidentState,
    IncidentTracker,
    LogRecord,
    SecurityOperationsCenter,
    ServiceChaosRunner,
    Shipment,
    ShippingChannel,
    encode_shipment,
    make_event,
)
from repro.experiments.e18_federation import build_federated_scene


def _canon(obj):
    return json.dumps(obj, sort_keys=True)


def _detection(signature="xr.sig", vehicles=("v1", "v2", "v3"),
               detect_time=10.0):
    return CampaignDetection(signature=signature, detect_time=detect_time,
                             first_time=detect_time - 2.0,
                             vehicles=tuple(sorted(vehicles)),
                             window_s=8.0, k=3)


def ev(vehicle, sig, time, seq, severity=Asil.B):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


# ----------------------------------------------------------------------
# Fault / FaultPlan schema
# ----------------------------------------------------------------------
class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="cosmic_ray", at_s=1.0)

    def test_windowed_faults_need_a_window_and_target(self):
        with pytest.raises(ValueError, match="until_s > at_s"):
            Fault(kind="region_outage", at_s=5.0, target="r0")
        with pytest.raises(ValueError, match="until_s > at_s"):
            Fault(kind="region_outage", at_s=5.0, until_s=5.0, target="r0")
        with pytest.raises(ValueError, match="target region"):
            Fault(kind="region_outage", at_s=5.0, until_s=6.0)

    def test_instantaneous_faults_reject_until(self):
        with pytest.raises(ValueError, match="instantaneous"):
            Fault(kind="torn_shipment", at_s=5.0, until_s=6.0, target="r0")
        with pytest.raises(ValueError, match="target region"):
            Fault(kind="torn_shipment", at_s=5.0)

    def test_degrade_needs_a_positive_delta(self):
        with pytest.raises(ValueError, match="positive delta"):
            Fault(kind="wan_degrade", at_s=1.0, until_s=2.0, target="r0")
        with pytest.raises(ValueError, match="bad degrade deltas"):
            Fault(kind="wan_degrade", at_s=1.0, until_s=2.0, target="r0",
                  duplicate_add_p=1.5)

    def test_heal_s_and_as_dict(self):
        windowed = Fault(kind="region_outage", at_s=2.0, until_s=4.0,
                         target="r0")
        torn = Fault(kind="torn_shipment", at_s=3.0, target="r1")
        assert windowed.heal_s == 4.0
        assert torn.heal_s == 3.0
        assert windowed.as_dict()["kind"] == "region_outage"
        assert json.dumps(torn.as_dict())  # JSON-safe


class TestFaultPlan:
    def test_generate_is_deterministic_per_seed(self):
        regions = ["r0", "r1", "r2"]
        kw = dict(num_workers=2, n_outages=2, n_degrades=2, n_torn=2,
                  n_kills=2)
        a = FaultPlan.generate(random.Random(9), 30.0, regions, **kw)
        b = FaultPlan.generate(random.Random(9), 30.0, regions, **kw)
        c = FaultPlan.generate(random.Random(10), 30.0, regions, **kw)
        assert a.as_dict() == b.as_dict()
        assert a.as_dict() != c.as_dict()
        assert len(a) == 8

    def test_generated_windows_heal_before_the_run_ends(self):
        plan = FaultPlan.generate(random.Random(3), 40.0, ["r0"],
                                  n_outages=3, n_degrades=3, n_torn=3)
        for fault in plan.faults_of("region_outage", "wan_degrade"):
            assert 0.15 * 40.0 <= fault.at_s <= 0.6 * 40.0
            assert fault.heal_s <= 0.85 * 40.0
        assert plan.heal_points() == sorted(set(plan.heal_points()))

    def test_split_separates_service_faults(self):
        plan = FaultPlan.generate(random.Random(1), 30.0, ["r0"],
                                  num_workers=2, n_kills=3)
        federation, service = plan.split()
        assert not federation.faults_of("worker_sigkill")
        assert len(service) == 3
        assert all(f.kind == "worker_sigkill" for f in service.faults)
        assert len(federation) + len(service) == len(plan)

    def test_faults_of_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan([]).faults_of("gamma_burst")

    def test_generate_without_regions_needs_no_federation_faults(self):
        with pytest.raises(ValueError, match="need regions"):
            FaultPlan.generate(random.Random(0), 10.0, [])
        plan = FaultPlan.generate(random.Random(0), 10.0, [],
                                  num_workers=2, n_outages=0, n_degrades=0,
                                  n_torn=0, n_kills=1)
        assert len(plan) == 1


# ----------------------------------------------------------------------
# Torn-shipment corruption knob
# ----------------------------------------------------------------------
class TestCorruptNext:
    def test_corrupted_blob_is_rejected_whole_by_the_receiver(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=64)
        for b in range(4):
            log.append_batch(0.25 * (b + 1), 0,
                             [ev(f"v{b}", "sig.0", 0.2 * b, b)])
        records = tuple(log.replay())
        log.close()
        blob = encode_shipment(Shipment(
            region="region-a", first_seq=records[0].seq,
            last_seq=records[-1].seq, watermark=records[-1].dispatch_t,
            records=records))
        chan = ShippingChannel(random.Random(0))
        chan.corrupt_next(1)
        assert chan.send(0.0, blob)
        assert chan.send(0.0, blob)
        delivered = chan.deliver(10.0)
        assert chan.corrupted == 1
        hub = FederationHub(["region-a"], 1)
        ok = [hub.receive(b) for b in delivered]
        # Exactly one arrival survives its CRC check; the torn twin is
        # refused whole, never partially applied.
        assert sorted(ok) == [False, True]
        # Depending on which byte tore, the damage is caught at the
        # header (unrouted) or at the receiver's CRC -- never applied.
        assert (hub.corrupt_unrouted
                + hub.receivers["region-a"].corrupt_rejected) == 1
        hub.finalize(0.0)
        assert hub.records_applied == len(records)

    def test_corrupt_next_validates(self):
        with pytest.raises(ValueError):
            ShippingChannel(random.Random(0)).corrupt_next(0)


# ----------------------------------------------------------------------
# Amendment journal + incident lifecycle
# ----------------------------------------------------------------------
class TestAmendments:
    def test_kind_validation_and_as_dict(self):
        with pytest.raises(ValueError, match="unknown amendment kind"):
            Amendment(kind="revise", signature="s", t=1.0)
        a = Amendment(kind="amend", signature="s", t=1.0,
                      incident_id="INC-00001", vehicles_added=1)
        assert a.as_dict()["vehicles_added"] == 1
        assert json.dumps(a.as_dict())

    def test_confirm_clears_provisional(self):
        tracker = IncidentTracker()
        incident = tracker.open_from_detection(_detection(), Asil.C,
                                               provisional=True)
        assert incident.provisional
        assert tracker.record_amendment(Amendment(
            kind="confirm", signature="xr.sig", t=11.0,
            incident_id=incident.incident_id))
        assert not incident.provisional
        assert tracker.amendment_counts() == {
            "confirm": 1, "amend": 0, "retract": 0}

    def test_retract_walks_open_incident_to_false_positive(self):
        tracker = IncidentTracker()
        incident = tracker.open_from_detection(_detection(), Asil.C,
                                               provisional=True)
        assert tracker.record_amendment(Amendment(
            kind="retract", signature="xr.sig", t=11.0))
        assert incident.state is IncidentState.FALSE_POSITIVE

    def test_retract_after_containment_only_journals(self):
        tracker = IncidentTracker()
        incident = tracker.open_from_detection(_detection(), Asil.C,
                                               provisional=True)
        incident.advance(10.5, IncidentState.TRIAGED)
        incident.advance(11.0, IncidentState.CONTAINED)
        # The response already acted; a late retract must not unwind it,
        # only land in the journal for the analyst.
        assert not tracker.record_amendment(Amendment(
            kind="retract", signature="xr.sig", t=12.0))
        assert incident.state is IncidentState.CONTAINED
        assert tracker.amendment_counts()["retract"] == 1

    def test_unmatched_signature_journals_and_reports_false(self):
        tracker = IncidentTracker()
        assert not tracker.record_amendment(Amendment(
            kind="confirm", signature="never.seen", t=1.0))
        assert len(tracker.amendments) == 1

    def test_snapshot_excludes_the_journal(self):
        tracker = IncidentTracker()
        tracker.open_from_detection(_detection(), Asil.C, provisional=True)
        before = _canon(tracker.snapshot())
        tracker.record_amendment(Amendment(
            kind="confirm", signature="xr.sig", t=11.0))
        restored = IncidentTracker.from_snapshot(tracker.snapshot())
        # provisional=False *is* state and round-trips; the journal is
        # journey and does not.
        assert _canon(tracker.snapshot()) != before
        assert _canon(restored.snapshot()) == _canon(tracker.snapshot())
        assert restored.amendments == []

    def test_center_adopt_amendments_counts_and_unmatched(self):
        sim = Simulator()
        soc = SecurityOperationsCenter(sim, FleetModel(50, []),
                                       respond=False)
        incident = soc.tracker.open_from_detection(_detection(), Asil.C,
                                                   provisional=True)
        counts = soc.adopt_amendments([
            Amendment(kind="confirm", signature="xr.sig", t=11.0,
                      incident_id=incident.incident_id),
            {"kind": "retract", "signature": "ghost.sig", "t": 12.0,
             "incident_id": None, "vehicles_added": 0,
             "vehicles_removed": 0},
        ])
        assert counts["confirm"] == 1
        assert counts["retract"] == 1
        assert counts["unmatched"] == 1
        assert not incident.provisional
        assert set(AMENDMENT_KINDS) < set(counts)


# ----------------------------------------------------------------------
# Optimistic hub: episode lifecycle units
# ----------------------------------------------------------------------
def _campaign_blob(region, vehicles, sig="chaos.sig", t0=0.25,
                   region_tag=""):
    """One shipment whose batch + mark fire a k=3 campaign on replay."""
    records = []
    events = [ev(f"{region_tag}{v}", sig, t0, i)
              for i, v in enumerate(vehicles)]
    records.append(LogRecord(seq=1, kind="batch", dispatch_t=t0, shard=0,
                             events=tuple(events)))
    records.append(LogRecord(seq=2, kind="mark", dispatch_t=t0 + 0.25,
                             shard=0, events=()))
    return encode_shipment(Shipment(
        region=region, first_seq=1, last_seq=2, watermark=t0 + 0.25,
        records=tuple(records)))


class TestOptimisticHub:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="unknown consistency"):
            FederationHub(["a"], 1, consistency="eventual")
        with pytest.raises(ValueError, match="staleness_budget_s"):
            FederationHub(["a"], 1, consistency="optimistic",
                          staleness_budget_s=-1.0)

    def _stalled_hub(self, budget=0.5):
        """region-a has a full campaign buffered; region-b is silent."""
        hub = FederationHub(["region-a", "region-b"], 1,
                            consistency="optimistic",
                            staleness_budget_s=budget)
        hub.receive(_campaign_blob("region-a", ["v1", "v2", "v3"]))
        return hub

    def test_episode_opens_only_past_the_budget(self):
        hub = self._stalled_hub(budget=0.5)
        hub.advance(0.0)
        # Inside the budget the gate behaves exactly like strict mode.
        assert not hub.episode_active
        assert hub.records_applied == 0
        assert hub.stalled_rounds == 1
        hub.advance(1.0)
        assert hub.episode_active
        assert hub.records_applied == 2
        assert hub.episodes == 1
        assert hub.provisional_verdicts == 1
        assert hub.tracker.incident_for("chaos.sig").provisional
        assert hub.metrics()["episode_active"] == 1.0

    def test_strict_hub_never_opens_an_episode(self):
        hub = FederationHub(["region-a", "region-b"], 1,
                            staleness_budget_s=0.5)
        hub.receive(_campaign_blob("region-a", ["v1", "v2", "v3"]))
        hub.advance(0.0)
        hub.advance(100.0)
        assert not hub.episode_active
        assert hub.records_applied == 0
        assert hub.stalled_rounds == 2

    def test_laggard_catchup_reconciles_to_confirm(self):
        hub = self._stalled_hub()
        hub.advance(0.0)
        hub.advance(1.0)
        assert hub.episode_active
        # The laggard reports in past the episode's records -- but a
        # frontier can still admit a future record *at* its own time, so
        # the episode stays conservatively open until end-of-stream
        # proves the order (the same tie-must-stall rule the strict gate
        # lives by).
        hub.receive(_campaign_blob("region-b", ["w1", "w2"], sig="b.sig",
                                   t0=5.0))
        hub.advance(1.5)
        assert hub.episode_active
        hub.finalize(2.0)
        assert not hub.episode_active
        assert hub.reconciliations == 1
        assert hub.amendments_confirmed == 1
        assert not hub.tracker.incident_for("chaos.sig").provisional
        assert [a.kind for a in hub.amendments] == ["confirm"]

    def test_declare_dead_unblocks_and_refuses_late_blobs(self):
        hub = self._stalled_hub()
        hub.advance(0.0)
        hub.advance(1.0)
        assert hub.episode_active
        assert hub.declare_dead("region-b") == 0
        hub.advance(1.5)
        assert not hub.episode_active
        assert hub.dead_regions == {"region-b"}
        assert not hub.receive(
            _campaign_blob("region-b", ["w1"], sig="late.sig"))
        assert hub.dead_rejected == 1
        assert hub.metrics()["dead_regions"] == 1.0
        with pytest.raises(ValueError, match="unknown region"):
            hub.declare_dead("region-z")

    def test_finalize_reconciles_byte_identical_to_strict(self):
        # region-b's (late-arriving) records sort wholly *before*
        # region-a's, so the canonical replay flags the campaign from
        # b's engine -- a different verdict object than the provisional
        # one a's engine fired alone: the reconciliation must amend.
        blob_a = _campaign_blob("region-a", ["v1", "v2", "v3"], t0=1.0)
        blob_b = _campaign_blob("region-b", ["v2", "v3", "v4"],
                                sig="chaos.sig", t0=0.1)
        optimistic = FederationHub(["region-a", "region-b"], 1,
                                   consistency="optimistic",
                                   staleness_budget_s=0.5)
        optimistic.receive(blob_a)
        optimistic.advance(0.0)
        optimistic.advance(1.0)       # episode: verdict from a alone
        assert optimistic.provisional_verdicts == 1
        optimistic.receive(blob_b)    # b's earlier records arrive late
        optimistic.finalize(2.0)
        strict = FederationHub(["region-a", "region-b"], 1)
        strict.receive(blob_a)
        strict.receive(blob_b)
        strict.finalize(2.0)
        assert _canon(optimistic.analytics_snapshot()) == \
            _canon(strict.analytics_snapshot())
        assert optimistic.amendments_amended == 1
        amendment = optimistic.amendments[0]
        assert amendment.kind == "amend"
        assert amendment.vehicles_added == 1    # v4 joined the verdict
        assert amendment.vehicles_removed == 1  # v1 left it
        counts = (optimistic.amendments_confirmed
                  + optimistic.amendments_amended
                  + optimistic.amendments_retracted)
        assert counts == optimistic.provisional_verdicts

    def test_unreproducible_provisional_verdict_is_retracted(self):
        hub = self._stalled_hub()
        hub.advance(0.0)
        hub.advance(1.0)
        assert hub.episode_active
        # White-box: a provisional verdict the canonical replay cannot
        # reproduce (no records back it) must be retracted, and its
        # optimistically-opened incident does not survive the swap.
        ghost = _detection(signature="ghost.sig")
        hub._provisional.append((1.0, ghost))
        hub.provisional_log.append((1.0, ghost))
        hub.provisional_verdicts += 1
        hub.tracker.open_from_detection(ghost, Asil.C, provisional=True)
        hub.finalize(2.0)
        assert hub.amendments_retracted == 1
        assert hub.tracker.incident_for("ghost.sig") is None
        retract = [a for a in hub.amendments if a.kind == "retract"][0]
        assert retract.signature == "ghost.sig"
        assert (hub.amendments_confirmed + hub.amendments_amended
                + hub.amendments_retracted) == hub.provisional_verdicts

    def test_export_amendments_is_a_cursor_feed(self):
        hub = self._stalled_hub()
        hub.advance(0.0)
        hub.advance(1.0)
        hub.finalize(2.0)
        feed = hub.export_amendments()
        assert len(feed) == len(hub.amendments) == 1
        assert feed[0]["kind"] == "confirm"
        assert json.dumps(feed)
        assert hub.export_amendments(after=len(feed)) == []


# ----------------------------------------------------------------------
# Tentpole differential: optimistic == strict across a Hypothesis-driven
# space of outage schedules, duplication, and reorder (1 and 4 shards)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=[1, 4],
                ids=["shards-1", "shards-4"])
def chaos_corpus(request):
    """A federated run rendered as timestamped per-region blobs plus the
    strict-gate canonical state any delivery must converge to."""
    scene = build_federated_scene(seed=7, n_per_region=120, lag_s=0.0,
                                  num_shards=request.param)
    try:
        scene.start()
        scene.run(18.0)
        names = list(scene.regions)
        profile = next(iter(
            scene.regions.values())).center.federation_profile()
        shipments = []
        for name in names:
            records = list(scene.regions[name].store.log.replay())
            for i in range(0, len(records), 5):
                chunk = records[i:i + 5]
                shipments.append((name, chunk[-1].dispatch_t,
                                  encode_shipment(Shipment(
                                      region=name, first_seq=chunk[0].seq,
                                      last_seq=chunk[-1].seq,
                                      watermark=chunk[-1].dispatch_t,
                                      records=tuple(chunk)))))
        expected = _canon(scene.hub.analytics_snapshot())
    finally:
        scene.close()
    return {"names": names, "profile": profile, "shipments": shipments,
            "expected": expected}


def _drive_schedule(hub, shipments, arrivals, end):
    """Deliver blobs at their arrival times, advancing the hub's clock
    through every arrival (so stall ages accrue), then finalize."""
    order = sorted(range(len(arrivals)), key=lambda i: (arrivals[i], i))
    for i in order:
        hub.advance(arrivals[i])
        hub.receive(shipments[i][2])
    hub.finalize(end)


class TestOptimisticDifferential:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_partition_dup_reorder_converges_with_tie_out(
            self, chaos_corpus, seed):
        rng = random.Random(seed)
        names = chaos_corpus["names"]
        victim = rng.choice(names)
        o0 = rng.uniform(2.0, 8.0)
        o1 = o0 + rng.uniform(3.0, 6.0)
        shipments = list(chaos_corpus["shipments"])
        arrivals = []
        for region, watermark, _ in shipments:
            arrival = watermark + 0.2 + rng.uniform(0.0, 0.3)  # reorder
            if region == victim and o0 <= arrival < o1:
                arrival = o1 + rng.uniform(0.0, 0.5)  # held by the outage
            arrivals.append(arrival)
        for i in range(len(shipments)):       # duplication
            if rng.random() < 0.25:
                shipments.append(shipments[i])
                arrivals.append(arrivals[i] + rng.uniform(0.0, 1.0))
        end = max(arrivals) + 1.0
        hub = FederationHub.from_profile(
            names, chaos_corpus["profile"], consistency="optimistic",
            staleness_budget_s=0.5)
        _drive_schedule(hub, shipments, arrivals, end)
        assert hub.unapplied() == 0
        assert not hub.episode_active
        assert _canon(hub.analytics_snapshot()) == chaos_corpus["expected"]
        classified = (hub.amendments_confirmed + hub.amendments_amended
                      + hub.amendments_retracted)
        assert classified == hub.provisional_verdicts
        assert len(hub.amendments) == classified
        assert len(hub.provisional_log) == hub.provisional_verdicts

    def test_partition_forces_episodes_and_columnar_agrees(
            self, chaos_corpus):
        """Deterministic anchor for the property above: a long outage on
        one region provably opens episodes, and the columnar apply path
        reconciles to the same bytes."""
        names = chaos_corpus["names"]
        victim = names[-1]
        shipments = chaos_corpus["shipments"]
        arrivals = []
        for region, watermark, _ in shipments:
            arrival = watermark + 0.2
            if region == victim and arrival >= 2.0:
                arrival += 14.0
            arrivals.append(arrival)
        end = max(arrivals) + 1.0
        canons = []
        for columnar in (False, True):
            hub = FederationHub.from_profile(
                names, chaos_corpus["profile"], columnar=columnar,
                consistency="optimistic", staleness_budget_s=0.5)
            _drive_schedule(hub, shipments, arrivals, end)
            assert hub.episodes >= 1
            assert hub.provisional_verdicts >= 1
            assert hub.reconciliations >= 1
            canons.append(_canon(hub.analytics_snapshot()))
        assert canons[0] == canons[1] == chaos_corpus["expected"]


# ----------------------------------------------------------------------
# Chaos runs
# ----------------------------------------------------------------------
CHAOS_DURATION_S = 22.0


class TestFederationChaosRunner:
    def _plan(self, regions):
        return FaultPlan([
            Fault(kind="region_outage", at_s=6.0, until_s=11.0,
                  target=regions[-1]),
            Fault(kind="wan_degrade", at_s=4.0, until_s=9.0,
                  target=regions[0], lag_add_s=0.6, jitter_add_s=0.2,
                  duplicate_add_p=0.15),
            Fault(kind="torn_shipment", at_s=8.0, target=regions[1]),
        ])

    @pytest.mark.parametrize("consistency", ["strict", "optimistic"])
    def test_full_plan_runs_clean(self, tmp_path, consistency):
        scene = build_federated_scene(
            seed=1, n_per_region=250, lag_s=0.5, jitter_s=0.3,
            root=tmp_path, consistency=consistency,
            staleness_budget_s=1.0)
        try:
            runner = FederationChaosRunner(scene, self._plan(
                list(scene.regions)))
            report = runner.run(CHAOS_DURATION_S)
            runner.assert_clean()
        finally:
            scene.close()
        assert report["faults_injected"] == 3
        assert report["violations"] == []
        # Every heal point was probed, plus the end probe.
        assert len(report["probes"]) == len(runner.plan.heal_points()) + 1
        assert all(p["ok"] for p in report["probes"])
        assert report["hub_metrics"]["records_applied"] > 0
        if consistency == "optimistic":
            # The five-second outage with a one-second budget must have
            # tripped at least one episode -- and it still converged.
            assert report["hub_metrics"]["episodes"] >= 1

    def test_generated_plan_runs_clean(self, tmp_path):
        scene = build_federated_scene(seed=2, n_per_region=250, lag_s=0.5,
                                      root=tmp_path,
                                      consistency="optimistic",
                                      staleness_budget_s=1.0)
        try:
            plan = FaultPlan.generate(
                random.Random(11), CHAOS_DURATION_S, list(scene.regions),
                n_outages=2, n_degrades=1, n_torn=1)
            runner = FederationChaosRunner(scene, plan)
            runner.run(CHAOS_DURATION_S)
            runner.assert_clean()
        finally:
            scene.close()

    def test_rejects_service_faults_and_unknown_regions(self, tmp_path):
        scene = build_federated_scene(seed=1, n_per_region=10,
                                      root=tmp_path)
        try:
            with pytest.raises(ValueError, match="ServiceChaosRunner"):
                FederationChaosRunner(scene, FaultPlan([
                    Fault(kind="worker_sigkill", at_s=1.0)]))
            with pytest.raises(ValueError, match="unknown region"):
                FederationChaosRunner(scene, FaultPlan([
                    Fault(kind="torn_shipment", at_s=1.0,
                          target="atlantis")]))
            with pytest.raises(ValueError, match="past the run duration"):
                FederationChaosRunner(scene, FaultPlan([
                    Fault(kind="torn_shipment", at_s=30.0,
                          target=list(scene.regions)[0])])).run(
                              CHAOS_DURATION_S)
        finally:
            scene.close()

    def test_violations_raise(self, tmp_path):
        scene = build_federated_scene(seed=1, n_per_region=10,
                                      root=tmp_path)
        try:
            runner = FederationChaosRunner(scene, FaultPlan([]))
            runner.report["violations"].append("synthetic breakage")
            with pytest.raises(ChaosInvariantViolation,
                               match="synthetic breakage"):
                runner.assert_clean()
        finally:
            scene.close()


class TestServiceChaosRunner:
    def test_sigkills_lose_no_acks(self, tmp_path):
        plan = FaultPlan([
            Fault(kind="worker_sigkill", at_s=4.0, target="1"),
            Fault(kind="worker_sigkill", at_s=9.0),  # kill every worker
        ])
        runner = ServiceChaosRunner(plan, tmp_path, mode="inline",
                                    num_workers=2, rounds=16)
        report = runner.run()
        runner.assert_clean()
        assert report["faults_injected"] == 3
        assert report["worker_restarts"] == 3
        assert report["batches_acked"] == report["batches_routed"] > 0
        assert report["service_metrics"]["batches_acked"] == \
            report["service_metrics"]["batches_routed"]

    def test_rejects_federation_faults_and_bad_targets(self, tmp_path):
        with pytest.raises(ValueError, match="only takes worker_sigkill"):
            ServiceChaosRunner(FaultPlan([
                Fault(kind="torn_shipment", at_s=1.0, target="r0")]),
                tmp_path)
        with pytest.raises(ValueError, match="unknown worker"):
            ServiceChaosRunner(FaultPlan([
                Fault(kind="worker_sigkill", at_s=1.0, target="7")]),
                tmp_path, num_workers=2)
        with pytest.raises(ValueError, match="but the drive has"):
            ServiceChaosRunner(FaultPlan([
                Fault(kind="worker_sigkill", at_s=20.0)]),
                tmp_path, rounds=16)
