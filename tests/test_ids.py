"""Tests for the IDS detectors and ensemble."""

import math
import random

import pytest

from repro.ids import (
    Alert,
    EnsembleIds,
    EntropyIds,
    FrequencyIds,
    SignalSpec,
    SpecificationIds,
)
from repro.ids.entropy import shannon_entropy
from repro.ivn import CanFrame
from collections import Counter


def benign_stream(n_cycles=100, ids_periods=((0x100, 0.01), (0x200, 0.02), (0x300, 0.05))):
    """Deterministic periodic benign traffic, time-sorted."""
    events = []
    for can_id, period in ids_periods:
        t = 0.0
        while t < n_cycles * 0.01:
            events.append((t, CanFrame(can_id, bytes([can_id & 0xFF] * 4))))
            t += period
    events.sort(key=lambda e: e[0])
    return events


class TestFrequencyIds:
    def test_learns_periods(self):
        ids = FrequencyIds()
        ids.train(benign_stream())
        assert ids.learned_period(0x100) == pytest.approx(0.01, rel=0.01)
        assert ids.learned_period(0x200) == pytest.approx(0.02, rel=0.01)

    def test_benign_traffic_quiet(self):
        ids = FrequencyIds()
        stream = benign_stream()
        ids.train(stream)
        for t, f in stream:
            ids.observe(t, f)
        assert ids.alerts == []

    def test_injection_detected(self):
        ids = FrequencyIds()
        ids.train(benign_stream())
        # Legit frame at t, injected copy 1 ms later (10% of the period).
        ids.observe(1.000, CanFrame(0x100))
        alert = ids.observe(1.001, CanFrame(0x100))
        assert alert is not None
        assert alert.can_id == 0x100
        assert alert.score > 1

    def test_unknown_id_ignored(self):
        ids = FrequencyIds()
        ids.train(benign_stream())
        assert ids.observe(0.0, CanFrame(0x7FF)) is None
        assert ids.observe(0.0001, CanFrame(0x7FF)) is None

    def test_rare_ids_exempt(self):
        ids = FrequencyIds(min_training_frames=5)
        # Only 3 occurrences in training -> aperiodic, exempt.
        stream = [(0.0, CanFrame(0x50)), (1.0, CanFrame(0x50)), (2.0, CanFrame(0x50))]
        ids.train(stream)
        assert ids.learned_period(0x50) is None

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FrequencyIds(ratio_threshold=0.0)
        with pytest.raises(ValueError):
            FrequencyIds(ratio_threshold=1.5)

    def test_alert_rate_property(self):
        ids = FrequencyIds()
        ids.train(benign_stream())
        ids.observe(1.000, CanFrame(0x100))
        ids.observe(1.0001, CanFrame(0x100))
        assert ids.alert_rate == 0.5


class TestEntropyIds:
    def test_training_requires_enough_frames(self):
        ids = EntropyIds(window=64)
        with pytest.raises(ValueError):
            ids.train(benign_stream()[:10])

    def test_benign_traffic_quiet(self):
        ids = EntropyIds(window=32)
        stream = benign_stream(n_cycles=200)
        ids.train(stream)
        for t, f in stream:
            ids.observe(t, f)
        assert ids.alert_rate < 0.01

    def test_flood_collapses_entropy(self):
        ids = EntropyIds(window=32)
        ids.train(benign_stream(n_cycles=200))
        alerts = [ids.observe(i * 1e-4, CanFrame(0x000)) for i in range(64)]
        fired = [a for a in alerts if a]
        assert fired
        assert "collapse" in fired[0].reason

    def test_fuzzing_inflates_entropy(self):
        ids = EntropyIds(window=32, k_sigma=3.0)
        ids.train(benign_stream(n_cycles=200))
        rng = random.Random(7)
        fired = []
        for i in range(64):
            a = ids.observe(i * 1e-4, CanFrame(rng.randint(0, 0x7FF)))
            if a:
                fired.append(a)
        assert fired
        assert "inflation" in fired[0].reason

    def test_band_is_symmetric_around_mean(self):
        ids = EntropyIds(window=32)
        ids.train(benign_stream(n_cycles=200))
        low, high = ids.band
        assert low < ids.mean < high
        assert high - ids.mean == pytest.approx(ids.mean - low)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            EntropyIds(window=4)

    def test_shannon_entropy_uniform(self):
        assert shannon_entropy(Counter({1: 5, 2: 5, 3: 5, 4: 5})) == pytest.approx(2.0)

    def test_shannon_entropy_degenerate(self):
        assert shannon_entropy(Counter({1: 100})) == 0.0
        assert shannon_entropy(Counter()) == 0.0


class TestSpecificationIds:
    SPECS = [
        SignalSpec(0x100, 4, validator=lambda d: d[0] < 0x80, description="speed"),
        SignalSpec(0x200, 8),
        SignalSpec(0x7E0, 8, description="reserved diag"),
    ]

    def test_known_good_frame_passes(self):
        ids = SpecificationIds(self.SPECS)
        assert ids.observe(0.0, CanFrame(0x100, b"\x10\x00\x00\x00")) is None

    def test_unknown_id_alerts(self):
        ids = SpecificationIds(self.SPECS)
        alert = ids.observe(0.0, CanFrame(0x555))
        assert alert and "unknown id" in alert.reason

    def test_wrong_dlc_alerts(self):
        ids = SpecificationIds(self.SPECS)
        alert = ids.observe(0.0, CanFrame(0x200, b"\x00"))
        assert alert and "dlc" in alert.reason

    def test_out_of_range_payload_alerts(self):
        ids = SpecificationIds(self.SPECS)
        alert = ids.observe(0.0, CanFrame(0x100, b"\xff\x00\x00\x00"))
        assert alert and "range" in alert.reason

    def test_duplicate_spec_rejected(self):
        with pytest.raises(ValueError):
            SpecificationIds([SignalSpec(0x1, 8), SignalSpec(0x1, 4)])

    def test_usable_without_training(self):
        ids = SpecificationIds(self.SPECS)
        assert ids.trained

    def test_unused_specs_reported(self):
        ids = SpecificationIds(self.SPECS)
        ids.train([(0.0, CanFrame(0x100, bytes(4))), (0.1, CanFrame(0x200, bytes(8)))])
        assert ids.unused_specs() == {0x7E0}

    def test_replay_within_spec_missed(self):
        """The documented blind spot: in-spec replays pass."""
        ids = SpecificationIds(self.SPECS)
        legit = CanFrame(0x100, b"\x10\x00\x00\x00")
        assert ids.observe(0.0, legit) is None
        assert ids.observe(0.0001, legit) is None  # replayed -> still passes


class TestEnsemble:
    def _members(self):
        freq = FrequencyIds()
        spec = SpecificationIds([
            SignalSpec(0x100, 0), SignalSpec(0x200, 0), SignalSpec(0x300, 0),
        ])
        return freq, spec

    def test_train_trains_members(self):
        freq, spec = self._members()
        ens = EnsembleIds([freq, spec])
        stream = [(t, CanFrame(f.can_id)) for t, f in benign_stream()]
        ens.train(stream)
        assert freq.trained

    def test_any_mode_fires_on_single_vote(self):
        freq, spec = self._members()
        ens = EnsembleIds([freq, spec], mode="any")
        ens.train([(t, CanFrame(f.can_id)) for t, f in benign_stream()])
        alert = ens.observe(0.0, CanFrame(0x666))  # only spec member fires
        assert alert is not None
        assert "1/2" in alert.reason

    def test_majority_mode_needs_quorum(self):
        freq, spec = self._members()
        ens = EnsembleIds([freq, spec], mode="majority")
        ens.train([(t, CanFrame(f.can_id)) for t, f in benign_stream()])
        # Unknown id: spec alerts, freq does not -> 1/2 < quorum(2).
        assert ens.observe(0.0, CanFrame(0x666)) is None
        # Known id injected fast AND with wrong dlc: both alert.
        ens.observe(1.0, CanFrame(0x100))
        alert = ens.observe(1.0001, CanFrame(0x100, b"\x01"))
        assert alert is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleIds([])
        with pytest.raises(ValueError):
            EnsembleIds([FrequencyIds()], mode="xor")

    def test_members_keep_own_alert_logs(self):
        freq, spec = self._members()
        ens = EnsembleIds([freq, spec], mode="any")
        ens.train([(t, CanFrame(f.can_id)) for t, f in benign_stream()])
        ens.observe(0.0, CanFrame(0x666))
        assert len(spec.alerts) == 1 and len(ens.alerts) == 1
