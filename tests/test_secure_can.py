"""Tests for authenticated CAN (SecOC-style)."""

import pytest

from repro.ivn import CanBus, CanFrame
from repro.ivn.secure_can import (
    SecOcReceiver,
    SecOcSender,
    TAG_ID_BASE,
    secured_payload_overhead,
)
from repro.sim import Simulator

KEY = b"K" * 16


def _link(tag_len=4, mode="inline", window=16):
    sim = Simulator()
    bus = CanBus(sim)
    tx = bus.attach("tx")
    rx_node = bus.attach("rx")
    accepted = []
    receiver = SecOcReceiver(KEY, tag_len=tag_len, window=window,
                             on_accept=lambda cid, data: accepted.append((cid, data)))
    sender = SecOcSender(tx, KEY, tag_len=tag_len, mode=mode)
    if mode == "inline":
        rx_node.on_receive(receiver.receive_inline)
    else:
        rx_node.on_receive(receiver.receive_separate)
    return sim, bus, sender, receiver, accepted


class TestInlineMode:
    def test_roundtrip(self):
        sim, _, sender, receiver, accepted = _link()
        sender.send(0x100, b"\x01\x02\x03")
        sim.run()
        assert accepted == [(0x100, b"\x01\x02\x03")]
        assert receiver.stats.accepted == 1

    def test_capacity(self):
        sim, _, sender, _, _ = _link(tag_len=4)
        assert sender.max_payload() == 3
        with pytest.raises(ValueError):
            sender.send(0x100, b"\x01\x02\x03\x04")

    def test_forged_frame_rejected(self):
        sim, bus, sender, receiver, accepted = _link()
        attacker = bus.attach("attacker")
        attacker.send(CanFrame(0x100, b"\x01" + bytes([1]) + b"\x00" * 4))
        sim.run()
        assert accepted == []
        assert receiver.stats.rejected_mac + receiver.stats.rejected_freshness == 1

    def test_replay_rejected(self):
        sim, bus, sender, receiver, accepted = _link()
        captured = []
        bus.tap(lambda f: captured.append(f) if f.sender == "tx" else None)
        sender.send(0x100, b"\x01")
        sim.run()
        # Attacker replays the captured authenticated frame verbatim.
        attacker = bus.attach("attacker")
        attacker.send(CanFrame(0x100, captured[0].data))
        sim.run()
        assert len(accepted) == 1
        assert receiver.stats.rejected_freshness == 1

    def test_counter_window_tolerates_loss(self):
        sim, _, sender, receiver, accepted = _link(window=16)
        # Simulate loss: sender's counter advances without the receiver
        # seeing frames 1..5.
        for _ in range(5):
            sender._counters[0x100] = sender._counters.get(0x100, 0) + 1
        sender.send(0x100, b"\x01")
        sim.run()
        assert len(accepted) == 1

    def test_loss_beyond_window_rejected(self):
        sim, _, sender, receiver, accepted = _link(window=4)
        sender._counters[0x100] = 100  # receiver is far behind
        sender.send(0x100, b"\x01")
        sim.run()
        assert accepted == []
        assert receiver.stats.rejected_freshness == 1

    def test_multiple_ids_independent_counters(self):
        sim, _, sender, receiver, accepted = _link()
        sender.send(0x100, b"\x01")
        sender.send(0x200, b"\x02")
        sender.send(0x100, b"\x03")
        sim.run()
        assert len(accepted) == 3

    def test_short_frame_rejected(self):
        receiver = SecOcReceiver(KEY, tag_len=4)
        assert not receiver.receive_inline(CanFrame(0x100, b"\x01"))

    def test_tag_len_validation(self):
        sim = Simulator()
        node = CanBus(sim).attach("n")
        with pytest.raises(ValueError):
            SecOcSender(node, KEY, tag_len=8, mode="inline")
        with pytest.raises(ValueError):
            SecOcSender(node, KEY, tag_len=0)
        with pytest.raises(ValueError):
            SecOcSender(node, KEY, tag_len=4, mode="magic")


class TestSeparateMode:
    def test_roundtrip(self):
        sim, _, sender, receiver, accepted = _link(mode="separate", tag_len=7)
        sender.send(0x4C1, b"\x01\x02")  # id with 0x400 bit: no collision
        sim.run()
        assert accepted == [(0x4C1, b"\x01\x02")]

    def test_tag_uses_reserved_extended_space(self):
        sim, bus, sender, _, _ = _link(mode="separate", tag_len=7)
        frames = []
        bus.tap(frames.append)
        sender.send(0x100, b"\x01")
        sim.run()
        tags = [f for f in frames if f.extended]
        assert len(tags) == 1
        assert tags[0].can_id == TAG_ID_BASE | 0x100

    def test_reordered_pairing(self):
        """Tags arriving late/reordered still pair by counter byte."""
        sim, _, sender, receiver, accepted = _link(mode="separate", tag_len=7)
        sender.send(0x100, b"\x01")
        sender.send(0x100, b"\x02")
        sim.run()
        assert len(accepted) == 2

    def test_orphan_tag_rejected(self):
        receiver = SecOcReceiver(KEY, tag_len=7)
        orphan = CanFrame(TAG_ID_BASE | 0x100, bytes(8), extended=True)
        assert receiver.receive_separate(orphan) is False
        assert receiver.stats.rejected_freshness == 1

    def test_pending_bounded(self):
        receiver = SecOcReceiver(KEY, tag_len=7, window=4)
        for i in range(10):
            receiver.receive_separate(CanFrame(0x100, bytes([0, i])))
        assert len(receiver._pending_separate[0x100]) <= 4

    def test_separate_tag_len_validation(self):
        sim = Simulator()
        node = CanBus(sim).attach("n")
        with pytest.raises(ValueError):
            SecOcSender(node, KEY, tag_len=8, mode="separate")


class TestOverheadModel:
    def test_inline_overhead_grows_with_tag(self):
        assert secured_payload_overhead(2) < secured_payload_overhead(4)
        assert secured_payload_overhead(4) < secured_payload_overhead(6)

    def test_separate_constant(self):
        assert secured_payload_overhead(7, mode="separate") == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            secured_payload_overhead(7, mode="inline")  # zero capacity
        with pytest.raises(ValueError):
            secured_payload_overhead(4, mode="magic")
