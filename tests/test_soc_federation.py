"""Tests for repro.soc.federation and the E18 federated topology.

Covers the checkpoint-seeking ``EventLog.tail`` cursor (pinned across a
segment roll), the shipment wire codec (round-trip + every-byte
corruption rejection), the seeded WAN channel model, shipper restart /
receiver dedup (at-least-once made exactly-once), the merger's
``adopt_campaign`` re-adoption dedup, and the tentpole differentials:
a federated hub at zero lag is byte-identical to a union replay and
semantically identical to one global correlation engine fed the union
stream; killing any region mid-ship (dropping its in-flight blobs and
restarting its shipper from seq 0) converges byte-identically to the
uninterrupted twin; and the Hypothesis property that any reordering /
duplication of the shipped segments yields the same final hub state as
in-order delivery.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.soc import (
    CampaignDetection,
    CorrelationEngine,
    CorruptRecord,
    EventLog,
    EventSource,
    FederationHub,
    GlobalCampaignMerger,
    SegmentReceiver,
    SegmentShipper,
    Shipment,
    ShippingChannel,
    decode_shipment,
    encode_shipment,
    make_event,
)
from repro.experiments.e18_federation import build_federated_scene


def ev(vehicle, sig, time, seq, severity=Asil.B):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


def _canon(obj):
    return json.dumps(obj, sort_keys=True)


def _fill_log(log, n_batches, per_batch=2, mark_every=3):
    """Append a deterministic mix of batch and mark records."""
    seq = 0
    for b in range(n_batches):
        t = 0.25 * (b + 1)
        events = [ev(f"v{b}_{i}", f"sig.{b % 4}", t - 0.1, b * 10 + i)
                  for i in range(per_batch)]
        log.append_batch(t, b % 2, events)
        seq += 1
        if (b + 1) % mark_every == 0:
            log.append_mark(t, (b + 1) // mark_every)
            seq += 1
    return seq


# ----------------------------------------------------------------------
# Satellite: EventLog.tail
# ----------------------------------------------------------------------
class TestEventLogTail:
    def test_tail_matches_replay_at_every_cursor(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=3, index_every=1)
        total = _fill_log(log, 10)
        assert log.segments_rotated >= 3
        for cursor in range(total + 1):
            assert list(log.tail(after_seq=cursor)) == \
                list(log.replay(after_seq=cursor))
        log.close()

    def test_tail_seeks_past_closed_segments(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=3, index_every=1)
        total = _fill_log(log, 12)
        tailed = list(log.tail(after_seq=total - 2))
        assert [r.seq for r in tailed] == [total - 1, total]
        stats = log.last_tail_stats
        assert stats["segments_skipped"] >= 2
        assert stats["records_read"] < total
        assert stats["records_yielded"] == 2
        # The in-segment checkpoint seek skipped real bytes too.
        full = list(log.tail(after_seq=0))
        assert len(full) == total
        assert log.last_tail_stats["segments_skipped"] == 0
        log.close()

    def test_tail_across_a_segment_roll(self, tmp_path):
        """Regression pin: a cursor parked exactly at a closed segment's
        last record resumes at the next segment's first record."""
        log = EventLog(tmp_path, segment_max_records=4, index_every=1)
        _fill_log(log, 5)
        cursor = log.last_seq
        assert list(log.tail(after_seq=cursor)) == []
        # Appends that roll into a new segment while the cursor waits.
        before = log.segments_rotated
        appended = _fill_log(log, 6)
        assert log.segments_rotated > before
        fresh = list(log.tail(after_seq=cursor))
        assert [r.seq for r in fresh] == \
            list(range(cursor + 1, cursor + appended + 1))
        assert fresh == list(log.replay(after_seq=cursor))
        # A cursor at a closed segment's boundary skips that segment.
        boundary = log._segment_infos()[0]
        edge = boundary.first_seq + boundary.count - 1
        list(log.tail(after_seq=edge))
        assert log.last_tail_stats["segments_skipped"] >= 1
        log.close()


# ----------------------------------------------------------------------
# Satellite: merger adopt_campaign dedup
# ----------------------------------------------------------------------
def _detection(signature="xr.sig", vehicles=("v1", "v2", "v3"),
               detect_time=10.0):
    return CampaignDetection(signature=signature, detect_time=detect_time,
                             first_time=detect_time - 2.0,
                             vehicles=tuple(sorted(vehicles)),
                             window_s=8.0, k=3)


class TestAdoptCampaignDedup:
    def test_re_adoption_from_second_region_dedups(self):
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        first = _detection(vehicles=("v1", "v2", "v3"))
        assert merger.adopt_campaign(first) is first
        assert merger.adopted == 1
        assert len(merger.detections) == 1
        # Same campaign id announced by a second region: no re-fire,
        # only a spread union.
        again = _detection(vehicles=("v4", "v5", "v6"), detect_time=11.0)
        assert merger.adopt_campaign(again) is None
        assert merger.adoptions_deduped == 1
        assert len(merger.detections) == 1
        assert merger.campaign_vehicles("xr.sig") == {
            "v1", "v2", "v3", "v4", "v5", "v6"}
        assert merger.flagged_signatures == ("xr.sig",)

    def test_adoption_counters_survive_snapshot_round_trip(self):
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        merger.adopt_campaign(_detection())
        merger.adopt_campaign(_detection(vehicles=("v9",)))
        restored = GlobalCampaignMerger.from_snapshot(merger.snapshot())
        assert restored.adopted == 1
        assert restored.adoptions_deduped == 1
        assert _canon(restored.snapshot()) == _canon(merger.snapshot())
        assert restored.metrics()["campaigns_adopted"] == 1.0
        assert restored.metrics()["adoptions_deduped"] == 1.0

    def test_pre_federation_snapshots_load_with_zero_counters(self):
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        state = merger.snapshot()
        del state["adopted"], state["adoptions_deduped"]
        restored = GlobalCampaignMerger.from_snapshot(state)
        assert restored.adopted == 0
        assert restored.adoptions_deduped == 0


# ----------------------------------------------------------------------
# Shipment wire codec
# ----------------------------------------------------------------------
def _shipment_from_log(tmp_path, region="region-a", n_batches=4):
    log = EventLog(tmp_path, segment_max_records=64)
    _fill_log(log, n_batches)
    records = tuple(log.replay())
    log.close()
    return Shipment(region=region, first_seq=records[0].seq,
                    last_seq=records[-1].seq,
                    watermark=records[-1].dispatch_t, records=records)


class TestShipmentCodec:
    def test_round_trip(self, tmp_path):
        shipment = _shipment_from_log(tmp_path)
        assert decode_shipment(encode_shipment(shipment)) == shipment

    def test_every_corrupt_byte_is_rejected_whole(self, tmp_path):
        blob = encode_shipment(_shipment_from_log(tmp_path, n_batches=2))
        for offset in range(len(blob)):
            damaged = bytearray(blob)
            damaged[offset] ^= 0xFF
            with pytest.raises(CorruptRecord):
                decode_shipment(bytes(damaged))
        with pytest.raises(CorruptRecord):
            decode_shipment(blob[:-3])  # truncated mid-frame
        with pytest.raises(CorruptRecord):
            decode_shipment(b"")

    def test_empty_shipment_refuses_to_encode(self):
        with pytest.raises(ValueError):
            encode_shipment(Shipment(region="r", first_seq=1, last_seq=0,
                                     watermark=0.0, records=()))


# ----------------------------------------------------------------------
# Transport: channel, shipper, receiver
# ----------------------------------------------------------------------
class TestShippingChannel:
    def test_lag_gates_delivery(self):
        chan = ShippingChannel(random.Random(0), lag_s=2.0)
        assert chan.send(1.0, b"a")
        assert chan.deliver(2.9) == []
        assert chan.deliver(3.0) == [b"a"]
        assert chan.in_flight == 0

    def test_jitter_reorders_back_to_back_sends(self):
        chan = ShippingChannel(random.Random(3), jitter_s=10.0)
        blobs = [bytes([i]) for i in range(8)]
        for blob in blobs:
            chan.send(0.0, blob)
        delivered = chan.deliver(float("inf"))
        assert sorted(delivered) == sorted(blobs)
        assert delivered != blobs

    def test_duplication_and_outage(self):
        chan = ShippingChannel(random.Random(0), duplicate_p=1.0,
                               outages=((5.0, 10.0),))
        assert chan.send(0.0, b"x")
        assert chan.duplicated == 1
        assert chan.deliver(float("inf")) == [b"x", b"x"]
        assert chan.in_outage(5.0) and not chan.in_outage(10.0)
        assert not chan.send(7.0, b"y")
        assert chan.refused == 1
        assert chan.send(10.0, b"y")

    def test_drop_in_flight_loses_the_wire(self):
        chan = ShippingChannel(random.Random(0), lag_s=1.0)
        chan.send(0.0, b"a")
        chan.send(0.0, b"b")
        assert chan.drop_in_flight() == 2
        assert chan.deliver(float("inf")) == []

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ShippingChannel(random.Random(0), lag_s=-1.0)
        with pytest.raises(ValueError):
            ShippingChannel(random.Random(0), duplicate_p=1.5)


class TestShipperAndReceiver:
    def _pipe(self, tmp_path, **channel_kw):
        log = EventLog(tmp_path, segment_max_records=4)
        chan = ShippingChannel(random.Random(0), **channel_kw)
        shipper = SegmentShipper("region-a", log, chan,
                                 max_batch_records=3)
        return log, chan, shipper, SegmentReceiver("region-a")

    def test_ship_receive_preserves_records(self, tmp_path):
        log, chan, shipper, receiver = self._pipe(tmp_path)
        total = _fill_log(log, 7)
        assert shipper.pump(0.0) == total
        assert shipper.shipped_seq == total
        assert shipper.shipments_sent == -(-total // 3)
        for blob in chan.deliver(float("inf")):
            assert receiver.receive(blob)
        assert sorted(receiver.buffer) == list(range(1, total + 1))
        assert receiver.records_received == total
        assert receiver.duplicates == 0
        # Nothing new: the cursor holds and no blob goes out.
        assert shipper.pump(1.0) == 0
        log.close()

    def test_outage_leaves_cursor_then_retransmits(self, tmp_path):
        log, chan, shipper, receiver = self._pipe(
            tmp_path, outages=((5.0, 10.0),))
        total = _fill_log(log, 5)
        assert shipper.pump(7.0) == 0
        assert shipper.send_refused == 1
        assert shipper.shipped_seq == 0
        assert shipper.pump(12.0) == total
        for blob in chan.deliver(float("inf")):
            receiver.receive(blob)
        assert len(receiver.buffer) == total
        log.close()

    def test_restarted_shipper_reships_and_receiver_dedups(self, tmp_path):
        log, chan, shipper, receiver = self._pipe(tmp_path)
        total = _fill_log(log, 6)
        shipper.pump(0.0)
        for blob in chan.deliver(float("inf")):
            receiver.receive(blob)
        # Region kill: only the durable log survives; the replacement
        # shipper restarts from seq 0 and re-ships all of history.
        replacement = SegmentShipper("region-a", log, chan,
                                     max_batch_records=3)
        assert replacement.pump(1.0) == total
        for blob in chan.deliver(float("inf")):
            assert receiver.receive(blob)
        assert receiver.duplicates == total
        assert sorted(receiver.buffer) == list(range(1, total + 1))
        log.close()

    def test_receiver_rejects_corrupt_and_misrouted(self, tmp_path):
        shipment = _shipment_from_log(tmp_path, region="region-a")
        blob = encode_shipment(shipment)
        receiver = SegmentReceiver("region-b")
        assert not receiver.receive(blob)  # wrong region
        damaged = bytearray(blob)
        damaged[7] ^= 0xFF
        assert not receiver.receive(bytes(damaged))
        assert receiver.corrupt_rejected == 2
        assert receiver.records_received == 0

    def test_out_of_order_buffering(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=64)
        _fill_log(log, 4)
        records = list(log.replay())
        log.close()
        one = encode_shipment(Shipment("r", records[0].seq, records[0].seq,
                                       records[0].dispatch_t,
                                       (records[0],)))
        rest = encode_shipment(Shipment("r", records[1].seq,
                                        records[-1].seq,
                                        records[-1].dispatch_t,
                                        tuple(records[1:])))
        receiver = SegmentReceiver("r")
        assert receiver.receive(rest)
        assert receiver.next_ready() is None  # gap at seq 1
        assert receiver.receive(one)
        assert receiver.next_ready().seq == 1

    def test_shipper_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            SegmentShipper("r", None, None, max_batch_records=0)


# ----------------------------------------------------------------------
# Hub units
# ----------------------------------------------------------------------
class TestFederationHubUnits:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FederationHub([])
        with pytest.raises(ValueError):
            FederationHub(["a", "a"])

    def test_receive_routes_and_counts_unrouted(self, tmp_path):
        hub = FederationHub(["region-a"], 1)
        blob = encode_shipment(_shipment_from_log(tmp_path, "region-a"))
        assert hub.receive(blob)
        assert hub.receivers["region-a"].shipments_received == 1
        assert not hub.receive(b"garbage")
        foreign = encode_shipment(
            _shipment_from_log(tmp_path / "other", "region-z"))
        assert not hub.receive(foreign)
        assert hub.corrupt_unrouted == 2

    def test_adopt_verdicts_opens_once_and_unions_spread(self):
        hub = FederationHub(["a", "b"], 1, k=3)
        first = _detection(vehicles=("v1", "v2", "v3"))
        assert hub.adopt_verdicts([first]) == (1, 0)
        assert hub.flagged_signatures() == {"xr.sig"}
        assert len(hub.tracker.incidents) == 1
        for engine in hub._all_engines:
            assert engine.is_flagged("xr.sig")
        # The same campaign id from the second region dedups; its
        # vehicles still attach to the open incident.
        again = _detection(vehicles=("v7", "v8", "v9"))
        assert hub.adopt_verdicts([again]) == (0, 1)
        assert len(hub.tracker.incidents) == 1
        assert hub.merger.campaign_vehicles("xr.sig") >= {"v7", "v8", "v9"}

    def test_watermark_gate_stalls_on_silent_region(self, tmp_path):
        hub = FederationHub(["region-a", "region-b"], 2)
        blob = encode_shipment(
            _shipment_from_log(tmp_path, "region-a", n_batches=3))
        hub.receive(blob)
        # region-b has announced nothing: its frontier is -inf, so no
        # region-a record is provably ordered yet.
        assert hub.advance(0.0) == 0
        assert hub.stalled_rounds == 1
        assert hub.unapplied() > 0
        # End-of-stream lifts the gate and everything drains.
        assert hub.finalize(0.0) == hub.records_applied
        assert hub.unapplied() == 0
        metrics = hub.metrics()
        assert metrics["records_applied"] == hub.records_applied
        assert metrics["stalled_rounds"] == 1.0


# ----------------------------------------------------------------------
# The tentpole differentials (federated scenes)
# ----------------------------------------------------------------------
DIFF_N = 250
DIFF_DURATION_S = 22.0
KILL_AT_S = 10.0


def _union_reference_hub(scene):
    """A fresh hub fed every region's full log directly (no transport),
    drained in one finalize -- the zero-lag union replay reference."""
    profile = next(iter(scene.regions.values())).center.federation_profile()
    ref = FederationHub.from_profile(list(scene.regions), profile)
    for name, runtime in scene.regions.items():
        receiver = ref.receivers[name]
        for record in runtime.store.log.replay():
            receiver.buffer[record.seq] = record
    ref.finalize(0.0)
    return ref


def _global_engine_flagged(scene, profile):
    """One un-sharded, un-federated engine fed the union stream in the
    hub's global (dispatch_t, region, seq) order."""
    engine = CorrelationEngine(
        window_s=profile["window_s"], k=profile["k"],
        dedup_window_s=profile["dedup_window_s"],
        max_lateness_s=profile["max_lateness_s"])
    entries = []
    for index, name in enumerate(scene.regions):
        for record in scene.regions[name].store.log.replay():
            entries.append((record.dispatch_t, index, record.seq, record))
    entries.sort(key=lambda e: e[:3])
    for _, _, _, record in entries:
        if record.kind == "batch":
            engine.observe_batch(list(record.events))
    return set(engine.flagged_signatures)


class TestFederatedDifferential:
    @pytest.fixture(scope="class")
    def zero_lag_scene_result(self):
        scene = build_federated_scene(seed=1, n_per_region=DIFF_N,
                                      lag_s=0.0)
        try:
            scene.start()
            scene.run(DIFF_DURATION_S)
            profile = next(iter(
                scene.regions.values())).center.federation_profile()
            yield {
                "scene": scene,
                "profile": profile,
                "hub_canon": _canon(scene.hub.analytics_snapshot()),
                "ref_canon": _canon(
                    _union_reference_hub(scene).analytics_snapshot()),
                "global_flagged": _global_engine_flagged(scene, profile),
                "local_flagged": {
                    name: set(runtime.center.flagged_signatures())
                    for name, runtime in scene.regions.items()},
                "local_verdicts": {
                    name: runtime.center.export_verdicts()
                    for name, runtime in scene.regions.items()},
            }
        finally:
            scene.close()

    def test_zero_lag_is_byte_identical_to_union_replay(
            self, zero_lag_scene_result):
        r = zero_lag_scene_result
        assert r["hub_canon"] == r["ref_canon"]
        assert r["scene"].hub.unapplied() == 0

    def test_federated_verdicts_equal_one_global_soc(
            self, zero_lag_scene_result):
        r = zero_lag_scene_result
        scene = r["scene"]
        # Every planted campaign is sub-k in every region: invisible
        # locally, detected only by the cross-region stitch.
        for name in scene.regions:
            assert not (r["local_flagged"][name]
                        & scene.campaign_signatures)
            assert r["local_verdicts"][name] == []
        flagged = scene.hub.flagged_signatures()
        assert scene.campaign_signatures <= flagged
        assert flagged == r["global_flagged"]

    def test_federation_profile_round_trips_into_hub(
            self, zero_lag_scene_result):
        r = zero_lag_scene_result
        profile = r["profile"]
        hub = FederationHub.from_profile(["a", "b"], profile)
        assert hub.num_shards == profile["num_shards"]
        assert hub.merger.window_s == profile["window_s"]
        assert hub.merger.k == profile["k"]

    @pytest.fixture(scope="class")
    def uninterrupted_twin_canon(self):
        canon, _ = _run_killable_scene(kill_region=None)
        return canon

    @pytest.mark.parametrize("victim", ["region-0", "region-1", "region-2"])
    def test_kill_any_region_mid_ship_converges_byte_identically(
            self, victim, uninterrupted_twin_canon):
        canon, dropped = _run_killable_scene(kill_region=victim)
        assert dropped > 0  # the kill really lost in-flight blobs
        assert canon == uninterrupted_twin_canon


def _run_killable_scene(kill_region):
    """Run the differential scene; optionally kill one region's shipping
    leg mid-run (drop its wire, restart its shipper from seq 0)."""
    scene = build_federated_scene(seed=1, n_per_region=DIFF_N,
                                  lag_s=1.0, jitter_s=0.3)
    dropped = 0
    try:
        scene.start()
        if kill_region is not None:
            scene.sim.run_until(KILL_AT_S)
            runtime = scene.regions[kill_region]
            dropped = runtime.channel.drop_in_flight()
            runtime.shipper = SegmentShipper(
                kill_region, runtime.store.log, runtime.channel)
        scene.run(DIFF_DURATION_S)
        assert scene.hub.unapplied() == 0
        return _canon(scene.hub.analytics_snapshot()), dropped
    finally:
        scene.close()


# ----------------------------------------------------------------------
# Satellite: Hypothesis interleaving/duplication property
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shipment_corpus():
    """A small federated run rendered as per-region shipment blobs, plus
    the canonical hub state that in-order delivery produces."""
    scene = build_federated_scene(seed=7, n_per_region=150, lag_s=0.0)
    try:
        scene.start()
        scene.run(18.0)
        names = list(scene.regions)
        profile = next(iter(
            scene.regions.values())).center.federation_profile()
        blobs = []
        for name in names:
            records = list(scene.regions[name].store.log.replay())
            for i in range(0, len(records), 5):
                chunk = records[i:i + 5]
                blobs.append(encode_shipment(Shipment(
                    region=name, first_seq=chunk[0].seq,
                    last_seq=chunk[-1].seq,
                    watermark=chunk[-1].dispatch_t,
                    records=tuple(chunk))))
        live_canon = _canon(scene.hub.analytics_snapshot())
        planted = set(scene.campaign_signatures)
    finally:
        scene.close()
    expected_hub = FederationHub.from_profile(names, profile)
    for blob in blobs:
        expected_hub.receive(blob)
        expected_hub.advance(0.0)
    expected_hub.finalize(0.0)
    expected = _canon(expected_hub.analytics_snapshot())
    # The in-order blob replay reproduces the live zero-lag run exactly,
    # and it detected the planted cross-region campaigns.
    assert expected == live_canon
    assert planted <= set(expected_hub.merger.flagged_signatures)
    return {"names": names, "profile": profile, "blobs": blobs,
            "expected": expected}


class TestInterleavingInvariance:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_any_reordering_and_duplication_converges(
            self, shipment_corpus, seed):
        rng = random.Random(seed)
        blobs = list(shipment_corpus["blobs"])
        blobs += [b for b in blobs if rng.random() < 0.3]  # duplicates
        rng.shuffle(blobs)
        hub = FederationHub.from_profile(shipment_corpus["names"],
                                         shipment_corpus["profile"])
        for i, blob in enumerate(blobs):
            hub.receive(blob)
            if i % 5 == 0:  # interleave gated applies with arrivals
                hub.advance(0.0)
        hub.finalize(0.0)
        assert hub.unapplied() == 0
        assert _canon(hub.analytics_snapshot()) == \
            shipment_corpus["expected"]


# ----------------------------------------------------------------------
# Satellite: outage-window boundary semantics are [t0, t1)
# ----------------------------------------------------------------------
class TestOutageWindowBoundaries:
    def test_outage_window_boundaries(self):
        """Half-open pin: refused at exactly t0 and through the window,
        but a send at exactly t1 (the advertised outage end -- where a
        retry loop schedules itself) must succeed."""
        chan = ShippingChannel(random.Random(0), outages=((5.0, 10.0),))
        assert chan.in_outage(5.0)
        assert chan.in_outage(9.999)
        assert not chan.in_outage(10.0)
        assert not chan.send(5.0, b"a")          # inclusive left edge
        assert not chan.send(7.5, b"b")
        assert chan.send(10.0, b"c")             # exclusive right edge
        assert chan.send(4.999, b"d")
        assert chan.outage_refused == 2
        assert chan.refused == 2

    def test_outage_refused_counts_only_outage_refusals(self):
        chan = ShippingChannel(random.Random(0), outages=((1.0, 2.0),))
        assert chan.send(0.0, b"x")
        assert not chan.send(1.5, b"y")
        assert chan.outage_refused == 1
        assert chan.sent == 1


# ----------------------------------------------------------------------
# Satellite: shipper restart from seq 0 *during* an active outage
# ----------------------------------------------------------------------
def test_restart_from_seq0_during_outage_converges(tmp_path):
    """The shipper dies and restarts from cursor 0 while its link is
    still down: nothing ships until heal, then all of history re-ships
    and the receiver's dedup converges the hub byte-identically to the
    union-log reference."""
    outage = (6.0, 14.0)
    scene = build_federated_scene(
        seed=3, n_per_region=DIFF_N, lag_s=0.5,
        outages={"region-1": (outage,)}, root=tmp_path)
    try:
        scene.start()
        mid_outage = (outage[0] + outage[1]) / 2.0
        scene.sim.run_until(mid_outage)
        runtime = scene.regions["region-1"]
        assert runtime.channel.in_outage(scene.sim.now)
        shipped_before = runtime.shipper.shipped_seq
        runtime.channel.drop_in_flight()
        runtime.shipper = SegmentShipper(
            "region-1", runtime.store.log, runtime.channel)
        assert runtime.shipper.shipped_seq == 0
        # Mid-outage pumps must refuse without moving the fresh cursor.
        assert runtime.shipper.pump(scene.sim.now) == 0
        assert runtime.shipper.shipped_seq == 0
        scene.run(DIFF_DURATION_S)
        assert scene.hub.unapplied() == 0
        # History re-shipped: everything up to the old cursor arrived
        # at least twice, and dedup absorbed it.
        assert scene.hub.receivers["region-1"].duplicates >= shipped_before
        assert _canon(scene.hub.analytics_snapshot()) == \
            _canon(_union_reference_hub(scene).analytics_snapshot())
    finally:
        scene.close()


# ----------------------------------------------------------------------
# Satellite: stall-age / watermark-lag gauges
# ----------------------------------------------------------------------
class TestPartitionGauges:
    def _hub_with_region_a_data(self, tmp_path, **kw):
        hub = FederationHub(["region-a", "region-b"], 2, **kw)
        blob = encode_shipment(
            _shipment_from_log(tmp_path, "region-a", n_batches=3))
        hub.receive(blob)
        return hub

    def test_stall_age_grows_while_a_region_is_silent(self, tmp_path):
        hub = self._hub_with_region_a_data(tmp_path)
        hub.advance(10.0)
        m = hub.metrics()
        assert m["stall_age_s[region-a]"] == 0.0  # it just progressed
        assert m["stall_age_s[region-b]"] == 0.0  # first observation
        hub.advance(14.0)
        m = hub.metrics()
        assert m["stall_age_s[region-b]"] == 4.0
        assert m["stall_age_max_s"] == 4.0
        # The brewing partition is visible *before* anything applies:
        # the gate has region-a's records all stalled behind region-b.
        assert hub.records_applied == 0

    def test_watermark_lag_tracks_bound_spread(self, tmp_path):
        hub = self._hub_with_region_a_data(tmp_path)
        hub.advance(10.0)
        m = hub.metrics()
        # region-b has announced nothing: no finite bound, lag reads 0
        # for it (nothing comparable) and 0 for the leader.
        assert m["watermark_lag_s[region-a]"] == 0.0
        assert m["watermark_lag_s[region-b]"] == 0.0
        blob = encode_shipment(
            _shipment_from_log(tmp_path / "b", "region-b", n_batches=1))
        hub.receive(blob)
        hub.advance(11.0)
        m = hub.metrics()
        assert m["watermark_lag_s[region-b]"] > 0.0
        assert m["watermark_lag_s[region-b]"] == m["watermark_lag_max_s"]
        assert m["watermark_lag_s[region-a]"] == 0.0

    def test_gauges_reset_when_the_laggard_catches_up(self, tmp_path):
        hub = self._hub_with_region_a_data(tmp_path)
        hub.advance(10.0)
        hub.advance(15.0)
        assert hub.metrics()["stall_age_s[region-b]"] == 5.0
        blob = encode_shipment(
            _shipment_from_log(tmp_path / "b", "region-b", n_batches=6))
        hub.receive(blob)
        hub.advance(16.0)
        assert hub.metrics()["stall_age_s[region-b]"] == 0.0
