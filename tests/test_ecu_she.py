"""Tests for the SHE model: slots, key update protocol, secure boot."""

import pytest

from repro.ecu import (
    She,
    SheError,
    SheFlags,
    SLOT_BOOT_MAC_KEY,
    SLOT_KEY_1,
    SLOT_MASTER_ECU_KEY,
    SLOT_RAM_KEY,
    make_key_update,
)
from repro.ecu.she import SLOT_BOOT_MAC

UID = bytes(range(15))
MASTER = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


@pytest.fixture
def she():
    instance = She(uid=UID)
    instance.provision(SLOT_MASTER_ECU_KEY, MASTER)
    return instance


class TestSlots:
    def test_uid_length_enforced(self):
        with pytest.raises(ValueError):
            She(uid=bytes(10))

    def test_provision_and_has_key(self, she):
        assert she.has_key(SLOT_MASTER_ECU_KEY)
        assert not she.has_key(SLOT_KEY_1)

    def test_provision_rejects_double(self, she):
        with pytest.raises(SheError):
            she.provision(SLOT_MASTER_ECU_KEY, bytes(16))

    def test_provision_rejects_bad_length(self, she):
        with pytest.raises(SheError):
            she.provision(SLOT_KEY_1, b"short")

    def test_empty_slot_unusable(self, she):
        with pytest.raises(SheError):
            she.encrypt_ecb(SLOT_KEY_1, bytes(16))

    def test_key_usage_enforced(self, she):
        she.provision(SLOT_KEY_1, bytes(16), SheFlags.KEY_USAGE_MAC)
        with pytest.raises(SheError):
            she.encrypt_ecb(SLOT_KEY_1, bytes(16))
        she.generate_mac(SLOT_KEY_1, b"ok")  # allowed

    def test_enc_key_cannot_mac(self, she):
        she.provision(SLOT_KEY_1, bytes(16))  # ENC usage
        with pytest.raises(SheError):
            she.generate_mac(SLOT_KEY_1, b"no")

    def test_ram_key_bypasses_usage_check(self, she):
        she.load_plain_key(bytes(16))
        she.generate_mac(SLOT_RAM_KEY, b"m")
        she.encrypt_ecb(SLOT_RAM_KEY, bytes(16))

    def test_debugger_protection(self, she):
        she.provision(SLOT_KEY_1, bytes(16), SheFlags.DEBUGGER_PROTECTION)
        she.debugger_attached = True
        with pytest.raises(SheError):
            she.encrypt_ecb(SLOT_KEY_1, bytes(16))
        she.debugger_attached = False
        she.encrypt_ecb(SLOT_KEY_1, bytes(16))


class TestCryptoCommands:
    def test_ecb_roundtrip(self, she):
        she.provision(SLOT_KEY_1, bytes(16))
        ct = she.encrypt_ecb(SLOT_KEY_1, b"A" * 16)
        assert she.decrypt_ecb(SLOT_KEY_1, ct) == b"A" * 16

    def test_cbc_roundtrip(self, she):
        she.provision(SLOT_KEY_1, bytes(16))
        iv = bytes(16)
        ct = she.encrypt_cbc(SLOT_KEY_1, iv, b"long message here")
        assert she.decrypt_cbc(SLOT_KEY_1, iv, ct) == b"long message here"

    def test_mac_generate_verify(self, she):
        she.provision(SLOT_KEY_1, bytes(16), SheFlags.KEY_USAGE_MAC)
        tag = she.generate_mac(SLOT_KEY_1, b"payload")
        assert she.verify_mac(SLOT_KEY_1, b"payload", tag)
        assert not she.verify_mac(SLOT_KEY_1, b"Payload", tag)

    def test_truncated_mac(self, she):
        she.provision(SLOT_KEY_1, bytes(16), SheFlags.KEY_USAGE_MAC)
        tag = she.generate_mac(SLOT_KEY_1, b"m", tag_len=4)
        assert len(tag) == 4
        assert she.verify_mac(SLOT_KEY_1, b"m", tag)

    def test_command_counter_increments(self, she):
        she.provision(SLOT_KEY_1, bytes(16))
        before = she.command_count
        she.encrypt_ecb(SLOT_KEY_1, bytes(16))
        assert she.command_count == before + 1


class TestKeyUpdateProtocol:
    def _update(self, counter=1, target=SLOT_KEY_1, new_key=b"N" * 16,
                flags=SheFlags.NONE, uid=UID, auth_key=MASTER):
        return make_key_update(
            uid, target, SLOT_MASTER_ECU_KEY, auth_key, new_key, counter, flags,
        )

    def test_load_key_installs(self, she):
        she.load_key(self._update())
        assert she.has_key(SLOT_KEY_1)
        assert she.slot_counter(SLOT_KEY_1) == 1

    def test_loaded_key_is_functional(self, she):
        she.load_key(self._update(new_key=b"K" * 16))
        ct = she.encrypt_ecb(SLOT_KEY_1, bytes(16))
        from repro.crypto.aes import AES
        assert ct == AES(b"K" * 16).encrypt_block(bytes(16))

    def test_uid_mismatch_rejected(self, she):
        bad = self._update(uid=bytes(15))
        with pytest.raises(SheError, match="UID"):
            she.load_key(bad)

    def test_wrong_auth_key_rejected(self, she):
        bad = self._update(auth_key=b"X" * 16)
        with pytest.raises(SheError, match="M3"):
            she.load_key(bad)

    def test_tampered_m2_rejected(self, she):
        upd = self._update()
        tampered = type(upd)(upd.m1, upd.m2[:-1] + bytes([upd.m2[-1] ^ 1]), upd.m3)
        with pytest.raises(SheError, match="M3"):
            she.load_key(tampered)

    def test_rollback_rejected(self, she):
        she.load_key(self._update(counter=5))
        with pytest.raises(SheError, match="rollback"):
            she.load_key(self._update(counter=5, new_key=b"O" * 16))
        with pytest.raises(SheError, match="rollback"):
            she.load_key(self._update(counter=4, new_key=b"O" * 16))

    def test_monotonic_update_accepted(self, she):
        she.load_key(self._update(counter=1))
        she.load_key(self._update(counter=2, new_key=b"Q" * 16))
        assert she.slot_counter(SLOT_KEY_1) == 2

    def test_write_protected_slot_rejected(self, she):
        she.load_key(self._update(counter=1, flags=SheFlags.WRITE_PROTECTION))
        with pytest.raises(SheError, match="write-protected"):
            she.load_key(self._update(counter=2))

    def test_flags_installed(self, she):
        she.load_key(self._update(flags=SheFlags.KEY_USAGE_MAC))
        she.generate_mac(SLOT_KEY_1, b"m")  # usable as MAC key

    def test_replay_of_same_message_rejected(self, she):
        upd = self._update(counter=3)
        she.load_key(upd)
        with pytest.raises(SheError, match="rollback"):
            she.load_key(upd)

    def test_empty_auth_slot_rejected(self):
        she = She(uid=UID)  # no master key
        upd = make_key_update(UID, SLOT_KEY_1, SLOT_MASTER_ECU_KEY, MASTER, b"N" * 16, 1)
        with pytest.raises(SheError, match="authorising"):
            she.load_key(upd)

    def test_make_key_update_validation(self):
        with pytest.raises(ValueError):
            make_key_update(bytes(3), SLOT_KEY_1, 1, MASTER, b"N" * 16, 1)
        with pytest.raises(ValueError):
            make_key_update(UID, SLOT_KEY_1, 1, MASTER, b"short", 1)
        with pytest.raises(ValueError):
            make_key_update(UID, SLOT_KEY_1, 1, MASTER, b"N" * 16, 1 << 28)


class TestSecureBoot:
    FIRMWARE = b"application image v1" * 10
    BOOT_KEY = b"B" * 16

    def test_boot_succeeds_on_authentic_image(self, she):
        she.set_boot_mac(self.FIRMWARE, self.BOOT_KEY)
        assert she.secure_boot(self.FIRMWARE)
        assert not she.boot_failed

    def test_boot_fails_on_tampered_image(self, she):
        she.set_boot_mac(self.FIRMWARE, self.BOOT_KEY)
        assert not she.secure_boot(self.FIRMWARE + b"!")
        assert she.boot_failed

    def test_failed_boot_disables_protected_keys(self, she):
        she.set_boot_mac(self.FIRMWARE, self.BOOT_KEY)
        she.provision(SLOT_KEY_1, bytes(16),
                      SheFlags.BOOT_PROTECTION | SheFlags.KEY_USAGE_MAC)
        she.secure_boot(b"evil")
        with pytest.raises(SheError, match="failed secure boot"):
            she.generate_mac(SLOT_KEY_1, b"m")

    def test_unprotected_keys_survive_failed_boot(self, she):
        she.set_boot_mac(self.FIRMWARE, self.BOOT_KEY)
        she.provision(SLOT_KEY_1, bytes(16))
        she.secure_boot(b"evil")
        she.encrypt_ecb(SLOT_KEY_1, bytes(16))  # still allowed

    def test_successful_boot_clears_latch(self, she):
        she.set_boot_mac(self.FIRMWARE, self.BOOT_KEY)
        she.secure_boot(b"evil")
        assert she.boot_failed
        she.secure_boot(self.FIRMWARE)
        assert not she.boot_failed

    def test_unprovisioned_boot_raises(self, she):
        with pytest.raises(SheError, match="not provisioned"):
            she.secure_boot(b"fw")


class TestLockdown:
    def test_locked_she_refuses_everything(self, she):
        she.provision(SLOT_KEY_1, bytes(16))
        she.lock()
        with pytest.raises(SheError, match="locked"):
            she.encrypt_ecb(SLOT_KEY_1, bytes(16))
        with pytest.raises(SheError, match="locked"):
            she.load_plain_key(bytes(16))
