"""Tests for the hardened ingest front door (repro.soc.service).

Covers the three hardening layers -- CMAC-authenticated sessions
(HELLO/CHALLENGE/AUTH handshake, per-batch tag trailers verified by the
owning worker), per-client token-bucket quotas feeding targeted
SUPPRESS/REFUSED, and supervised worker auto-restart (exactly-once
replay from the handoff journal, byte-identical to an uninterrupted
twin) -- plus the pinned regressions for the frontend robustness
bugfixes: malformed-BATCH ``CorruptRecord`` translation, stale SUPPRESS
after ``kill_worker``, monotonic deadlines/latency, and the
closing-transport write guard.
"""

import asyncio
import inspect
import time

import pytest

from repro.core.safety import Asil
from repro.soc import (
    CorruptRecord,
    EventSource,
    FrameStreamDecoder,
    IngestService,
    ServiceConfig,
    VehicleClient,
    WorkerCore,
    make_event,
    recover_worker,
    serve,
)
from repro.soc.ingest import TokenBucket
from repro.soc.service import (
    _HandoffJournal,
    _ProcessBackend,
    auth_tag,
    batch_id_of,
    batch_tag,
    derive_session_key,
    encode_auth,
    encode_batch,
    encode_hello,
    seal_payload,
    worker_root,
)
from repro.soc.shard import ConservationError
from repro.soc.store import EventLog, canonical_dumps, frame_payload

FLEET_KEY = b"\x42" * 16


def ev(vehicle, sig, t, seq, severity=Asil.C):
    return make_event(vehicle, EventSource.IDS, sig, t, seq,
                      severity=severity)


def batch(vehicle, rnd, n=3, t0=900.0):
    return encode_batch(rnd, [
        ev(vehicle, f"sig.{i % 4}", t0 + rnd + 0.01 * i, rnd * 100 + i)
        for i in range(n)])


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_is_all_or_nothing(self):
        b = TokenBucket(rate=10.0, burst=100.0, now=0.0)
        assert b.level(0.0) == 100.0
        assert b.try_take(100.0, 0.0)
        assert not b.try_take(1.0, 0.0)   # empty: refuse whole amount
        assert b.level(0.0) == 0.0        # a refused take consumed nothing

    def test_refill_is_rate_limited_and_capped_at_burst(self):
        b = TokenBucket(rate=10.0, burst=100.0, now=0.0)
        assert b.try_take(100.0, 0.0)
        assert b.level(5.0) == 50.0       # 5s * 10/s
        assert b.level(1000.0) == 100.0   # capped at burst, not 10000
        assert b.try_take(60.0, 1000.0)
        assert not b.try_take(60.0, 1000.0)

    def test_time_never_runs_backwards(self):
        b = TokenBucket(rate=10.0, burst=100.0, now=50.0)
        assert b.try_take(100.0, 50.0)
        # An earlier timestamp must not mint tokens (or crash).
        assert b.level(0.0) == 0.0
        assert not b.try_take(1.0, 0.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0),
                                            (1.0, 0.0), (1.0, -5.0)])
    def test_constructor_validation(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


# ----------------------------------------------------------------------
# Pinned regression: malformed BATCH payloads raise CorruptRecord
# ----------------------------------------------------------------------
class TestBatchIdOfRegression:
    """``batch_id_of`` used to leak a bare ``ValueError`` on malformed
    payloads, killing the reader coroutine instead of taking the one
    deliberate drop-the-connection path."""

    @pytest.mark.parametrize("payload", [
        b'["e"]',                 # missing comma: no id field at all
        b'["e",',                 # first comma, then nothing
        b'["e",12',               # no second comma to terminate the id
        b'["e",xyz,[]]',          # non-integer id
        b'["e",1.5e,[]]',         # unparseable number
        b'',                      # empty
    ])
    def test_malformed_payload_raises_corrupt_record(self, payload):
        with pytest.raises(CorruptRecord):
            batch_id_of(payload)

    def test_malformed_payload_never_raises_bare_value_error(self):
        try:
            batch_id_of(b'["e",bogus,[]]')
        except CorruptRecord:
            pass  # the classified error -- a subclass of RuntimeError
        # (a bare ValueError would have propagated past the except above)

    def test_route_translates_and_server_drops_deliberately(self, tmp_path):
        async def main():
            svc = IngestService(1, mode="inline", root=tmp_path)
            server = await serve(svc)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(frame_payload(encode_hello("veh-mal")))
            # Frames fine, JSON-shaped enough for the '["e"' fast path,
            # but the batch id is not scannable.
            writer.write(frame_payload(b'["e",bogus,[]]'))
            await writer.drain()
            got = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        assert got  # WELCOME arrived, then the server closed on us
        assert svc.protocol_errors == 1
        assert svc.metrics()["connections"] == 0
        assert svc.batches_routed == 0  # never buffered


# ----------------------------------------------------------------------
# Pinned regression: decoder byte accounting under rejection
# ----------------------------------------------------------------------
class TestDecoderRejectedBytes:
    """``bytes_fed`` used to count data that provoked a CorruptRecord,
    letting an attacker's oversized-header probe inflate the accepted-
    byte accounting the pre-auth cap reads."""

    def test_rejected_bytes_counted_separately(self):
        decoder = FrameStreamDecoder(max_frame_bytes=64)
        probe = (1 << 20).to_bytes(4, "little") + b"\0\0\0\0"
        with pytest.raises(CorruptRecord):
            decoder.feed(probe)
        assert decoder.bytes_fed == 0
        assert decoder.bytes_rejected == len(probe)

    def test_accepted_bytes_still_counted(self):
        decoder = FrameStreamDecoder()
        frame = frame_payload(b'["q"]')
        assert decoder.feed(frame) == [b'["q"]']
        assert decoder.bytes_fed == len(frame)
        assert decoder.bytes_rejected == 0


# ----------------------------------------------------------------------
# Pinned regression: kill_worker recomputes suppression
# ----------------------------------------------------------------------
class TestKillWorkerSuppressionRegression:
    def test_no_stale_suppress_after_crash(self, tmp_path):
        """``kill_worker`` used to zero ``_outstanding`` without
        recomputing SUPPRESS: survivors of a worker crash stayed muted
        until unrelated traffic next touched the shard."""
        svc = IngestService(1, mode="inline", root=tmp_path,
                            suppress_after=1, resume_below=1,
                            supervise=False, clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        assert svc.route(conn, batch("veh-1", 0))
        svc.flush()
        assert svc.suppressed(0) and conn.suppressed
        svc.kill_worker(0)
        # The crash emptied the shard's pipeline: suppression must lift
        # NOW, not at the next unrelated flush.
        assert not svc.suppressed(0)
        assert not conn.suppressed
        assert svc.batches_forgotten == 1
        svc.audit_conservation()

    def test_forgotten_work_counted_in_conservation(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            supervise=False, clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        for rnd in range(3):
            assert svc.route(conn, batch("veh-1", rnd))
        svc.flush()          # 3 batches now in flight
        assert svc.route(conn, batch("veh-1", 3))  # 1 buffered
        svc.kill_worker(0)
        assert svc.batches_forgotten == 4
        assert svc.inflight_batches() == 0 and svc.buffered() == 0
        svc.audit_conservation()

    def test_cooked_metrics_detected(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        assert svc.route(conn, batch("veh-1", 0))
        svc.flush()
        svc.poll_completions()
        svc.audit_conservation()
        svc.batches_routed += 1  # cook the books
        with pytest.raises(ConservationError):
            svc.audit_conservation()


# ----------------------------------------------------------------------
# Pinned regression: monotonic deadlines and latency
# ----------------------------------------------------------------------
class TestMonotonicClocks:
    def test_no_wall_clock_reads_on_deadline_or_latency_paths(self):
        """Deadlines and ACK-latency math must never read the wall
        clock: an NTP step mid-drain used to cut the timeout short (or
        hang it) and poison latency stats."""
        for func in (IngestService.drain_and_close,
                     _ProcessBackend.close,
                     WorkerCore.ingest_handoff):
            src = inspect.getsource(func)
            assert "time.time()" not in src, func.__qualname__

    def test_drain_deadline_immune_to_wall_clock_step(self, tmp_path):
        # A wall clock jumped 10 years into the future: the monotonic
        # drain deadline must not fire early.
        svc = IngestService(1, mode="inline", root=tmp_path,
                            clock=lambda: time.time() + 315_360_000)
        conn = svc.open_conn("veh-1")
        assert svc.route(conn, encode_batch(0, [
            ev("veh-1", "s", time.time() + 315_360_000 - 1.0, 1)]))
        metrics = svc.drain_and_close(timeout_s=5.0)
        assert svc.batches_acked == 1
        assert metrics[0]["service_handoffs"] == 1.0

    def test_handoff_latency_uses_monotonic_stamp(self, tmp_path):
        core = WorkerCore(0, tmp_path)
        t_mono = time.monotonic() - 0.5
        report = core.ingest_handoff(
            1000.0, [(1, "veh-1", 0, batch("veh-1", 0, t0=999.0))],
            seq=1, t_mono=t_mono)
        assert report.acks[0][3] == 3
        m = core.metrics()
        # ~0.5s of queue latency observed, regardless of the wall time
        # (t_send=1000.0 is nowhere near the monotonic clock).
        assert 0.4 < m["service_handoff_latency_max_s"] < 60.0
        core.close()


# ----------------------------------------------------------------------
# Pinned regression: never write SUPPRESS to a closing transport
# ----------------------------------------------------------------------
class _ClosingWriter:
    """A transport that is mid-close: writes after that are a bug."""

    def __init__(self):
        self.writes = []
        self.closing = False

    def is_closing(self):
        return self.closing

    def write(self, data):
        assert not self.closing, "write to a closing transport"
        self.writes.append(data)

    def close(self):
        self.closing = True


class TestSuppressWriteGuard:
    def test_shard_transition_skips_closing_transport(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            suppress_after=1, resume_below=1,
                            clock=lambda: 100.0)
        live, dying = _ClosingWriter(), _ClosingWriter()
        conn_live = svc.open_conn("veh-live", live)
        conn_dying = svc.open_conn("veh-dying", dying)
        dying.closing = True  # transport close raced the transition
        assert svc.route(conn_live, batch("veh-live", 0))
        svc.flush()  # outstanding=1 >= suppress_after: SUPPRESS
        assert svc.suppressed(0)
        # The dying conn's *state* still flipped; only the write skipped.
        assert conn_dying.suppressed and not dying.writes
        assert conn_live.suppressed and len(live.writes) == 1
        svc.poll_completions()  # RESUME
        assert not conn_dying.suppressed and not dying.writes
        assert len(live.writes) == 2
        svc.drain_and_close()

    def test_quota_suppress_skips_closing_transport(self):
        clk = [0.0]
        svc = IngestService(1, mode="inline", quota_bytes_per_s=10.0,
                            quota_burst_bytes=10.0, clock=lambda: clk[0],
                            mono_clock=lambda: clk[0])
        w = _ClosingWriter()
        conn = svc.open_conn("veh-1", w)
        w.closing = True
        payload = batch("veh-1", 0)
        assert not svc.route(conn, payload)  # over the 10-byte burst
        assert conn.quota_suppressed and not w.writes
        svc.audit_conservation()


# ----------------------------------------------------------------------
# Authenticated sessions
# ----------------------------------------------------------------------
class TestSessionCrypto:
    def test_session_keys_differ_per_client(self):
        k1 = derive_session_key(FLEET_KEY, "veh-1")
        k2 = derive_session_key(FLEET_KEY, "veh-2")
        assert k1 != k2 and len(k1) == len(k2) == 16
        assert derive_session_key(FLEET_KEY, "veh-1") == k1

    def test_batch_tag_binds_client_batch_and_payload(self):
        key = derive_session_key(FLEET_KEY, "veh-1")
        payload = batch("veh-1", 7)
        tag = batch_tag(key, "veh-1", 7, payload)
        assert tag != batch_tag(key, "veh-2", 7, payload)
        assert tag != batch_tag(key, "veh-1", 8, payload)
        assert tag != batch_tag(key, "veh-1", 7, payload + b" ")

    def test_seal_payload_keeps_frontend_scans_working(self):
        key = derive_session_key(FLEET_KEY, "veh-1")
        payload = batch("veh-1", 12)
        sealed = seal_payload(key, "veh-1", payload)
        assert sealed[:4] == b'["e"'          # fast-path prefix intact
        assert batch_id_of(sealed) == 12      # 2-comma scan intact
        assert sealed[:-16] == payload        # tag rides outside the JSON

    def test_worker_verifies_and_rejects_tampered_trailer(self, tmp_path):
        config = ServiceConfig(fleet_key=FLEET_KEY)
        core = WorkerCore(0, tmp_path, config)
        key = derive_session_key(FLEET_KEY, "veh-1")
        good = seal_payload(key, "veh-1", batch("veh-1", 0))
        flipped = bytearray(seal_payload(key, "veh-1", batch("veh-1", 1)))
        flipped[-1] ^= 0x01                       # tampered tag
        unsealed = batch("veh-1", 2)              # missing tag entirely
        wrong_client = seal_payload(key, "veh-1", batch("veh-1", 3))
        report = core.ingest_handoff(1000.0, [
            (1, "veh-1", 0, good),
            (1, "veh-1", 1, bytes(flipped)),
            (1, "veh-1", 2, unsealed),
            (2, "veh-2", 3, wrong_client),        # veh-1's tag, veh-2's key
        ])
        assert report.acks == ((1, 0, 3, 3), (1, 1, 0, -2),
                               (1, 2, 0, -2), (2, 3, 0, -2))
        assert core.cmac_rejected == 3
        assert core.metrics()["service_cmac_rejected"] == 3.0
        core.close()

    def test_plain_mode_accepts_unsealed_batches(self, tmp_path):
        core = WorkerCore(0, tmp_path)  # no fleet key: plain mode
        report = core.ingest_handoff(
            1000.0, [(1, "veh-1", 0, batch("veh-1", 0))])
        assert report.acks == ((1, 0, 3, 3),)
        assert core.cmac_rejected == 0
        core.close()


class TestAuthHandshake:
    def _serve(self, tmp_path, **svc_kwargs):
        config = ServiceConfig(fleet_key=FLEET_KEY)
        svc = IngestService(1, mode="inline", root=tmp_path, config=config,
                            **svc_kwargs)
        return svc

    def test_authenticated_round_trip(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path)
            server = await serve(svc)
            client = VehicleClient(
                "veh-1", port=server.port,
                session_key=derive_session_key(FLEET_KEY, "veh-1"))
            await client.connect()
            assert client.shard == 0
            t0 = time.time() - 60.0
            for rnd in range(3):
                await client.send_events(
                    [ev("veh-1", "sig.a", t0 + rnd, rnd)])
            await client.drain()
            assert client.events_accepted == 3
            await client.close()
            await server.stop()
            return svc

        svc = asyncio.run(main())
        assert svc.auth_failures == 0
        assert svc.batches_acked == 3

    def test_wrong_key_refused_and_counted(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path)
            server = await serve(svc)
            impostor = VehicleClient("veh-1", port=server.port,
                                     session_key=b"\x13" * 16)
            with pytest.raises(ConnectionError):
                await impostor.connect()
            await server.stop()
            return svc

        svc = asyncio.run(main())
        assert svc.auth_failures == 1
        assert svc.metrics()["auth_failures"] == 1.0
        assert len(svc.conns) == 0

    def test_keyless_client_cannot_join_authenticated_fleet(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path)
            server = await serve(svc)
            plain = VehicleClient("veh-1", port=server.port)
            with pytest.raises((CorruptRecord, ConnectionError)):
                await plain.connect()
            await server.stop()

        asyncio.run(main())

    def test_batch_before_hello_is_a_protocol_fault(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path)
            server = await serve(svc)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(frame_payload(batch("veh-1", 0)))
            await writer.drain()
            got = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        assert got == b""  # dropped without a WELCOME
        assert svc.protocol_errors == 1

    def test_garbage_auth_tag_refused(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path)
            server = await serve(svc)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(frame_payload(encode_hello("veh-1")))
            await writer.drain()
            # Swallow the CHALLENGE, answer with an unparseable tag.
            decoder = FrameStreamDecoder()
            while not decoder.feed(await reader.read(1 << 16)):
                pass
            writer.write(frame_payload(
                canonical_dumps(["u", "not-hex!"])))
            await writer.drain()
            got = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        assert got == b""
        assert svc.auth_failures == 1

    def test_handshake_read_deadline(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path, handshake_timeout_s=0.1)
            server = await serve(svc)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            # Say nothing: the server must reap us, not park forever.
            got = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        assert got == b""
        assert svc.handshake_timeouts == 1
        assert svc.half_open == 0  # slot released

    def test_preauth_byte_cap(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path, max_preauth_bytes=256)
            server = await serve(svc)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            # A torn frame whose declared length is plausible: the
            # decoder buffers it all pre-auth -- the cap must trip.
            writer.write((4096).to_bytes(4, "little") + b"\0\0\0\0")
            writer.write(b"\0" * 1024)
            await writer.drain()
            got = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        assert got == b""
        assert svc.preauth_overflows == 1

    def test_half_open_cap_refuses_at_accept(self, tmp_path):
        async def main():
            svc = self._serve(tmp_path, max_half_open=1,
                              handshake_timeout_s=5.0)
            server = await serve(svc)
            # First connection parks in the handshake (never speaks).
            _, w1 = await asyncio.open_connection("127.0.0.1", server.port)
            await asyncio.sleep(0.05)
            r2, w2 = await asyncio.open_connection("127.0.0.1", server.port)
            got = await asyncio.wait_for(r2.read(), timeout=10.0)
            w1.close()
            w2.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        assert got == b""
        assert svc.half_open_rejected == 1


# ----------------------------------------------------------------------
# Per-client quotas
# ----------------------------------------------------------------------
class TestQuotas:
    def test_over_quota_refused_counted_and_suppressed(self, tmp_path):
        clk = [0.0]
        svc = IngestService(1, mode="inline", root=tmp_path,
                            quota_bytes_per_s=100.0, quota_burst_bytes=200.0,
                            clock=lambda: 1000.0, mono_clock=lambda: clk[0])
        conn = svc.open_conn("veh-1")
        admitted_bytes = refused_bytes = admitted = refused = 0
        for rnd in range(12):
            payload = batch("veh-1", rnd, t0=900.0)
            if svc.route(conn, payload):
                admitted += 1
                admitted_bytes += len(payload)
            else:
                refused += 1
                refused_bytes += len(payload)
        assert admitted >= 1 and refused >= 1
        assert admitted_bytes <= 200.0  # the burst bounds admission
        assert svc.quota_refused == refused == conn.quota_refused
        assert svc.quota_refused_bytes == refused_bytes
        assert conn.quota_suppressed and conn.suppressed
        svc.flush()
        svc.poll_completions()
        svc.audit_conservation()  # refused batches never enter the flow
        # Refill past half the burst: the next flush lifts suppression.
        clk[0] += 2.0
        svc.flush()
        assert not conn.quota_suppressed and not conn.suppressed
        svc.drain_and_close()

    def test_quota_is_per_connection(self, tmp_path):
        clk = [0.0]
        svc = IngestService(1, mode="inline", root=tmp_path,
                            quota_bytes_per_s=100.0, quota_burst_bytes=250.0,
                            clock=lambda: 1000.0, mono_clock=lambda: clk[0])
        hog = svc.open_conn("veh-hog")
        polite = svc.open_conn("veh-polite")
        while svc.route(hog, batch("veh-hog", hog.batches, t0=900.0)):
            pass
        # The hog exhausted *its* bucket; the polite client is untouched.
        assert hog.quota_suppressed
        assert svc.route(polite, batch("veh-polite", 0, t0=900.0))
        assert not polite.quota_suppressed and not polite.suppressed
        svc.drain_and_close()

    def test_refused_frame_returns_credit_to_client(self, tmp_path):
        async def main():
            svc = IngestService(1, mode="inline", root=tmp_path,
                                quota_bytes_per_s=1.0, quota_burst_bytes=1.0,
                                initial_credits=4)
            server = await serve(svc)
            client = VehicleClient("veh-1", port=server.port)
            await client.connect()
            t0 = time.time() - 60.0
            # Every batch exceeds the 1-byte burst: all hard-refused.
            for rnd in range(3):
                await client.send_events(
                    [ev("veh-1", "sig.a", t0 + rnd, rnd)])
            while client.batches_refused < 3:
                await asyncio.sleep(0.005)
            await client.close()
            await server.stop()
            return svc, client

        svc, client = asyncio.run(main())
        assert client.batches_refused == 3
        assert client.events_refused_quota == 3
        assert client.events_accepted == 0
        assert client.credits >= 4  # every refusal returned its credit
        assert svc.quota_refused == 3
        assert svc.batches_routed == 0
        svc.audit_conservation()

    def test_hostile_flood_disconnected_after_threshold(self, tmp_path):
        async def main():
            svc = IngestService(1, mode="inline", root=tmp_path,
                                quota_bytes_per_s=1.0, quota_burst_bytes=1.0,
                                quota_disconnect_after=5,
                                initial_credits=100)
            server = await serve(svc)
            client = VehicleClient("veh-flood", port=server.port)
            await client.connect()
            t0 = time.time() - 60.0
            with pytest.raises(ConnectionError):
                for rnd in range(200):
                    await client.send_events(
                        [ev("veh-flood", "sig.a", t0 + rnd, rnd)])
                    await asyncio.sleep(0)
                await client.drain()
                raise ConnectionError("flood was never cut off")
            await client.close()
            await server.stop()
            return svc

        svc = asyncio.run(main())
        assert svc.quota_disconnects == 1
        assert svc.quota_refused >= 5
        assert len(svc.conns) == 0


# ----------------------------------------------------------------------
# Handoff journal + log truncation (the exactly-once machinery)
# ----------------------------------------------------------------------
class TestHandoffJournal:
    def test_record_lookup_and_reload(self, tmp_path):
        path = tmp_path / "handoff-journal.log"
        j = _HandoffJournal(path)
        j.record(1, [(1, 0, 3, 3), (2, 1, 3, 0)])
        j.record(2, [(1, 2, 3, 3)])
        assert j.lookup(1) == ((1, 0, 3, 3), (2, 1, 3, 0))
        assert j.lookup(99) == ()
        j.close()
        j2 = _HandoffJournal(path)
        assert j2.lookup(1) == ((1, 0, 3, 3), (2, 1, 3, 0))
        assert j2.lookup(2) == ((1, 2, 3, 3),)
        j2.close()

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "handoff-journal.log"
        j = _HandoffJournal(path)
        j.record(1, [(1, 0, 3, 3)])
        j.record(2, [(1, 1, 3, 3)])
        j.close()
        # Tear the last record mid-frame (a crash mid-write).
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        j2 = _HandoffJournal(path)
        assert j2.lookup(1) == ((1, 0, 3, 3),)
        assert j2.lookup(2) == ()  # torn entry dropped whole
        j2.close()

    def test_bounded_rewrite_keeps_recent_entries(self, tmp_path):
        path = tmp_path / "handoff-journal.log"
        j = _HandoffJournal(path, keep=4)
        for seq in range(1, 20):
            j.record(seq, [(1, seq, 1, 1)])
        assert len(j.entries) <= 2 * 4 + 1
        assert j.lookup(19) == ((1, 19, 1, 1),)
        assert j.lookup(1) == ()  # aged out
        j.close()
        j2 = _HandoffJournal(path, keep=4)
        assert j2.lookup(19) == ((1, 19, 1, 1),)
        j2.close()


class TestTruncateAfterLastMark:
    def _log(self, tmp_path, **kw):
        return EventLog(tmp_path / "log", **kw)

    @staticmethod
    def _kinds(log):
        return [r.kind for r in log.replay()]

    def test_truncates_unmarked_suffix(self, tmp_path):
        log = self._log(tmp_path)
        log.append_batch(1.0, 0, [ev("v", "s", 0.5, 1)])
        log.append_mark(1.0, 1)
        log.append_batch(2.0, 0, [ev("v", "s", 1.5, 2)])  # no marker: doomed
        log.append_batch(2.0, 0, [ev("v", "s", 1.6, 3)])
        stats = log.truncate_after_last_mark()
        assert stats["records_dropped"] == 2
        assert stats["bytes_dropped"] > 0
        assert self._kinds(log) == ["batch", "mark"]
        # The log stays appendable at the boundary.
        assert log.append_batch(3.0, 0, [ev("v", "s", 2.5, 4)]) == 3
        assert self._kinds(log) == ["batch", "mark", "batch"]
        log.close()

    def test_noop_when_log_ends_at_marker(self, tmp_path):
        log = self._log(tmp_path)
        log.append_batch(1.0, 0, [ev("v", "s", 0.5, 1)])
        log.append_mark(1.0, 1)
        stats = log.truncate_after_last_mark()
        assert stats == {"records_dropped": 0, "bytes_dropped": 0,
                         "segments_deleted": 0}
        assert self._kinds(log) == ["batch", "mark"]
        log.close()

    def test_deletes_whole_markerless_segments(self, tmp_path):
        log = self._log(tmp_path, segment_max_records=2)
        log.append_batch(1.0, 0, [ev("v", "s", 0.5, 1)])
        log.append_mark(1.0, 1)                            # seg 1: marked
        log.append_batch(2.0, 0, [ev("v", "s", 1.5, 2)])   # seg 2: no marker
        log.append_batch(2.0, 0, [ev("v", "s", 1.6, 3)])
        log.append_batch(2.0, 0, [ev("v", "s", 1.7, 4)])   # seg 3: no marker
        stats = log.truncate_after_last_mark()
        assert stats["segments_deleted"] >= 1
        assert stats["records_dropped"] == 3
        assert self._kinds(log) == ["batch", "mark"]
        log.close()

    def test_empty_and_markerless_logs_reset_clean(self, tmp_path):
        log = self._log(tmp_path)
        assert log.truncate_after_last_mark()["records_dropped"] == 0
        log.append_batch(1.0, 0, [ev("v", "s", 0.5, 1)])
        stats = log.truncate_after_last_mark()
        assert stats["records_dropped"] == 1
        assert self._kinds(log) == []
        assert log.append_batch(2.0, 0, [ev("v", "s", 1.5, 2)]) == 1
        assert self._kinds(log) == ["batch"]
        log.close()


# ----------------------------------------------------------------------
# Supervised auto-restart: exactly-once, byte-identical
# ----------------------------------------------------------------------
def _drive_with_kills(root, mode, kill_rounds, rounds=16, num_workers=2,
                      authenticated=True):
    """Drive an IngestService deterministically (injected wall clock,
    manual flush per round so handoff grouping matches across runs),
    SIGKILL-ing every worker at each round in ``kill_rounds``.  Returns
    (acked_batches, metrics, mttr_samples)."""
    config = ServiceConfig(
        max_lateness_s=7200.0, snapshot_every_pumps=3,
        fleet_key=FLEET_KEY if authenticated else None)
    clk = [1000.0]
    svc = IngestService(num_workers, mode=mode, root=root, config=config,
                        clock=lambda: clk[0])
    conns = [svc.open_conn(f"veh-{i}") for i in range(3)]
    keys = {c.client_id: derive_session_key(FLEET_KEY, c.client_id)
            for c in conns}
    acked = 0
    mttrs = []
    for rnd in range(rounds):
        clk[0] += 1.0
        for conn in conns:
            payload = batch(conn.client_id, rnd)
            if authenticated:
                payload = seal_payload(keys[conn.client_id],
                                       conn.client_id, payload)
            assert svc.route(conn, payload)
        svc.flush()
        if rnd in kill_rounds:
            t0 = time.monotonic()
            for shard in range(num_workers):
                svc.sigkill_worker(shard)
            assert svc.check_workers() == num_workers
            # MTTR: kill -> every resubmitted handoff reported back.
            while svc.inflight_batches():
                acked += len(svc.poll_completions(timeout=0.05))
            mttrs.append(time.monotonic() - t0)
        acked += len(svc.poll_completions(
            timeout=0.01 if mode == "process" else 0.0))
    deadline = time.monotonic() + 60.0
    while (svc.buffered() or any(x > 0 for x in svc._outstanding)) \
            and time.monotonic() < deadline:
        svc.flush()
        acked += len(svc.poll_completions(timeout=0.01))
    svc.audit_conservation()
    metrics = svc.metrics()
    svc.drain_and_close()
    return acked, metrics, mttrs


def _assert_worker_stores_identical(root_a, root_b, num_workers):
    for shard in range(num_workers):
        dir_a, dir_b = worker_root(root_a, shard), worker_root(root_b, shard)
        segs_a = sorted(dir_a.rglob("seg-*.log"))
        segs_b = sorted(dir_b.rglob("seg-*.log"))
        assert [p.relative_to(dir_a) for p in segs_a] == [
            p.relative_to(dir_b) for p in segs_b] != []
        for a, b in zip(segs_a, segs_b):
            assert a.read_bytes() == b.read_bytes(), a.name
        snap_a = recover_worker(root_a, shard).analytics_snapshot()
        snap_b = recover_worker(root_b, shard).analytics_snapshot()
        assert snap_a == snap_b


class TestAutoRestart:
    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_sigkill_restart_byte_identical_to_twin(self, tmp_path, mode):
        """Kill every worker mid-load (twice): the restarted run must be
        byte-identical -- raw log segments AND analytics snapshots -- to
        an uninterrupted twin, with zero admitted-batch ACKs lost."""
        acked, metrics, _ = _drive_with_kills(
            tmp_path / "killed", mode, kill_rounds={4, 10})
        twin_acked, twin_metrics, _ = _drive_with_kills(
            tmp_path / "twin", mode, kill_rounds=set())
        assert acked == twin_acked == 16 * 3
        assert metrics["worker_restarts"] == 4.0
        assert metrics["events_acked"] == twin_metrics["events_acked"]
        assert metrics["batches_acked"] == twin_metrics["batches_acked"]
        _assert_worker_stores_identical(tmp_path / "killed",
                                        tmp_path / "twin", 2)

    def test_replay_is_exactly_once(self, tmp_path):
        """A handoff whose report died with the worker is resubmitted
        and replayed from the journal -- never re-admitted (the inline
        backend processes synchronously, so every kill happens *after*
        the handoff was fully processed but before the frontend consumed
        its report: the pure duplicate-report window)."""
        acked, metrics, _ = _drive_with_kills(
            tmp_path / "r", "inline", kill_rounds={3, 7, 11})
        assert acked == 16 * 3
        assert metrics["duplicate_reports"] >= 1.0
        assert metrics["handoffs_resubmitted"] >= 1.0
        assert metrics["events_acked"] == 16 * 3 * 3  # no double-admission

    def test_mttr_is_bounded(self, tmp_path):
        _, _, mttrs = _drive_with_kills(
            tmp_path / "m", "process", kill_rounds={6})
        assert len(mttrs) == 1
        assert mttrs[0] < 30.0  # generous CI bound; E20 publishes real MTTR

    def test_unsupervised_service_does_not_restart(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            supervise=False, clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        assert svc.route(conn, batch("veh-1", 0))
        svc.flush()
        svc.sigkill_worker(0)
        assert svc.check_workers() == 0
        assert svc.worker_restarts == 0

    def test_restart_requires_durable_root(self):
        svc = IngestService(1, mode="inline", supervise=True,
                            clock=lambda: 100.0)
        svc.sigkill_worker(0)
        with pytest.raises(RuntimeError):
            svc.check_workers()

    def test_worker_core_recover_requires_root(self):
        with pytest.raises(ValueError):
            WorkerCore(0, None, recover=True)

    def test_recovered_worker_replays_journal_acks(self, tmp_path):
        config = ServiceConfig(max_lateness_s=7200.0)
        core = WorkerCore(0, tmp_path, config)
        r1 = core.ingest_handoff(1000.0, [(1, "veh-1", 0, batch("veh-1", 0))],
                                 seq=1)
        assert r1.acks == ((1, 0, 3, 3),)
        # Simulate the crash: no close(), rebuild from disk in recover
        # mode, then resubmit the same handoff.
        core2 = WorkerCore(0, tmp_path, config, recover=True)
        r2 = core2.ingest_handoff(1000.0,
                                  [(1, "veh-1", 0, batch("veh-1", 0))],
                                  seq=1)
        assert r2.acks == r1.acks     # the owed ack report, replayed
        assert r2.dispatched == 0     # nothing re-admitted
        assert core2.replayed_handoffs == 1
        assert core2.metrics()["service_replayed_handoffs"] == 1.0
        # A genuinely new handoff still processes normally.
        r3 = core2.ingest_handoff(1001.0,
                                  [(1, "veh-1", 1, batch("veh-1", 1))],
                                  seq=2)
        assert r3.acks == ((1, 1, 3, 3),)
        core2.close()

    def test_process_server_survives_sigkill_under_live_load(self, tmp_path):
        """End-to-end over real sockets: SIGKILL both workers while
        clients are streaming; every admitted batch is still ACKed."""
        async def main():
            config = ServiceConfig(max_lateness_s=7200.0,
                                   fleet_key=FLEET_KEY)
            svc = IngestService(2, mode="process", root=tmp_path,
                                config=config)
            server = await serve(svc, flush_interval_s=0.005)
            clients = []
            for i in range(3):
                cid = f"veh-{i}"
                c = VehicleClient(
                    cid, port=server.port,
                    session_key=derive_session_key(FLEET_KEY, cid))
                await c.connect()
                clients.append(c)
            t0 = time.time() - 120.0
            for rnd in range(20):
                for c in clients:
                    await c.send_events(
                        [ev(c.client_id, f"sig.{rnd % 3}",
                            t0 + rnd + 0.01 * j, rnd * 10 + j)
                         for j in range(3)])
                if rnd == 8:
                    svc.sigkill_worker(0)
                    svc.sigkill_worker(1)
                await asyncio.sleep(0.002)
            for c in clients:
                await c.drain()
            sent = sum(c.events_sent for c in clients)
            accepted = sum(c.events_accepted for c in clients)
            for c in clients:
                await c.close()
            await server.stop()
            return svc, sent, accepted

        svc, sent, accepted = asyncio.run(main())
        assert accepted == sent == 3 * 20 * 3  # zero ACKs lost
        assert svc.worker_restarts == 2
        svc.audit_conservation()
