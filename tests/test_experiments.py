"""Smoke tests for the experiment drivers (reduced parameters).

The full-size runs (and their shape assertions) live in ``benchmarks/``;
here we verify every driver executes, produces well-formed tables, and
holds its headline invariant at small scale.
"""

import pytest

from repro.analysis.sweep import SweepResult
from repro.experiments import (
    ALL_EXPERIMENTS,
    e01_gateway,
    e03_realtime,
    e05_classbreak,
    e06_v2x_density,
    e08_access,
    e09_extensibility,
    e10_ota,
    e11_tradeoff,
    e13_secureboot,
    e14_verification,
)


class TestRegistry:
    def test_all_twenty_registered(self):
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 21)}

    def test_all_callable(self):
        assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())


class TestDrivers:
    def test_e1_table_shape(self):
        result = e01_gateway.run()
        assert isinstance(result, SweepResult)
        assert len(result.rows) == 5
        configs = result.column("config")
        assert "flat-bus" in configs and "gateway-allowlist" in configs
        by = {r["config"]: r for r in result.rows}
        assert by["gateway-allowlist"]["forged_delivered"] == 0
        assert by["flat-bus"]["forged_delivered"] > 0

    def test_e3_baseline_vs_auth(self):
        result = e03_realtime.run(bitrate=125_000.0, duration=1.0)
        by = {r["config"]: r for r in result.rows}
        assert by["none"]["utilization"] < by["inline-4B"]["utilization"]

    def test_e5_blast_radius_ordering(self):
        result = e05_classbreak.run(fleet_size=4)
        by = {r["regime"]: r["blast_radius"] for r in result.rows}
        assert by["naive-shared"] > by["naive-per-device"] > by["uptane"]

    def test_e6_saturation(self):
        result = e06_v2x_density.run(verify_rate=100.0, duration=1.0)
        rows = result.rows
        assert rows[-1]["offered_msgs_per_s"] > rows[0]["offered_msgs_per_s"]

    def test_e8_relay_and_crack(self):
        relay = e08_access.run_relay()
        assert any(r["unlocked"] for r in relay.rows)
        assert any(not r["unlocked"] for r in relay.rows)

    def test_e9_crossover(self):
        result = e09_extensibility.run(generations=6)
        assert result.rows[0]["extensible_wins"] is False
        assert result.rows[-1]["extensible_wins"] is True

    def test_e10_matrix_extremes(self):
        result = e10_ota.run()
        by = {r["compromised_keys"]: r for r in result.rows}
        assert by["none"]["uptane_client"] == "safe"
        assert by["both-repos-all-online"]["uptane_client"] == "COMPROMISED"

    def test_e11_policies(self):
        result = e11_tradeoff.run()
        assert len(result.rows) == 3

    def test_e13_outcomes(self):
        result = e13_secureboot.run()
        by = {r["mutation"]: r for r in result.rows}
        assert by["authentic"]["policy_halt"] == "running"
        assert by["payload-flip"]["policy_halt"] == "locked"

    def test_e14_space_growth(self):
        result = e14_verification.run()
        spaces = result.column("config_space")
        assert spaces == sorted(spaces)

    def test_e14_reserved(self):
        result = e14_verification.run_reserved(n_fuzz_frames=500)
        assert result.rows[0]["fuzz_hits_reserved"] == 0

    def test_tables_render(self):
        for result in (e09_extensibility.run(generations=3),
                       e11_tradeoff.run()):
            table = result.to_table()
            assert table.startswith("== ")
            assert len(table.splitlines()) >= 4
