"""Tests for repro.soc.service -- the network ingest front door.

Covers the wire codec (hypothesis round-trip byte-identity, truncate-
anywhere torn-frame handling, CRC corruption at every byte offset --
mirroring ``test_soc_store.py``'s log-codec harness: same envelope, same
obligations), the incremental frame-stream decoder against arbitrary
chunkings, worker-core admission/ACK accounting, the tentpole
differentials (inline service mode byte-identical to driving the
in-process pipeline directly, log bytes included), SUPPRESS/RESUME
backpressure propagation, credit-based client flow control, the asyncio
server end-to-end over real sockets, multiprocess worker scaling, and
kill-a-worker crash recovery via ``recover_worker``.
"""

import asyncio
import json
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.soc import (
    CorruptRecord,
    EventSource,
    FrameStreamDecoder,
    IngestService,
    SecurityEvent,
    ServiceConfig,
    VehicleClient,
    WorkerCore,
    make_event,
    recover_worker,
    serve,
    shard_for_client,
)
from repro.soc.service import (
    batch_id_of,
    decode_message,
    encode_ack,
    encode_auth,
    encode_batch,
    encode_bye,
    encode_challenge,
    encode_hello,
    encode_refused,
    encode_resume,
    encode_suppress,
    encode_welcome,
    worker_root,
)
from repro.soc.store import _HEADER, canonical_dumps, frame_payload


def ev(vehicle, sig, time, seq, severity=Asil.B):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)


@st.composite
def security_events(draw):
    return SecurityEvent(
        event_id=draw(st.text(min_size=1, max_size=32)),
        time=draw(st.floats(min_value=0.0, max_value=1e9,
                            allow_nan=False, allow_infinity=False)),
        vehicle_id=draw(st.text(min_size=1, max_size=12)),
        source=draw(st.sampled_from(list(EventSource))),
        signature=draw(st.text(min_size=1, max_size=24)),
        severity=draw(st.sampled_from(list(Asil))),
        detail=tuple(draw(st.lists(
            st.tuples(st.text(max_size=8), _json_scalars), max_size=4))),
    )


event_batches = st.lists(security_events(), max_size=8)


# ----------------------------------------------------------------------
# Wire codec: round trip, torn frames, CRC corruption
# ----------------------------------------------------------------------
class TestWireCodec:
    @given(batch_id=st.integers(min_value=0, max_value=2**53),
           events=event_batches)
    @settings(max_examples=150, deadline=None)
    def test_batch_round_trip_byte_identical(self, batch_id, events):
        payload = encode_batch(batch_id, events)
        tag, decoded_id, decoded = decode_message(payload)
        assert tag == "e"
        assert decoded_id == batch_id
        assert decoded == events
        # Canonical: re-encoding the decoded batch reproduces the bytes,
        # so wire bytes are log bytes are shipment bytes.
        assert encode_batch(decoded_id, decoded) == payload
        assert batch_id_of(payload) == batch_id

    @given(events=event_batches)
    @settings(max_examples=50, deadline=None)
    def test_framed_round_trip_through_stream_decoder(self, events):
        payload = encode_batch(3, events)
        decoder = FrameStreamDecoder()
        assert decoder.feed(frame_payload(payload)) == [payload]

    def test_control_messages_round_trip(self):
        assert decode_message(encode_hello("veh-1")) == ("h", "veh-1", 1)
        assert decode_message(encode_welcome(2, 4, 8)) == ("w", 2, 4, 8)
        assert decode_message(encode_ack(7, 5, 1)) == ("a", 7, 5, 1)
        assert decode_message(encode_suppress()) == ("s",)
        assert decode_message(encode_resume()) == ("r",)
        assert decode_message(encode_bye()) == ("q",)
        nonce = bytes(range(16))
        assert decode_message(encode_challenge(nonce)) == ("c", nonce.hex())
        tag = bytes(range(16, 32))
        assert decode_message(encode_auth(tag)) == ("u", tag.hex())
        assert decode_message(encode_refused(9, 1)) == ("n", 9, 1)

    @pytest.mark.parametrize("payload", [
        b"not json at all",
        canonical_dumps(["z", 1]),          # unknown tag
        canonical_dumps({"tag": "e"}),      # wrong shape
        canonical_dumps(["e", 1, ["bad"]]),  # malformed event obj
        canonical_dumps([]),                # empty
    ])
    def test_garbage_payloads_rejected_whole(self, payload):
        with pytest.raises(CorruptRecord):
            decode_message(payload)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncate_anywhere_never_yields_partial_frame(self, data):
        events = data.draw(st.lists(security_events(), min_size=1,
                                    max_size=4), label="events")
        payloads = [encode_batch(i, events) for i in range(3)]
        stream = b"".join(frame_payload(p) for p in payloads)
        boundaries = []
        offset = 0
        for p in payloads:
            offset += _HEADER.size + len(p)
            boundaries.append(offset)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1),
                        label="cut")
        decoder = FrameStreamDecoder()
        out = decoder.feed(stream[:cut])
        whole = sum(1 for end in boundaries if end <= cut)
        # Exactly the whole frames decode; the torn tail stays buffered.
        assert out == payloads[:whole]
        assert decoder.pending_bytes == cut - (
            boundaries[whole - 1] if whole else 0)
        # ... and the rest of the stream completes it losslessly.
        assert decoder.feed(stream[cut:]) == payloads[whole:]
        assert decoder.pending_bytes == 0

    def test_crc_corruption_at_every_byte_offset(self):
        payload = encode_batch(1, [ev("v1", "sig.a", 1.0, 1)])
        frame = frame_payload(payload)
        for offset in range(len(frame)):
            blob = bytearray(frame)
            blob[offset] ^= 0xFF
            decoder = FrameStreamDecoder()
            corrupt_len = int.from_bytes(blob[:4], "little")
            if offset < 4 and corrupt_len > len(payload):
                # A corrupted length field claims a longer frame: the
                # decoder must keep waiting (torn), or -- past the size
                # cap -- reject.  Feeding padding forces the verdict.
                try:
                    out = decoder.feed(bytes(blob) + b"\0" * 64)
                except CorruptRecord:
                    continue
                assert out == []  # still waiting on the phantom tail
                continue
            with pytest.raises(CorruptRecord):
                decoder.feed(bytes(blob))

    def test_oversize_length_field_rejected(self):
        decoder = FrameStreamDecoder(max_frame_bytes=64)
        header = (1 << 20).to_bytes(4, "little") + b"\0\0\0\0"
        with pytest.raises(CorruptRecord):
            decoder.feed(header)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mid_suppress_disconnect_property(self, data):
        """A transport may start closing at ANY point in an arbitrary
        route/flush/poll interleaving -- including mid-SUPPRESS, with
        the shard transitioning around it.  The service must never
        write to the closing transport, must keep the surviving
        connection's SUPPRESS/RESUME wire state consistent with the
        shard's, and must keep its flow accounting conserved."""

        class _Writer:
            def __init__(self):
                self.closing = False
                self.frames = 0

            def is_closing(self):
                return self.closing

            def write(self, blob):
                assert not self.closing, "write to a closing transport"
                self.frames += 1

        svc = IngestService(1, mode="inline", suppress_after=1,
                            resume_below=1, clock=lambda: 100.0)
        live_w, dying_w = _Writer(), _Writer()
        live = svc.open_conn("veh-live", live_w)
        dying = svc.open_conn("veh-dying", dying_w)
        steps = data.draw(st.lists(
            st.sampled_from(["route", "flush", "poll", "disconnect"]),
            min_size=1, max_size=24), label="steps")
        batch_no = 0
        for step in steps:
            if step == "route":
                conn = data.draw(st.sampled_from([live, dying]),
                                 label="conn")
                svc.route(conn, encode_batch(
                    batch_no, [ev(conn.client_id, "s", 1.0, batch_no)]))
                batch_no += 1
            elif step == "flush":
                svc.flush()
            elif step == "poll":
                svc.poll_completions()
            else:
                dying_w.closing = True
        # The survivor's wire state tracks the shard; the dying conn
        # was never written to after closing (asserted in _Writer).
        assert live.suppressed == svc.suppressed(0)
        assert svc.batches_routed == (svc.batches_acked + svc.buffered()
                                      + svc.inflight_batches())

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_chunking_is_equivalent(self, data):
        events = data.draw(st.lists(security_events(), min_size=1,
                                    max_size=3), label="events")
        payloads = [encode_batch(i, events) for i in range(4)]
        stream = b"".join(frame_payload(p) for p in payloads)
        decoder = FrameStreamDecoder()
        out = []
        pos = 0
        while pos < len(stream):
            size = data.draw(st.integers(min_value=1, max_value=64),
                             label="chunk")
            out += decoder.feed(stream[pos:pos + size])
            pos += size
        assert out == payloads
        assert decoder.frames_decoded == 4
        assert decoder.bytes_fed == len(stream)


# ----------------------------------------------------------------------
# Worker core
# ----------------------------------------------------------------------
class TestWorkerCore:
    def test_handoff_admits_dispatches_and_acks(self, tmp_path):
        core = WorkerCore(0, tmp_path)
        events = [ev(f"v{i}", "sig.a", 1.0 + i * 0.01, i) for i in range(6)]
        report = core.ingest_handoff(
            100.0, [(11, "veh-a", 0, encode_batch(0, events)),
                    (12, "veh-b", 1, encode_batch(1, events[:2]))])
        assert report.acks == ((11, 0, 6, 6), (12, 1, 2, 2))
        assert report.dispatched == 8
        assert report.queue_depth == 0
        assert core.metrics()["service_handoffs"] == 1.0
        core.close()

    def test_future_events_refused_counted(self, tmp_path):
        core = WorkerCore(0, tmp_path)
        good = ev("v1", "sig.a", 1.0, 1)
        future = ev("v2", "sig.a", 999.0, 2)
        report = core.ingest_handoff(
            100.0, [(5, "veh-a", 0, encode_batch(0, [good, future]))])
        ((conn, batch_id, offered, accepted),) = report.acks
        assert (conn, batch_id, offered, accepted) == (5, 0, 2, 1)
        metrics = core.metrics()
        assert metrics["rejected_invalid"] == 1.0
        assert metrics["service_events_in"] == 2.0
        core.close()

    def test_corrupt_batch_refused_whole(self, tmp_path):
        core = WorkerCore(0, tmp_path)
        bad = canonical_dumps(["e", 9, ["not-an-event"]])
        report = core.ingest_handoff(100.0, [(3, "veh-a", 9, bad)])
        assert report.acks == ((3, 9, 0, -1),)
        assert core.decode_errors == 1
        core.close()


# ----------------------------------------------------------------------
# Inline service: differential byte-identity with the in-process path
# ----------------------------------------------------------------------
def _drive_service_and_twin(tmp_path, num_workers):
    """Feed the same deterministic stream through (a) the inline service
    and (b) direct WorkerCore twins, with identical handoff boundaries
    and clock; returns both sides' per-worker analytic states."""
    config = ServiceConfig(snapshot_every_pumps=3)
    times = iter(float(t) for t in range(100, 200))
    svc = IngestService(num_workers, mode="inline",
                        root=tmp_path / "svc", config=config,
                        clock=lambda: next(times))
    twin_times = iter(float(t) for t in range(100, 200))
    twins = [WorkerCore(i, tmp_path / "twin", config)
             for i in range(num_workers)]

    conns = [svc.open_conn(f"veh-{i:03d}") for i in range(7)]
    rounds = []
    for rnd in range(5):
        batches = []
        for i, conn in enumerate(conns):
            events = [ev(f"veh-{i:03d}", f"sig.{j % 3}",
                         rnd * 1.0 + j * 0.05, rnd * 100 + j)
                      for j in range(4)]
            payload = encode_batch(rnd, events)
            svc.route(conn, payload)
            batches.append((conn, payload))
        svc.flush()
        rounds.append(batches)
    acked = svc.poll_completions()
    assert len(acked) == 7 * 5

    # Twins: replay the identical handoffs (same grouping: one flush per
    # round drains each shard's buffer into one handoff).
    for rnd, batches in enumerate(rounds):
        per_shard = {}
        for conn, payload in batches:
            per_shard.setdefault(conn.shard, []).append(
                (conn.conn_id, conn.client_id, rnd, payload))
        t_send = next(twin_times)
        for shard in sorted(per_shard):
            twins[shard].ingest_handoff(t_send, per_shard[shard])

    svc_metrics = svc.drain_and_close()
    twin_states = [canonical_dumps(t.soc.analytics_snapshot())
                   for t in twins]
    twin_metrics = [t.metrics() for t in twins]
    for t in twins:
        t.close()
    return svc, svc_metrics, twin_states, twin_metrics


class TestInlineDifferential:
    @pytest.mark.parametrize("num_workers", [1, 2])
    def test_inline_service_byte_identical_to_direct_cores(
            self, tmp_path, num_workers):
        svc, svc_metrics, twin_states, twin_metrics = (
            _drive_service_and_twin(tmp_path, num_workers))
        for i in range(num_workers):
            recovered = recover_worker(tmp_path / "svc", i)
            assert canonical_dumps(
                recovered.analytics_snapshot()) == twin_states[i]
            # Full metrics parity: admission, dispatch, batching,
            # service counters -- the transport added nothing, lost
            # nothing (wall-clock latency keys excepted).
            skip = {"mean_dispatch_latency_s", "max_dispatch_latency_s",
                    "service_handoff_latency_max_s",
                    "service_handoff_latency_mean_s"}
            a = {k: v for k, v in svc_metrics[i].items() if k not in skip}
            b = {k: v for k, v in twin_metrics[i].items() if k not in skip}
            assert a == b

    def test_inline_service_log_bytes_identical(self, tmp_path):
        _drive_service_and_twin(tmp_path, 1)
        svc_segments = sorted(
            p for p in worker_root(tmp_path / "svc", 0).rglob("seg-*.log"))
        twin_segments = sorted(
            p for p in worker_root(tmp_path / "twin", 0).rglob("seg-*.log"))
        assert [p.name for p in svc_segments] == [
            p.name for p in twin_segments] != []
        for a, b in zip(svc_segments, twin_segments):
            assert a.read_bytes() == b.read_bytes()

    def test_frontend_and_worker_accounting_tie_out(self, tmp_path):
        svc, svc_metrics, _, _ = _drive_service_and_twin(tmp_path, 2)
        front = svc.metrics()
        assert front["batches_routed"] == front["batches_acked"] == 35.0
        worker_in = sum(m["service_events_in"] for m in svc_metrics)
        worker_admitted = sum(m["admitted"] for m in svc_metrics)
        worker_dispatched = sum(m["dispatched"] for m in svc_metrics)
        assert worker_in == 7 * 5 * 4
        assert front["events_acked"] == worker_admitted == worker_dispatched
        assert front["events_refused"] == worker_in - worker_admitted


# ----------------------------------------------------------------------
# Backpressure: SUPPRESS/RESUME propagation + client-side shedding
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_outstanding_watermark_trips_and_clears(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            suppress_after=1, resume_below=1,
                            clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        svc.route(conn, encode_batch(0, [ev("v1", "sig.a", 1.0, 1)]))
        svc.flush()
        # One outstanding handoff >= suppress_after=1: shard suppressed.
        assert svc.suppressed(0) and conn.suppressed
        svc.poll_completions()
        # Outstanding back under resume_below: resumed.
        assert not svc.suppressed(0) and not conn.suppressed
        assert svc.suppress_transitions == 2
        svc.drain_and_close()

    def test_worker_congestion_signal_propagates(self, tmp_path):
        config = ServiceConfig(queue_capacity=8, batch_size=4)
        svc = IngestService(1, mode="inline", root=tmp_path, config=config,
                            clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        # WorkerCore samples `pipeline.congested` after admission but
        # before the pump drains: a big enough burst holds the signal.
        events = [ev(f"v{i}", "sig.a", 1.0 + i * 1e-3, i) for i in range(8)]
        svc.route(conn, encode_batch(0, events))
        svc.flush()
        svc.poll_completions()
        assert svc.suppressed(0)  # worker reported congestion
        # A tiny follow-up batch drains below watermark: RESUME.
        svc.route(conn, encode_batch(1, events[:1]))
        svc.flush()
        svc.poll_completions()
        assert not svc.suppressed(0)
        svc.drain_and_close()

    def test_late_joiner_inherits_suppression(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            suppress_after=1, clock=lambda: 100.0)
        first = svc.open_conn("veh-1")
        svc.route(first, encode_batch(0, [ev("v1", "sig.a", 1.0, 1)]))
        svc.flush()
        assert svc.suppressed(0)
        late = svc.open_conn("veh-2")
        assert late.suppressed
        svc.drain_and_close()

    def test_client_sheds_low_severity_under_suppression(self):
        client = VehicleClient("veh-1")
        client.suppressed = True
        client.credits = 5

        async def run():
            low = [ev("veh-1", "s", 1.0, i, severity=Asil.A)
                   for i in range(3)]
            assert await client.send_events(low) is None
            assert client.suppressed_at_source == 3
            assert client.batches_sent == 0

        asyncio.run(run())

    def test_suppression_never_mutes_high_severity(self):
        client = VehicleClient("veh-1")
        client.suppressed = True
        client.credits = 5
        sent_frames = []

        class _W:
            def is_closing(self):
                return False

            def write(self, data):
                sent_frames.append(data)

        client._writer = _W()

        async def run():
            mixed = [ev("veh-1", "s", 1.0, 0, severity=Asil.A),
                     ev("veh-1", "s", 1.1, 1, severity=Asil.D)]
            batch_id = await client.send_events(mixed)
            assert batch_id == 0
            assert client.suppressed_at_source == 1
            assert client.events_sent == 1

        asyncio.run(run())
        decoder = FrameStreamDecoder()
        (payload,) = decoder.feed(sent_frames[0])
        _, _, events = decode_message(payload)
        assert [e.severity for e in events] == [Asil.D]


# ----------------------------------------------------------------------
# End-to-end over real sockets
# ----------------------------------------------------------------------
def _run_e2e(tmp_path, mode, num_workers, n_clients=8, rounds=6,
             per_batch=10):
    async def main():
        svc = IngestService(num_workers, mode=mode, root=tmp_path,
                            config=ServiceConfig(snapshot_every_pumps=8))
        server = await serve(svc)
        clients = [VehicleClient(f"veh-{i:03d}", port=server.port)
                   for i in range(n_clients)]
        for c in clients:
            await c.connect()
            assert c.shard == shard_for_client(c.client_id, num_workers)
        for rnd in range(rounds):
            for i, c in enumerate(clients):
                events = [ev(c.client_id, f"sig.{rnd % 3}",
                             rnd * 1.0 + j * 0.01, rnd * 1000 + j)
                          for j in range(per_batch)]
                await c.send_events(events)
        for c in clients:
            await c.drain()
        stats = {
            "sent": sum(c.events_sent for c in clients),
            "accepted": sum(c.events_accepted for c in clients),
            "rtts": sum(len(c.rtts_s) for c in clients),
        }
        for c in clients:
            await c.close()
        worker_metrics = await server.stop()
        return svc, stats, worker_metrics

    return asyncio.run(main())


class TestEndToEnd:
    def test_inline_server_round_trip(self, tmp_path):
        svc, stats, worker_metrics = _run_e2e(tmp_path, "inline", 2)
        assert stats["sent"] == 8 * 6 * 10
        assert stats["accepted"] == stats["sent"]  # nothing shed, all acked
        assert stats["rtts"] == 8 * 6
        assert sum(m["service_events_in"]
                   for m in worker_metrics) == stats["sent"]
        assert sum(m["dispatched"] for m in worker_metrics) == stats["sent"]

    def test_process_server_round_trip_and_recovery(self, tmp_path):
        svc, stats, worker_metrics = _run_e2e(tmp_path, "process", 2)
        assert stats["accepted"] == stats["sent"] == 8 * 6 * 10
        assert sum(m["dispatched"] for m in worker_metrics) == stats["sent"]
        # Every worker's durable store recovers to the state it reported.
        for i, metrics in enumerate(worker_metrics):
            recovered = recover_worker(tmp_path, i)
            assert recovered.pump_no == int(metrics["service_handoffs"])
            assert recovered.replayed_events == 0  # final snapshot covers all

    def test_corrupt_client_payload_drops_connection(self, tmp_path):
        async def main():
            svc = IngestService(1, mode="inline", root=tmp_path)
            server = await serve(svc)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(frame_payload(encode_hello("veh-evil")))
            # A framed BATCH whose events are garbage: the worker refuses
            # it whole and the server drops the connection.
            writer.write(frame_payload(
                canonical_dumps(["e", 0, ["not-an-event"]])))
            await writer.drain()
            got = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return got, svc

        got, svc = asyncio.run(main())
        decoder = FrameStreamDecoder()
        msgs = [decode_message(p) for p in decoder.feed(got)]
        assert msgs[0][0] == "w"          # WELCOME arrived
        assert all(m[0] != "a" for m in msgs)  # never ACKed
        assert svc.metrics()["connections"] == 0


# ----------------------------------------------------------------------
# Kill a worker, recover its analytic state
# ----------------------------------------------------------------------
class TestKillRecovery:
    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_killed_worker_recovers_to_identical_state(
            self, tmp_path, mode):
        config = ServiceConfig(snapshot_every_pumps=2)
        svc = IngestService(2, mode=mode, root=tmp_path / "svc",
                            config=config, queue_max_handoffs=4)
        twin = WorkerCore(0, tmp_path / "twin", config)
        conn = svc.open_conn("veh-000")
        victim = conn.shard

        for rnd in range(5):
            events = [ev("veh-000", f"sig.{j % 2}", rnd + j * 0.1,
                         rnd * 10 + j) for j in range(5)]
            payload = encode_batch(rnd, events)
            svc.route(conn, payload)
            svc.flush()
            # Quiesce: the handoff is acked (and therefore logged) before
            # the next, so the twin sees the exact same pump boundaries.
            deadline = 200
            while svc.metrics()["batches_acked"] < rnd + 1 and deadline:
                svc.poll_completions(timeout=0.05)
                deadline -= 1
            assert deadline, "handoff never acked"
            twin.ingest_handoff(1000.0 + rnd,
                                [(conn.conn_id, conn.client_id, rnd, payload)])

        # SIGKILL (process mode) / drop (inline): no snapshot, no close.
        svc.kill_worker(victim)
        recovered = recover_worker(tmp_path / "svc", victim)
        twin_state = canonical_dumps(twin.soc.analytics_snapshot())
        assert canonical_dumps(recovered.analytics_snapshot()) == twin_state
        # The recovery replayed the log suffix past the last periodic
        # snapshot (snapshot_every_pumps=2, 5 pumps -> 1 replayed).
        assert recovered.pump_no == 5
        assert recovered.replayed_pumps == 1
        twin.close()
        svc.drain_and_close()


# ----------------------------------------------------------------------
# Service plumbing details
# ----------------------------------------------------------------------
class TestServicePlumbing:
    def test_shard_for_client_is_stable_and_uniform_enough(self):
        assert shard_for_client("veh-1", 1) == 0
        assert shard_for_client("veh-1", 4) == zlib.crc32(b"veh-1") % 4
        hit = {shard_for_client(f"veh-{i:04d}", 4) for i in range(64)}
        assert hit == {0, 1, 2, 3}

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            IngestService(0, mode="inline", root=tmp_path)
        with pytest.raises(ValueError):
            IngestService(1, mode="threads", root=tmp_path)

    def test_full_feed_queue_refuses_and_suppresses(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            clock=lambda: 100.0)

        class _FullBackend:
            mode = "inline"

            def submit(self, *a):
                return False

        real = svc.backend
        svc.backend = _FullBackend()
        conn = svc.open_conn("veh-1")
        svc.route(conn, encode_batch(0, [ev("v1", "s", 1.0, 1)]))
        assert svc.flush() == 0
        assert svc.submit_refusals == 1
        assert svc.buffered(0) == 1  # kept, not dropped
        svc.backend = real
        assert svc.flush() == 1
        svc.poll_completions()
        svc.drain_and_close()

    def test_handoff_batch_threshold_triggers_flush(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            handoff_batch=2, clock=lambda: 100.0)
        conn = svc.open_conn("veh-1")
        svc.route(conn, encode_batch(0, [ev("v1", "s", 1.0, 1)]))
        assert svc.maybe_flush(conn.shard) == 0  # below threshold
        svc.route(conn, encode_batch(1, [ev("v1", "s", 1.1, 2)]))
        assert svc.maybe_flush(conn.shard) == 1
        svc.poll_completions()
        svc.drain_and_close()

    def test_drain_and_close_is_idempotent(self, tmp_path):
        svc = IngestService(1, mode="inline", root=tmp_path,
                            clock=lambda: 100.0)
        first = svc.drain_and_close()
        assert svc.drain_and_close() is first or svc.drain_and_close() == first
