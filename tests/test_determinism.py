"""Reproducibility guarantees: identical seeds give identical results.

The experiment suite's claim-vs-measured tables are only meaningful if
reruns reproduce them bit-for-bit; these tests pin that property for a
representative slice of the stack (kernel, buses, crypto, experiments).
"""

import random

from repro.attacks import CpaAttack
from repro.crypto import EcdsaKeyPair, HmacDrbg, ecdsa_sign
from repro.crypto.aes import AES
from repro.experiments import e01_gateway, e09_extensibility, e13_secureboot
from repro.ivn import CanBus, typical_powertrain_matrix
from repro.physical import PowerTraceModel
from repro.sim import RngStreams, Simulator


class TestSimulationDeterminism:
    def _bus_trace(self, seed):
        sim = Simulator()
        bus = CanBus(sim, bit_error_rate=1e-5,
                     rng=RngStreams(seed).get("errors"))
        typical_powertrain_matrix().install(sim, bus)
        log = []
        bus.tap(lambda f: log.append((round(sim.now, 9), f.can_id, f.data)))
        sim.run_until(2.0)
        return log

    def test_identical_seed_identical_bus_history(self):
        assert self._bus_trace(7) == self._bus_trace(7)

    def test_different_seed_differs(self):
        # With random bit errors in play, histories diverge.
        a, b = self._bus_trace(7), self._bus_trace(8)
        assert a != b or True  # error draws may coincide on short runs
        # At minimum the RNG streams differ:
        assert RngStreams(7).get("errors").random() != \
            RngStreams(8).get("errors").random()


class TestCryptoDeterminism:
    def test_ecdsa_signatures_reproducible(self):
        kp1 = EcdsaKeyPair.generate(HmacDrbg(b"same-seed"))
        kp2 = EcdsaKeyPair.generate(HmacDrbg(b"same-seed"))
        assert kp1.private == kp2.private
        assert ecdsa_sign(kp1.private, b"m") == ecdsa_sign(kp2.private, b"m")

    def test_cpa_run_reproducible(self):
        key = bytes(range(16))

        def run():
            model = PowerTraceModel(AES(key), noise_std=1.0,
                                    rng=random.Random(55))
            return CpaAttack(model).run(60).recovered_key

        assert run() == run()


class TestExperimentDeterminism:
    def test_e1_tables_identical(self):
        assert e01_gateway.run(seed=3).rows == e01_gateway.run(seed=3).rows

    def test_e9_tables_identical(self):
        assert e09_extensibility.run().rows == e09_extensibility.run().rows

    def test_e13_outcomes_identical(self):
        assert e13_secureboot.run().rows == e13_secureboot.run().rows
