"""Tests for ECDSA over P-256 and the HMAC-DRBG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    EcdsaKeyPair,
    EcdsaSignature,
    HmacDrbg,
    P256,
    ecdsa_sign,
    ecdsa_verify,
)
from repro.crypto.ecdsa import point_add, scalar_mult


@pytest.fixture(scope="module")
def keypair():
    return EcdsaKeyPair.generate(HmacDrbg(b"test-keypair-seed"))


class TestCurveArithmetic:
    def test_generator_on_curve(self):
        assert P256.is_on_curve(P256.generator)

    def test_infinity_on_curve(self):
        assert P256.is_on_curve(None)

    def test_order_times_generator_is_infinity(self):
        assert scalar_mult(P256.n, P256.generator) is None

    def test_scalar_mult_known_value(self):
        """2G for P-256 (public test vector)."""
        two_g = scalar_mult(2, P256.generator)
        assert two_g[0] == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )
        assert two_g[1] == int(
            "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16
        )

    def test_addition_commutes(self):
        g2 = scalar_mult(2, P256.generator)
        g3 = scalar_mult(3, P256.generator)
        assert point_add(g2, g3) == point_add(g3, g2)

    def test_addition_matches_scalar(self):
        g2 = scalar_mult(2, P256.generator)
        g3 = scalar_mult(3, P256.generator)
        assert point_add(g2, g3) == scalar_mult(5, P256.generator)

    def test_add_infinity_identity(self):
        g = P256.generator
        assert point_add(g, None) == g
        assert point_add(None, g) == g

    def test_point_plus_negation_is_infinity(self):
        g = P256.generator
        neg = (g[0], (-g[1]) % P256.p)
        assert point_add(g, neg) is None

    @given(st.integers(min_value=1, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_property_results_on_curve(self, k):
        assert P256.is_on_curve(scalar_mult(k, P256.generator))


class TestEcdsa:
    def test_sign_verify_roundtrip(self, keypair):
        sig = ecdsa_sign(keypair.private, b"hello v2x")
        assert ecdsa_verify(keypair.public, b"hello v2x", sig)

    def test_tampered_message_rejected(self, keypair):
        sig = ecdsa_sign(keypair.private, b"hello v2x")
        assert not ecdsa_verify(keypair.public, b"hello v2X", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = ecdsa_sign(keypair.private, b"msg")
        bad = EcdsaSignature(sig.r, (sig.s + 1) % P256.n)
        assert not ecdsa_verify(keypair.public, b"msg", bad)

    def test_wrong_key_rejected(self, keypair):
        other = EcdsaKeyPair.generate(HmacDrbg(b"other-seed"))
        sig = ecdsa_sign(keypair.private, b"msg")
        assert not ecdsa_verify(other.public, b"msg", sig)

    def test_deterministic_signatures(self, keypair):
        assert ecdsa_sign(keypair.private, b"m") == ecdsa_sign(keypair.private, b"m")

    def test_different_messages_different_nonces(self, keypair):
        s1 = ecdsa_sign(keypair.private, b"m1")
        s2 = ecdsa_sign(keypair.private, b"m2")
        assert s1.r != s2.r  # distinct nonce => distinct r

    def test_out_of_range_components_rejected(self, keypair):
        assert not ecdsa_verify(keypair.public, b"m", EcdsaSignature(0, 1))
        assert not ecdsa_verify(keypair.public, b"m", EcdsaSignature(1, 0))
        assert not ecdsa_verify(keypair.public, b"m", EcdsaSignature(P256.n, 1))

    def test_off_curve_public_key_rejected(self, keypair):
        sig = ecdsa_sign(keypair.private, b"m")
        assert not ecdsa_verify((123, 456), b"m", sig)

    def test_invalid_private_key_rejected(self):
        with pytest.raises(ValueError):
            ecdsa_sign(0, b"m")
        with pytest.raises(ValueError):
            ecdsa_sign(P256.n, b"m")

    def test_signature_serialization(self, keypair):
        sig = ecdsa_sign(keypair.private, b"serialize me")
        restored = EcdsaSignature.from_bytes(sig.to_bytes())
        assert restored == sig
        assert ecdsa_verify(keypair.public, b"serialize me", restored)

    def test_signature_bytes_length(self, keypair):
        assert len(ecdsa_sign(keypair.private, b"x").to_bytes()) == 64

    def test_from_bytes_rejects_bad_length(self):
        with pytest.raises(ValueError):
            EcdsaSignature.from_bytes(b"short")

    def test_public_bytes_format(self, keypair):
        pb = keypair.public_bytes()
        assert len(pb) == 65 and pb[0] == 0x04

    @given(st.binary(max_size=64))
    @settings(max_examples=5, deadline=None)
    def test_property_roundtrip(self, message):
        kp = EcdsaKeyPair.generate(HmacDrbg(b"prop-seed"))
        sig = ecdsa_sign(kp.private, message)
        assert ecdsa_verify(kp.public, message, sig)


class TestKeyGeneration:
    def test_deterministic_from_seed(self):
        a = EcdsaKeyPair.generate(HmacDrbg(b"seed"))
        b = EcdsaKeyPair.generate(HmacDrbg(b"seed"))
        assert a.private == b.private and a.public == b.public

    def test_public_point_on_curve(self):
        kp = EcdsaKeyPair.generate(HmacDrbg(b"any"))
        assert P256.is_on_curve(kp.public)

    def test_distinct_seeds_distinct_keys(self):
        a = EcdsaKeyPair.generate(HmacDrbg(b"seed-a"))
        b = EcdsaKeyPair.generate(HmacDrbg(b"seed-b"))
        assert a.private != b.private


class TestHmacDrbg:
    def test_deterministic(self):
        assert HmacDrbg(b"s").generate(32) == HmacDrbg(b"s").generate(32)

    def test_personalization_changes_output(self):
        assert HmacDrbg(b"s").generate(16) != HmacDrbg(b"s", b"p").generate(16)

    def test_sequential_outputs_differ(self):
        d = HmacDrbg(b"s")
        assert d.generate(32) != d.generate(32)

    def test_reseed_changes_stream(self):
        d1 = HmacDrbg(b"s")
        d2 = HmacDrbg(b"s")
        d2.reseed(b"fresh entropy")
        assert d1.generate(16) != d2.generate(16)

    def test_zero_bytes(self):
        assert HmacDrbg(b"s").generate(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").generate(-1)

    def test_randint_below_in_range(self):
        d = HmacDrbg(b"s")
        for _ in range(50):
            assert 0 <= d.randint_below(100) < 100

    def test_randint_below_invalid_bound(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").randint_below(0)
