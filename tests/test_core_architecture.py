"""Tests for the 4+1-layer architecture facade and its assessment."""

import pytest

from repro.core import SecurityLayer, VehicleArchitecture
from repro.core.safety import Asil
from repro.ecu import Ecu, FirmwareImage, FirmwareStore, She
from repro.gateway import Firewall, FirewallAction, FirewallRule, SecureGateway
from repro.ids import FrequencyIds
from repro.sim import Simulator

UID = bytes(15)


def make_ecu(sim, name="engine", secure_boot=True):
    image = FirmwareImage(f"{name}-fw", 1, b"payload" * 10, hardware_id="mcu")
    she = She(uid=UID)
    if secure_boot:
        she.set_boot_mac(image.canonical_bytes(), b"B" * 16)
    return Ecu(sim, name, she, FirmwareStore(image))


class TestConstruction:
    def test_add_domain(self):
        arch = VehicleArchitecture(Simulator())
        bus = arch.add_domain("powertrain")
        assert "powertrain" in arch.domains
        with pytest.raises(ValueError):
            arch.add_domain("powertrain")

    def test_gateway_attaches_existing_domains(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.add_domain("a")
        arch.add_domain("b")
        gw = arch.install_gateway(SecureGateway(sim))
        assert set(gw.domains) == {"a", "b"}

    def test_gateway_attaches_future_domains(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        gw = arch.install_gateway(SecureGateway(sim))
        arch.add_domain("late")
        assert "late" in gw.domains

    def test_add_ecu_requires_domain(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        with pytest.raises(ValueError):
            arch.add_ecu(make_ecu(sim), "nowhere")

    def test_add_ecu_detects_secure_boot(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.add_domain("powertrain")
        arch.add_ecu(make_ecu(sim), "powertrain")
        assert arch.has_secure_boot

    def test_ecu_without_secure_boot(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.add_domain("powertrain")
        arch.add_ecu(make_ecu(sim, secure_boot=False), "powertrain")
        assert not arch.has_secure_boot

    def test_install_ids(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.add_domain("powertrain")
        arch.install_ids(FrequencyIds(), "powertrain")
        assert arch.detectors
        with pytest.raises(ValueError):
            arch.install_ids(FrequencyIds(), "ghost")


class TestLayersAndAssessment:
    def _bare(self):
        return VehicleArchitecture(Simulator())

    def test_bare_architecture_no_layers(self):
        arch = self._bare()
        assert arch.deployed_layers() == set()
        report = arch.assess()
        assert report.coverage_ratio == 0.0
        assert report.max_residual_asil == Asil.D

    def test_gateway_layer_requires_rules(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.install_gateway(SecureGateway(sim))  # no rules: posture only
        assert SecurityLayer.SECURE_GATEWAY not in arch.deployed_layers()
        arch.gateway.firewall.add_rule(FirewallRule(
            "*", "*", FirewallAction.DENY,
        ))
        assert SecurityLayer.SECURE_GATEWAY in arch.deployed_layers()

    def test_ids_gives_secure_networks(self):
        arch = self._bare()
        arch.add_domain("d")
        arch.install_ids(FrequencyIds(), "d")
        assert SecurityLayer.SECURE_NETWORKS in arch.deployed_layers()

    def test_flags_map_to_layers(self):
        arch = self._bare()
        arch.has_v2x_security = True
        arch.has_access_protection = True
        arch.has_tamper_detection = True
        layers = arch.deployed_layers()
        assert SecurityLayer.SECURE_INTERFACES in layers
        assert SecurityLayer.PHYSICAL_PROTECTION in layers
        assert SecurityLayer.SECURE_PROCESSING in layers

    def test_full_deployment_full_coverage(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.add_domain("powertrain")
        gw = arch.install_gateway(SecureGateway(sim))
        gw.firewall.add_rule(FirewallRule("*", "*", FirewallAction.DENY))
        arch.add_ecu(make_ecu(sim), "powertrain")
        arch.install_ids(FrequencyIds(), "powertrain")
        arch.has_v2x_security = True
        arch.has_access_protection = True
        report = arch.assess()
        assert report.coverage_ratio == 1.0
        assert report.uncovered_threats == []
        assert report.max_residual_asil == Asil.QM

    def test_partial_deployment_residual_hazards(self):
        sim = Simulator()
        arch = VehicleArchitecture(sim)
        arch.add_domain("powertrain")
        arch.install_ids(FrequencyIds(), "powertrain")  # networks only
        report = arch.assess()
        assert 0 < report.coverage_ratio < 1.0
        # Without V2X security, forged V2X warnings remain a hazard.
        assert "v2x-forgery" in report.uncovered_threats
        names = [h.name for h in report.residual_hazards]
        assert "false-v2x-warning" in names

    def test_report_summary_renders(self):
        report = self._bare().assess()
        text = report.summary()
        assert "threat coverage" in text
        assert "residual hazard" in text
