"""Tests for the repro.soc VSOC subsystem.

Covers the event adapters, bounded-queue shedding, the correlation
engine's windowing edge cases (boundary, duplicate ids, out-of-order
arrival) -- including hypothesis property tests -- the incident state
machine, the closed remediation loop, and E17 determinism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.ids.base import Alert
from repro.sim import RngStreams, Simulator, TraceRecord
from repro.soc import (
    AttackCampaign,
    BoundedQueue,
    CampaignDetection,
    ConservationAudit,
    ConservationError,
    CorrelationEngine,
    EventSource,
    FleetModel,
    Incident,
    IncidentState,
    IncidentTracker,
    IngestPipeline,
    InvalidTransition,
    ResponseOrchestrator,
    SecurityOperationsCenter,
    ShedPolicy,
    from_gateway_record,
    from_ids_alert,
    from_misbehavior_report,
    from_uds_security_failure,
    k_for_fleet_size,
    make_event,
    poisson_draw,
)
from repro.core.policy import SecurityPolicy
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota import DirectorRepository, UptaneClient
from repro.v2x.misbehavior import MisbehaviorReport
from repro.experiments import e17_soc


def ev(vehicle, sig, time, seq=None, severity=Asil.B):
    """Shorthand: one actionable event with a unique id."""
    if seq is None:
        seq = ev.counter = getattr(ev, "counter", 0) + 1
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


# ----------------------------------------------------------------------
# Event model + adapters
# ----------------------------------------------------------------------
class TestEventAdapters:
    def test_ids_alert_normalization(self):
        alert = Alert(1.5, "spec", 0x0C9, "unknown id")
        event = from_ids_alert("v1", alert, seq=7)
        assert event.vehicle_id == "v1"
        assert event.source is EventSource.IDS
        assert event.signature == "ids.spec:0x0c9"
        assert event.severity is Asil.D
        assert event.detail_dict()["reason"] == "unknown id"

    def test_event_ids_deterministic_and_unique(self):
        alert = Alert(1.5, "spec", 0x0C9, "unknown id")
        a = from_ids_alert("v1", alert, seq=7)
        b = from_ids_alert("v1", alert, seq=7)
        c = from_ids_alert("v1", alert, seq=8)
        assert a.event_id == b.event_id
        assert a.event_id != c.event_id

    def test_misbehavior_report_normalization(self):
        report = MisbehaviorReport(3.0, "honest-2", "pseud-9", b"\x01",
                                   "teleport: implied 400 m/s between BSMs")
        event = from_misbehavior_report(report, seq=1)
        assert event.vehicle_id == "honest-2"   # the reporter, not the accused
        assert event.signature == "v2x.misbehavior:teleport"
        assert event.detail_dict()["accused"] == "pseud-9"

    def test_gateway_and_diag_adapters(self):
        record = TraceRecord(2.0, "gw0", "gateway.quarantine",
                             {"domain": "infotainment"})
        event = from_gateway_record("v3", record, seq=1)
        assert event.signature == "gateway.quarantine:infotainment"
        assert event.severity is Asil.C

        event = from_uds_security_failure("v4", 5.0, nrc=0x35, seq=2)
        assert event.signature == "diag.security_access:nrc0x35"
        assert event.severity is Asil.B

    def test_campaign_signature_matches_adapter(self):
        campaign = AttackCampaign("c0", EventSource.IDS, 0.0, ("v000001",),
                                  1.0, can_id=0x244, detector="frequency")
        emitted = campaign.emit("v000001", 1.0, seq=1)
        assert emitted.signature == campaign.signature
        # Campaign emissions are floored at ASIL B even for V2X sources.
        v2x = AttackCampaign("c1", EventSource.V2X, 0.0, ("v000001",), 1.0)
        assert v2x.emit("v000001", 1.0, seq=2).severity >= Asil.B


# ----------------------------------------------------------------------
# Ingestion
# ----------------------------------------------------------------------
class TestBoundedQueue:
    def test_drop_newest_refuses_arrival(self):
        q = BoundedQueue(2, ShedPolicy.DROP_NEWEST)
        e1, e2, e3 = (ev("v1", "s", 0.0), ev("v2", "s", 0.1), ev("v3", "s", 0.2))
        assert q.offer(e1) is None and q.offer(e2) is None
        assert q.offer(e3) is e3
        assert q.shed == 1 and len(q) == 2

    def test_drop_oldest_evicts_head(self):
        q = BoundedQueue(2, ShedPolicy.DROP_OLDEST)
        e1, e2, e3 = (ev("v1", "s", 0.0), ev("v2", "s", 0.1), ev("v3", "s", 0.2))
        q.offer(e1), q.offer(e2)
        victim = q.offer(e3)
        assert victim is e1
        assert [e.vehicle_id for e in q.drain(10)] == ["v2", "v3"]

    def test_lowest_severity_eviction(self):
        q = BoundedQueue(2, ShedPolicy.LOWEST_SEVERITY)
        low = ev("v1", "s", 0.0, severity=Asil.A)
        high = ev("v2", "s", 0.1, severity=Asil.D)
        incoming = ev("v3", "s", 0.2, severity=Asil.C)
        q.offer(low), q.offer(high)
        assert q.offer(incoming) is low
        # ...but never evicts to admit something less severe.
        lower = ev("v4", "s", 0.3, severity=Asil.A)
        assert q.offer(lower) is lower

    def test_drain_is_severity_then_fifo(self):
        q = BoundedQueue(8, ShedPolicy.DROP_OLDEST)
        a1 = ev("v1", "s", 0.0, severity=Asil.A)
        d1 = ev("v2", "s", 0.1, severity=Asil.D)
        a2 = ev("v3", "s", 0.2, severity=Asil.A)
        for e in (a1, d1, a2):
            q.offer(e)
        assert [e.vehicle_id for e in q.drain(10)] == ["v2", "v1", "v3"]


class TestIngestPipeline:
    def test_rejects_invalid_and_future_events(self):
        pipe = IngestPipeline()
        assert not pipe.offer(1.0, ev("v1", "s", 5.0))      # from the future
        assert not pipe.offer(1.0, ev("", "s", 0.5))        # no vehicle
        assert pipe.rejected_invalid == 2

    def test_capacity_budget_limits_dispatch(self):
        pipe = IngestPipeline(capacity_eps=10.0, batch_size=4)
        for i in range(30):
            assert pipe.offer(0.0, ev(f"v{i}", "s", 0.0))
        pipe.pump(0.0)                       # first pump: one batch allowance
        assert pipe.pump(1.0) == 10          # then capacity_eps * dt
        metrics = pipe.metrics()
        assert metrics["dispatched"] == pipe.stats["dispatch"].exited

    def test_sheds_when_full_and_reports_rate(self):
        pipe = IngestPipeline(capacity_eps=1.0, queue_capacity=8,
                              shed_policy=ShedPolicy.DROP_NEWEST)
        for i in range(20):
            pipe.offer(0.0, ev(f"v{i}", "s", 0.0))
        assert len(pipe.queue) == 8
        assert pipe.queue.shed == 12
        assert pipe.shed_rate == pytest.approx(12 / 20)
        assert pipe.congested

    def test_first_pump_budget_quirk_pinned(self):
        # Regression pin for the intended first-pump quirk: a cold
        # backend has no elapsed-time reference, so the first pump always
        # grants exactly batch_size -- never capacity_eps * now.  The
        # sharded drain loop replicates this per worker; if either side
        # changes, the shard=1 differential equivalence silently breaks.
        pipe = IngestPipeline(capacity_eps=1000.0, batch_size=8)
        for i in range(50):
            assert pipe.offer(0.0, ev(f"v{i}", "s", 0.0))
        assert pipe.pump(5.0) == 8       # one batch, not 5000
        assert pipe.pump(5.0) == 0       # zero elapsed => zero budget
        assert pipe.pump(6.0) == 42      # then capacity_eps * dt applies

    def test_sink_sees_events_with_latency_accounted(self):
        pipe = IngestPipeline(capacity_eps=100.0)
        seen = []
        pipe.add_sink(lambda now, e: seen.append((now, e.vehicle_id)))
        pipe.offer(0.0, ev("v1", "s", 0.0))
        pipe.pump(2.0)
        assert seen == [(2.0, "v1")]
        assert pipe.stats["dispatch"].latency_max_s == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Ingest accounting: pinned regressions
# ----------------------------------------------------------------------
class TestIngestAccountingRegressions:
    """Each test pins one of the three accounting bugfixes: the
    ``rejected_severity`` metrics hole, the enqueue-time clobbering under
    at-least-once redelivery, and the single-pump ``final_drain``."""

    def test_metrics_publish_rejected_severity_identity(self):
        # metrics() used to omit rejected_severity entirely, so the
        # published admit-stage identity could not even be stated.
        pipe = IngestPipeline(min_severity=Asil.B, capacity_eps=100.0)
        assert pipe.offer(1.0, ev("v1", "s", 0.5))
        assert not pipe.offer(1.0, ev("v2", "s", 0.5, severity=Asil.QM))
        assert not pipe.offer(1.0, ev("", "s", 0.5))        # invalid
        m = pipe.metrics()
        assert m["rejected_severity"] == 1.0
        assert m["offered"] == (m["rejected_invalid"]
                                + m["rejected_severity"] + m["admitted"])
        ConservationAudit().check(pipe)

    def test_audit_catches_metrics_underreporting(self):
        # The audit must now prove the *published* admit identity, not
        # just the internal counters: a pipeline whose metrics drop the
        # severity rejections (the pre-fix shape) fails the check.
        class Lying(IngestPipeline):
            def metrics(self):
                m = super().metrics()
                m["rejected_severity"] = 0.0
                return m

        pipe = Lying(min_severity=Asil.B)
        pipe.offer(1.0, ev("v1", "s", 0.5, severity=Asil.QM))
        with pytest.raises(ConservationError):
            ConservationAudit().check(pipe)

    def test_redelivered_queued_event_keeps_both_latencies(self):
        # At-least-once transports redeliver an event while a copy is
        # still queued.  Keying enqueue times by bare event_id let the
        # second arrival clobber the first copy's timestamp.
        pipe = IngestPipeline(capacity_eps=100.0)
        event = ev("v1", "s", 0.0)
        assert pipe.offer(0.0, event)
        assert pipe.offer(1.0, event)          # redelivery, still queued
        assert pipe.dispatch(2.0, 2) == 2
        dispatch = pipe.stats["dispatch"]
        assert dispatch.latency_sum_s == pytest.approx(3.0)   # 2.0 + 1.0
        assert dispatch.latency_max_s == pytest.approx(2.0)
        assert pipe.metrics()["mean_dispatch_latency_s"] == pytest.approx(1.5)
        assert not pipe._enqueue_time            # fully reclaimed

    def test_eviction_forgets_oldest_copy_timestamp(self):
        pipe = IngestPipeline(queue_capacity=2, capacity_eps=100.0,
                              shed_policy=ShedPolicy.DROP_OLDEST)
        event = ev("v1", "s", 0.0)
        assert pipe.offer(0.0, event)
        assert pipe.offer(1.0, event)
        assert pipe.offer(2.0, ev("v2", "s", 1.5))  # evicts the oldest copy
        assert pipe.dispatch(3.0, 2) == 2
        # Survivors: the t=1.0 copy (waited 2.0) and v2 (waited 1.0).
        assert pipe.stats["dispatch"].latency_sum_s == pytest.approx(3.0)

    def test_refused_arrival_does_not_steal_queued_timestamp(self):
        pipe = IngestPipeline(queue_capacity=1, capacity_eps=100.0,
                              shed_policy=ShedPolicy.DROP_NEWEST)
        event = ev("v1", "s", 0.0)
        assert pipe.offer(0.0, event)
        assert not pipe.offer(1.0, event)      # refused at the door
        assert pipe.dispatch(2.0, 1) == 1
        assert pipe.stats["dispatch"].latency_sum_s == pytest.approx(2.0)

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_final_drain_empties_deep_backlog(self, num_shards):
        # A backlog deeper than one pump's budget used to survive
        # final_drain (it ran exactly one rate-limited pump), leaving
        # accepted events unscored and the conservation ledger open.
        sim = Simulator()
        fleet = FleetModel(50, [])
        soc = SecurityOperationsCenter(sim, fleet, capacity_eps=4.0,
                                       respond=False, num_shards=num_shards)
        soc.start()
        for i in range(500):
            assert soc.pipeline.offer(0.0, ev(f"v{i % 50}", f"sig.{i % 7}",
                                              0.0))
        sim.run_until(1.0)
        assert soc.pipeline.queue_depth > 0    # genuinely congested
        soc.final_drain()
        assert soc.pipeline.queue_depth == 0
        m = soc.metrics()
        assert m["dispatched"] == m["admitted"] - m["queued_shed"]
        assert m["audit_checks"] > 0           # every round stayed audited


# ----------------------------------------------------------------------
# Correlation: unit edge cases
# ----------------------------------------------------------------------
class TestCorrelationEngine:
    def test_detects_at_exactly_k_distinct_vehicles(self):
        eng = CorrelationEngine(window_s=10.0, k=3)
        assert eng.observe(ev("v1", "x", 1.0)) is None
        assert eng.observe(ev("v2", "x", 2.0)) is None
        det = eng.observe(ev("v3", "x", 3.0))
        assert isinstance(det, CampaignDetection)
        assert det.vehicles == ("v1", "v2", "v3")
        assert det.first_time == 1.0 and det.detect_time == 3.0

    def test_window_boundary_is_closed(self):
        # Exactly window_s apart still co-occurs...
        eng = CorrelationEngine(window_s=5.0, k=2, max_lateness_s=10.0)
        eng.observe(ev("v1", "x", 0.0))
        assert eng.observe(ev("v2", "x", 5.0)) is not None
        # ...but epsilon beyond does not.
        eng = CorrelationEngine(window_s=5.0, k=2, max_lateness_s=10.0)
        eng.observe(ev("v1", "y", 0.0))
        assert eng.observe(ev("v2", "y", 5.0 + 1e-6)) is None

    def test_duplicate_event_ids_never_double_count(self):
        eng = CorrelationEngine(window_s=10.0, k=2)
        event = ev("v1", "x", 1.0)
        assert eng.observe(event) is None
        assert eng.observe(event) is None           # redelivery
        assert eng.duplicate_ids == 1
        # A second *vehicle* still completes the campaign.
        assert eng.observe(ev("v2", "x", 2.0)) is not None

    def test_per_vehicle_dedup_blocks_single_noisy_vehicle(self):
        eng = CorrelationEngine(window_s=60.0, k=2, dedup_window_s=30.0)
        for seq in range(10):
            det = eng.observe(make_event("v1", EventSource.IDS, "x",
                                         float(seq), seq, severity=Asil.B))
            assert det is None
        assert eng.deduped == 9

    def test_out_of_order_within_lateness_correlates(self):
        eng = CorrelationEngine(window_s=10.0, k=2, max_lateness_s=5.0)
        eng.observe(ev("v1", "x", 8.0))
        det = eng.observe(ev("v2", "x", 6.0))       # late but within bound
        assert det is not None

    def test_older_than_lateness_dropped(self):
        eng = CorrelationEngine(window_s=100.0, k=2, max_lateness_s=2.0)
        eng.observe(ev("v1", "x", 50.0))
        assert eng.observe(ev("v2", "x", 40.0)) is None
        assert eng.late_dropped == 1

    def test_low_severity_never_seeds_campaign(self):
        eng = CorrelationEngine(window_s=10.0, k=2, min_severity=Asil.B)
        eng.observe(ev("v1", "x", 1.0, severity=Asil.A))
        assert eng.observe(ev("v2", "x", 2.0, severity=Asil.A)) is None
        assert eng.low_severity_ignored == 2

    def test_flagged_signature_fires_once_then_tracks_spread(self):
        eng = CorrelationEngine(window_s=10.0, k=2)
        eng.observe(ev("v1", "x", 1.0))
        assert eng.observe(ev("v2", "x", 2.0)) is not None
        assert eng.observe(ev("v3", "x", 3.0)) is None
        assert eng.campaign_vehicles("x") == {"v1", "v2", "v3"}
        assert len(eng.detections) == 1


# ----------------------------------------------------------------------
# Correlation: property tests
# ----------------------------------------------------------------------
EVENT_STREAM = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),                 # vehicle
        st.sampled_from(["sigA", "sigB"]),                     # signature
        st.floats(min_value=0.0, max_value=30.0,
                  allow_nan=False, allow_infinity=False),      # time
    ),
    min_size=0, max_size=60,
)


class TestCorrelationProperties:
    @given(EVENT_STREAM)
    @settings(max_examples=60, deadline=None)
    def test_detection_implies_k_distinct_vehicles_within_window(self, rows):
        eng = CorrelationEngine(window_s=5.0, k=3, dedup_window_s=0.0,
                                max_lateness_s=100.0)
        for seq, (vehicle, sig, time) in enumerate(rows):
            det = eng.observe(make_event(f"v{vehicle}", EventSource.IDS, sig,
                                         time, seq, severity=Asil.B))
            if det is not None:
                assert len(set(det.vehicles)) >= 3
                assert det.detect_time - det.first_time <= 5.0 + 1e-9

    @given(EVENT_STREAM)
    @settings(max_examples=60, deadline=None)
    def test_redelivered_stream_changes_nothing(self, rows):
        events = [
            make_event(f"v{vehicle}", EventSource.IDS, sig, time, seq,
                       severity=Asil.B)
            for seq, (vehicle, sig, time) in enumerate(rows)
        ]
        eng = CorrelationEngine(window_s=5.0, k=3, dedup_window_s=0.0,
                                max_lateness_s=100.0)
        for event in events:
            eng.observe(event)
        detections = list(eng.detections)
        for event in events:                       # full at-least-once replay
            assert eng.observe(event) is None
        assert eng.detections == detections
        assert eng.duplicate_ids == len(events)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
                 min_size=3, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_k_distinct_vehicles_inside_window_always_detected(self, times):
        # Distinct vehicles, all strictly inside one window: must flag.
        eng = CorrelationEngine(window_s=5.0, k=3, dedup_window_s=10.0,
                                max_lateness_s=100.0)
        fired = False
        for seq, time in enumerate(times):
            det = eng.observe(make_event(f"v{seq}", EventSource.IDS, "x",
                                         time, seq, severity=Asil.B))
            fired = fired or det is not None
        assert fired


# ----------------------------------------------------------------------
# Incident lifecycle
# ----------------------------------------------------------------------
class TestIncidentLifecycle:
    def _detection(self, sig="x", spread=3):
        return CampaignDetection(sig, 10.0, 8.0,
                                 tuple(f"v{i}" for i in range(spread)), 8.0, 3)

    def test_happy_path_and_latency_accounting(self):
        incident = Incident("INC-1", "x", 10.0, Asil.C)
        incident.advance(11.0, IncidentState.TRIAGED)
        incident.advance(12.5, IncidentState.CONTAINED)
        incident.advance(20.0, IncidentState.REMEDIATED)
        assert incident.time_to_containment_s == pytest.approx(2.5)
        assert incident.time_to_remediation_s == pytest.approx(10.0)
        assert incident.closed

    def test_invalid_transitions_raise(self):
        incident = Incident("INC-1", "x", 10.0, Asil.C)
        with pytest.raises(InvalidTransition):
            incident.advance(11.0, IncidentState.CONTAINED)  # skips triage
        incident.advance(11.0, IncidentState.FALSE_POSITIVE)
        with pytest.raises(InvalidTransition):
            incident.advance(12.0, IncidentState.TRIAGED)    # FP is terminal

    def test_severity_escalates_with_spread(self):
        tracker = IncidentTracker(escalation_spread=4)
        small = tracker.open_from_detection(self._detection("a", 3), Asil.B)
        assert small.severity is Asil.B
        large = tracker.open_from_detection(self._detection("b", 5), Asil.B)
        assert large.severity is Asil.C
        # Spread growth after opening can bump severity too.
        for i in range(10):
            tracker.attach_vehicle("a", f"w{i}")
        assert small.severity is Asil.C

    def test_reopening_same_signature_returns_same_incident(self):
        tracker = IncidentTracker()
        first = tracker.open_from_detection(self._detection())
        second = tracker.open_from_detection(self._detection())
        assert first is second


# ----------------------------------------------------------------------
# Closed-loop response
# ----------------------------------------------------------------------
class TestResponseLoop:
    def test_policy_push_is_authenticated_and_versioned(self):
        sim = Simulator()
        campaign = AttackCampaign("c0", EventSource.IDS, 0.0,
                                  tuple(FleetModel.vehicle_id(i) for i in range(10)),
                                  5.0)
        fleet = FleetModel(10, [campaign])
        tracker = IncidentTracker()
        orchestrator = ResponseOrchestrator(sim, tracker, fleet, ota_sample=1)
        detection = CampaignDetection(campaign.signature, 1.0, 0.5,
                                      ("v000000", "v000001", "v000002"), 8.0, 3)
        incident = tracker.open_from_detection(detection, Asil.D)
        orchestrator.on_detection(incident)
        sim.run()

        assert incident.state is IncidentState.REMEDIATED
        # The vehicle-side engine verified a CMAC'd bundle and bumped.
        assert orchestrator.vehicle_engine.policy.version == 2
        assert orchestrator.vehicle_engine.update_history == [1, 2]
        assert not orchestrator.vehicle_engine.allows(
            "anyone", campaign.signature, "anything")
        # Spread stopped, patch rolled, outcome scored.
        assert campaign.signature in fleet.contained_at
        outcome = orchestrator.outcomes[0]
        assert outcome.vehicles_patched == 10
        assert outcome.ota_verified_sample == 1
        assert outcome.blast_radius + outcome.blast_radius_averted == 10
        assert outcome.detection_to_remediation_s > \
            outcome.detection_to_containment_s > 0

    def test_tampered_policy_push_is_rejected(self):
        # The §7 centralized-policy path fails closed: a bit-flipped
        # bundle never reaches the vehicle-side engine's policy.
        sim = Simulator()
        fleet = FleetModel(5, [])
        orchestrator = ResponseOrchestrator(sim, IncidentTracker(), fleet)
        current = orchestrator.oem_engine.policy
        candidate = SecurityPolicy(version=current.version + 1,
                                   rules=list(current.rules),
                                   default=current.default)
        blob, tag = orchestrator.oem_engine.export_update(
            candidate, b"soc-policy-key!!")
        tampered = bytes([blob[0] ^ 0x01]) + blob[1:]
        with pytest.raises(PermissionError):
            orchestrator.vehicle_engine.apply_update(tampered, tag)
        # A forged tag fails the same way; version never moved.
        with pytest.raises(PermissionError):
            orchestrator.vehicle_engine.apply_update(blob, b"\x00" * len(tag))
        assert orchestrator.vehicle_engine.policy.version == 1
        assert orchestrator.vehicle_engine.update_history == [1]
        # The untampered bundle still applies -- the key is fine, the
        # rejection above was the integrity check.
        orchestrator.vehicle_engine.apply_update(blob, tag)
        assert orchestrator.vehicle_engine.policy.version == 2

    def test_ota_campaign_aborts_on_uptane_verification_failure(self):
        # A sample (canary) vehicle pinned to the wrong director root
        # fails full Uptane metadata verification; the campaign must
        # abort -- counting the failure, installing nothing further.
        class WrongRootOrchestrator(ResponseOrchestrator):
            def _make_vehicle_client(self, vehicle_id):
                if vehicle_id == "v000000":     # first canary
                    rogue = DirectorRepository(seed=b"rogue/director")
                    store = FirmwareStore(FirmwareImage(
                        "soc-patch", 1, b"factory", hardware_id="soc-ecu"))
                    return UptaneClient(
                        vehicle_id, store,
                        image_root=self._image_repo.metadata["root"],
                        director_root=rogue.metadata["root"])
                return super()._make_vehicle_client(vehicle_id)

        sim = Simulator()
        campaign = AttackCampaign(
            "c0", EventSource.IDS, 0.0,
            tuple(FleetModel.vehicle_id(i) for i in range(10)), 5.0)
        fleet = FleetModel(10, [campaign])
        tracker = IncidentTracker()
        orchestrator = WrongRootOrchestrator(sim, tracker, fleet,
                                             ota_sample=3)
        detection = CampaignDetection(campaign.signature, 1.0, 0.5,
                                      ("v000000", "v000001", "v000002"),
                                      8.0, 3)
        incident = tracker.open_from_detection(detection, Asil.D)
        orchestrator.on_detection(incident)
        sim.run()

        # Containment still happened (policy push is independent), but
        # the rollout stopped at the failing canary: 0 installs, 1
        # counted failure, remaining sample untouched.
        assert incident.state is IncidentState.REMEDIATED
        assert campaign.signature in fleet.contained_at
        assert orchestrator.ota_results == {"installed": 0, "failed": 1}
        outcome = orchestrator.outcomes[0]
        assert outcome.ota_verified_sample == 0
        metrics = orchestrator.metrics()
        assert metrics["ota_installs"] == 0
        assert metrics["ota_failures"] == 1

    def test_containment_halts_spread(self):
        campaign = AttackCampaign("c0", EventSource.IDS, 0.0,
                                  tuple(FleetModel.vehicle_id(i) for i in range(20)),
                                  1000.0)
        fleet = FleetModel(20, [campaign])
        rng = RngStreams(1).get("t")
        fleet.step(1.0, 0.005, rng)
        compromised = fleet.blast_radius(campaign.signature)
        assert 0 < compromised < 20
        fleet.contain(campaign.signature, 1.0)
        fleet.step(2.0, 10.0, rng)
        assert fleet.blast_radius(campaign.signature) == compromised


# ----------------------------------------------------------------------
# E17 determinism + workload plumbing
# ----------------------------------------------------------------------
SMALL_GRID = [(300, 0.03)]


class TestE17:
    def test_same_seed_identical_summary(self):
        a = e17_soc.summary(seed=5, grid=SMALL_GRID, duration_s=15.0)
        b = e17_soc.summary(seed=5, grid=SMALL_GRID, duration_s=15.0)
        assert a == b

    def test_different_seed_differs(self):
        a = e17_soc.summary(seed=5, grid=SMALL_GRID, duration_s=15.0)
        b = e17_soc.summary(seed=6, grid=SMALL_GRID, duration_s=15.0)
        assert a != b

    def test_small_fleet_scene_closes_the_loop(self):
        metrics = e17_soc._scene(300, 0.03, seed=2, respond=True,
                                 duration_s=25.0)
        assert metrics["recall"] == 1.0
        assert metrics["precision"] >= 0.9
        assert metrics["policy_pushes"] >= 3
        assert metrics["audit_checks"] > 0   # conservation held every pump
        baseline = e17_soc._scene(300, 0.03, seed=2, respond=False,
                                  duration_s=25.0)
        assert metrics["fleet_compromised"] <= baseline["fleet_compromised"]

    def test_poisson_draw_moments(self):
        rng = RngStreams(0).get("p")
        for lam in (0.5, 8.0, 200.0):
            draws = [poisson_draw(rng, lam) for _ in range(400)]
            mean = sum(draws) / len(draws)
            assert lam * 0.8 < mean < lam * 1.2

    def test_soc_metrics_shape(self):
        sim = Simulator()
        fleet = FleetModel(10, [])
        soc = SecurityOperationsCenter(sim, fleet, respond=True)
        metrics = soc.metrics()
        for key in ("offered", "shed_rate", "precision", "recall",
                    "policy_pushes", "blast_radius_averted"):
            assert key in metrics


# ----------------------------------------------------------------------
# Fleet-scaled k: columnar precision at 10^8
# ----------------------------------------------------------------------
class TestKForFleetSize:
    def test_one_extra_vehicle_per_decade(self):
        assert k_for_fleet_size(100) == 3
        assert k_for_fleet_size(1_000_000) == 3
        assert k_for_fleet_size(3_000_000) == 3    # geometric midpoint holds
        assert k_for_fleet_size(10_000_000) == 4
        assert k_for_fleet_size(100_000_000) == 5
        assert k_for_fleet_size(1_000_000_000) == 6
        assert k_for_fleet_size(10_000, base_k=2, base_fleet=1_000) == 3

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            k_for_fleet_size(0)

    def test_cell_config_applies_scaled_k(self):
        assert e17_soc._cell_config(300, 250.0)["k"] == 3
        assert e17_soc._cell_config(10_000_000, 250.0)["k"] == 4
        assert e17_soc._cell_config(100_000_000, 250.0)["k"] == 5

    def test_giga_precision_regression(self):
        """The XL regression the ROADMAP item asked for: at 10^8
        vehicles, benign chance co-occurrence crosses k=3 (precision was
        0.6); the log-scaled k=5 restores precision >= 0.9 without
        losing a single planted campaign (recall 1.0)."""
        config = e17_soc._cell_config(100_000_000, 250.0)
        assert config["k"] == 5
        metrics = e17_soc._scene(100_000_000, 0.00002, seed=0, respond=True,
                                 duration_s=10.0, **config)
        assert metrics["recall"] == 1.0
        assert metrics["precision"] >= 0.9
        # Same cell at the old fixed threshold shows the failure this
        # fix exists for -- benign signatures flagged as campaigns.
        old = dict(config, k=3)
        degraded = e17_soc._scene(100_000_000, 0.00002, seed=0, respond=True,
                                  duration_s=10.0, **old)
        assert degraded["recall"] == 1.0
        assert degraded["precision"] < 0.9
