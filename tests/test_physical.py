"""Tests for the cyber-physical substrate."""

import math
import random

import pytest

from repro.physical import (
    Accelerometer,
    BatterySensor,
    GpsSensor,
    LidarSensor,
    PowerTraceModel,
    SensorFusion,
    TpmsSensor,
    Vehicle,
    VehicleState,
    hamming_weight,
)
from repro.crypto.aes import AES, MaskedAES


class TestVehicle:
    def test_straight_line(self):
        v = Vehicle(VehicleState(speed=20.0))
        v.step(2.0)
        assert v.state.x == pytest.approx(40.0)
        assert v.state.y == pytest.approx(0.0)

    def test_acceleration(self):
        v = Vehicle(VehicleState(speed=0.0))
        v.set_controls(accel=2.0, yaw_rate=0.0)
        v.step(5.0)
        assert v.state.speed == pytest.approx(10.0)
        assert v.state.x == pytest.approx(25.0)  # average speed 5 m/s * 5 s

    def test_speed_never_negative(self):
        v = Vehicle(VehicleState(speed=1.0))
        v.set_controls(accel=-10.0, yaw_rate=0.0)
        v.step(1.0)
        assert v.state.speed == 0.0

    def test_turning(self):
        v = Vehicle(VehicleState(speed=10.0))
        v.set_controls(accel=0.0, yaw_rate=math.pi / 2)
        v.step(1.0)
        assert v.state.heading == pytest.approx(math.pi / 2)

    def test_odometer_accumulates(self):
        v = Vehicle(VehicleState(speed=10.0))
        v.step(1.0)
        v.step(1.0)
        assert v.odometer == pytest.approx(20.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            Vehicle().step(-1.0)

    def test_distance_to(self):
        a = VehicleState(x=0, y=0)
        b = VehicleState(x=3, y=4)
        assert a.distance_to(b) == 5.0


class TestSensors:
    def test_gps_tracks_vehicle(self):
        v = Vehicle(VehicleState(x=100, y=50))
        gps = GpsSensor(v, noise_std=0.0, rng=random.Random(0))
        assert gps.read() == (100, 50)

    def test_gps_spoof_overrides(self):
        v = Vehicle()
        gps = GpsSensor(v, noise_std=0.0, rng=random.Random(0))
        gps.spoof((999.0, 999.0))
        assert gps.read() == (999.0, 999.0)
        assert gps.spoofed
        gps.spoof(None)
        assert not gps.spoofed

    def test_gps_noise(self):
        v = Vehicle()
        gps = GpsSensor(v, noise_std=2.0, rng=random.Random(1))
        fixes = [gps.read() for _ in range(100)]
        xs = [f[0] for f in fixes]
        assert max(xs) != min(xs)
        assert abs(sum(xs) / len(xs)) < 1.0  # centred on truth

    def test_tpms_nominal(self):
        tpms = TpmsSensor(rng=random.Random(0))
        for sid, p in tpms.read_all().items():
            assert 210 < p < 230

    def test_tpms_spoof_and_clear(self):
        tpms = TpmsSensor(rng=random.Random(0))
        sid = tpms.sensor_ids[0]
        tpms.spoof(sid, 0.0)
        assert tpms.read(sid) == 0.0
        tpms.spoof(sid, None)
        assert tpms.read(sid) > 100

    def test_tpms_unknown_sensor(self):
        tpms = TpmsSensor()
        with pytest.raises(ValueError):
            tpms.spoof(0xDEAD, 0.0)

    def test_tpms_needs_four_sensors(self):
        with pytest.raises(ValueError):
            TpmsSensor(sensor_ids=[1, 2])

    def test_lidar_sees_objects_in_range(self):
        v = Vehicle()
        lidar = LidarSensor(v, max_range=100, rng=random.Random(0))
        lidar.add_object(50, 0)
        lidar.add_object(500, 0)  # out of range
        targets = lidar.scan()
        assert len(targets) == 1
        assert targets[0].range_m == pytest.approx(50, abs=1)

    def test_lidar_phantoms_appear_in_scan(self):
        v = Vehicle()
        lidar = LidarSensor(v, rng=random.Random(0))
        lidar.spoof_phantom(30.0, 0.0)
        targets = lidar.scan()
        assert len(targets) == 1 and targets[0].phantom

    def test_lidar_phantom_range_validated(self):
        lidar = LidarSensor(Vehicle(), max_range=100)
        with pytest.raises(ValueError):
            lidar.spoof_phantom(200.0, 0.0)

    def test_accelerometer_resonance_gain(self):
        acc = Accelerometer(Vehicle(), rng=random.Random(0))
        acc.acoustic_inject(1.0, acc.resonant_hz)
        assert acc.injection_gain() == pytest.approx(1.0)
        acc.acoustic_inject(1.0, acc.resonant_hz * 2)
        assert acc.injection_gain() < 0.01

    def test_accelerometer_injection_biases_reading(self):
        v = Vehicle()
        acc = Accelerometer(v, noise_std=0.0, rng=random.Random(0))
        acc.acoustic_inject(5.0, acc.resonant_hz)
        # Peak of the sine: time where sin(2 pi f t) = 1.
        t = 1.0 / (4 * acc.resonant_hz)
        assert acc.read(t) == pytest.approx(5.0, rel=1e-6)

    def test_battery_drain_and_spoof(self):
        bat = BatterySensor(capacity_kwh=60, soc=0.5, rng=random.Random(0))
        bat.drain(6.0)
        assert bat.true_soc == pytest.approx(0.4)
        bat.spoof_offset(0.3)
        assert bat.read_soc() > 0.65

    def test_battery_validation(self):
        with pytest.raises(ValueError):
            BatterySensor(soc=1.5)


class TestSensorFusion:
    def _setup(self, **kwargs):
        v = Vehicle(VehicleState(speed=10.0))
        gps = GpsSensor(v, noise_std=0.5, rng=random.Random(0))
        tpms = TpmsSensor(rng=random.Random(1))
        lidar = LidarSensor(v, rng=random.Random(2))
        fusion = SensorFusion(v, gps, tpms=tpms, lidar=lidar, **kwargs)
        return v, gps, tpms, lidar, fusion

    def test_benign_cycle_no_anomalies(self):
        v, _, _, _, fusion = self._setup()
        for i in range(10):
            v.step(0.1)
            est = fusion.step(0.1, now=0.1 * (i + 1))
        assert not est.attack_suspected
        assert est.position[0] == pytest.approx(v.state.x, abs=3.0)

    def test_gps_jump_rejected(self):
        v, gps, _, _, fusion = self._setup()
        v.step(0.1)
        fusion.step(0.1, now=0.1)
        gps.spoof((5000.0, 5000.0))
        v.step(0.1)
        est = fusion.step(0.1, now=0.2)
        assert est.attack_suspected
        assert fusion.rejected_gps == 1
        assert est.position[0] < 100  # estimate stays near truth

    def test_gps_slow_drift_evades_gate(self):
        """The documented weakness: sub-gate drift is accepted."""
        v, gps, _, _, fusion = self._setup()
        offset = 0.0
        for i in range(50):
            v.step(0.1)
            offset += 0.5  # 5 m/s drift, well under the 15 m gate
            true = v.state.position
            gps.spoof((true[0] + offset, true[1]))
            fusion.step(0.1, now=0.1 * (i + 1))
        assert fusion.rejected_gps == 0
        est = fusion.step(0.1, now=5.1)
        assert est.position[0] - v.state.x > 10  # estimate got dragged

    def test_tpms_instant_blowout_rejected(self):
        v, _, tpms, _, fusion = self._setup()
        v.step(0.1)
        fusion.step(0.1, now=0.1)
        tpms.spoof(tpms.sensor_ids[0], 0.0)
        v.step(0.1)
        est = fusion.step(0.1, now=0.2)
        assert fusion.rejected_tpms >= 1
        assert any("tpms" in a for a in est.anomalies)

    def test_lidar_persistent_real_object_confirmed(self):
        v, _, _, lidar, fusion = self._setup(lidar_persistence=3)
        lidar.add_object(80.0, 0.0)
        confirmed = []
        for i in range(5):
            v.step(0.05)
            est = fusion.step(0.05, now=0.05 * (i + 1))
            confirmed.append(bool(est.confirmed_targets))
        assert confirmed[-1]  # eventually confirmed

    def test_lidar_fixed_relative_phantom_never_confirmed(self):
        v, _, _, lidar, fusion = self._setup(lidar_persistence=3)
        lidar.spoof_phantom(20.0, 0.0)  # always 20 m ahead of moving ego
        for i in range(6):
            v.step(0.5)  # 5 m per step: phantom jumps 5 m in world frame
            est = fusion.step(0.5, now=0.5 * (i + 1))
        assert not est.confirmed_targets
        assert fusion.rejected_lidar > 0


class TestPowerTraceModel:
    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(0b1010) == 2

    def test_trace_has_16_samples(self):
        model = PowerTraceModel(AES(bytes(16)), noise_std=0.0, rng=random.Random(0))
        assert len(model.trace(bytes(16))) == 16

    def test_noiseless_trace_equals_hw_of_sbox(self):
        from repro.crypto.aes import SBOX
        key = bytes(range(16))
        pt = bytes(range(16, 32))
        model = PowerTraceModel(AES(key), noise_std=0.0, rng=random.Random(0))
        trace = model.trace(pt)
        for i in range(16):
            assert trace[i] == hamming_weight(SBOX[pt[i] ^ key[i]])

    def test_collect_shapes(self):
        model = PowerTraceModel(AES(bytes(16)), rng=random.Random(0))
        pts, traces = model.collect(10)
        assert len(pts) == 10 and len(traces) == 10
        assert all(len(p) == 16 for p in pts)

    def test_masked_engine_traces_decorrelated(self):
        """Same plaintext twice gives different traces under masking."""
        key = bytes(16)
        engine = MaskedAES(key, rng=random.Random(5))
        model = PowerTraceModel(engine, noise_std=0.0, rng=random.Random(0))
        t1 = model.trace(bytes(16))
        t2 = model.trace(bytes(16))
        assert t1 != t2
