"""Tests for firmware store, ECU lifecycle, hypervisor, tamper detection."""

import random

import pytest

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.ecu import (
    Ecu,
    EcuState,
    FirmwareImage,
    FirmwareStore,
    Hypervisor,
    IsolationViolation,
    She,
    TamperDetector,
    sign_firmware_cmac,
)
from repro.ecu.firmware import sign_firmware_ecdsa
from repro.ecu.she import SLOT_BOOT_MAC, KeySlot, SheFlags
from repro.ivn import CanBus, CanFrame
from repro.sim import Simulator

UID = bytes(15)
BOOT_KEY = b"B" * 16


def make_image(version=1, payload=b"fw-payload" * 20):
    return FirmwareImage("engine-fw", version, payload, hardware_id="mcu-a")


def make_ecu(sim, image=None, provision_boot=True, **kwargs):
    image = image or make_image()
    she = She(uid=UID)
    if provision_boot:
        she.set_boot_mac(image.canonical_bytes(), BOOT_KEY)
    return Ecu(sim, "engine", she, FirmwareStore(image), **kwargs)


class TestFirmware:
    def test_digest_changes_with_payload(self):
        assert make_image().digest != make_image(payload=b"x" * 10).digest

    def test_digest_changes_with_version(self):
        assert make_image(1).digest != make_image(2).digest

    def test_validation(self):
        with pytest.raises(ValueError):
            FirmwareImage("f", -1, b"x")
        with pytest.raises(ValueError):
            FirmwareImage("f", 1, b"")

    def test_tampered_flips_one_byte(self):
        img = make_image()
        bad = img.tampered(3)
        assert bad.payload != img.payload
        assert len(bad.payload) == len(img.payload)

    def test_cmac_signing_detects_tamper(self):
        img = make_image()
        tag = sign_firmware_cmac(img, BOOT_KEY)
        assert sign_firmware_cmac(img.tampered(), BOOT_KEY) != tag

    def test_ecdsa_signing(self):
        kp = EcdsaKeyPair.generate(HmacDrbg(b"fw-seed"))
        signed = sign_firmware_ecdsa(make_image(), kp.private)
        assert signed.verify(kp.public)
        tampered = type(signed)(signed.image.tampered(), signed.signature)
        assert not tampered.verify(kp.public)

    def test_store_stage_activate_rollback(self):
        store = FirmwareStore(make_image(1))
        store.stage(make_image(2))
        assert store.activate().version == 2
        assert store.rollback().version == 1

    def test_store_rejects_hw_mismatch(self):
        store = FirmwareStore(make_image())
        with pytest.raises(ValueError, match="hardware"):
            store.stage(FirmwareImage("f", 2, b"x", hardware_id="other"))

    def test_store_activate_without_stage(self):
        with pytest.raises(ValueError):
            FirmwareStore(make_image()).activate()

    def test_store_single_rollback(self):
        store = FirmwareStore(make_image(1))
        store.stage(make_image(2))
        store.activate()
        store.rollback()
        with pytest.raises(ValueError):
            store.rollback()

    def test_history_records_transitions(self):
        store = FirmwareStore(make_image(1))
        store.stage(make_image(2))
        store.activate()
        assert [v for _, v in store.history] == [1, 2]


class TestEcuLifecycle:
    def test_boot_to_running(self):
        sim = Simulator()
        ecu = make_ecu(sim)
        ecu.power_on()
        assert ecu.state == EcuState.BOOTING
        sim.run()
        assert ecu.state == EcuState.RUNNING

    def test_tampered_firmware_degrades(self):
        sim = Simulator()
        image = make_image()
        ecu = make_ecu(sim, image=image)
        ecu.firmware.active = image.tampered()
        ecu.power_on()
        sim.run()
        assert ecu.state == EcuState.DEGRADED

    def test_tampered_firmware_halts_when_policy_says(self):
        sim = Simulator()
        image = make_image()
        ecu = make_ecu(sim, image=image, halt_on_boot_failure=True)
        ecu.firmware.active = image.tampered()
        ecu.power_on()
        sim.run()
        assert ecu.state == EcuState.LOCKED

    def test_boot_callback_invoked(self):
        sim = Simulator()
        ecu = make_ecu(sim)
        results = []
        ecu.on_boot_complete(results.append)
        ecu.power_on()
        sim.run()
        assert results == [True]

    def test_double_power_on_rejected(self):
        sim = Simulator()
        ecu = make_ecu(sim)
        ecu.power_on()
        with pytest.raises(RuntimeError):
            ecu.power_on()

    def test_reboot_after_update_boots_new_image(self):
        sim = Simulator()
        image = make_image(1)
        ecu = make_ecu(sim, image=image)
        ecu.power_on()
        sim.run()
        # Stage an image whose MAC does not match -> boot degrades.
        ecu.firmware.stage(make_image(2))
        ecu.firmware.activate()
        ecu.reboot()
        sim.run()
        assert ecu.state == EcuState.DEGRADED
        # Roll back and reboot: authentic image boots cleanly again.
        ecu.firmware.rollback()
        ecu.reboot()
        sim.run()
        assert ecu.state == EcuState.RUNNING

    def test_send_requires_attachment(self):
        sim = Simulator()
        ecu = make_ecu(sim)
        with pytest.raises(RuntimeError):
            ecu.send(CanFrame(0x100))

    def test_send_ignored_until_operational(self):
        sim = Simulator()
        bus = CanBus(sim)
        ecu = make_ecu(sim)
        ecu.attach_can(bus)
        ecu.send(CanFrame(0x100))  # OFF: dropped
        sim.run()
        assert bus.frames_on_wire == 0
        ecu.power_on()
        sim.run()
        ecu.send(CanFrame(0x100))
        sim.run()
        assert bus.frames_on_wire == 1

    def test_compromise_keeps_she_keys_hidden(self):
        sim = Simulator()
        ecu = make_ecu(sim)
        ecu.power_on()
        sim.run()
        ecu.compromise()
        assert ecu.state == EcuState.COMPROMISED
        assert ecu.compromised
        # The attacker can still *use* the SHE...
        ecu.she.load_plain_key(bytes(16))
        # ...but locked ECUs cannot be compromised.
        ecu2 = make_ecu(Simulator(), halt_on_boot_failure=True)
        ecu2.lock()
        with pytest.raises(RuntimeError):
            ecu2.compromise()

    def test_lock_locks_she(self):
        sim = Simulator()
        ecu = make_ecu(sim)
        ecu.lock()
        assert ecu.she.locked


class TestHypervisor:
    def _hv(self):
        hv = Hypervisor()
        hv.create_partition("infotainment", services={"media"})
        hv.create_partition("adas", services={"fusion"})
        hv.create_partition("gateway", services={"route"})
        return hv

    def test_same_partition_access_free(self):
        hv = self._hv()
        hv.write("adas", "adas", "buf", b"data")
        assert hv.read("adas", "adas", "buf") == b"data"

    def test_cross_partition_denied_by_default(self):
        hv = self._hv()
        hv.write("adas", "adas", "buf", b"secret")
        with pytest.raises(IsolationViolation):
            hv.read("infotainment", "adas", "buf")

    def test_grant_allows(self):
        hv = self._hv()
        hv.grant("infotainment", "gateway", "call")
        hv.call("infotainment", "gateway", "route")

    def test_revoke_closes_access(self):
        hv = self._hv()
        hv.grant("infotainment", "gateway", "call")
        hv.revoke("infotainment", "gateway", "call")
        with pytest.raises(IsolationViolation):
            hv.call("infotainment", "gateway", "route")

    def test_unknown_service_keyerror(self):
        hv = self._hv()
        hv.grant("infotainment", "gateway", "call")
        with pytest.raises(KeyError):
            hv.call("infotainment", "gateway", "missing")

    def test_grant_validation(self):
        hv = self._hv()
        with pytest.raises(ValueError):
            hv.grant("infotainment", "gateway", "teleport")
        with pytest.raises(ValueError):
            hv.grant("ghost", "gateway", "call")

    def test_blast_radius_transitive(self):
        hv = self._hv()
        hv.grant("infotainment", "gateway", "call")
        hv.grant("gateway", "adas", "write")
        assert hv.reachable_from("infotainment") == {"infotainment", "gateway", "adas"}

    def test_blast_radius_isolated(self):
        hv = self._hv()
        assert hv.reachable_from("infotainment") == {"infotainment"}

    def test_read_grants_do_not_extend_blast_radius(self):
        hv = self._hv()
        hv.grant("infotainment", "adas", "read")
        assert hv.reachable_from("infotainment") == {"infotainment"}

    def test_denied_attempts_audited(self):
        hv = self._hv()
        with pytest.raises(IsolationViolation):
            hv.read("infotainment", "adas", "buf")
        assert ("infotainment", "adas", "read") in hv.denied_attempts()

    def test_duplicate_partition_rejected(self):
        hv = self._hv()
        with pytest.raises(ValueError):
            hv.create_partition("adas")


class TestTamperDetector:
    def test_nominal_values_pass(self):
        sim = Simulator()
        det = TamperDetector(sim)
        assert not det.sample("voltage", 3.3)
        assert not det.sample("clock", 100e6)
        assert det.events == []

    def test_voltage_glitch_detected(self):
        sim = Simulator()
        she = She(uid=UID)
        det = TamperDetector(sim, she=she, detection_probability=1.0)
        assert det.sample("voltage", 1.8)
        assert she.locked

    def test_clock_glitch_detected(self):
        sim = Simulator()
        det = TamperDetector(sim, detection_probability=1.0)
        assert det.sample("clock", 200e6)
        assert det.events[0].kind == "clock"

    def test_detection_probability_misses(self):
        sim = Simulator()
        det = TamperDetector(
            sim, detection_probability=0.0, rng=random.Random(1),
        )
        assert not det.sample("voltage", 0.5)
        assert det.missed == 1

    def test_response_callback(self):
        sim = Simulator()
        det = TamperDetector(sim, detection_probability=1.0)
        seen = []
        det.on_tamper(seen.append)
        det.sample("voltage", 5.0)
        assert len(seen) == 1 and seen[0].kind == "voltage"

    def test_unknown_channel_rejected(self):
        det = TamperDetector(Simulator())
        with pytest.raises(ValueError):
            det.sample("thermal", 100.0)
