"""Tests for LIN, FlexRay, Ethernet, and traffic scheduling."""

import pytest

from repro.ivn import (
    CanBus,
    CanFrame,
    DeadlineMonitor,
    EthernetFrame,
    EthernetSwitch,
    FlexRayBus,
    FlexRayConfig,
    LinBus,
    LinFrameSlot,
    PeriodicSender,
    TrafficMatrix,
    typical_body_matrix,
    typical_powertrain_matrix,
)
from repro.sim import Simulator, TraceRecorder


class TestLin:
    def _cluster(self):
        sim = Simulator()
        bus = LinBus(sim)
        sensor = bus.attach_slave("sensor")
        actuator = bus.attach_slave("actuator")
        sensor.publish(0x10, lambda: b"\x42\x00")
        bus.set_schedule([LinFrameSlot(0x10, "sensor", length=2)])
        return sim, bus, sensor, actuator

    def test_schedule_polls_publisher(self):
        sim, bus, _, actuator = self._cluster()
        got = []
        actuator.on_frame(lambda fid, data, pub: got.append((fid, data, pub)))
        bus.start()
        sim.run_until(0.1)
        assert got and got[0] == (0x10, b"\x42\x00", "sensor")

    def test_master_receives_slave_data(self):
        sim, bus, _, _ = self._cluster()
        got = []
        bus.master.on_frame(lambda fid, data, pub: got.append(fid))
        bus.start()
        sim.run_until(0.05)
        assert 0x10 in got

    def test_no_response_traced(self):
        sim = Simulator()
        bus = LinBus(sim)
        bus.attach_slave("mute")
        bus.set_schedule([LinFrameSlot(0x11, "mute")])
        bus.start()
        sim.run_until(0.05)
        assert bus.trace.count("lin.no_response") > 0

    def test_impostor_overrides_response(self):
        sim, bus, _, actuator = self._cluster()
        bus.impostor = lambda fid: b"\xff\xff" if fid == 0x10 else None
        got = []
        actuator.on_frame(lambda fid, data, pub: got.append((data, pub)))
        bus.start()
        sim.run_until(0.05)
        assert got[0] == (b"\xff\xff", "<impostor>")
        assert bus.collisions > 0

    def test_schedule_validation(self):
        sim = Simulator()
        bus = LinBus(sim)
        with pytest.raises(ValueError):
            bus.set_schedule([LinFrameSlot(0x10, "ghost")])
        with pytest.raises(ValueError):
            bus.start()  # empty schedule

    def test_slot_id_range(self):
        with pytest.raises(ValueError):
            LinFrameSlot(0x40, "master")
        with pytest.raises(ValueError):
            LinFrameSlot(0x10, "master", length=0)

    def test_duplicate_slave_rejected(self):
        bus = LinBus(Simulator())
        bus.attach_slave("s")
        with pytest.raises(ValueError):
            bus.attach_slave("s")

    def test_stop_halts_schedule(self):
        sim, bus, _, _ = self._cluster()
        bus.start()
        sim.run_until(0.02)
        count = bus.trace.count("lin.tx")
        bus.stop()
        sim.run_until(0.1)
        assert bus.trace.count("lin.tx") == count


class TestFlexRay:
    def _cluster(self):
        sim = Simulator()
        bus = FlexRayBus(sim, FlexRayConfig(static_slots=4, dynamic_minislots=10))
        a, b = bus.attach("chassis"), bus.attach("brake")
        return sim, bus, a, b

    def test_static_slot_transmission(self):
        sim, bus, a, b = self._cluster()
        a.assign_static(1, lambda: b"\x01" * 4)
        got = []
        b.on_frame(lambda slot, data, sender: got.append((slot, sender)))
        bus.start()
        sim.run_until(bus.config.cycle_duration * 1.5)
        assert (1, "chassis") in got

    def test_slot_ownership_enforced(self):
        _, bus, a, b = self._cluster()
        a.assign_static(1, lambda: b"")
        with pytest.raises(ValueError):
            b.assign_static(1, lambda: b"")

    def test_slot_range_validated(self):
        _, bus, a, _ = self._cluster()
        with pytest.raises(ValueError):
            a.assign_static(99, lambda: b"")

    def test_dynamic_priority_order(self):
        sim, bus, a, b = self._cluster()
        b.send_dynamic(20, b"\x02")
        a.send_dynamic(10, b"\x01")
        bus.start()
        sim.run_until(bus.config.cycle_duration)
        dyn = bus.trace.records("flexray.dynamic")
        assert [r.data["frame_id"] for r in dyn] == [10, 20]

    def test_minislot_exhaustion_defers(self):
        sim = Simulator()
        bus = FlexRayBus(sim, FlexRayConfig(static_slots=2, dynamic_minislots=5))
        a = bus.attach("a")
        # Each 32-byte frame needs 5 minislots; only one fits per cycle.
        a.send_dynamic(1, bytes(32))
        a.send_dynamic(2, bytes(32))
        bus.start()
        sim.run_until(bus.config.cycle_duration * 0.99)
        assert bus.trace.count("flexray.dynamic") == 1
        sim.run_until(bus.config.cycle_duration * 1.99)
        assert bus.trace.count("flexray.dynamic") == 2

    def test_payload_size_enforced(self):
        _, bus, a, _ = self._cluster()
        with pytest.raises(ValueError):
            a.send_dynamic(1, bytes(33))

    def test_cycles_advance(self):
        sim, bus, _, _ = self._cluster()
        bus.start()
        sim.run_until(bus.config.cycle_duration * 3.5)
        assert bus.cycle_count == 4  # cycles at t=0, T, 2T, 3T


class TestEthernet:
    def _network(self):
        sim = Simulator()
        sw = EthernetSwitch(sim)
        h1 = sw.attach("aa:00:00:00:00:01", 1, vlans={1, 10})
        h2 = sw.attach("aa:00:00:00:00:02", 2, vlans={1})
        h3 = sw.attach("aa:00:00:00:00:03", 3, vlans={10})
        return sim, sw, h1, h2, h3

    def test_unknown_dst_floods_vlan(self):
        sim, sw, h1, h2, h3 = self._network()
        got2, got3 = [], []
        h2.on_receive(got2.append)
        h3.on_receive(got3.append)
        h1.send(EthernetFrame(h1.mac, h2.mac, 100, vlan=1))
        sim.run()
        assert len(got2) == 1
        assert len(got3) == 0  # not in vlan 1

    def test_learning_unicast(self):
        sim, sw, h1, h2, _ = self._network()
        # h2 sends first so the switch learns its port.
        h2.send(EthernetFrame(h2.mac, h1.mac, 100, vlan=1))
        sim.run()
        got2 = []
        h2.on_receive(got2.append)
        h1.send(EthernetFrame(h1.mac, h2.mac, 100, vlan=1))
        sim.run()
        assert len(got2) == 1
        assert sw.mac_table[h1.mac] == 1

    def test_vlan_isolation_on_ingress(self):
        sim, sw, h1, h2, h3 = self._network()
        got3 = []
        h3.on_receive(got3.append)
        # h2 is not a member of vlan 10: ingress drop.
        h2.send(EthernetFrame(h2.mac, h3.mac, 100, vlan=10))
        sim.run()
        assert got3 == [] and sw.dropped == 1

    def test_filter_hook_drops(self):
        sim, sw, h1, h2, _ = self._network()
        sw.filter_hook = lambda frame, port: frame.payload_len < 500
        got2 = []
        h2.on_receive(got2.append)
        h1.send(EthernetFrame(h1.mac, h2.mac, 1000, vlan=1))
        h1.send(EthernetFrame(h1.mac, h2.mac, 100, vlan=1))
        sim.run()
        assert len(got2) == 1 and sw.dropped == 1

    def test_broadcast(self):
        sim, sw, h1, h2, h3 = self._network()
        got2, got3 = [], []
        h2.on_receive(got2.append)
        h3.on_receive(got3.append)
        h1.send(EthernetFrame(h1.mac, "ff:ff:ff:ff:ff:ff", 100, vlan=10))
        sim.run()
        assert got3 and not got2  # vlan 10 only reaches h3

    def test_src_spoofing_rejected_at_nic(self):
        _, sw, h1, h2, _ = self._network()
        with pytest.raises(ValueError):
            h1.send(EthernetFrame(h2.mac, h1.mac, 100))

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            EthernetFrame("a", "b", 10)  # too small
        with pytest.raises(ValueError):
            EthernetFrame("a", "b", 100, vlan=0)

    def test_port_conflict(self):
        _, sw, _, _, _ = self._network()
        with pytest.raises(ValueError):
            sw.attach("aa:00:00:00:00:09", 1)


class TestScheduling:
    def test_periodic_sender_rate(self):
        sim = Simulator()
        bus = CanBus(sim)
        node = bus.attach("ecu")
        PeriodicSender(sim, node, 0x100, period=0.010, start_offset=0.0)
        sim.run_until(0.095)
        assert node.frames_sent == 10  # t = 0, 10ms, ..., 90ms

    def test_periodic_sender_stop(self):
        sim = Simulator()
        bus = CanBus(sim)
        node = bus.attach("ecu")
        sender = PeriodicSender(sim, node, 0x100, period=0.010, start_offset=0.0)
        sim.run_until(0.055)  # off a tick boundary so nothing is in flight
        sent = node.frames_sent
        sender.stop()
        sim.run_until(0.2)
        assert node.frames_sent == sent

    def test_invalid_period(self):
        sim = Simulator()
        bus = CanBus(sim)
        with pytest.raises(ValueError):
            PeriodicSender(sim, bus.attach("e"), 0x1, period=0)

    def test_matrix_install_creates_nodes(self):
        sim = Simulator()
        bus = CanBus(sim)
        matrix = typical_powertrain_matrix()
        nodes = matrix.install(sim, bus)
        assert set(nodes) == set(matrix.sources)
        sim.run_until(0.1)
        assert bus.frames_on_wire > 0

    def test_matrix_nominal_busload_sane(self):
        load = typical_powertrain_matrix().nominal_busload(500_000)
        assert 0.05 < load < 0.5

    def test_body_matrix_lighter_than_powertrain(self):
        pt = typical_powertrain_matrix().nominal_busload(500_000)
        body = typical_body_matrix().nominal_busload(500_000)
        assert body < pt

    def test_deadline_monitor_counts_misses(self):
        sim = Simulator()
        trace = TraceRecorder()
        bus = CanBus(sim, trace=trace)
        victim = bus.attach("victim")
        attacker = bus.attach("attacker")
        monitor = DeadlineMonitor(trace, {0x300: 0.001})
        for _ in range(50):
            attacker.send(CanFrame(0x000, bytes(8)))
        victim.send(CanFrame(0x300))
        sim.run()
        assert monitor.miss_rate(0x300) == 1.0
        assert monitor.worst_latency(0x300) > 0.001

    def test_deadline_monitor_no_misses_idle_bus(self):
        sim = Simulator()
        trace = TraceRecorder()
        bus = CanBus(sim, trace=trace)
        node = bus.attach("ecu")
        monitor = DeadlineMonitor(trace, {0x100: 0.010})
        node.send(CanFrame(0x100))
        sim.run()
        assert monitor.miss_rate() == 0.0
        assert monitor.mean_latency(0x100) > 0
