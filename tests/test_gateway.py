"""Tests for the firewall and secure gateway."""

import pytest

from repro.gateway import (
    Firewall,
    FirewallAction,
    FirewallRule,
    RateLimiter,
    SecureGateway,
)
from repro.ivn import CanBus, CanFrame
from repro.sim import Simulator, TraceRecorder


class TestRateLimiter:
    def test_burst_admitted(self):
        rl = RateLimiter(rate=10, burst=3)
        assert [rl.admit(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refill_over_time(self):
        rl = RateLimiter(rate=10, burst=1)
        assert rl.admit(0.0)
        assert not rl.admit(0.01)
        assert rl.admit(0.2)  # 0.2s * 10/s = 2 tokens refilled (capped at 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0, burst=1)
        with pytest.raises(ValueError):
            RateLimiter(rate=1, burst=0)


class TestFirewall:
    def test_default_deny(self):
        fw = Firewall(default=FirewallAction.DENY)
        assert fw.evaluate(CanFrame(0x1), "a", "b", 0.0) is FirewallAction.DENY

    def test_default_allow(self):
        fw = Firewall(default=FirewallAction.ALLOW)
        assert fw.evaluate(CanFrame(0x1), "a", "b", 0.0) is FirewallAction.ALLOW

    def test_first_match_wins(self):
        fw = Firewall(default=FirewallAction.DENY)
        fw.add_rule(FirewallRule("a", "b", FirewallAction.DENY, id_range=(0x100, 0x1FF)))
        fw.add_rule(FirewallRule("a", "b", FirewallAction.ALLOW))
        assert fw.evaluate(CanFrame(0x150), "a", "b", 0.0) is FirewallAction.DENY
        assert fw.evaluate(CanFrame(0x200), "a", "b", 0.0) is FirewallAction.ALLOW

    def test_wildcard_domains(self):
        fw = Firewall(default=FirewallAction.DENY)
        fw.add_rule(FirewallRule("*", "powertrain", FirewallAction.ALLOW,
                                 id_range=(0x700, 0x7FF)))
        assert fw.evaluate(CanFrame(0x700), "anything", "powertrain", 0.0) is FirewallAction.ALLOW
        assert fw.evaluate(CanFrame(0x700), "anything", "body", 0.0) is FirewallAction.DENY

    def test_id_range_boundaries(self):
        rule = FirewallRule("a", "b", FirewallAction.ALLOW, id_range=(0x100, 0x200))
        assert rule.matches(CanFrame(0x100), "a", "b")
        assert rule.matches(CanFrame(0x200), "a", "b")
        assert not rule.matches(CanFrame(0x0FF), "a", "b")
        assert not rule.matches(CanFrame(0x201), "a", "b")

    def test_rate_limited_allow_becomes_deny(self):
        fw = Firewall(default=FirewallAction.DENY)
        fw.add_rule(FirewallRule(
            "a", "b", FirewallAction.ALLOW,
            rate_limit=RateLimiter(rate=1, burst=1),
        ))
        assert fw.evaluate(CanFrame(0x1), "a", "b", 0.0) is FirewallAction.ALLOW
        assert fw.evaluate(CanFrame(0x1), "a", "b", 0.001) is FirewallAction.DENY
        assert fw.rate_limited == 1

    def test_hit_counters(self):
        fw = Firewall()
        rule = FirewallRule("a", "b", FirewallAction.ALLOW)
        fw.add_rule(rule)
        fw.evaluate(CanFrame(0x1), "a", "b", 0.0)
        fw.evaluate(CanFrame(0x1), "x", "y", 0.0)
        assert rule.hits == 1 and fw.evaluations == 2


class TestSecureGateway:
    def _two_domains(self, firewall=None):
        sim = Simulator()
        trace = TraceRecorder()
        infotainment = CanBus(sim, name="infotainment", trace=trace)
        powertrain = CanBus(sim, name="powertrain", trace=trace)
        gw = SecureGateway(sim, firewall=firewall, trace=trace)
        gw.attach_domain("infotainment", infotainment)
        gw.attach_domain("powertrain", powertrain)
        return sim, gw, infotainment, powertrain, trace

    def test_routed_frame_crosses_domains(self):
        fw = Firewall(default=FirewallAction.ALLOW)
        sim, gw, info, power, _ = self._two_domains(fw)
        gw.add_route("infotainment", 0x244, {"powertrain"})
        src = info.attach("radio")
        sink = power.attach("engine")
        got = []
        sink.on_receive(got.append)
        src.send(CanFrame(0x244, b"\x01"))
        sim.run()
        assert len(got) == 1 and got[0].can_id == 0x244
        assert gw.stats.forwarded == 1

    def test_unrouted_frame_stays_local(self):
        fw = Firewall(default=FirewallAction.ALLOW)
        sim, gw, info, power, _ = self._two_domains(fw)
        src = info.attach("radio")
        sink = power.attach("engine")
        got = []
        sink.on_receive(got.append)
        src.send(CanFrame(0x999 & 0x7FF))
        sim.run()
        assert got == [] and gw.stats.dropped_no_route == 1

    def test_firewall_blocks_crossing(self):
        fw = Firewall(default=FirewallAction.DENY)
        sim, gw, info, power, trace = self._two_domains(fw)
        gw.add_route("infotainment", 0x0C9, {"powertrain"})
        src = info.attach("radio")
        sink = power.attach("engine")
        got = []
        sink.on_receive(got.append)
        src.send(CanFrame(0x0C9, b"\xff" * 8))  # forged engine frame
        sim.run()
        assert got == []
        assert gw.stats.dropped_firewall == 1
        assert trace.count("gateway.drop") == 1

    def test_quarantine_blocks_all_from_domain(self):
        fw = Firewall(default=FirewallAction.ALLOW)
        sim, gw, info, power, _ = self._two_domains(fw)
        gw.add_route("infotainment", 0x244, {"powertrain"})
        src = info.attach("radio")
        sink = power.attach("engine")
        got = []
        sink.on_receive(got.append)
        gw.quarantine("infotainment")
        src.send(CanFrame(0x244))
        sim.run()
        assert got == [] and gw.stats.dropped_quarantine == 1

    def test_release_restores_forwarding(self):
        fw = Firewall(default=FirewallAction.ALLOW)
        sim, gw, info, power, _ = self._two_domains(fw)
        gw.add_route("infotainment", 0x244, {"powertrain"})
        src = info.attach("radio")
        sink = power.attach("engine")
        got = []
        sink.on_receive(got.append)
        gw.quarantine("infotainment")
        gw.release("infotainment")
        src.send(CanFrame(0x244))
        sim.run()
        assert len(got) == 1

    def test_no_routing_loops(self):
        """Re-injected frames must not bounce back through the gateway."""
        fw = Firewall(default=FirewallAction.ALLOW)
        sim, gw, info, power, _ = self._two_domains(fw)
        gw.add_route("infotainment", 0x244, {"powertrain"})
        gw.add_route("powertrain", 0x244, {"infotainment"})
        src = info.attach("radio")
        src.send(CanFrame(0x244))
        sim.run(max_events=10_000)
        assert gw.stats.forwarded == 1  # exactly one crossing

    def test_forwarding_adds_processing_delay(self):
        fw = Firewall(default=FirewallAction.ALLOW)
        sim, gw, info, power, trace = self._two_domains(fw)
        gw.add_route("infotainment", 0x244, {"powertrain"})
        src = info.attach("radio")
        power.attach("engine")
        src.send(CanFrame(0x244))
        sim.run()
        tx_times = {
            r.source: r.time for r in trace.records("can.tx")
        }
        assert tx_times["powertrain"] >= tx_times["infotainment"] + gw.processing_delay

    def test_duplicate_domain_rejected(self):
        sim, gw, info, _, _ = self._two_domains()
        with pytest.raises(ValueError):
            gw.attach_domain("infotainment", info)

    def test_route_validation(self):
        _, gw, _, _, _ = self._two_domains()
        with pytest.raises(ValueError):
            gw.add_route("ghost", 0x1, {"powertrain"})
        with pytest.raises(ValueError):
            gw.add_route("infotainment", 0x1, {"ghost"})

    def test_quarantine_unknown_domain(self):
        _, gw, _, _, _ = self._two_domains()
        with pytest.raises(ValueError):
            gw.quarantine("ghost")

    def test_multi_destination_route(self):
        sim = Simulator()
        fw = Firewall(default=FirewallAction.ALLOW)
        gw = SecureGateway(sim, firewall=fw)
        buses = {}
        for d in ("a", "b", "c"):
            buses[d] = CanBus(sim, name=d)
            gw.attach_domain(d, buses[d])
        gw.add_route("a", 0x100, {"b", "c"})
        src = buses["a"].attach("src")
        got_b, got_c = [], []
        buses["b"].attach("nb").on_receive(got_b.append)
        buses["c"].attach("nc").on_receive(got_c.append)
        src.send(CanFrame(0x100))
        sim.run()
        assert len(got_b) == 1 and len(got_c) == 1
