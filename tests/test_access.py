"""Tests for access security: DST cipher, immobilizer, PKES, relay."""

import random

import pytest

from repro.access import (
    DistanceBounder,
    Immobilizer,
    KeyCracker,
    KeyFob,
    PkesSystem,
    RelayAttack,
    ToyDst,
    Transponder,
)
from repro.access.dst_cipher import RESPONSE_BITS
from repro.access.keyless import LF_WAKE_RANGE_M, SPEED_OF_LIGHT


class TestToyDst:
    def test_deterministic(self):
        c = ToyDst(0x12345)
        assert c.respond(42) == c.respond(42)

    def test_response_width(self):
        c = ToyDst((1 << 40) - 1)
        for challenge in (0, 1, 0xFFFFFFFFFF):
            assert 0 <= c.respond(challenge) < (1 << RESPONSE_BITS)

    def test_key_sensitivity(self):
        challenge = 0xA5A5A5A5A5
        responses = {ToyDst(k).respond(challenge) for k in range(64)}
        assert len(responses) > 48  # near-unique per key

    def test_challenge_sensitivity(self):
        c = ToyDst(0xDEADBEEF)
        responses = {c.respond(ch) for ch in range(64)}
        assert len(responses) > 48

    def test_validation(self):
        with pytest.raises(ValueError):
            ToyDst(1 << 40)
        with pytest.raises(ValueError):
            ToyDst(1).respond(1 << 40)


class TestImmobilizer:
    def test_matching_key_starts(self):
        key = 0x1122334455
        immo = Immobilizer(key, rng=random.Random(0))
        assert immo.attempt_start(Transponder(key))
        assert immo.authorized_starts == 1

    def test_wrong_key_rejected(self):
        immo = Immobilizer(0x1122334455, rng=random.Random(0))
        assert not immo.attempt_start(Transponder(0x5544332211))
        assert immo.rejected_starts == 1

    def test_replay_device_fails_fresh_challenge(self):
        """A recorder that replays one old response fails new challenges."""
        key = 0xCAFECAFECA
        transponder = Transponder(key)
        old_response = transponder.respond(12345)

        class Replayer:
            def respond(self, challenge):
                return old_response

        immo = Immobilizer(key, rng=random.Random(1))
        assert not immo.attempt_start(Replayer())


class TestKeyCracker:
    def test_cracks_reduced_keyspace(self):
        key = 0xAB00000000 | 0x3F2A  # high byte known, 16 unknown bits used
        transponder = Transponder(key)
        pairs = KeyCracker.eavesdrop(transponder, 3, rng=random.Random(0))
        cracker = KeyCracker(pairs)
        result = cracker.crack(true_key_prefix=key, known_bits=24)
        assert result.key == key
        assert result.keys_tried <= 1 << 16

    def test_cracked_key_clones_transponder(self):
        key = 0xAB00000000 | 0x1234
        pairs = KeyCracker.eavesdrop(Transponder(key), 3, rng=random.Random(1))
        result = KeyCracker(pairs).crack(true_key_prefix=key, known_bits=24)
        clone = Transponder(result.key, serial="CLONE")
        immo = Immobilizer(key, rng=random.Random(2))
        assert immo.attempt_start(clone)  # stolen car starts

    def test_multiple_pairs_disambiguate(self):
        """With a 24-bit response, ~2^-8 of a 16-bit space false-matches one
        pair; the second pair must eliminate survivors."""
        key = 0x0000004321
        pairs = KeyCracker.eavesdrop(Transponder(key), 2, rng=random.Random(3))
        result = KeyCracker(pairs).crack(true_key_prefix=0, known_bits=24)
        assert result.key == key

    def test_extrapolation_scales(self):
        from repro.access.immobilizer import CrackResult
        r = CrackResult(key=1, keys_tried=1 << 16, elapsed_s=1.0)
        # 2^40 keys at 2^16 keys/s = 2^24 seconds.
        assert r.extrapolate(40) == pytest.approx(float(1 << 24))

    def test_needs_two_pairs(self):
        with pytest.raises(ValueError):
            KeyCracker([(1, 2)])

    def test_known_bits_validation(self):
        pairs = KeyCracker.eavesdrop(Transponder(1), 2, rng=random.Random(0))
        with pytest.raises(ValueError):
            KeyCracker(pairs).crack(0, known_bits=40)


class TestPkes:
    KEY = b"F" * 16

    def _system(self, bounder=None):
        return PkesSystem(self.KEY, distance_bounder=bounder,
                          rng=random.Random(0))

    def test_nearby_fob_unlocks(self):
        pkes = self._system()
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=1.0)
        assert result.unlocked

    def test_distant_fob_out_of_lf_range(self):
        pkes = self._system()
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=50.0)
        assert not result.unlocked
        assert "LF range" in result.reason

    def test_wrong_key_fob_rejected(self):
        pkes = self._system()
        result = pkes.attempt_unlock(KeyFob(b"X" * 16), fob_distance_m=1.0)
        assert not result.unlocked and result.reason == "bad response"

    def test_relay_extends_range_without_bounding(self):
        """The Francillon result: relay defeats proximity inference."""
        pkes = self._system()
        relay = RelayAttack(relay_latency_s=1e-6)
        relay.engage()
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=50.0,
                                     relay=relay)
        assert result.unlocked  # car opens with the owner 50 m away

    def test_distance_bounding_stops_relay(self):
        bounder = DistanceBounder(max_distance_m=3.0)
        pkes = self._system(bounder)
        relay = RelayAttack(relay_latency_s=1e-6)
        relay.engage()
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=50.0,
                                     relay=relay)
        assert not result.unlocked
        assert result.reason == "distance bound exceeded"
        assert result.implied_distance_m > 3.0

    def test_distance_bounding_admits_legit_fob(self):
        bounder = DistanceBounder(max_distance_m=3.0)
        pkes = self._system(bounder)
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=1.5)
        assert result.unlocked

    def test_ultrafast_relay_evades_loose_bound(self):
        """A sub-nanosecond analogue relay under a sloppy bound: the
        documented residual risk of distance bounding."""
        bounder = DistanceBounder(max_distance_m=3.0, slack_s=2e-7)  # sloppy
        pkes = self._system(bounder)
        relay = RelayAttack(relay_latency_s=1e-9)
        relay.engage()
        # True distance large, but its flight time is hidden by the slack.
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=20.0,
                                     relay=relay)
        assert result.unlocked

    def test_disengaged_relay_does_not_help(self):
        pkes = self._system()
        relay = RelayAttack()
        result = pkes.attempt_unlock(KeyFob(self.KEY), fob_distance_m=50.0,
                                     relay=relay)
        assert not result.unlocked

    def test_rtt_physics(self):
        pkes = self._system()
        fob = KeyFob(self.KEY, processing_time_s=1e-6)
        result = pkes.attempt_unlock(fob, fob_distance_m=1.0)
        expected = 2 * 1.0 / SPEED_OF_LIGHT + 1e-6
        assert result.measured_rtt_s == pytest.approx(expected)

    def test_fob_key_validation(self):
        with pytest.raises(ValueError):
            KeyFob(b"short")

    def test_relay_latency_validation(self):
        with pytest.raises(ValueError):
            RelayAttack(relay_latency_s=-1)
