"""Batched correlate path, bounded ledgers, and the global campaign merger.

Three differential layers pin the PR's perf work to the old semantics:

- Hypothesis proves ``observe_batch(events)`` equivalent to
  ``[observe(e) for e in events]`` -- detections, every counter, the
  watermark, flagged signatures, and campaign attribution -- on streams
  with duplicates, late arrivals, low-severity noise, and chatty-vehicle
  repeats, under arbitrary batch chunkings;
- the incremental :class:`CorrelationEngine` is differentially proven
  against :class:`ReferenceCorrelationEngine` (the seed implementation,
  kept verbatim as the executable spec) inside the retention horizon;
- batch sinks are proven to deliver the exact events, in the exact
  order, the per-event sinks deliver -- on the plain and the sharded
  pipeline -- and a full :class:`SecurityOperationsCenter` scenario is
  byte-identical between ``batched=True`` and ``batched=False`` for
  both one and four shards.

Plus regression tests for the bounded dedup/duplicate ledgers (the
unbounded-growth fix) and unit tests for
:class:`GlobalCampaignMerger`'s cross-shard spread accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.sim import RngStreams, Simulator
from repro.soc import (
    CorrelationEngine,
    EventSource,
    FleetModel,
    FleetWorkloadGenerator,
    GlobalCampaignMerger,
    IngestPipeline,
    ReferenceCorrelationEngine,
    SecurityOperationsCenter,
    ShardedIngestPipeline,
    make_event,
    region_shard_key,
    seeded_campaigns,
)


def ev(vehicle, sig, time, seq, severity=Asil.C):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


ENGINE_KW = dict(window_s=8.0, k=3, dedup_window_s=4.0, max_lateness_s=2.0)


def snapshot(engine):
    """Everything observable about an engine, for equality checks."""
    state = {
        "metrics": engine.metrics(),
        "watermark": engine.watermark,
        "detections": list(engine.detections),
        "flagged": engine.flagged_signatures,
        "campaigns": {s: engine.campaign_vehicles(s)
                      for s in engine.flagged_signatures},
    }
    if isinstance(engine, CorrelationEngine):
        state["evicted"] = (engine.ids_evicted, engine.keys_evicted,
                            engine.windows_evicted)
    return state


# ----------------------------------------------------------------------
# Stream strategy: duplicates, late, low-severity, chatty vehicles
# ----------------------------------------------------------------------
# Times stay inside [0, retention_horizon) so the bounded engine's
# ledger eviction cannot diverge from the unbounded reference -- the
# regression tests below pin what happens *beyond* the horizon.
_spec = st.tuples(
    st.integers(0, 4),                       # vehicle
    st.integers(0, 2),                       # signature
    st.floats(0.0, 5.9),                     # time (< retention 6.0)
    st.sampled_from([Asil.QM, Asil.A, Asil.B, Asil.C, Asil.D]),
    st.one_of(st.none(), st.integers(0, 30)),  # duplicate-of index
)


def build_stream(specs):
    events = []
    for seq, (veh, sig, t, sev, dup) in enumerate(specs):
        if dup is not None and dup < len(events):
            events.append(events[dup])      # exact redelivery
        else:
            events.append(ev(f"v{veh:03d}", f"ids.sig:{sig}", t, seq,
                             severity=sev))
    return events


@st.composite
def stream_and_chunks(draw):
    events = build_stream(draw(st.lists(_spec, min_size=1, max_size=40)))
    sizes = draw(st.lists(st.integers(1, 7), min_size=1, max_size=40))
    return events, sizes


def chunked(events, sizes):
    i = n = 0
    while i < len(events):
        size = sizes[n % len(sizes)]
        yield events[i:i + size]
        i += size
        n += 1


class TestObserveBatchEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(stream_and_chunks())
    def test_batch_equals_per_event(self, case):
        events, sizes = case
        per_event = CorrelationEngine(**ENGINE_KW)
        batched = CorrelationEngine(**ENGINE_KW)

        expected = [per_event.observe(e) for e in events]
        got = []
        for batch in chunked(events, sizes):
            got.extend(batched.observe_batch(batch))

        assert got == expected                  # per-event verdicts align
        assert snapshot(batched) == snapshot(per_event)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(_spec, min_size=1, max_size=40))
    def test_incremental_engine_equals_reference(self, specs):
        events = build_stream(specs)
        fast = CorrelationEngine(**ENGINE_KW)
        reference = ReferenceCorrelationEngine(**ENGINE_KW)
        for e in events:
            got, want = fast.observe(e), reference.observe(e)
            assert got == want
        fast_state = snapshot(fast)
        fast_state.pop("evicted")
        assert fast_state == snapshot(reference)

    def test_single_whole_stream_batch(self):
        events = [ev(f"v{i}", "ids.sig:0", float(i), i) for i in range(6)]
        per_event = CorrelationEngine(**ENGINE_KW)
        batched = CorrelationEngine(**ENGINE_KW)
        expected = [per_event.observe(e) for e in events]
        assert batched.observe_batch(events) == expected
        assert snapshot(batched) == snapshot(per_event)


# ----------------------------------------------------------------------
# Bounded ledgers (the unbounded _seen_ids/_last_by_key growth fix)
# ----------------------------------------------------------------------
class TestBoundedLedgers:
    def test_ledgers_stay_bounded_where_reference_grows(self):
        fast = CorrelationEngine(window_s=2.0, k=10 ** 9,
                                 dedup_window_s=4.0, max_lateness_s=2.0)
        reference = ReferenceCorrelationEngine(
            window_s=2.0, k=10 ** 9, dedup_window_s=4.0, max_lateness_s=2.0)
        n = 5_000
        for i in range(n):                      # 1 event/s, time marches on
            e = ev(f"v{i:05d}", f"ids.sig:{i % 3}", float(i), i)
            fast.observe(e)
            reference.observe(e)
        assert len(reference._seen_ids) == n    # the old engine: O(forever)
        assert len(fast._seen_ids) < 50         # retention is 6 s of stream
        assert len(fast._last_by_key) < 50
        assert fast.ids_evicted > n - 50
        assert fast.metrics() == reference.metrics()  # hygiene unchanged

    def test_in_horizon_duplicate_still_counted_as_duplicate(self):
        engine = CorrelationEngine(**ENGINE_KW)
        e = ev("v1", "ids.sig:0", 10.0, 1)
        assert engine.observe(e) is None
        engine.observe(e)                       # immediate redelivery
        assert engine.duplicate_ids == 1
        assert engine.late_dropped == 0

    def test_beyond_horizon_duplicate_attributed_to_late_dropped(self):
        # Pinned semantics of the bounded ledger: once the watermark has
        # advanced past the retention horizon, a redelivered id's event
        # is (by construction) also beyond the lateness bound, so the
        # drop is attributed to late_dropped instead of duplicate_ids.
        # Same drop, same hygiene, bounded memory.
        engine = CorrelationEngine(**ENGINE_KW)
        stale = ev("v1", "ids.sig:0", 0.0, 1)
        engine.observe(stale)
        for i in range(2, 30):                  # advance well past retention
            engine.observe(ev("v2", "ids.sig:1", float(i * 5), i))
        assert engine.ids_evicted > 0
        before = engine.late_dropped
        engine.observe(stale)                   # redelivery after eviction
        assert engine.duplicate_ids == 0
        assert engine.late_dropped == before + 1

    def test_dedup_still_works_across_sweeps(self):
        # A chatty vehicle repeating inside dedup_window collapses to one
        # observation even after many eviction sweeps have run.
        engine = CorrelationEngine(**ENGINE_KW)
        seq = 0
        for base in (0.0, 100.0, 200.0):        # each block spans a sweep
            engine.observe(ev("v1", "ids.sig:0", base, seq)); seq += 1
            engine.observe(ev("v1", "ids.sig:0", base + 3.0, seq)); seq += 1
            engine.observe(ev("v1", "ids.sig:0", base + 9.0, seq)); seq += 1
        # Per block: +3.0 is inside the window (deduped, and it slides
        # `last` to +3.0); +9.0 is 6 s past that -- a fresh observation.
        assert engine.deduped == 3
        assert engine.ids_evicted > 0

    def test_stale_signature_windows_are_evicted(self):
        engine = CorrelationEngine(**ENGINE_KW)
        engine.observe(ev("v1", "ids.sig:cold", 0.0, 1))
        assert engine.pending_vehicles("ids.sig:cold") == {"v1"}
        engine.observe(ev("v2", "ids.sig:hot", 500.0, 2))
        assert engine.windows_evicted == 1
        assert engine.pending_vehicles("ids.sig:cold") == set()
        # ...and that is invisible to detection: no future admissible
        # event could have co-occurred with the cold window anyway.
        assert engine.metrics()["campaigns_flagged"] == 0


# ----------------------------------------------------------------------
# Batch sinks: same events, same order as per-event sinks
# ----------------------------------------------------------------------
PIPE_KW = dict(capacity_eps=40.0, queue_capacity=32, batch_size=8,
               min_severity=Asil.A)


def _drive(pipeline):
    """Deterministic offer/pump schedule; returns nothing -- callers
    compare what the sinks saw."""
    rng = RngStreams(7).get("drive")
    now = 0.0
    for seq in range(300):
        now += rng.random() * 0.05
        e = ev(f"v{seq % 17:03d}", f"ids.sig:{seq % 5}", now, seq,
               severity=Asil.B if seq % 3 else Asil.C)
        pipeline.offer(now, e)
        if seq % 20 == 19:
            pipeline.pump(now)
    pipeline.pump(now + 1.0)


class TestBatchSinkDelivery:
    @pytest.mark.parametrize("make", [
        lambda: IngestPipeline(**PIPE_KW),
        lambda: ShardedIngestPipeline(num_shards=4, **PIPE_KW),
        lambda: ShardedIngestPipeline(num_shards=4,
                                      shard_key=region_shard_key, **PIPE_KW),
    ])
    def test_batch_sink_matches_event_sink(self, make):
        per_event_pipe, batch_pipe = make(), make()
        singles, batches = [], []
        per_event_pipe.add_sink(lambda now, e: singles.append(e))
        batch_pipe.add_batch_sink(lambda now, batch: batches.append(list(batch)))
        _drive(per_event_pipe)
        _drive(batch_pipe)

        flattened = [e for batch in batches for e in batch]
        assert flattened == singles             # same events, same order
        assert all(batches)                     # never an empty delivery
        assert batch_pipe.metrics() == per_event_pipe.metrics()

    def test_both_sink_kinds_coexist(self):
        pipeline = IngestPipeline(**PIPE_KW)
        singles, batches = [], []
        pipeline.add_sink(lambda now, e: singles.append(e))
        pipeline.add_batch_sink(lambda now, b: batches.append(list(b)))
        _drive(pipeline)
        assert [e for b in batches for e in b] == singles


# ----------------------------------------------------------------------
# GlobalCampaignMerger: cross-shard campaign stitching
# ----------------------------------------------------------------------
MERGE_KW = dict(window_s=8.0, k=3, dedup_window_s=0.0, max_lateness_s=100.0)


class TestGlobalCampaignMerger:
    def test_sub_threshold_shards_merge_into_campaign(self):
        # Region sharding: no single engine ever reaches k, the fleet did.
        e1, e2 = CorrelationEngine(**MERGE_KW), CorrelationEngine(**MERGE_KW)
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        e1.observe(ev("v1", "ids.sig:x", 1.0, 1))
        e1.observe(ev("v2", "ids.sig:x", 2.0, 2))
        e2.observe(ev("v3", "ids.sig:x", 3.0, 3))
        assert not e1.flagged_signatures and not e2.flagged_signatures

        detections, new_vehicles = merger.merge([e1, e2])
        assert [d.signature for d in detections] == ["ids.sig:x"]
        d = detections[0]
        assert d.vehicles == ("v1", "v2", "v3")
        assert d.first_time == 1.0 and d.detect_time == 3.0
        assert new_vehicles == {}
        assert merger.spread("ids.sig:x") == 3

    def test_closed_window_semantics_across_shards(self):
        # Far-apart shard entries must NOT stitch: the merger re-prunes
        # the union against the global newest with the same closed
        # window the engines use.
        e1, e2 = CorrelationEngine(**MERGE_KW), CorrelationEngine(**MERGE_KW)
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        e1.observe(ev("v1", "ids.sig:x", 0.0, 1))
        e1.observe(ev("v2", "ids.sig:x", 1.0, 2))
        e2.observe(ev("v3", "ids.sig:x", 50.0, 3))
        detections, _ = merger.merge([e1, e2])
        assert detections == []

        # Exactly window_s apart still co-occurs (closed window)...
        e3, e4 = CorrelationEngine(**MERGE_KW), CorrelationEngine(**MERGE_KW)
        merger2 = GlobalCampaignMerger(window_s=8.0, k=3)
        e3.observe(ev("v1", "ids.sig:y", 0.0, 4))
        e3.observe(ev("v2", "ids.sig:y", 4.0, 5))
        e4.observe(ev("v3", "ids.sig:y", 8.0, 6))
        detections, _ = merger2.merge([e3, e4])
        assert [d.signature for d in detections] == ["ids.sig:y"]

    def test_local_detection_forwarded_not_refired(self):
        # Signature sharding: the campaign lives wholly on one shard, so
        # the merged verdict IS the local one.
        e1, e2 = CorrelationEngine(**MERGE_KW), CorrelationEngine(**MERGE_KW)
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        local = None
        for i, veh in enumerate(("v1", "v2", "v3")):
            local = e1.observe(ev(veh, "ids.sig:x", float(i), i)) or local
        assert local is not None

        detections, _ = merger.merge([e1, e2])
        assert len(detections) == 1
        assert detections[0].vehicles == local.vehicles
        assert detections[0].detect_time == local.detect_time
        # A second merge with nothing new is a no-op.
        assert merger.merge([e1, e2]) == ([], {})
        assert merger.metrics()["campaigns_flagged"] == 1.0

    def test_adopt_campaign_and_spread_delta_accounting(self):
        e1, e2 = CorrelationEngine(**MERGE_KW), CorrelationEngine(**MERGE_KW)
        merger = GlobalCampaignMerger(window_s=8.0, k=3)
        e1.observe(ev("v1", "ids.sig:x", 1.0, 1))
        e1.observe(ev("v2", "ids.sig:x", 2.0, 2))
        e2.observe(ev("v3", "ids.sig:x", 3.0, 3))
        detections, _ = merger.merge([e1, e2])
        for engine in (e1, e2):
            engine.adopt_campaign(detections[0])
        assert e1.is_flagged("ids.sig:x") and e2.is_flagged("ids.sig:x")
        # Adoption folds the pending window into the campaign set...
        assert e1.campaign_vehicles("ids.sig:x") == {"v1", "v2"}
        # ...and later events attribute spread without re-firing.
        assert e2.observe(ev("v9", "ids.sig:x", 4.0, 9)) is None
        new_detections, new_vehicles = merger.merge([e1, e2])
        assert new_detections == []
        assert new_vehicles == {"ids.sig:x": {"v9"}}
        assert merger.campaign_vehicles("ids.sig:x") == {"v1", "v2", "v3", "v9"}
        # The delta really is a delta: reported once, not again.
        assert merger.merge([e1, e2]) == ([], {})


# ----------------------------------------------------------------------
# End-to-end: SOC batched vs per-event is byte-identical
# ----------------------------------------------------------------------
def _soc_scene(batched, num_shards):
    sim = Simulator()
    rng = RngStreams(3)
    campaigns = seeded_campaigns(rng, 2_000, 0.02)
    fleet = FleetModel(2_000, campaigns)
    soc = SecurityOperationsCenter(sim, fleet, capacity_eps=400.0, k=3,
                                   num_shards=num_shards, batched=batched)
    generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline)
    soc.start()
    generator.start()
    sim.run_until(12.0)
    soc.final_drain()
    return soc


class TestCenterBatchedDifferential:
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_batched_center_identical_to_per_event(self, num_shards):
        batched = _soc_scene(batched=True, num_shards=num_shards)
        per_event = _soc_scene(batched=False, num_shards=num_shards)
        assert batched.metrics() == per_event.metrics()
        assert batched.flagged_signatures() == per_event.flagged_signatures()

        def incident_state(soc):
            return {
                iid: (inc.signature, inc.opened_at, inc.severity, inc.state,
                      sorted(inc.vehicles), inc.history)
                for iid, inc in soc.tracker.incidents.items()
            }

        assert incident_state(batched) == incident_state(per_event)
