"""Tests for the CAN bus: arbitration, errors, bus-off, utilization."""

import random

import pytest

from repro.ivn import BusState, CanBus, CanFrame
from repro.sim import Simulator, TraceRecorder


@pytest.fixture
def setup():
    sim = Simulator()
    trace = TraceRecorder()
    bus = CanBus(sim, bitrate=500_000, trace=trace)
    return sim, bus, trace


class TestTopology:
    def test_attach(self, setup):
        sim, bus, _ = setup
        node = bus.attach("ecu1")
        assert node.name == "ecu1" and "ecu1" in bus.nodes

    def test_duplicate_name_rejected(self, setup):
        _, bus, _ = setup
        bus.attach("ecu1")
        with pytest.raises(ValueError):
            bus.attach("ecu1")


class TestTransmission:
    def test_frame_delivered_to_other_nodes(self, setup):
        sim, bus, _ = setup
        a, b, c = bus.attach("a"), bus.attach("b"), bus.attach("c")
        got_b, got_c = [], []
        b.on_receive(got_b.append)
        c.on_receive(got_c.append)
        a.send(CanFrame(0x100, b"\x01"))
        sim.run()
        assert len(got_b) == 1 and len(got_c) == 1
        assert got_b[0].can_id == 0x100 and got_b[0].sender == "a"

    def test_sender_does_not_receive_own_frame(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        bus.attach("b")
        got = []
        a.on_receive(got.append)
        a.send(CanFrame(0x100))
        sim.run()
        assert got == []

    def test_transmission_takes_wire_time(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        bus.attach("b")
        frame = CanFrame(0x100, bytes(8))
        a.send(frame)
        sim.run()
        assert sim.now == pytest.approx(frame.bit_length() / 500_000)

    def test_bus_tap_sees_all_frames(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        seen = []
        bus.tap(seen.append)
        a.send(CanFrame(0x1))
        a.send(CanFrame(0x2))
        sim.run()
        assert [f.can_id for f in seen] == [0x1, 0x2]

    def test_trace_records_latency(self, setup):
        sim, bus, trace = setup
        a = bus.attach("a")
        a.send(CanFrame(0x100))
        sim.run()
        rec = trace.last("can.tx")
        assert rec.data["latency"] > 0


class TestArbitration:
    def test_lower_id_wins(self, setup):
        sim, bus, trace = setup
        a, b = bus.attach("a"), bus.attach("b")
        # Both queue at t=0; the lower id must be on the wire first.
        b.send(CanFrame(0x200))
        a.send(CanFrame(0x100))
        sim.run()
        ids = [r.data["can_id"] for r in trace.records("can.tx")]
        assert ids == [0x100, 0x200]

    def test_arbitration_loss_counted(self, setup):
        sim, bus, _ = setup
        a, b = bus.attach("a"), bus.attach("b")
        b.send(CanFrame(0x200))
        a.send(CanFrame(0x100))
        sim.run()
        assert b.arbitration_losses >= 1
        assert a.arbitration_losses == 0

    def test_flood_starves_high_ids(self, setup):
        """A low-id flood (DoS) delays high-id traffic severely."""
        sim, bus, trace = setup
        victim, attacker = bus.attach("victim"), bus.attach("attacker")
        for _ in range(100):
            attacker.send(CanFrame(0x000, bytes(8)))
        victim.send(CanFrame(0x300, bytes(8)))
        sim.run()
        victim_tx = [r for r in trace.records("can.tx") if r.data["can_id"] == 0x300]
        assert len(victim_tx) == 1
        # Victim frame latency ~ 100 attacker frames' wire time.
        assert victim_tx[0].data["latency"] > 100 * 100 / 500_000

    def test_same_node_queue_is_priority_ordered(self, setup):
        sim, bus, trace = setup
        a = bus.attach("a")
        a.send(CanFrame(0x300))
        a.send(CanFrame(0x100))
        sim.run()
        ids = [r.data["can_id"] for r in trace.records("can.tx")]
        assert ids == [0x100, 0x300]


class TestErrors:
    def test_corruption_hook_triggers_retransmit(self, setup):
        sim, bus, trace = setup
        a = bus.attach("a")
        bus.attach("b")
        corrupt_once = {"done": False}

        def hook(frame):
            if not corrupt_once["done"]:
                corrupt_once["done"] = True
                return True
            return False

        bus.corruption_hook = hook
        a.send(CanFrame(0x100, b"\x01"))
        sim.run()
        assert trace.count("can.error") == 1
        assert trace.count("can.tx") == 1  # retransmitted successfully
        assert a.frames_sent == 1

    def test_tec_accounting(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        bus.attach("b")
        count = {"n": 0}

        def hook(frame):
            count["n"] += 1
            return count["n"] <= 3  # corrupt first three attempts

        bus.corruption_hook = hook
        a.send(CanFrame(0x100))
        sim.run()
        # +8 per error x3, -1 on final success.
        assert a.tec == 23

    def test_bus_off_after_sustained_errors(self, setup):
        sim, bus, trace = setup
        a = bus.attach("a")
        bus.attach("b")
        bus.corruption_hook = lambda frame: frame.sender == "a"
        for _ in range(40):
            a.send(CanFrame(0x100))
        sim.run()
        assert a.state == BusState.BUS_OFF
        assert trace.count("can.busoff") == 1
        assert a.tx_queue == []

    def test_bus_off_node_cannot_send(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        bus.attach("b")
        a.tec = 300
        a.send(CanFrame(0x100))
        sim.run()
        assert a.frames_sent == 0

    def test_recover_restores_node(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        bus.attach("b")
        a.tec = 300
        assert a.bus_off
        a.recover()
        assert a.state == BusState.ERROR_ACTIVE
        a.send(CanFrame(0x100))
        sim.run()
        assert a.frames_sent == 1

    def test_error_passive_state(self, setup):
        _, bus, _ = setup
        a = bus.attach("a")
        a.tec = 128
        assert a.state == BusState.ERROR_PASSIVE

    def test_random_bit_errors(self, setup):
        sim, bus, _ = setup
        bus.bit_error_rate = 0.01  # very high: ~1 - 0.99^130 per frame
        bus.rng = random.Random(1)
        a = bus.attach("a")
        bus.attach("b")
        for _ in range(50):
            a.send(CanFrame(0x100, bytes(8)))
        sim.run(max_events=100_000)
        assert bus.error_frames > 0

    def test_other_nodes_rec_increments_on_error(self, setup):
        sim, bus, _ = setup
        a, b = bus.attach("a"), bus.attach("b")
        first = {"done": False}

        def hook(frame):
            if not first["done"]:
                first["done"] = True
                return True
            return False

        bus.corruption_hook = hook
        a.send(CanFrame(0x100))
        sim.run()
        # b saw one error (+1) then one good frame (-1).
        assert b.rec == 0
        assert b.frames_received == 1


class TestUtilization:
    def test_idle_bus_zero(self, setup):
        sim, bus, _ = setup
        sim.run_until(1.0)
        assert bus.utilization() == 0.0

    def test_utilization_fraction(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        frame = CanFrame(0x100, bytes(8))
        a.send(frame)
        sim.run()
        sim.run_until(2 * frame.wire_time(500_000))
        assert bus.utilization() == pytest.approx(0.5, rel=1e-6)

    def test_saturated_bus_near_one(self, setup):
        sim, bus, _ = setup
        a = bus.attach("a")
        for _ in range(200):
            a.send(CanFrame(0x100, bytes(8)))
        sim.run()
        assert bus.utilization() == pytest.approx(1.0, rel=1e-6)
