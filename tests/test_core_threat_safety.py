"""Tests for the threat taxonomy and ISO 26262 safety model."""

import pytest

from repro.core import (
    Asil,
    AttackMode,
    AttackModel,
    Controllability,
    Exposure,
    Hazard,
    SecurityLayer,
    Severity,
    ThreatCatalog,
    ThreatEntry,
    default_catalog,
    determine_asil,
)
from repro.core.safety import DEFAULT_HAZARDS


class TestAsilDetermination:
    def test_worst_case_is_d(self):
        assert determine_asil(Severity.S3, Exposure.E4, Controllability.C3) == Asil.D

    def test_zero_factors_give_qm(self):
        assert determine_asil(Severity.S0, Exposure.E4, Controllability.C3) == Asil.QM
        assert determine_asil(Severity.S3, Exposure.E0, Controllability.C3) == Asil.QM
        assert determine_asil(Severity.S3, Exposure.E4, Controllability.C0) == Asil.QM

    def test_standard_table_spot_checks(self):
        # S3/E4/C2 -> C;  S3/E3/C3 -> C;  S2/E4/C3 -> C (rank 9)
        assert determine_asil(Severity.S3, Exposure.E4, Controllability.C2) == Asil.C
        assert determine_asil(Severity.S3, Exposure.E3, Controllability.C3) == Asil.C
        assert determine_asil(Severity.S2, Exposure.E4, Controllability.C3) == Asil.C
        # S1/E4/C3 -> B (rank 8);  S1/E3/C3 -> A (rank 7)
        assert determine_asil(Severity.S1, Exposure.E4, Controllability.C3) == Asil.B
        assert determine_asil(Severity.S1, Exposure.E3, Controllability.C3) == Asil.A
        # S1/E2/C3 -> QM (rank 6)
        assert determine_asil(Severity.S1, Exposure.E2, Controllability.C3) == Asil.QM

    def test_monotone_in_each_factor(self):
        for s in Severity:
            for e in Exposure:
                for c in Controllability:
                    level = determine_asil(s, e, c)
                    if s < Severity.S3:
                        worse = determine_asil(Severity(s + 1), e, c)
                        assert worse >= level

    def test_hazard_asil_property(self):
        hazard = Hazard("h", Severity.S3, Exposure.E4, Controllability.C3)
        assert hazard.asil == Asil.D

    def test_security_induced_flag(self):
        assert Hazard("h", Severity.S1, Exposure.E1, Controllability.C1,
                      induced_by_threat="can-spoof").is_security_induced
        assert not Hazard("h", Severity.S1, Exposure.E1, Controllability.C1
                          ).is_security_induced

    def test_default_hazards_have_valid_threats(self):
        catalog = default_catalog()
        for hazard in DEFAULT_HAZARDS:
            if hazard.induced_by_threat:
                assert catalog.get(hazard.induced_by_threat) is not None


class TestThreatCatalog:
    def test_default_catalog_nonempty(self):
        catalog = default_catalog()
        assert len(catalog) >= 15

    def test_all_cia_models_represented(self):
        catalog = default_catalog()
        for model in AttackModel:
            assert catalog.by_model(model)

    def test_all_modes_represented(self):
        catalog = default_catalog()
        for mode in AttackMode:
            assert catalog.by_mode(mode), f"no threats with mode {mode}"

    def test_every_layer_mitigates_something(self):
        catalog = default_catalog()
        for layer in SecurityLayer:
            assert catalog.mitigated_by(layer), f"{layer} mitigates nothing"

    def test_attack_classes_resolve(self):
        """Every catalog entry must point at a real class in this repo."""
        import importlib

        for entry in default_catalog():
            module_name, _, class_name = entry.attack_class.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, class_name), entry.attack_class

    def test_coverage_full_deployment(self):
        catalog = default_catalog()
        assert catalog.uncovered(set(SecurityLayer)) == []

    def test_coverage_no_deployment(self):
        catalog = default_catalog()
        assert len(catalog.uncovered(set())) == len(catalog)

    def test_coverage_partial(self):
        catalog = default_catalog()
        only_gateway = {SecurityLayer.SECURE_GATEWAY}
        uncovered = catalog.uncovered(only_gateway)
        assert "side-channel-key-extraction" in uncovered
        assert "can-injection" not in uncovered

    def test_duplicate_rejected(self):
        catalog = default_catalog()
        entry = next(iter(catalog))
        with pytest.raises(ValueError):
            catalog.add(entry)

    def test_get(self):
        catalog = default_catalog()
        assert catalog.get("bus-off") is not None
        assert catalog.get("nonexistent") is None
