"""Tests for the V2X layer: certificates, 1609.2 messages, PKI, privacy."""

import random

import pytest

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.physical import Vehicle, VehicleState
from repro.sim import Simulator
from repro.v2x import (
    BasicSafetyMessage,
    Certificate,
    CertificateAuthority,
    CertificateError,
    MessageVerifier,
    ObuStation,
    PkiHierarchy,
    PseudonymManager,
    RoadsideUnit,
    SignedMessage,
    TrackingAdversary,
    WirelessChannel,
    sign_payload,
)
from repro.v2x.certificates import verify_chain


@pytest.fixture(scope="module")
def pki():
    return PkiHierarchy(seed=b"test-pki")


@pytest.fixture(scope="module")
def enrolled(pki):
    cert, key = pki.enroll_vehicle("veh-001")
    return cert, key


class TestCertificates:
    def test_root_self_signed_valid(self, pki):
        assert pki.root.verify_issued(pki.root.certificate)

    def test_subordinate_chains_to_root(self, pki):
        verify_chain(pki.enrollment_ca.certificate, pki.trust_store(), 1.0)

    def test_issue_and_verify(self, pki):
        keys = EcdsaKeyPair.generate(HmacDrbg(b"subject"))
        cert = pki.root.issue("node", keys.public, 0.0, 100.0)
        assert pki.root.verify_issued(cert)

    def test_forged_cert_rejected(self, pki):
        keys = EcdsaKeyPair.generate(HmacDrbg(b"subject"))
        cert = pki.root.issue("node", keys.public, 0.0, 100.0)
        forged = Certificate(
            subject="node", public_key=keys.public,
            valid_from=0.0, valid_to=1e9,  # extended validity
            issuer="root-ca", psids=cert.psids, signature=cert.signature,
        )
        assert not pki.root.verify_issued(forged)

    def test_expired_cert_fails_chain(self, pki):
        keys = EcdsaKeyPair.generate(HmacDrbg(b"s2"))
        cert = pki.root.issue("node", keys.public, 0.0, 10.0)
        with pytest.raises(CertificateError, match="expired"):
            verify_chain(cert, pki.trust_store(), 100.0)

    def test_unknown_issuer_fails_chain(self):
        rogue = CertificateAuthority("rogue-ca", b"rogue")
        keys = EcdsaKeyPair.generate(HmacDrbg(b"s3"))
        cert = rogue.issue("node", keys.public, 0.0, 100.0)
        with pytest.raises(CertificateError, match="unknown issuer"):
            verify_chain(cert, {"root-ca": PkiHierarchy(b"x").root}, 1.0)

    def test_revocation(self, pki):
        keys = EcdsaKeyPair.generate(HmacDrbg(b"s4"))
        cert = pki.root.issue("node", keys.public, 0.0, 100.0)
        pki.root.crl.revoke(cert)
        with pytest.raises(CertificateError, match="revoked"):
            verify_chain(cert, pki.trust_store(), 1.0, crls=[pki.root.crl])

    def test_empty_validity_rejected(self, pki):
        keys = EcdsaKeyPair.generate(HmacDrbg(b"s5"))
        with pytest.raises(CertificateError):
            pki.root.issue("node", keys.public, 10.0, 10.0)

    def test_digest_is_8_bytes_and_stable(self, pki):
        cert = pki.root.certificate
        assert len(cert.digest) == 8
        assert cert.digest == pki.root.certificate.digest


class TestPkiPseudonyms:
    def test_enrollment(self, pki, enrolled):
        cert, key = enrolled
        assert cert.subject == "veh-001"
        verify_chain(cert, pki.trust_store(), 1.0)

    def test_double_enrollment_rejected(self, pki):
        pki2 = PkiHierarchy(b"other")
        pki2.enroll_vehicle("veh-x")
        with pytest.raises(CertificateError):
            pki2.enroll_vehicle("veh-x")

    def test_pseudonym_batch(self, pki, enrolled):
        cert, _ = enrolled
        batch = pki.issue_pseudonyms("veh-001", cert, count=5, validity_start=0.0)
        assert len(batch) == 5
        subjects = {c.subject for c, _ in batch.entries}
        assert len(subjects) == 5  # all distinct
        assert all(c.is_pseudonym for c, _ in batch.entries)
        assert all("veh-001" not in c.subject for c, _ in batch.entries)

    def test_pseudonyms_chain_to_root(self, pki, enrolled):
        cert, _ = enrolled
        batch = pki.issue_pseudonyms("veh-001", cert, count=2, validity_start=0.0)
        for c, _ in batch.entries:
            verify_chain(c, pki.trust_store(), 1.0)

    def test_unenrolled_vehicle_rejected(self, pki):
        fake = pki.root.certificate
        with pytest.raises(CertificateError):
            pki.issue_pseudonyms("ghost", fake, count=1, validity_start=0.0)

    def test_linkage_map_populated(self, pki, enrolled):
        cert, _ = enrolled
        batch = pki.issue_pseudonyms("veh-001", cert, count=3, validity_start=0.0)
        for c, _ in batch.entries:
            assert pki.linkage_map[c.digest] == "veh-001"

    def test_revoke_vehicle_revokes_pseudonyms(self):
        pki = PkiHierarchy(b"revoke-test")
        cert, _ = pki.enroll_vehicle("bad-actor")
        batch = pki.issue_pseudonyms("bad-actor", cert, count=3, validity_start=0.0)
        revoked = pki.revoke_vehicle("bad-actor")
        assert revoked == 3
        for c, _ in batch.entries:
            with pytest.raises(CertificateError, match="revoked"):
                verify_chain(c, pki.trust_store(), 1.0, crls=[pki.pseudonym_ca.crl])


class TestSignedMessages:
    def _message(self, pki, enrolled, time=1.0):
        cert, _ = enrolled
        batch = pki.issue_pseudonyms("veh-001", cert, count=1, validity_start=0.0)
        pcert, pkey = batch.entries[0]
        return sign_payload(b"hazard ahead", "bsm", time, pcert, pkey)

    def test_valid_message_accepted(self, pki, enrolled):
        msg = self._message(pki, enrolled)
        verifier = MessageVerifier(pki.trust_store())
        assert verifier.verify(msg, now=1.1) is None
        assert verifier.verified == 1

    def test_tampered_payload_rejected(self, pki, enrolled):
        msg = self._message(pki, enrolled)
        bad = SignedMessage(b"HAZARD ahead", msg.psid, msg.generation_time,
                            msg.certificate, msg.signature)
        verifier = MessageVerifier(pki.trust_store())
        assert verifier.verify(bad, now=1.1) == "signature"

    def test_stale_message_rejected(self, pki, enrolled):
        msg = self._message(pki, enrolled, time=1.0)
        verifier = MessageVerifier(pki.trust_store(), freshness_window=0.5)
        assert verifier.verify(msg, now=5.0) == "stale"

    def test_future_message_rejected(self, pki, enrolled):
        msg = self._message(pki, enrolled, time=100.0)
        verifier = MessageVerifier(pki.trust_store(), freshness_window=0.5)
        assert verifier.verify(msg, now=1.0) == "stale"

    def test_replay_rejected(self, pki, enrolled):
        msg = self._message(pki, enrolled)
        verifier = MessageVerifier(pki.trust_store())
        assert verifier.verify(msg, now=1.1) is None
        assert verifier.verify(msg, now=1.2) == "replay"
        assert verifier.rejected["replay"] == 1

    def test_wrong_psid_rejected(self, pki, enrolled):
        msg = self._message(pki, enrolled)
        verifier = MessageVerifier(pki.trust_store())
        assert verifier.verify(msg, now=1.1, required_psid="spat") == "psid"

    def test_permission_enforced(self, pki):
        """A cert without the 'bsm' PSID cannot sign BSMs."""
        keys = EcdsaKeyPair.generate(HmacDrbg(b"noperm"))
        cert = pki.root.issue("x", keys.public, 0.0, 1e9,
                              psids=frozenset({"other"}))
        msg = sign_payload(b"p", "bsm", 1.0, cert, keys.private)
        verifier = MessageVerifier(pki.trust_store())
        assert verifier.verify(msg, now=1.1) == "permission"

    def test_self_signed_attacker_cert_rejected(self, pki, enrolled):
        rogue = CertificateAuthority("pseudonym-ca", b"evil-twin")  # name collision!
        keys = EcdsaKeyPair.generate(HmacDrbg(b"evil"))
        cert = rogue.issue("evil", keys.public, 0.0, 1e9)
        msg = sign_payload(b"brake now!", "bsm", 1.0, cert, keys.private)
        verifier = MessageVerifier(pki.trust_store())
        # The receiver's trust store holds the *real* pseudonym CA key.
        assert verifier.verify(msg, now=1.1) == "certificate"


class TestBsm:
    def test_roundtrip(self):
        bsm = BasicSafetyMessage(5, 1.5, -2.5, 13.0, 0.7, event="hazard")
        assert BasicSafetyMessage.decode(bsm.encode()) == bsm

    def test_roundtrip_no_event(self):
        bsm = BasicSafetyMessage(0, 0.0, 0.0, 0.0, 0.0)
        assert BasicSafetyMessage.decode(bsm.encode()) == bsm

    def test_validation(self):
        with pytest.raises(ValueError):
            BasicSafetyMessage(128, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            BasicSafetyMessage(0, 0, 0, -1.0, 0)

    def test_truncated_decode(self):
        with pytest.raises(ValueError):
            BasicSafetyMessage.decode(b"short")


class TestChannel:
    def test_range_limits_delivery(self):
        sim = Simulator()
        ch = WirelessChannel(sim, comm_range=100.0)
        a = ch.attach("a", lambda: (0.0, 0.0))
        b = ch.attach("b", lambda: (50.0, 0.0))
        c = ch.attach("c", lambda: (500.0, 0.0))
        got_b, got_c = [], []
        b.on_receive(lambda m, s: got_b.append(m))
        c.on_receive(lambda m, s: got_c.append(m))
        a.broadcast("hello")
        sim.run()
        assert got_b == ["hello"] and got_c == []

    def test_loss_probability(self):
        sim = Simulator()
        ch = WirelessChannel(sim, loss_probability=0.5, rng=random.Random(0))
        a = ch.attach("a", lambda: (0.0, 0.0))
        b = ch.attach("b", lambda: (10.0, 0.0))
        got = []
        b.on_receive(lambda m, s: got.append(m))
        for _ in range(100):
            a.broadcast("x")
        sim.run()
        assert 25 < len(got) < 75
        assert ch.losses == 100 - len(got)

    def test_latency(self):
        sim = Simulator()
        ch = WirelessChannel(sim, latency=5e-3)
        a = ch.attach("a", lambda: (0.0, 0.0))
        b = ch.attach("b", lambda: (1.0, 0.0))
        times = []
        b.on_receive(lambda m, s: times.append(sim.now))
        a.broadcast("x")
        sim.run()
        assert times == [pytest.approx(5e-3)]

    def test_duplicate_radio_rejected(self):
        ch = WirelessChannel(Simulator())
        ch.attach("a", lambda: (0, 0))
        with pytest.raises(ValueError):
            ch.attach("a", lambda: (0, 0))

    def test_loss_validation(self):
        with pytest.raises(ValueError):
            WirelessChannel(Simulator(), loss_probability=1.0)


class TestObuAndRsu:
    def _scene(self, n_vehicles=2, verify_rate=400.0):
        sim = Simulator()
        pki = PkiHierarchy(b"scene")
        channel = WirelessChannel(sim)
        stations = []
        truth = {}
        for i in range(n_vehicles):
            vid = f"veh-{i}"
            ecert, _ = pki.enroll_vehicle(vid)
            batch = pki.issue_pseudonyms(vid, ecert, count=4, validity_start=0.0)
            for c, _ in batch.entries:
                truth[c.subject] = vid
            vehicle = Vehicle(VehicleState(x=float(10 * i), speed=10.0), name=vid)
            station = ObuStation(
                sim, vid, vehicle, channel,
                PseudonymManager(batch, rotation_period=60.0),
                MessageVerifier(pki.trust_store()),
                verify_rate=verify_rate,
            )
            stations.append(station)
        return sim, pki, channel, stations, truth

    def test_bsm_exchange(self):
        sim, _, _, stations, _ = self._scene()
        for s in stations:
            s.start_broadcasting()
        sim.run_until(1.0)
        assert stations[0].signed >= 10
        assert stations[1].verified_ok >= 9
        assert stations[1].rejects == {}

    def test_verification_overload_drops(self):
        sim, _, _, stations, _ = self._scene(n_vehicles=6, verify_rate=20.0)
        for s in stations:
            s.start_broadcasting()
        sim.run_until(2.0)
        target = stations[0]
        # 5 peers x 10 Hz = 50 msg/s against a 20/s budget.
        assert target.dropped_overload > 0

    def test_rsu_traffic_picture(self):
        sim, pki, channel, stations, _ = self._scene()
        keys = EcdsaKeyPair.generate(HmacDrbg(b"rsu-key"))
        cert = pki.root.issue("rsu-1", keys.public, 0.0, 1e9)
        rsu = RoadsideUnit(
            sim, "rsu-1", (0.0, 5.0), channel,
            MessageVerifier(pki.trust_store()), cert, keys.private,
        )
        for s in stations:
            s.start_broadcasting()
        sim.run_until(1.0)
        assert rsu.accepted > 0
        assert rsu.vehicles_in_picture() == 2

    def test_rsu_warning_reaches_obu(self):
        sim, pki, channel, stations, _ = self._scene()
        keys = EcdsaKeyPair.generate(HmacDrbg(b"rsu-key"))
        cert = pki.root.issue("rsu-1", keys.public, 0.0, 1e9)
        rsu = RoadsideUnit(
            sim, "rsu-1", (0.0, 5.0), channel,
            MessageVerifier(pki.trust_store()), cert, keys.private,
        )
        rsu.broadcast_warning("ice")
        sim.run_until(1.0)
        events = [b for _, b, _ in stations[0].accepted if b.event]
        assert events and events[0].event == "ice"


class TestPseudonymManager:
    def _manager(self, period=10.0, count=4):
        pki = PkiHierarchy(b"pm")
        cert, _ = pki.enroll_vehicle("v")
        batch = pki.issue_pseudonyms("v", cert, count=count, validity_start=0.0)
        return PseudonymManager(batch, rotation_period=period)

    def test_rotation_on_schedule(self):
        pm = self._manager(period=10.0)
        c0, _ = pm.current(0.0)
        c1, _ = pm.current(5.0)
        assert c0.subject == c1.subject
        c2, _ = pm.current(11.0)
        assert c2.subject != c0.subject
        assert pm.rotations == 1

    def test_multiple_periods_skip(self):
        pm = self._manager(period=10.0, count=8)
        pm.current(0.0)
        pm.current(35.0)
        assert pm.rotations == 3

    def test_wraps_around_batch(self):
        pm = self._manager(period=1.0, count=2)
        c0, _ = pm.current(0.0)
        pm.current(1.5)
        c2, _ = pm.current(2.5)
        assert c2.subject == c0.subject  # wrapped

    def test_force_rotate(self):
        pm = self._manager()
        c0, _ = pm.current(0.0)
        pm.force_rotate(0.1)
        c1, _ = pm.current(0.2)
        assert c1.subject != c0.subject

    def test_validation(self):
        pki = PkiHierarchy(b"pm2")
        cert, _ = pki.enroll_vehicle("v")
        batch = pki.issue_pseudonyms("v", cert, count=1, validity_start=0.0)
        with pytest.raises(ValueError):
            PseudonymManager(batch, rotation_period=0)


class TestTrackingAdversary:
    def test_links_continuous_trajectory(self):
        adv = TrackingAdversary()
        truth = {"p1": "v", "p2": "v"}
        # Vehicle moves right at 10 m/s, rotates pseudonym at t=5.
        for i in range(5):
            adv.observe(i * 1.0, "p1", (10.0 * i, 0.0))
        for i in range(5, 10):
            adv.observe(i * 1.0, "p2", (10.0 * i, 0.0))
        assert adv.predicted_links == [("p1", "p2")]
        assert adv.link_accuracy(truth) == 1.0
        assert adv.recall(truth) == 1.0

    def test_does_not_link_distant_appearance(self):
        adv = TrackingAdversary(max_speed=50.0)
        adv.observe(0.0, "p1", (0.0, 0.0))
        adv.observe(1.0, "p2", (5000.0, 0.0))  # impossible jump
        assert adv.predicted_links == []

    def test_confuses_crossing_vehicles(self):
        """Two vehicles rotating simultaneously at the same spot can be
        mislinked -- the anonymity-set effect."""
        adv = TrackingAdversary(gate_slack=20.0)
        truth = {"a1": "va", "a2": "va", "b1": "vb", "b2": "vb"}
        adv.observe(0.0, "a1", (0.0, 0.0))
        adv.observe(0.0, "b1", (5.0, 0.0))
        # Both silent, both reappear close together with swapped positions.
        adv.observe(2.0, "b2", (0.5, 0.0))
        adv.observe(2.0, "a2", (5.5, 0.0))
        assert len(adv.predicted_links) == 2
        assert adv.link_accuracy(truth) < 1.0

    def test_empty_accuracy(self):
        adv = TrackingAdversary()
        assert adv.link_accuracy({}) == 0.0
        assert adv.recall({}) == 0.0
