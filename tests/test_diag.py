"""Tests for the diagnostics stack: ISO-TP, UDS, seed/key, attack."""

import random

import pytest

from repro.diag import (
    CmacSeedKey,
    IsoTpEndpoint,
    IsoTpError,
    NegativeResponse,
    SeedKeyRecoveryAttack,
    UdsClient,
    UdsServer,
    UdsSession,
    XorSeedKey,
)
from repro.diag.uds import NRC_ACCESS_DENIED, NRC_CONDITIONS_NOT_CORRECT
from repro.ivn import CanBus
from repro.sim import Simulator

REQ_ID = 0x7E0
RSP_ID = 0x7E8


def make_link(sim=None, bus=None):
    sim = sim or Simulator()
    bus = bus or CanBus(sim)
    tester = IsoTpEndpoint(sim, bus, "tester", tx_id=REQ_ID, rx_id=RSP_ID)
    ecu = IsoTpEndpoint(sim, bus, "ecu", tx_id=RSP_ID, rx_id=REQ_ID)
    return sim, bus, tester, ecu


class TestIsoTp:
    def test_single_frame(self):
        sim, _, tester, ecu = make_link()
        got = []
        ecu.on_message = got.append
        tester.send(b"\x10\x03")
        sim.run()
        assert got == [b"\x10\x03"]

    def test_seven_byte_boundary(self):
        sim, _, tester, ecu = make_link()
        got = []
        ecu.on_message = got.append
        tester.send(bytes(range(7)))
        sim.run()
        assert got == [bytes(range(7))]

    def test_multi_frame_roundtrip(self):
        sim, _, tester, ecu = make_link()
        got = []
        ecu.on_message = got.append
        payload = bytes(range(256)) * 2  # 512 bytes
        tester.send(payload)
        sim.run()
        assert got == [payload]

    def test_eight_bytes_needs_segmentation(self):
        sim, bus, tester, ecu = make_link()
        got = []
        ecu.on_message = got.append
        tester.send(bytes(8))
        sim.run()
        assert got == [bytes(8)]
        assert bus.frames_on_wire >= 3  # FF + FC + CF

    def test_max_length_enforced(self):
        _, _, tester, _ = make_link()
        with pytest.raises(IsoTpError):
            tester.send(bytes(4096))

    def test_bidirectional(self):
        sim, _, tester, ecu = make_link()
        ecu.on_message = lambda req: ecu.send(b"\x50" + req)
        got = []
        tester.on_message = got.append
        tester.send(bytes(20))
        sim.run()
        assert got and got[0] == b"\x50" + bytes(20)

    def test_block_size_flow_control(self):
        sim, bus, tester, ecu = make_link()
        ecu.block_size = 2  # FC every 2 consecutive frames
        got = []
        ecu.on_message = got.append
        tester.send(bytes(60))  # 6 + 8 CFs
        sim.run()
        assert got == [bytes(60)]
        # FC frames: initial + ceil((8-?)/2)... at least 3 FCs on the wire.
        fc_frames = [
            r for r in range(bus.frames_on_wire)
        ]
        assert ecu.messages_received == 1

    def test_message_counters(self):
        sim, _, tester, ecu = make_link()
        ecu.on_message = lambda m: None
        tester.send(b"\x01")
        tester.send(bytes(30))
        sim.run()
        assert tester.messages_sent == 2
        assert ecu.messages_received == 2


@pytest.fixture
def uds():
    sim, bus, tester_ep, ecu_ep = make_link()
    algorithm = XorSeedKey(b"\xca\xfe\xba\xbe")
    server = UdsServer(ecu_ep, algorithm, rng=random.Random(1))
    server.add_did(0xF190, b"VIN1234567890", protected=False)
    server.add_did(0xF015, b"\x00\x01", protected=True)  # config word
    server.add_routine(0x0203, lambda: b"\xAA")
    client = UdsClient(sim, tester_ep)
    return sim, bus, server, client, algorithm


class TestUdsServer:
    def test_read_did(self, uds):
        _, _, _, client, _ = uds
        assert client.read_did(0xF190) == b"VIN1234567890"

    def test_unknown_did(self, uds):
        _, _, _, client, _ = uds
        with pytest.raises(NegativeResponse) as exc:
            client.read_did(0xDEAD)
        assert exc.value.nrc == 0x31

    def test_unknown_service(self, uds):
        _, _, _, client, _ = uds
        with pytest.raises(NegativeResponse) as exc:
            client.request(b"\x3E\x00")  # TesterPresent not implemented
        assert exc.value.nrc == 0x11

    def test_write_requires_extended_session(self, uds):
        _, _, _, client, _ = uds
        with pytest.raises(NegativeResponse) as exc:
            client.write_did(0xF190, b"X")
        assert exc.value.nrc == NRC_CONDITIONS_NOT_CORRECT

    def test_protected_write_requires_unlock(self, uds):
        _, _, _, client, _ = uds
        client.start_session(UdsSession.EXTENDED)
        with pytest.raises(NegativeResponse) as exc:
            client.write_did(0xF015, b"\xFF\xFF")
        assert exc.value.nrc == NRC_ACCESS_DENIED

    def test_legitimate_unlock_and_write(self, uds):
        _, _, server, client, algorithm = uds
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        assert server.unlocked
        client.write_did(0xF015, b"\xFF\xFF")
        assert server.data_identifiers[0xF015] == b"\xFF\xFF"

    def test_unprotected_write_in_extended_session(self, uds):
        _, _, server, client, _ = uds
        client.start_session(UdsSession.EXTENDED)
        client.write_did(0xF190, b"NEWVIN")
        assert server.data_identifiers[0xF190] == b"NEWVIN"

    def test_security_access_needs_non_default_session(self, uds):
        _, _, _, client, _ = uds
        with pytest.raises(NegativeResponse) as exc:
            client.request_seed()
        assert exc.value.nrc == NRC_CONDITIONS_NOT_CORRECT

    def test_wrong_key_rejected_then_lockout(self, uds):
        _, _, server, client, _ = uds
        client.start_session(UdsSession.EXTENDED)
        for attempt in range(2):
            client.request_seed()
            with pytest.raises(NegativeResponse) as exc:
                client.send_key(b"\x00\x00\x00\x00")
            assert exc.value.nrc == 0x35
        client.request_seed()
        with pytest.raises(NegativeResponse) as exc:
            client.send_key(b"\x00\x00\x00\x00")
        assert exc.value.nrc == 0x36
        assert server.locked_out

    def test_returning_to_default_drops_unlock(self, uds):
        _, _, server, client, algorithm = uds
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        client.start_session(UdsSession.DEFAULT)
        assert not server.unlocked

    def test_reset_clears_state(self, uds):
        _, _, server, client, algorithm = uds
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        client.ecu_reset()
        assert server.resets == 1
        assert not server.unlocked
        assert server.session == UdsSession.DEFAULT

    def test_routine_gated(self, uds):
        _, _, _, client, algorithm = uds
        client.start_session(UdsSession.EXTENDED)
        with pytest.raises(NegativeResponse):
            client.routine(0x0203)
        client.unlock(algorithm)
        assert client.routine(0x0203) == b"\xAA"

    def test_seed_is_zero_when_already_unlocked(self, uds):
        _, _, _, client, algorithm = uds
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        assert client.request_seed() == bytes(4)


class TestSeedKeyAlgorithms:
    def test_xor_roundtrip(self):
        algorithm = XorSeedKey(b"\x12\x34\x56\x78")
        seed = b"\xA1\xB2\xC3\xD4"
        key = algorithm.compute_key(seed)
        assert XorSeedKey.recover_constant(seed, key) == b"\x12\x34\x56\x78"

    def test_xor_validation(self):
        with pytest.raises(ValueError):
            XorSeedKey(b"\x01")

    def test_cmac_keys_differ_per_seed(self):
        algorithm = CmacSeedKey(b"S" * 16)
        assert algorithm.compute_key(b"\x01\x02\x03\x04") != \
            algorithm.compute_key(b"\x01\x02\x03\x05")

    def test_cmac_validation(self):
        with pytest.raises(ValueError):
            CmacSeedKey(b"short")

    def test_cmac_pair_does_not_reveal_xor_constant(self):
        """Treating a CMAC exchange as XOR yields a constant that fails
        on the next exchange -- the recovery cross-check."""
        algorithm = CmacSeedKey(b"S" * 16)
        s1, s2 = b"\x01\x02\x03\x04", b"\x05\x06\x07\x08"
        candidate = XorSeedKey.recover_constant(s1, algorithm.compute_key(s1))
        assert XorSeedKey(candidate).compute_key(s2) != algorithm.compute_key(s2)


class TestSeedKeyRecoveryAttack:
    def _scenario(self, algorithm):
        sim, bus, tester_ep, ecu_ep = make_link()
        server = UdsServer(ecu_ep, algorithm, rng=random.Random(3))
        server.add_did(0xF015, b"\x00\x01", protected=True)
        client = UdsClient(sim, tester_ep)
        attack = SeedKeyRecoveryAttack(bus, REQ_ID, RSP_ID)
        return sim, bus, server, client, attack

    def test_sniff_and_recover_xor(self):
        algorithm = XorSeedKey(b"\xde\xad\xbe\xef")
        sim, bus, server, client, attack = self._scenario(algorithm)
        # Legitimate workshop session happens under the attacker's nose.
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        assert len(attack.exchanges) == 1
        assert attack.recover_xor_constant() == b"\xde\xad\xbe\xef"

    def test_exploit_unlocks_and_writes(self):
        algorithm = XorSeedKey(b"\xde\xad\xbe\xef")
        sim, bus, server, client, attack = self._scenario(algorithm)
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        constant = attack.recover_xor_constant()
        # Attacker resets the ECU and unlocks with the recovered constant.
        client.ecu_reset()
        assert SeedKeyRecoveryAttack.exploit(client, constant)
        assert server.unlocked
        client.write_did(0xF015, b"\x13\x37")
        assert server.data_identifiers[0xF015] == b"\x13\x37"

    def test_cmac_resists_recovery(self):
        algorithm = CmacSeedKey(b"S" * 16)
        sim, bus, server, client, attack = self._scenario(algorithm)
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        client.ecu_reset()
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)  # second exchange for the cross-check
        assert len(attack.exchanges) >= 2
        assert attack.recover_xor_constant() is None

    def test_online_bruteforce_hits_lockout(self):
        algorithm = CmacSeedKey(b"S" * 16)
        sim, bus, server, client, attack = self._scenario(algorithm)
        unlocked, attempts = SeedKeyRecoveryAttack.online_bruteforce(
            client, random.Random(9), attempts=100,
        )
        assert not unlocked
        assert attempts <= server.max_key_attempts
        assert server.locked_out
