"""The columnar correlate hot path, proven byte-identical differentially.

The columnar rewrite (``ColumnarBatch`` built once at drain time,
``CorrelationEngine.observe_columnar`` doing the batch's work as numpy /
C-level dict operations) is a pure performance change; these tests are
the proof:

- Hypothesis properties drive arbitrary streams -- ragged batch splits,
  exact duplicate redeliveries, late/out-of-order times, sub-threshold
  (LOWEST_SEVERITY-class) events -- through the columnar, per-event, and
  :class:`ReferenceCorrelationEngine` paths and require byte-identical
  ``snapshot()`` state between columnar and per-event (the reference
  engine, which predates snapshots, is held to equal observables:
  verdict stream, counters, watermark, flagged campaigns), at 1 and at
  4 signature-sharded engine sets, both with the production batch-size
  gate and with it forced open (``COLUMNAR_MIN_BATCH=1``) so small
  Hypothesis batches exercise the vector spans, not just the scalar
  fallback;
- pinned regressions: ``observe_batch([])`` / an empty columnar batch
  are exact no-ops (state *and* metrics, counters included), and a
  fully severity-filtered batch leaves the engine byte-identical to the
  per-event path -- which does count ``observed``/
  ``low_severity_ignored`` and does advance the seen-ledger/watermark,
  so "no-op" is defined by the per-event semantics, not by wishing the
  counters away;
- crash paths: with the *writer* in columnar mode, the durable log's
  bytes are identical to the batched writer's, kill-at-arbitrary-pump
  recovery (``recover_soc_state``) rebuilds the exact live state, and
  the resumed run converges byte-identically to the uninterrupted twin;
- federation: a columnar-mode fleet (regional centers and hub replay
  both columnar) ships/replays to the byte-identical hub state as the
  batched-mode fleet, per-region log segments included.
"""

import json
import zlib

import pytest
from hypothesis import given, settings, strategies as st

import repro.soc.correlate as correlate_mod
from repro.core.safety import Asil
from repro.sim import RngStreams, Simulator
from repro.soc import (
    CorrelationEngine,
    DurableStore,
    EventSource,
    FleetModel,
    FleetWorkloadGenerator,
    ReferenceCorrelationEngine,
    SecurityOperationsCenter,
    StringInterner,
    build_batch,
    make_event,
    recover_soc_state,
    seeded_campaigns,
)
from repro.experiments.e18_federation import build_federated_scene


def ev(vehicle, sig, time, seq, severity=Asil.C):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


ENGINE_KW = dict(window_s=8.0, k=3, dedup_window_s=4.0, max_lateness_s=2.0)


def observables(engine):
    """Cross-implementation state (works on the reference engine too)."""
    return {
        "metrics": engine.metrics(),
        "watermark": engine.watermark,
        "detections": list(engine.detections),
        "flagged": engine.flagged_signatures,
        "campaigns": {s: engine.campaign_vehicles(s)
                      for s in engine.flagged_signatures},
    }


def canon(engine):
    return json.dumps(engine.snapshot(), sort_keys=True)


# ----------------------------------------------------------------------
# Stream strategy: duplicates, late/out-of-order, sub-threshold severity
# ----------------------------------------------------------------------
# Times stay inside [0, retention_horizon) so the bounded engine cannot
# diverge from the unbounded reference by design (the ledger-eviction
# regressions live in test_soc_correlate_batch).
_spec = st.tuples(
    st.integers(0, 5),                         # vehicle
    st.integers(0, 2),                         # signature
    st.floats(0.0, 5.9),                       # time (< retention 6.0)
    st.sampled_from([Asil.QM, Asil.A, Asil.B, Asil.C, Asil.D]),
    st.one_of(st.none(), st.integers(0, 50)),  # duplicate-of index
)


def build_stream(specs):
    events = []
    for seq, (veh, sig, t, sev, dup) in enumerate(specs):
        if dup is not None and dup < len(events):
            events.append(events[dup])          # exact redelivery
        else:
            events.append(ev(f"v{veh:03d}", f"ids.sig:{sig}", t, seq,
                             severity=sev))
    return events


@st.composite
def stream_and_chunks(draw):
    events = build_stream(draw(st.lists(_spec, min_size=1, max_size=50)))
    sizes = draw(st.lists(st.integers(1, 24), min_size=1, max_size=40))
    return events, sizes


def chunked(events, sizes):
    i = n = 0
    while i < len(events):
        size = sizes[n % len(sizes)]
        yield events[i:i + size]
        i += size
        n += 1


def _run_columnar(events, sizes, num_shards):
    """One engine set per path, the stream signature-sharded across it;
    returns (columnar engines, per-event engines, reference engines)."""
    columnar = [CorrelationEngine(**ENGINE_KW) for _ in range(num_shards)]
    per_event = [CorrelationEngine(**ENGINE_KW) for _ in range(num_shards)]
    reference = [ReferenceCorrelationEngine(**ENGINE_KW)
                 for _ in range(num_shards)]

    def shard_of(e):
        return zlib.crc32(e.signature.encode()) % num_shards

    interner = StringInterner()
    for batch in chunked(events, sizes):
        per_shard = [[] for _ in range(num_shards)]
        for e in batch:
            per_shard[shard_of(e)].append(e)
        for s, span in enumerate(per_shard):
            if span:
                columnar[s].observe_columnar(build_batch(span, interner))
    for e in events:
        s = shard_of(e)
        got, want = per_event[s].observe(e), reference[s].observe(e)
        assert got == want
    return columnar, per_event, reference


class TestColumnarDifferential:
    """The tentpole harness: columnar == per-event == reference."""

    @pytest.mark.parametrize("num_shards", [1, 4])
    @pytest.mark.parametrize("min_batch", [1, None])
    @settings(max_examples=150, deadline=None)
    @given(stream_and_chunks())
    def test_columnar_equals_per_event_and_reference(
            self, num_shards, min_batch, case):
        events, sizes = case
        saved = correlate_mod.COLUMNAR_MIN_BATCH
        if min_batch is not None:
            # Force the vector spans open for small Hypothesis batches;
            # the default gate (None) exercises the scalar-fallback
            # routing on the same streams.
            correlate_mod.COLUMNAR_MIN_BATCH = min_batch
        try:
            columnar, per_event, reference = _run_columnar(
                events, sizes, num_shards)
        finally:
            correlate_mod.COLUMNAR_MIN_BATCH = saved
        for col, per, ref in zip(columnar, per_event, reference):
            assert canon(col) == canon(per)     # byte-identical state
            assert observables(col) == observables(ref)

    @settings(max_examples=80, deadline=None)
    @given(stream_and_chunks())
    def test_columnar_verdicts_align_with_per_event(self, case):
        # Verdict *positions*, not just final state: detections must
        # fire at the same batch indices the per-event path fires at.
        events, sizes = case
        saved = correlate_mod.COLUMNAR_MIN_BATCH
        correlate_mod.COLUMNAR_MIN_BATCH = 1
        try:
            columnar = CorrelationEngine(**ENGINE_KW)
            per_event = CorrelationEngine(**ENGINE_KW)
            interner = StringInterner()
            expected = []
            for i, e in enumerate(events):
                if per_event.observe(e) is not None:
                    expected.append(i)
            got = []
            offset = 0
            for batch in chunked(events, sizes):
                result = columnar.observe_columnar(
                    build_batch(batch, interner))
                got.extend(offset + i for i, _ in result.detections)
                offset += len(batch)
        finally:
            correlate_mod.COLUMNAR_MIN_BATCH = saved
        assert got == expected
        assert canon(columnar) == canon(per_event)

    @settings(max_examples=60, deadline=None)
    @given(stream_and_chunks())
    def test_columnar_hits_match_batched_attribution(self, case):
        # ``track_hits`` must reproduce the center's batched-handler
        # predicate: verdict-less events whose signature is flagged
        # after the batch has been fully observed.
        events, sizes = case
        saved = correlate_mod.COLUMNAR_MIN_BATCH
        correlate_mod.COLUMNAR_MIN_BATCH = 1
        try:
            columnar = CorrelationEngine(**ENGINE_KW)
            batched = CorrelationEngine(**ENGINE_KW)
            interner = StringInterner()
            for batch in chunked(events, sizes):
                verdicts = batched.observe_batch(batch)
                expected = [i for i, (e, v) in enumerate(zip(batch, verdicts))
                            if v is None and batched.is_flagged(e.signature)]
                result = columnar.observe_columnar(
                    build_batch(batch, interner), track_hits=True)
                assert result.hits == expected
        finally:
            correlate_mod.COLUMNAR_MIN_BATCH = saved
        assert canon(columnar) == canon(batched)


# ----------------------------------------------------------------------
# Pinned regressions: empty and fully severity-filtered batches
# ----------------------------------------------------------------------
class TestDegenerateBatches:
    def test_empty_batches_are_exact_noops(self):
        engine = CorrelationEngine(**ENGINE_KW)
        engine.observe(ev("v1", "ids.sig:0", 1.0, 1))
        before_state = canon(engine)
        before_metrics = engine.metrics()

        assert engine.observe_batch([]) == []
        result = engine.observe_columnar(build_batch([], StringInterner()))
        assert (result.n, result.detections, result.hits) == (0, [], [])

        assert canon(engine) == before_state
        assert engine.metrics() == before_metrics

    @pytest.mark.parametrize("n", [1, 40])
    def test_fully_severity_filtered_batch_equals_per_event(self, n):
        # QM < min_severity B: every event is filtered.  The per-event
        # path still counts observed/low_severity_ignored, records the
        # ids in the seen ledger, and advances the watermark -- the
        # columnar path must do exactly that, bit for bit, and nothing
        # else (no windows, no dedup keys, no detections).
        events = [ev(f"v{i:03d}", f"ids.sig:{i % 3}", 0.5 + 0.01 * i, i,
                     severity=Asil.QM) for i in range(n)]
        per_event = CorrelationEngine(**ENGINE_KW)
        columnar = CorrelationEngine(**ENGINE_KW)
        for e in events:
            assert per_event.observe(e) is None
        result = columnar.observe_columnar(
            build_batch(events, StringInterner()), track_hits=True)

        assert (result.detections, result.hits) == ([], [])
        assert canon(columnar) == canon(per_event)
        assert columnar.metrics() == per_event.metrics()
        assert columnar.metrics()["low_severity_ignored"] == float(n)
        assert columnar.metrics()["observed"] == float(n)
        snap = columnar.snapshot()
        assert snap["windows"] == []
        assert snap["last_by_key"] == []

    def test_filtered_batch_then_live_traffic_stays_identical(self):
        # The filtered batch's ledger/watermark side effects must carry
        # the same consequences forward (e.g. a duplicate id arriving
        # later is rejected on both paths).
        filtered = [ev(f"v{i:03d}", "ids.sig:0", 1.0 + 0.01 * i, i,
                       severity=Asil.QM) for i in range(20)]
        live = [ev(f"v{i:03d}", "ids.sig:1", 2.0 + 0.01 * i, 100 + i)
                for i in range(20)] + [filtered[3]]  # dup id redelivery
        per_event = CorrelationEngine(**ENGINE_KW)
        columnar = CorrelationEngine(**ENGINE_KW)
        interner = StringInterner()
        for e in filtered + live:
            per_event.observe(e)
        columnar.observe_columnar(build_batch(filtered, interner))
        columnar.observe_columnar(build_batch(live, interner))
        assert canon(columnar) == canon(per_event)
        assert columnar.metrics()["duplicate_ids"] == 1.0

    def test_cross_batch_dedup_survives_partial_span_bloom_screen(self):
        # Regression (found by the Hypothesis differential): on a
        # partially severity-filtered span, the chunk-hit screen used to
        # AND the uint8 bloom *bit masks* against the bool admitted mask
        # -- True casts to 1, erasing every hit whose bloom bit isn't
        # bit 0, so a cross-batch duplicate key slipped past dedup with
        # ~7/8 probability.  Two B-severity events from one vehicle in
        # consecutive mixed (QM+B) batches must dedup exactly like the
        # per-event path, for every bloom-bit alignment the key hash
        # happens to land on.
        saved = correlate_mod.COLUMNAR_MIN_BATCH
        correlate_mod.COLUMNAR_MIN_BATCH = 1
        try:
            for veh in [f"v{i:03d}" for i in range(16)]:
                batches = [
                    [ev("v900", "ids.sig:0", 0.0, 0, severity=Asil.QM),
                     ev(veh, "ids.sig:0", 0.0, 1, severity=Asil.B)],
                    [ev("v901", "ids.sig:0", 0.0, 2, severity=Asil.QM),
                     ev(veh, "ids.sig:0", 0.0, 3, severity=Asil.B)],
                ]
                per_event = CorrelationEngine(**ENGINE_KW)
                columnar = CorrelationEngine(**ENGINE_KW)
                interner = StringInterner()
                for batch in batches:
                    columnar.observe_columnar(build_batch(batch, interner))
                    for e in batch:
                        per_event.observe(e)
                assert canon(columnar) == canon(per_event)
                assert columnar.metrics()["deduped"] == 1.0
        finally:
            correlate_mod.COLUMNAR_MIN_BATCH = saved


# ----------------------------------------------------------------------
# Crash paths: the columnar writer's log recovers byte-identically
# ----------------------------------------------------------------------
def _durable_scene(root, columnar, seed=11, n=600, prevalence=0.05,
                   num_shards=4, capacity_eps=120.0,
                   snapshot_every_pumps=8):
    sim = Simulator()
    rng = RngStreams(seed)
    campaigns = seeded_campaigns(rng, n, prevalence)
    fleet = FleetModel(n, campaigns)
    store = DurableStore(root)
    soc = SecurityOperationsCenter(
        sim, fleet, capacity_eps=capacity_eps, k=3, respond=False,
        num_shards=num_shards, store=store,
        snapshot_every_pumps=snapshot_every_pumps, columnar=columnar)
    generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline)
    soc.start()
    generator.start()
    return sim, soc, store


def _log_bytes(store):
    return [p.read_bytes()
            for p in sorted(store.log.root.glob("seg-*.log"))]


class TestColumnarCrashRecovery:
    DURATION = 12.0

    def test_columnar_writer_log_bytes_equal_batched_writer(self, tmp_path):
        _, soc_b, store_b = _durable_scene(tmp_path / "batched", False)
        soc_b.sim.run_until(self.DURATION)
        soc_b.final_drain()
        store_b.log.sync()
        _, soc_c, store_c = _durable_scene(tmp_path / "columnar", True)
        soc_c.sim.run_until(self.DURATION)
        soc_c.final_drain()
        store_c.log.sync()
        assert _log_bytes(store_c) == _log_bytes(store_b)
        assert (json.dumps(soc_c.analytics_snapshot(), sort_keys=True)
                == json.dumps(soc_b.analytics_snapshot(), sort_keys=True))

    @pytest.mark.parametrize("num_shards", [1, 4])
    @pytest.mark.parametrize("kill_pump", [5, 18, 31])
    def test_kill_recover_resume_byte_identical_with_columnar_writer(
            self, tmp_path, num_shards, kill_pump):
        sim, soc, _ = _durable_scene(tmp_path / "ref", True,
                                     num_shards=num_shards)
        sim.run_until(self.DURATION)
        soc.final_drain()
        ref_state = json.dumps(soc.analytics_snapshot(), sort_keys=True)
        ref_metrics = soc.metrics()

        sim, soc, store = _durable_scene(tmp_path / "crash", True,
                                         num_shards=num_shards)
        sim.run_until(kill_pump * soc.pump_tick_s)
        live_mid = json.dumps(soc.analytics_snapshot(), sort_keys=True)
        recovered = recover_soc_state(store)
        # Rebuilt state equals the live state at the kill point...
        assert (json.dumps(recovered.analytics_snapshot(), sort_keys=True)
                == live_mid)
        # ...and resuming (still in columnar mode: the sinks rewire to
        # the recovered engines) converges on the uninterrupted run.
        soc.adopt_analytics(recovered)
        sim.run_until(self.DURATION)
        soc.final_drain()
        assert (json.dumps(soc.analytics_snapshot(), sort_keys=True)
                == ref_state)
        assert soc.metrics() == ref_metrics


# ----------------------------------------------------------------------
# Federation: columnar writer + columnar hub replay, same hub state
# ----------------------------------------------------------------------
class TestColumnarFederation:
    N = 250
    DURATION = 10.0

    def _scene_result(self, columnar, **channel_kw):
        scene = build_federated_scene(seed=1, n_per_region=self.N,
                                      columnar=columnar, **channel_kw)
        try:
            scene.start()
            scene.run(self.DURATION)
            return {
                "hub": json.dumps(scene.hub.analytics_snapshot(),
                                  sort_keys=True),
                "logs": {name: _log_bytes(runtime.store)
                         for name, runtime in scene.regions.items()},
                "unapplied": scene.hub.unapplied(),
            }
        finally:
            scene.close()

    @pytest.mark.parametrize("channel_kw", [
        {},                                      # zero lag
        {"lag_s": 1.0, "jitter_s": 0.3, "duplicate_p": 0.2},
    ])
    def test_columnar_fleet_matches_batched_fleet(self, channel_kw):
        batched = self._scene_result(False, **channel_kw)
        columnar = self._scene_result(True, **channel_kw)
        assert columnar["unapplied"] == 0
        # Shipment replay applied every record to the identical state...
        assert columnar["hub"] == batched["hub"]
        # ...because the columnar writer's durable logs -- the shipped
        # bytes -- are identical per region, segment for segment.
        assert columnar["logs"] == batched["logs"]
