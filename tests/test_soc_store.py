"""Tests for repro.soc.store and the crash-recovery contract.

Covers the canonical event codec (hypothesis byte-identity), the
segmented log's append/replay/rotation paths, torn-write recovery
(hypothesis: truncate anywhere, recover to the last whole record),
forensics scans checked against a brute-force oracle (plus the
sparse-index skip accounting), snapshot retention/corruption fallback,
the engine/merger/tracker snapshot round trips, and the tentpole
differential: kill-at-arbitrary-pump + restore + replay is
byte-identical to an uninterrupted run at 1 and 4 shards.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.safety import Asil
from repro.sim import RngStreams, Simulator
from repro.soc import (
    CorrelationEngine,
    CorruptRecord,
    DurableStore,
    EventLog,
    EventSource,
    FleetModel,
    FleetWorkloadGenerator,
    GlobalCampaignMerger,
    IncidentState,
    IncidentTracker,
    SecurityEvent,
    SecurityOperationsCenter,
    SnapshotStore,
    decode_event,
    encode_event,
    make_event,
    recover_soc_state,
    seeded_campaigns,
)
from repro.soc.store import _HEADER, _MAGIC


def ev(vehicle, sig, time, seq, severity=Asil.B):
    return make_event(vehicle, EventSource.IDS, sig, time, seq,
                      severity=severity)


_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)


@st.composite
def security_events(draw):
    return SecurityEvent(
        event_id=draw(st.text(min_size=1, max_size=32)),
        time=draw(st.floats(min_value=0.0, max_value=1e9,
                            allow_nan=False, allow_infinity=False)),
        vehicle_id=draw(st.text(min_size=1, max_size=12)),
        source=draw(st.sampled_from(list(EventSource))),
        signature=draw(st.text(min_size=1, max_size=24)),
        severity=draw(st.sampled_from(list(Asil))),
        detail=tuple(draw(st.lists(
            st.tuples(st.text(max_size=8), _json_scalars), max_size=4))),
    )


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestEventCodec:
    @given(security_events())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_byte_identical(self, event):
        wire = encode_event(event)
        decoded = decode_event(wire)
        assert decoded == event
        # Canonical: re-encoding the decoded event reproduces the bytes.
        assert encode_event(decoded) == wire

    def test_nan_time_rejected(self):
        event = ev("v1", "sig", 1.0, 1)
        bad = SecurityEvent(
            event_id=event.event_id, time=float("nan"),
            vehicle_id=event.vehicle_id, source=event.source,
            signature=event.signature, severity=event.severity,
            detail=event.detail)
        with pytest.raises(ValueError):
            encode_event(bad)


# ----------------------------------------------------------------------
# Log append / replay / rotation
# ----------------------------------------------------------------------
class TestEventLog:
    def test_append_replay_preserves_order_and_kinds(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=4)
        events = [ev("v%d" % i, "sig.a", float(i), i) for i in range(10)]
        log.append_batch(0.25, 0, events[:3])
        log.append_mark(0.25, 1)
        log.append_batch(0.5, 1, events[3:7])
        log.append_batch(0.5, 0, events[7:])
        log.append_mark(0.5, 2)
        records = list(log.replay())
        assert [r.kind for r in records] == [
            "batch", "mark", "batch", "batch", "mark"]
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert [r.shard for r in records if r.kind == "batch"] == [0, 1, 0]
        replayed = [e for r in records for e in r.events]
        assert replayed == events
        assert [r.pump_no for r in records if r.kind == "mark"] == [1, 2]
        # 5 records over segment_max_records=4 -> one rotation happened.
        assert log.segments_rotated == 1
        assert len(log.segment_paths()) == 2
        # Replay of a suffix.
        assert [r.seq for r in log.replay(after_seq=3)] == [4, 5]
        log.close()

    def test_rotation_writes_sidecar_index(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=2, index_every=1)
        for i in range(5):
            log.append(float(i), 0, ev("v1", "s", float(i), i))
        log.close()
        segments = log.segment_paths()
        assert len(segments) == 3
        for closed in segments[:-1]:
            sidecar = closed.with_suffix(".idx.json")
            assert sidecar.exists()
            idx = json.loads(sidecar.read_text())
            assert idx["count"] == 2
            assert idx["min_t"] is not None

    def test_reopen_resumes_sequence(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=3)
        for i in range(4):
            log.append(float(i), 0, ev("v1", "s", float(i), i))
        log.close()
        reopened = EventLog(tmp_path, segment_max_records=3)
        assert reopened.last_seq == 4
        assert reopened.truncated_bytes == 0
        reopened.append(9.0, 0, ev("v9", "s", 9.0, 99))
        assert [r.seq for r in reopened.replay()] == [1, 2, 3, 4, 5]
        reopened.close()

    def test_fsync_policies_accepted_and_validated(self, tmp_path):
        for policy in ("never", "rotate", "always"):
            log = EventLog(tmp_path / policy, fsync=policy)
            log.append(0.0, 0, ev("v1", "s", 0.0, 1))
            log.sync()
            log.close()
            assert EventLog(tmp_path / policy).last_seq == 1
        with pytest.raises(ValueError):
            EventLog(tmp_path / "bad", fsync="sometimes")
        with pytest.raises(ValueError):
            EventLog(tmp_path / "bad", segment_max_records=0)
        with pytest.raises(ValueError):
            EventLog(tmp_path / "bad", index_every=0)

    def test_corrupt_closed_segment_raises(self, tmp_path):
        log = EventLog(tmp_path, segment_max_records=2)
        for i in range(4):
            log.append(float(i), 0, ev("v1", "s", float(i), i))
        log.close()
        closed = log.segment_paths()[0]
        blob = bytearray(closed.read_bytes())
        blob[len(_MAGIC) + _HEADER.size + 2] ^= 0xFF  # flip a payload byte
        closed.write_bytes(bytes(blob))
        reopened = EventLog(tmp_path, segment_max_records=2)
        with pytest.raises(CorruptRecord):
            list(reopened.replay())
        reopened.close()


class TestTornWriteRecovery:
    @staticmethod
    def _record_boundaries(blob):
        """Byte offsets at which each whole record ends."""
        ends = []
        offset = len(_MAGIC)
        while offset < len(blob):
            length, _ = _HEADER.unpack(blob[offset:offset + _HEADER.size])
            offset += _HEADER.size + length
            ends.append(offset)
        return ends

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncate_anywhere_recovers_last_whole_record(
            self, tmp_path_factory, data):
        tmp_path = tmp_path_factory.mktemp("torn")
        n = data.draw(st.integers(min_value=1, max_value=8), label="n")
        log = EventLog(tmp_path)
        for i in range(n):
            log.append(float(i), 0, ev("v%d" % i, "sig", float(i), i))
        log.close()
        (segment,) = log.segment_paths()
        blob = segment.read_bytes()
        ends = self._record_boundaries(blob)
        cut = data.draw(st.integers(min_value=len(_MAGIC),
                                    max_value=len(blob) - 1), label="cut")
        segment.write_bytes(blob[:cut])

        recovered = EventLog(tmp_path)
        whole = sum(1 for end in ends if end <= cut)
        assert recovered.last_seq == whole
        assert recovered.truncated_bytes == cut - (
            ends[whole - 1] if whole else len(_MAGIC))
        assert len(list(recovered.replay())) == whole
        # The log is immediately appendable again.
        recovered.append(99.0, 0, ev("vx", "sig", 99.0, 999))
        assert [r.seq for r in recovered.replay()][-1] == whole + 1
        recovered.close()

    def test_torn_segment_creation_is_rewritten(self, tmp_path):
        log = EventLog(tmp_path)
        log.append(0.0, 0, ev("v1", "s", 0.0, 1))
        log.close()
        # A crash between creating the next segment file and writing its
        # magic leaves garbage; recovery must rewrite it, not truncate
        # into an invalid state.
        bad = tmp_path / "seg-0000000002.log"
        bad.write_bytes(b"SOC")
        recovered = EventLog(tmp_path)
        assert recovered.truncated_bytes == 3
        assert recovered.last_seq == 1
        recovered.append(1.0, 0, ev("v2", "s", 1.0, 2))
        assert [r.seq for r in recovered.replay()] == [1, 2]
        recovered.close()


# ----------------------------------------------------------------------
# Forensics scan vs brute force
# ----------------------------------------------------------------------
class TestForensicsScan:
    DISORDER = 2.0

    @staticmethod
    def _populated(tmp_path, n=400, batch=7, segment_max=16):
        rng = RngStreams(5).get("scan")
        log = EventLog(tmp_path, segment_max_records=segment_max,
                       index_every=4)
        events = []
        for i in range(n):
            t = i * 0.25 + rng.uniform(0.0, TestForensicsScan.DISORDER)
            events.append(ev(f"v{rng.randrange(12)}",
                             f"sig.{rng.randrange(5)}", t, i))
        for start in range(0, n, batch):
            chunk = events[start:start + batch]
            log.append_batch(chunk[-1].time, 0, chunk)
            if start % (batch * 4) == 0:
                log.append_mark(chunk[-1].time, start)
        return log, events

    def _brute(self, log, signature=None, vehicle_id=None, t0=None, t1=None):
        out = []
        for record in log.replay():
            if record.kind != "batch":
                continue
            for event in record.events:
                if signature is not None and event.signature != signature:
                    continue
                if vehicle_id is not None and event.vehicle_id != vehicle_id:
                    continue
                if t0 is not None and event.time < t0:
                    continue
                if t1 is not None and event.time > t1:
                    continue
                out.append((record.seq, event))
        return out

    def test_scan_matches_brute_force(self, tmp_path):
        log, _ = self._populated(tmp_path)
        queries = [
            {},
            {"signature": "sig.2"},
            {"vehicle_id": "v3"},
            {"t0": 20.0, "t1": 30.0},
            {"signature": "sig.0", "t0": 10.0, "t1": 80.0},
            {"signature": "sig.4", "vehicle_id": "v7", "t0": 0.0,
             "t1": 200.0},
            {"t0": 99.0},
            {"t1": 1.0},
        ]
        for query in queries:
            got = [(h.seq, h.event)
                   for h in log.scan(max_disorder_s=self.DISORDER, **query)]
            assert got == self._brute(log, **query), query
        log.close()

    def test_sparse_index_skips_out_of_range_work(self, tmp_path):
        log, events = self._populated(tmp_path)
        total_records = log.last_seq
        # A window entirely before the stream: every segment skipped.
        list(log.scan(t0=-100.0, t1=-1.0, max_disorder_s=self.DISORDER))
        stats = log.last_scan_stats
        assert stats["segments_skipped"] == stats["segments"]
        assert stats["records_read"] == 0
        # A narrow mid-stream window: the index must prove most records
        # irrelevant (seek past the old prefix, stop after the horizon).
        hits = list(log.scan(t0=48.0, t1=52.0,
                             max_disorder_s=self.DISORDER))
        stats = log.last_scan_stats
        assert hits
        assert stats["records_read"] < total_records / 2
        assert stats["segments_skipped"] > 0
        log.close()

    def test_checkpoint_seek_skips_old_prefix(self, tmp_path):
        # One big segment: reaching a late window must seek past the old
        # prefix via the sparse checkpoints instead of reading it.
        log, _ = self._populated(tmp_path, segment_max=4096)
        want = self._brute(log, t0=90.0, t1=200.0)
        got = [(h.seq, h.event)
               for h in log.scan(t0=90.0, t1=200.0,
                                 max_disorder_s=self.DISORDER)]
        assert got == want
        stats = log.last_scan_stats
        assert stats["bytes_seeked"] > 0
        assert stats["records_read"] < log.last_seq / 2
        log.close()

    def test_scan_survives_missing_sidecar(self, tmp_path):
        log, _ = self._populated(tmp_path)
        want = self._brute(log, signature="sig.1")
        sidecar = log.segment_paths()[0].with_suffix(".idx.json")
        sidecar.unlink()
        got = [(h.seq, h.event) for h in log.scan(signature="sig.1")]
        assert got == want
        log.close()


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_retention_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for i in range(5):
            store.save({"state": i})
        assert store.load_latest() == {"state": 4}
        assert len(list(tmp_path.glob("snap-*.json"))) == 2

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=4)
        store.save({"state": "good"})
        newest = store.save({"state": "torn"})
        newest.write_text(newest.read_text()[:20])  # torn write
        assert store.load_latest() == {"state": "good"}

    def test_crc_mismatch_is_skipped(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=4)
        store.save({"state": "good"})
        newest = store.save({"state": "tampered"})
        wrapped = json.loads(newest.read_text())
        wrapped["payload"]["state"] = "evil"
        newest.write_text(json.dumps(wrapped, sort_keys=True))
        assert store.load_latest() == {"state": "good"}

    def test_empty_store_and_reopen_numbering(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load_latest() is None
        store.save({"n": 1})
        reopened = SnapshotStore(tmp_path)
        reopened.save({"n": 2})
        names = sorted(p.name for p in tmp_path.glob("snap-*.json"))
        assert names == ["snap-00000001.json", "snap-00000002.json"]


# ----------------------------------------------------------------------
# Analytic state round trips
# ----------------------------------------------------------------------
class TestAnalyticsSnapshots:
    @staticmethod
    def _worked_engine():
        engine = CorrelationEngine(window_s=4.0, k=3, dedup_window_s=1.0,
                                   max_lateness_s=1.0)
        seq = 0
        for t in range(12):
            for v in range(1 + t % 3):
                seq += 1
                engine.observe(ev(f"v{v}", f"sig.{t % 4}", float(t), seq))
        # Exercise duplicates / late / low-severity ledgers too.
        engine.observe(ev("v0", "sig.0", 0.5, 1))
        engine.observe(ev("v9", "sig.9", 0.0, 9000))
        engine.observe(ev("v8", "sig.8", 11.0, 9001, severity=Asil.QM))
        return engine

    def test_engine_round_trip_and_future_equivalence(self):
        engine = self._worked_engine()
        snap = engine.snapshot()
        restored = CorrelationEngine.from_snapshot(snap)
        assert restored.snapshot() == snap
        assert json.dumps(snap, sort_keys=True)  # JSON-safe
        # The restored engine must behave identically from here on.
        future = [ev(f"v{i % 5}", f"sig.{i % 4}", 12.0 + i * 0.3, 500 + i)
                  for i in range(40)]
        a = engine.observe_batch(future)
        b = restored.observe_batch(list(future))
        assert a == b
        assert engine.snapshot() == restored.snapshot()

    def test_merger_round_trip(self):
        engines = [CorrelationEngine(window_s=4.0, k=3),
                   CorrelationEngine(window_s=4.0, k=3)]
        merger = GlobalCampaignMerger(window_s=4.0, k=3)
        seq = 0
        for t in range(8):
            for shard, engine in enumerate(engines):
                seq += 1
                engine.observe(ev(f"v{t}{shard}", "sig.x", float(t), seq))
            merger.merge(engines)
        snap = merger.snapshot()
        restored = GlobalCampaignMerger.from_snapshot(snap)
        assert restored.snapshot() == snap
        # Continue merging with both and compare.
        seq += 1
        engines[0].observe(ev("vnew", "sig.x", 9.0, seq))
        restored_engines = [
            CorrelationEngine.from_snapshot(e.snapshot()) for e in engines]
        got_a = merger.merge(engines)
        got_b = restored.merge(restored_engines)
        assert got_a == got_b
        assert merger.snapshot() == restored.snapshot()

    def test_tracker_round_trip_counter_and_history(self):
        tracker = IncidentTracker(escalation_spread=3)
        engine = CorrelationEngine(window_s=4.0, k=2)
        detection = None
        for i in range(2):
            detection = engine.observe(ev(f"v{i}", "sig.a", 1.0 + i, i)) \
                or detection
        incident = tracker.open_from_detection(detection, Asil.C)
        incident.advance(3.0, IncidentState.TRIAGED)
        incident.advance(4.0, IncidentState.CONTAINED)
        tracker.attach_vehicle("sig.a", "v99")
        snap = tracker.snapshot()
        restored = IncidentTracker.from_snapshot(snap)
        assert restored.snapshot() == snap
        got = restored.incidents[incident.incident_id]
        assert got.history == incident.history
        assert got.time_to_containment_s == incident.time_to_containment_s
        # The id counter keeps incrementing across the restart.
        seq = 100
        for i in range(2):
            seq += 1
            detection = engine.observe(
                ev(f"w{i}", "sig.b", 6.0 + i, seq)) or detection
        fresh = restored.open_from_detection(detection, Asil.B)
        assert fresh.incident_id == "INC-00002"


# ----------------------------------------------------------------------
# The tentpole differential: kill + recover == uninterrupted
# ----------------------------------------------------------------------
def _durable_scene(root, seed=11, n=600, prevalence=0.05, num_shards=1,
                   capacity_eps=120.0, snapshot_every_pumps=8):
    sim = Simulator()
    rng = RngStreams(seed)
    campaigns = seeded_campaigns(rng, n, prevalence)
    fleet = FleetModel(n, campaigns)
    store = DurableStore(root)
    soc = SecurityOperationsCenter(
        sim, fleet, capacity_eps=capacity_eps, k=3, respond=False,
        num_shards=num_shards, store=store,
        snapshot_every_pumps=snapshot_every_pumps)
    generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline)
    soc.start()
    generator.start()
    return sim, soc, store


def _canon(snapshot):
    return json.dumps(snapshot, sort_keys=True)


class TestCrashRecoveryDifferential:
    DURATION = 12.0

    @pytest.mark.parametrize("num_shards", [1, 4])
    @pytest.mark.parametrize("kill_pump", [5, 18, 31])
    def test_kill_recover_resume_is_byte_identical(
            self, tmp_path, num_shards, kill_pump):
        sim, soc, _ = _durable_scene(tmp_path / "ref",
                                     num_shards=num_shards)
        sim.run_until(self.DURATION)
        soc.final_drain()
        ref_state = _canon(soc.analytics_snapshot())
        ref_metrics = soc.metrics()
        ref_flagged = soc.flagged_signatures()

        sim, soc, store = _durable_scene(tmp_path / "crash",
                                         num_shards=num_shards)
        sim.run_until(kill_pump * soc.pump_tick_s)
        live_mid = _canon(soc.analytics_snapshot())
        recovered = recover_soc_state(store)
        # 1. The rebuilt state equals the live state at the kill point.
        assert _canon(recovered.analytics_snapshot()) == live_mid
        # 2. Resuming from the rebuilt state reaches the exact same end
        #    state, verdicts, and metrics as never having crashed.
        soc.adopt_analytics(recovered)
        sim.run_until(self.DURATION)
        soc.final_drain()
        assert _canon(soc.analytics_snapshot()) == ref_state
        assert soc.metrics() == ref_metrics
        assert soc.flagged_signatures() == ref_flagged

    def test_recovery_from_initial_snapshot_replays_whole_log(
            self, tmp_path):
        # snapshot_every_pumps=0: only snapshot 0 exists, so recovery
        # must replay the entire log through observe_batch.
        sim, soc, store = _durable_scene(tmp_path, num_shards=4,
                                         snapshot_every_pumps=0)
        sim.run_until(self.DURATION)
        soc.final_drain()
        recovered = recover_soc_state(store)
        assert recovered.replayed_pumps > 0
        assert recovered.replayed_events > 0
        assert _canon(recovered.analytics_snapshot()) == _canon(
            soc.analytics_snapshot())
        assert recovered.flagged_signatures() == soc.flagged_signatures()

    def test_recovery_under_congestion(self, tmp_path):
        # A backend 10x too slow: queues stay saturated, shedding is
        # active, and the final drain runs its backlog loop -- recovery
        # must still be exact.
        sim, soc, store = _durable_scene(tmp_path, num_shards=2,
                                         capacity_eps=2.0,
                                         snapshot_every_pumps=6)
        sim.run_until(self.DURATION)
        assert soc.pipeline.queue_depth > 0  # genuinely congested
        recovered = recover_soc_state(store)
        assert _canon(recovered.analytics_snapshot()) == _canon(
            soc.analytics_snapshot())
        soc.adopt_analytics(recovered)
        soc.final_drain()
        assert soc.pipeline.queue_depth == 0

    def test_empty_store_refuses_recovery(self, tmp_path):
        store = DurableStore(tmp_path)
        with pytest.raises(RuntimeError):
            recover_soc_state(store)

    def test_soc_store_scan_forensics(self, tmp_path):
        sim, soc, store = _durable_scene(tmp_path, num_shards=4)
        sim.run_until(self.DURATION)
        soc.final_drain()
        flagged = sorted(soc.flagged_signatures())
        assert flagged
        # Every vehicle the tracker attributes to the campaign must be
        # findable in the archived log by signature.
        signature = flagged[0]
        hits = list(store.log.scan(signature=signature))
        assert hits
        assert all(h.event.signature == signature for h in hits)
        # Time-bounded scan agrees with the unbounded one, restricted.
        t_hits = list(store.log.scan(signature=signature, t0=2.0, t1=8.0,
                                     max_disorder_s=2.0))
        assert t_hits == [h for h in hits if 2.0 <= h.event.time <= 8.0]

    def test_e17_crash_recovery_cell_smoke(self, tmp_path):
        from repro.experiments import e17_soc
        stats = e17_soc.crash_recovery_cell(
            n_vehicles=600, prevalence=0.05, duration_s=10.0, kill_pump=30,
            num_shards=2, capacity_eps=120.0, snapshot_every_pumps=8,
            root=tmp_path)
        assert stats["byte_identical"] == 1.0
        assert stats["replayed_pumps"] > 0
        assert stats["events_logged"] > 0
