"""Tests for the OTA framework: metadata, repositories, clients, attacks."""

import pytest

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota import (
    CompromiseScenario,
    DirectorRepository,
    FleetCampaign,
    ImageRepository,
    Metadata,
    MetadataError,
    NaiveClient,
    RoleKeySet,
    UptaneClient,
    key_id_of,
    sign_metadata,
    verify_metadata,
)
from repro.ota.metadata import role_keys_from_root


def make_image(version=2, payload=b"new firmware payload" * 8):
    return FirmwareImage("engine-fw", version, payload, hardware_id="mcu-a")


def make_fleet(n=3, seed=b"fleet"):
    image_repo = ImageRepository(seed=seed + b"/img")
    director = DirectorRepository(seed=seed + b"/dir")
    clients = []
    for i in range(n):
        store = FirmwareStore(FirmwareImage("engine-fw", 1, b"base" * 10,
                                            hardware_id="mcu-a"))
        clients.append(UptaneClient(
            f"veh-{i}", store,
            image_root=image_repo.metadata["root"],
            director_root=director.metadata["root"],
        ))
    return image_repo, director, clients


class TestMetadata:
    def _keyset(self, n=2, threshold=1, role="targets"):
        pairs = [EcdsaKeyPair.generate(HmacDrbg(f"k{i}".encode())) for i in range(n)]
        return RoleKeySet(role, pairs, threshold)

    def test_sign_and_verify(self):
        ks = self._keyset()
        meta = sign_metadata(
            Metadata("targets", 1, 100.0, {"targets": {}}), ks.keypairs,
        )
        verify_metadata(meta, ks.public_keys, ks.threshold, now=1.0,
                        expected_role="targets")

    def test_expired_rejected(self):
        ks = self._keyset()
        meta = sign_metadata(Metadata("targets", 1, 10.0, {}), ks.keypairs)
        with pytest.raises(MetadataError, match="expired"):
            verify_metadata(meta, ks.public_keys, 1, now=20.0,
                            expected_role="targets")

    def test_threshold_enforced(self):
        ks = self._keyset(n=3, threshold=2)
        meta = sign_metadata(Metadata("targets", 1, 100.0, {}), ks.keypairs[:1])
        with pytest.raises(MetadataError, match="threshold"):
            verify_metadata(meta, ks.public_keys, 2, now=1.0,
                            expected_role="targets")

    def test_unauthorized_signatures_ignored(self):
        ks = self._keyset(n=1)
        rogue = EcdsaKeyPair.generate(HmacDrbg(b"rogue"))
        meta = sign_metadata(Metadata("targets", 1, 100.0, {}), [rogue])
        with pytest.raises(MetadataError, match="threshold"):
            verify_metadata(meta, ks.public_keys, 1, now=1.0,
                            expected_role="targets")

    def test_role_mismatch(self):
        ks = self._keyset()
        meta = sign_metadata(Metadata("targets", 1, 100.0, {}), ks.keypairs)
        with pytest.raises(MetadataError, match="role"):
            verify_metadata(meta, ks.public_keys, 1, now=1.0,
                            expected_role="snapshot")

    def test_tampered_payload_rejected(self):
        ks = self._keyset()
        meta = sign_metadata(Metadata("targets", 1, 100.0, {"a": 1}), ks.keypairs)
        tampered = Metadata("targets", 1, 100.0, {"a": 2}, meta.signatures)
        with pytest.raises(MetadataError):
            verify_metadata(tampered, ks.public_keys, 1, now=1.0,
                            expected_role="targets")

    def test_keyset_validation(self):
        with pytest.raises(ValueError):
            RoleKeySet("nonsense", [], 1)
        pairs = [EcdsaKeyPair.generate(HmacDrbg(b"k"))]
        with pytest.raises(ValueError):
            RoleKeySet("root", pairs, 2)

    def test_root_payload_roundtrip(self):
        repo = ImageRepository(seed=b"rt")
        keys, threshold = role_keys_from_root(
            repo.metadata["root"].payload, "targets",
        )
        assert threshold == repo.keysets["targets"].threshold
        assert set(keys) == set(repo.keysets["targets"].public_keys)

    def test_key_id_stable(self):
        kp = EcdsaKeyPair.generate(HmacDrbg(b"kid"))
        assert key_id_of(kp.public) == key_id_of(kp.public)
        assert len(key_id_of(kp.public)) == 16


class TestHonestUpdate:
    def test_fleet_rollout_succeeds(self):
        image_repo, director, clients = make_fleet()
        campaign = FleetCampaign(director, image_repo, clients)
        results = campaign.rollout(make_image(version=2), now=100.0)
        assert campaign.success_rate(results) == 1.0
        for client in clients:
            assert client.store.active.version == 2

    def test_same_version_not_reinstalled(self):
        image_repo, director, clients = make_fleet(n=1)
        campaign = FleetCampaign(director, image_repo, clients)
        campaign.rollout(make_image(version=2), now=100.0)
        results = campaign.rollout(make_image(version=2), now=200.0)
        assert not results["veh-0"].installed
        assert "not newer" in results["veh-0"].reason

    def test_downgrade_rejected(self):
        image_repo, director, clients = make_fleet(n=1)
        campaign = FleetCampaign(director, image_repo, clients)
        campaign.rollout(make_image(version=3), now=100.0)
        results = campaign.rollout(make_image(version=2, payload=b"old" * 20),
                                   now=200.0)
        assert not results["veh-0"].installed

    def test_expired_timestamp_rejected(self):
        image_repo, director, clients = make_fleet(n=1)
        campaign = FleetCampaign(director, image_repo, clients)
        # Timestamp expiry is 1 day; run the update far in the future.
        results = campaign.rollout(make_image(version=2), now=0.0)
        assert results["veh-0"].installed
        image_repo.add_image(make_image(version=3, payload=b"v3" * 30), now=0.0)
        director.assign("veh-0", make_image(version=3, payload=b"v3" * 30), now=0.0)
        # Client checks at now >> expiry: the director refresh re-signs, so
        # force staleness by not refreshing image repo (its timestamp ages).
        result = clients[0].update(director, image_repo, now=10 * 86400.0)
        assert not result.installed

    def test_no_assignment(self):
        image_repo, director, clients = make_fleet(n=1)
        result = clients[0].update(director, image_repo, now=1.0)
        assert not result.installed and result.reason == "no assignment"


class TestCompromiseScenarios:
    MALICIOUS = FirmwareImage("engine-fw", 99, b"evil payload" * 8,
                              hardware_id="mcu-a")

    def _scenario(self, compromised):
        image_repo, director, clients = make_fleet(n=1, seed=b"attack")
        # Prime an honest update so chains exist.
        FleetCampaign(director, image_repo, clients).rollout(
            make_image(version=2), now=10.0,
        )
        return CompromiseScenario(director, image_repo, compromised), clients[0]

    def test_no_keys_fails(self):
        scenario, client = self._scenario({})
        result = scenario.attack_uptane(client, self.MALICIOUS, now=20.0)
        assert not result.installed

    def test_director_targets_only_fails(self):
        """Director-only compromise cannot forge the image repo side."""
        scenario, client = self._scenario(
            {"director": ["targets", "snapshot", "timestamp"]},
        )
        result = scenario.attack_uptane(client, self.MALICIOUS, now=20.0)
        assert not result.installed
        assert "not in image repo" in result.reason or "metadata" in result.reason

    def test_image_targets_only_fails(self):
        """Image-repo-only compromise cannot forge the director assignment."""
        scenario, client = self._scenario(
            {"image": ["targets", "snapshot", "timestamp"]},
        )
        result = scenario.attack_uptane(client, self.MALICIOUS, now=20.0)
        assert not result.installed

    def test_timestamp_only_fails(self):
        scenario, client = self._scenario(
            {"image": ["timestamp"], "director": ["timestamp"]},
        )
        result = scenario.attack_uptane(client, self.MALICIOUS, now=20.0)
        assert not result.installed

    def test_full_both_repo_compromise_succeeds(self):
        """The attack floor: all online roles in both repos."""
        scenario, client = self._scenario({
            "director": ["targets", "snapshot", "timestamp"],
            "image": ["targets", "snapshot", "timestamp"],
        })
        result = scenario.attack_uptane(client, self.MALICIOUS, now=20.0)
        assert result.installed
        assert client.store.active.version == 99

    def test_targets_without_chain_fails(self):
        """Targets keys alone can't re-sign snapshot/timestamp."""
        scenario, client = self._scenario({
            "director": ["targets"], "image": ["targets"],
        })
        result = scenario.attack_uptane(client, self.MALICIOUS, now=20.0)
        assert not result.installed


class TestNaiveClient:
    def _naive(self):
        oem = EcdsaKeyPair.generate(HmacDrbg(b"shared-oem-key"))
        store = FirmwareStore(FirmwareImage("engine-fw", 1, b"base" * 10,
                                            hardware_id="mcu-a"))
        return NaiveClient("veh-0", store, oem.public), oem

    def test_honest_update(self):
        client, oem = self._naive()
        from repro.crypto import ecdsa_sign
        image = make_image(version=2)
        result = client.update(image, ecdsa_sign(oem.private, image.digest))
        assert result.installed

    def test_rogue_signature_rejected(self):
        client, _ = self._naive()
        result = CompromiseScenario.attack_naive(
            client, make_image(version=99), oem_keypair=None,
        )
        assert not result.installed

    def test_shared_key_compromise_breaks_class(self):
        """One extracted key signs malicious firmware for every vehicle."""
        oem = EcdsaKeyPair.generate(HmacDrbg(b"class-key"))
        fleet = []
        for i in range(5):
            store = FirmwareStore(FirmwareImage("engine-fw", 1, b"base" * 10,
                                                hardware_id="mcu-a"))
            fleet.append(NaiveClient(f"veh-{i}", store, oem.public))
        malicious = make_image(version=99, payload=b"pwned" * 10)
        outcomes = [
            CompromiseScenario.attack_naive(c, malicious, oem_keypair=oem).installed
            for c in fleet
        ]
        assert all(outcomes)  # 100% blast radius

    def test_naive_accepts_downgrade(self):
        """Documented weakness: no rollback protection."""
        client, oem = self._naive()
        from repro.crypto import ecdsa_sign
        up = make_image(version=5)
        client.update(up, ecdsa_sign(oem.private, up.digest))
        down = make_image(version=2, payload=b"older" * 10)
        result = client.update(down, ecdsa_sign(oem.private, down.digest))
        assert result.installed  # downgrade accepted
