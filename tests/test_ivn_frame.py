"""Tests for CAN frame encoding: CRC-15, stuffing, wire time."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ivn import CanFrame, can_crc15, can_frame_bit_length, count_stuff_bits


class TestCanFrame:
    def test_basic_construction(self):
        f = CanFrame(0x123, b"\x01\x02")
        assert f.can_id == 0x123 and f.dlc == 2

    def test_standard_id_range(self):
        CanFrame(0x7FF)  # ok
        with pytest.raises(ValueError):
            CanFrame(0x800)
        with pytest.raises(ValueError):
            CanFrame(-1)

    def test_extended_id_range(self):
        CanFrame(0x1FFFFFFF, extended=True)  # ok
        with pytest.raises(ValueError):
            CanFrame(0x20000000, extended=True)

    def test_payload_limit(self):
        with pytest.raises(ValueError):
            CanFrame(0x100, bytes(9))

    def test_remote_frame_no_data(self):
        with pytest.raises(ValueError):
            CanFrame(0x100, b"\x01", remote=True)
        assert CanFrame(0x100, remote=True).dlc == 0

    def test_with_data_preserves_identity(self):
        f = CanFrame(0x100, b"\x01", sender="ecu1", timestamp=2.0)
        g = f.with_data(b"\xff\xff")
        assert g.can_id == 0x100 and g.sender == "ecu1"
        assert g.timestamp == 2.0 and g.data == b"\xff\xff"

    def test_frames_are_hashable_and_frozen(self):
        f = CanFrame(0x1, b"\x00")
        assert hash(f) == hash(CanFrame(0x1, b"\x00"))
        with pytest.raises(AttributeError):
            f.can_id = 2


class TestBitLength:
    def test_stuffed_region_size_standard(self):
        # SOF 1 + ID 11 + RTR 1 + IDE 1 + r0 1 + DLC 4 + 8*n + CRC 15
        f = CanFrame(0x123, bytes(8))
        assert len(f.stuffed_region_bits()) == 34 + 64

    def test_stuffed_region_size_extended(self):
        f = CanFrame(0x123, bytes(8), extended=True)
        assert len(f.stuffed_region_bits()) == 54 + 64

    def test_bit_length_within_bounds(self):
        for dlc in range(9):
            f = CanFrame(0x2AA, bytes(range(dlc)))  # alternating id avoids stuffing
            lo = can_frame_bit_length(dlc)
            hi = can_frame_bit_length(dlc, worst_case=True)
            assert lo <= f.bit_length() <= hi

    def test_extended_longer_than_standard(self):
        std = CanFrame(0x123, bytes(8)).bit_length()
        ext = CanFrame(0x123, bytes(8), extended=True).bit_length()
        assert ext > std

    def test_payload_content_affects_length(self):
        """All-zero payloads stuff heavily; alternating payloads don't."""
        zeros = CanFrame(0x2AA, bytes(8)).bit_length()
        alt = CanFrame(0x2AA, b"\xaa" * 8).bit_length()
        assert zeros > alt

    def test_wire_time_scales_with_bitrate(self):
        f = CanFrame(0x100, bytes(8))
        assert f.wire_time(500_000) == pytest.approx(2 * f.wire_time(1_000_000))

    def test_wire_time_rejects_bad_bitrate(self):
        with pytest.raises(ValueError):
            CanFrame(0x100).wire_time(0)

    def test_formula_rejects_bad_dlc(self):
        with pytest.raises(ValueError):
            can_frame_bit_length(9)

    @given(
        st.integers(min_value=0, max_value=0x7FF),
        st.binary(max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_length_bounds(self, can_id, data):
        f = CanFrame(can_id, data)
        assert (
            can_frame_bit_length(len(data))
            <= f.bit_length()
            <= can_frame_bit_length(len(data), worst_case=True)
        )


class TestCrc15:
    def test_empty(self):
        assert can_crc15([]) == 0

    def test_known_nonzero(self):
        assert can_crc15([1]) == 0x4599

    def test_crc_differs_on_single_bit_flip(self):
        bits = [0, 1, 0, 1, 1, 1, 0, 0] * 4
        flipped = list(bits)
        flipped[5] ^= 1
        assert can_crc15(bits) != can_crc15(flipped)

    def test_crc_in_range(self):
        assert 0 <= can_crc15([1, 0] * 30) < (1 << 15)


class TestStuffBits:
    def test_no_stuffing_needed(self):
        assert count_stuff_bits([0, 1] * 10) == 0

    def test_five_equal_bits_one_stuff(self):
        assert count_stuff_bits([0] * 5) == 1

    def test_stuff_bit_participates_in_next_run(self):
        # 000001111: after 5 zeros a 1 is stuffed; then the four real 1s
        # extend the stuffed 1 to a run of 5 -> a second stuff bit.
        assert count_stuff_bits([0, 0, 0, 0, 0, 1, 1, 1, 1]) == 2

    def test_long_constant_run(self):
        # The complementary stuff bit restarts the run, so after the first
        # stuff every further 5 identical bits trigger one more.
        assert count_stuff_bits([1] * 13) == 2
        assert count_stuff_bits([1] * 15) == 3

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_bounded_by_quarter(self, bits):
        assert count_stuff_bits(bits) <= max(0, len(bits) - 1) // 4 + 1
