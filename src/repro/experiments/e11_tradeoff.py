"""E11 -- Dynamic security/smartness/bandwidth trade-off (§5).

A 40-minute synthetic commute (parked -> highway -> urban -> dense urban
-> parked) consumed by three policies:

- ``adaptive``   -- the context-driven trade-off controller;
- ``static-max`` -- always the dense-urban operating point (maximum
  security and analytics, maximum energy/bandwidth);
- ``static-min`` -- always the highway operating point (cheap, but
  under-verifies and under-senses in the city).

Metrics: energy, uplink data, mean V2X verification strictness, and an
exposure proxy -- the fraction of urban time spent with verification
strictness below 0.9 (messages admitted on spot-check only).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.sweep import SweepResult
from repro.core.tradeoff import (
    ContextEstimate,
    DEFAULT_MODE_TABLE,
    DrivingContext,
    TradeoffController,
)

DT = 10.0  # seconds per timeline step


def commute_timeline() -> List[Tuple[float, ContextEstimate, DrivingContext]]:
    """(time, evidence, ground-truth phase) for a synthetic commute."""
    phases = [
        (120, ContextEstimate(0.0, 0, 0), DrivingContext.PARKED),
        (600, ContextEstimate(30.0, 1, 3), DrivingContext.HIGHWAY),
        (600, ContextEstimate(10.0, 8, 20), DrivingContext.URBAN),
        (480, ContextEstimate(4.0, 16, 45), DrivingContext.DENSE_URBAN),
        (480, ContextEstimate(10.0, 8, 20), DrivingContext.URBAN),
        (120, ContextEstimate(0.0, 0, 0), DrivingContext.PARKED),
    ]
    timeline = []
    t = 0.0
    for duration, estimate, phase in phases:
        steps = int(duration / DT)
        for _ in range(steps):
            timeline.append((t, estimate, phase))
            t += DT
    return timeline


def _account(policy: str) -> Dict[str, float]:
    timeline = commute_timeline()
    urban_phases = {DrivingContext.URBAN, DrivingContext.DENSE_URBAN}

    if policy == "adaptive":
        controller = TradeoffController(dwell_time=30.0)
        energy_j = data_mb = 0.0
        exposed_steps = urban_steps = 0
        verify_acc = 0.0
        for time, estimate, phase in timeline:
            point = controller.update(time, estimate)
            energy_j += point.power_w * DT
            data_mb += point.cloud_bandwidth_mbps * DT / 8.0
            verify_acc += point.v2x_verify_fraction
            if phase in urban_phases:
                urban_steps += 1
                if point.v2x_verify_fraction < 0.9:
                    exposed_steps += 1
        switches = len(controller.switches)
    else:
        context = (DrivingContext.DENSE_URBAN if policy == "static-max"
                   else DrivingContext.HIGHWAY)
        point = DEFAULT_MODE_TABLE[context]
        energy_j = point.power_w * DT * len(timeline)
        data_mb = point.cloud_bandwidth_mbps * DT / 8.0 * len(timeline)
        verify_acc = point.v2x_verify_fraction * len(timeline)
        urban_steps = sum(1 for _, _, p in timeline if p in urban_phases)
        exposed_steps = (
            urban_steps if point.v2x_verify_fraction < 0.9 else 0
        )
        switches = 0

    return {
        "energy_wh": energy_j / 3600.0,
        "data_mb": data_mb,
        "mean_verify": verify_acc / len(timeline),
        "urban_underverified_fraction": (
            exposed_steps / urban_steps if urban_steps else 0.0
        ),
        "mode_switches": float(switches),
    }


def run(seed: int = 0) -> SweepResult:
    """Policy comparison over the synthetic commute."""
    result = SweepResult(
        "E11: adaptive vs static operating policies over a commute",
        ["policy", "energy_wh", "data_mb", "mean_verify",
         "urban_underverified_fraction", "mode_switches"],
    )
    for policy in ("adaptive", "static-max", "static-min"):
        result.add(policy=policy, **_account(policy))
    return result
