"""E3 -- CAN authentication vs real-time deadlines (§1, §6 trade-off).

Authenticating CAN traffic costs payload bytes (inline truncated CMAC) or
extra frames (separate tag frames).  On a loaded bus this raises
utilisation and deadline misses -- the paper's "security vs real-time"
trade-off made measurable.  The sweep runs the powertrain traffic matrix
under each authentication configuration at a given bitrate and reports
bus utilisation, worst latency of the fastest signal, and the miss rate
against per-signal deadlines (= their periods).

Each application message of N bytes needs ceil(N / capacity) frames, where
capacity = 7 - tag_len for inline mode (1 byte goes to the freshness
counter) and 7 for separate mode (plus one tag frame).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.analysis.sweep import SweepResult
from repro.crypto import aes_cmac
from repro.ivn import CanBus, CanFrame, DeadlineMonitor, typical_powertrain_matrix
from repro.ivn.secure_can import SecOcReceiver, SecOcSender
from repro.sim import Simulator, TraceRecorder


def _install_authenticated(sim: Simulator, bus: CanBus, key: bytes,
                           tag_len: int, mode: str) -> Dict[int, "SecOcReceiver"]:
    """Periodic authenticated senders for the powertrain matrix."""
    matrix = typical_powertrain_matrix()
    nodes = {}
    receivers: Dict[int, SecOcReceiver] = {}
    for source in matrix.sources:
        nodes[source] = bus.attach(source)
    monitor_node = bus.attach("receiver-ecu")

    for entry in matrix.entries:
        sender = SecOcSender(nodes[entry.source], key, tag_len=tag_len, mode=mode)
        receiver = SecOcReceiver(key, tag_len=tag_len)
        receivers[entry.can_id] = receiver
        capacity = sender.max_payload()
        frames_per_msg = max(1, math.ceil(entry.dlc / capacity))

        def tick(e=entry, s=sender, fpm=frames_per_msg, cap=capacity):
            payload = bytes(e.dlc)
            for i in range(fpm):
                chunk = payload[i * cap : (i + 1) * cap]
                if chunk:
                    s.send(e.can_id, chunk)

        def schedule(e=entry, fn=None):
            pass

        # Phase-offset periodic scheduling, mirroring PeriodicSender.
        offset = (entry.can_id % 97) / 97.0 * entry.period

        def make_loop(e=entry, fn=tick):
            def loop():
                fn()
                sim.schedule(e.period, loop)
            return loop

        sim.schedule(offset, make_loop())

    if mode == "inline":
        monitor_node.on_receive(
            lambda f: receivers.get(f.can_id) and receivers[f.can_id].receive_inline(f)
        )
    else:
        def route_separate(f):
            base = f.can_id & 0x7FF
            receiver = receivers.get(base)
            if receiver is not None:
                receiver.receive_separate(f)

        monitor_node.on_receive(route_separate)
    return receivers


def _run_config(tag_len: int, mode: str, bitrate: float,
                duration: float) -> Dict[str, float]:
    sim = Simulator()
    trace = TraceRecorder()
    bus = CanBus(sim, bitrate=bitrate, trace=trace)
    matrix = typical_powertrain_matrix()
    deadlines = {e.can_id: e.period for e in matrix.entries}
    monitor = DeadlineMonitor(trace, deadlines)
    key = b"K" * 16

    if tag_len == 0:
        matrix.install(sim, bus)
        receivers = {}
    else:
        receivers = _install_authenticated(sim, bus, key, tag_len, mode)

    sim.run_until(duration)
    accepted = sum(r.stats.accepted for r in receivers.values())
    rejected = sum(
        r.stats.rejected_mac + r.stats.rejected_freshness for r in receivers.values()
    )
    return {
        "utilization": bus.utilization(),
        "miss_rate": monitor.miss_rate(),
        "worst_latency_ms": max(
            (monitor.worst_latency(cid) for cid in deadlines), default=0.0,
        ) * 1e3,
        "auth_accepted": float(accepted),
        "auth_rejected": float(rejected),
        "security_bits": float(8 * tag_len),
    }


def run(bitrate: float = 125_000.0, duration: float = 5.0,
        seed: int = 0) -> SweepResult:
    """Sweep authentication configuration at a fixed bitrate."""
    result = SweepResult(
        f"E3: CAN authentication vs real-time (bitrate={bitrate/1e3:.0f} kbit/s)",
        ["config", "security_bits", "utilization", "miss_rate",
         "worst_latency_ms", "auth_ok_per_s", "auth_rejected"],
    )
    configs = [
        ("none", 0, "inline"),
        ("inline-2B", 2, "inline"),
        ("inline-4B", 4, "inline"),
        ("inline-6B", 6, "inline"),
        ("separate-7B", 7, "separate"),
    ]
    for name, tag_len, mode in configs:
        row = _run_config(tag_len, mode, bitrate, duration)
        result.add(
            config=name, security_bits=row["security_bits"],
            utilization=row["utilization"], miss_rate=row["miss_rate"],
            worst_latency_ms=row["worst_latency_ms"],
            auth_ok_per_s=row["auth_accepted"] / duration,
            auth_rejected=row["auth_rejected"],
        )
    return result


def run_canfd(nominal_bitrate: float = 125_000.0,
              data_bitrate: float = 2_000_000.0,
              duration: float = 5.0, seed: int = 0) -> SweepResult:
    """Ablation: the same trade-off on CAN FD.

    With 64-byte frames and a fast data phase, a full 16-byte CMAC plus
    counter rides in the same frame as the payload -- authentication stops
    costing frames, dissolving the classic-CAN dilemma of :func:`run`.
    """
    from repro.ivn.canfd import CanFdBus, CanFdFrame

    result = SweepResult(
        f"E3b: CAN FD authentication (nominal={nominal_bitrate/1e3:.0f} kbit/s, "
        f"data={data_bitrate/1e6:.0f} Mbit/s)",
        ["config", "security_bits", "utilization", "miss_rate",
         "worst_latency_ms"],
    )
    for name, tag_bytes in (("none", 0), ("full-16B-tag", 16)):
        sim = Simulator()
        trace = TraceRecorder()
        bus = CanFdBus(sim, bitrate=nominal_bitrate, data_bitrate=data_bitrate,
                       trace=trace)
        matrix = typical_powertrain_matrix()
        deadlines = {e.can_id: e.period for e in matrix.entries}
        monitor = DeadlineMonitor(trace, deadlines)
        nodes = {src: bus.attach(src) for src in matrix.sources}
        for entry in matrix.entries:
            extra = tag_bytes + (1 if tag_bytes else 0)  # tag + counter

            def make_loop(e=entry, n=nodes[entry.source], x=extra):
                def loop():
                    n.send(CanFdFrame(e.can_id, bytes(e.dlc + x)))
                    sim.schedule(e.period, loop)
                return loop

            sim.schedule((entry.can_id % 97) / 97.0 * entry.period, make_loop())
        sim.run_until(duration)
        result.add(
            config=name, security_bits=8 * tag_bytes,
            utilization=bus.utilization(), miss_rate=monitor.miss_rate(),
            worst_latency_ms=max(
                (monitor.worst_latency(cid) for cid in deadlines), default=0.0,
            ) * 1e3,
        )
    return result
