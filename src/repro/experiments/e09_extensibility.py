"""E9 -- Extensible vs custom architecture economics (§6).

The paper asserts: extensible architectures "have longer latency of
development at first deployment" but "reduce time-to-market in future
products".  The generation cost model quantifies both and locates the
crossover generation; the sweep ablates the per-generation reconfiguration
cost (how good your extensibility actually is) to show when extensibility
does NOT pay.
"""

from __future__ import annotations

from repro.analysis.sweep import SweepResult
from repro.core.extensibility import GenerationCostModel


def run(generations: int = 8, seed: int = 0) -> SweepResult:
    """Cumulative-cost trajectories plus the crossover."""
    model = GenerationCostModel()
    custom = model.custom_cumulative(generations)
    extensible = model.extensible_cumulative(generations)
    result = SweepResult(
        "E9: cumulative cost, custom vs extensible architecture",
        ["generation", "custom_cost", "extensible_cost", "extensible_wins"],
    )
    for gen in range(generations):
        result.add(
            generation=gen + 1,
            custom_cost=custom[gen],
            extensible_cost=extensible[gen],
            extensible_wins=extensible[gen] < custom[gen],
        )
    return result


def run_ablation(generations: int = 12, seed: int = 0) -> SweepResult:
    """Sweep the quality of the extensibility (per-generation cost)."""
    result = SweepResult(
        "E9b: crossover vs per-generation reconfiguration cost",
        ["gen_cost", "ttm_penalty", "crossover_generation"],
    )
    for gen_cost in (10.0, 25.0, 50.0, 90.0, 130.0):
        model = GenerationCostModel(extensible_gen_cost=gen_cost)
        crossover = model.crossover_generation(max_generations=generations)
        result.add(
            gen_cost=gen_cost,
            ttm_penalty=model.time_to_market_penalty(),
            crossover_generation=crossover if crossover is not None else "never",
        )
    return result
