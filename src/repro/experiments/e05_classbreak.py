"""E5 -- Shared keys turn one compromise into a class break (§4.2).

The paper's scenario verbatim: "many electronic components are produced en
masse with the same configuration of keys ... one compromised ECU can lead
[to] potentially severe security compromise of a whole class."

A fleet of N vehicles receives OTA updates under three key-management
regimes; the attacker fully compromises ONE vehicle (side-channel key
extraction a la E4) and then tries to push malicious firmware to the
whole fleet.  Metric: blast radius (fraction of fleet accepting the
malicious image).

- ``naive-shared``     -- single OEM signing key verified by every car;
  the extracted key IS that key's verifier... more precisely the paper's
  scenario assumes symmetric-equivalent knowledge: compromising one unit
  yields the class key.  Blast radius 100%.
- ``naive-per-device`` -- each car verifies with a device-unique key; the
  extracted key signs only for the compromised car.  Blast radius 1/N.
- ``uptane``           -- role-separated metadata; vehicle-resident keys
  sign nothing, so the extraction yields no installation capability at
  all.  Blast radius 0.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.sweep import SweepResult
from repro.crypto import EcdsaKeyPair, HmacDrbg, ecdsa_sign
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota import (
    CompromiseScenario,
    DirectorRepository,
    FleetCampaign,
    ImageRepository,
    NaiveClient,
    UptaneClient,
)


def _base_store() -> FirmwareStore:
    return FirmwareStore(
        FirmwareImage("engine-fw", 1, b"factory image" * 8, hardware_id="mcu-a"),
    )


MALICIOUS = FirmwareImage("engine-fw", 66, b"malicious" * 12, hardware_id="mcu-a")


def _naive_shared(n: int) -> float:
    oem = EcdsaKeyPair.generate(HmacDrbg(b"class-shared-key"))
    fleet = [NaiveClient(f"veh-{i}", _base_store(), oem.public) for i in range(n)]
    # Compromising vehicle 0 yields the class signing capability.
    compromised_key = oem
    hits = sum(
        1 for client in fleet
        if CompromiseScenario.attack_naive(client, MALICIOUS, compromised_key).installed
    )
    return hits / n


def _naive_per_device(n: int) -> float:
    keys = [EcdsaKeyPair.generate(HmacDrbg(f"dev-{i}".encode())) for i in range(n)]
    fleet = [NaiveClient(f"veh-{i}", _base_store(), keys[i].public) for i in range(n)]
    # Only vehicle 0's key is extracted.
    compromised_key = keys[0]
    hits = 0
    for client, key in zip(fleet, keys):
        result = CompromiseScenario.attack_naive(client, MALICIOUS, compromised_key)
        hits += result.installed
    return hits / n


def _uptane(n: int) -> float:
    image_repo = ImageRepository(seed=b"e5/img")
    director = DirectorRepository(seed=b"e5/dir")
    fleet = [
        UptaneClient(f"veh-{i}", _base_store(),
                     image_root=image_repo.metadata["root"],
                     director_root=director.metadata["root"])
        for i in range(n)
    ]
    # Prime honest chains.
    FleetCampaign(director, image_repo, fleet).rollout(
        FirmwareImage("engine-fw", 2, b"honest v2" * 10, hardware_id="mcu-a"),
        now=10.0,
    )
    # The compromised vehicle holds NO repository signing keys, so the
    # attacker's best move is metadata replay / unsigned forgery: model as
    # a scenario with zero compromised roles.
    scenario = CompromiseScenario(director, image_repo, compromised={})
    hits = sum(
        1 for client in fleet
        if scenario.attack_uptane(client, MALICIOUS, now=20.0).installed
    )
    return hits / n


def run(fleet_size: int = 20, seed: int = 0) -> SweepResult:
    """Blast radius per key-management regime."""
    result = SweepResult(
        f"E5: one-vehicle compromise blast radius (fleet={fleet_size})",
        ["regime", "blast_radius", "vehicles_compromised"],
    )
    for regime, fn in (
        ("naive-shared", _naive_shared),
        ("naive-per-device", _naive_per_device),
        ("uptane", _uptane),
    ):
        radius = fn(fleet_size)
        result.add(
            regime=regime, blast_radius=radius,
            vehicles_compromised=int(round(radius * fleet_size)),
        )
    return result
