"""E7 -- Authentication vs anonymity: pseudonym rotation (§4.2).

The paper's "conundrum": V2X messages must be verifiable yet anonymous.
The experiment reproduces the two-sided result from the pseudonym
literature:

1. **Rotation alone barely helps.**  A space-time tracking adversary links
   a vehicle's consecutive pseudonyms by kinematic continuity; in anything
   but bumper-to-bumper traffic the nearest silent track is almost always
   the right one, at every rotation rate.
2. **Synchronized rotation + radio silence (a "mix zone") helps.**  When
   nearby vehicles rotate together and stay silent long enough to shuffle
   positions, the adversary's candidate set is the whole platoon and its
   accuracy falls toward 1/k.

Cost column: pseudonym certificates consumed per vehicle-hour -- the PKI
provisioning burden that rises with rotation rate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.sweep import SweepResult
from repro.physical import Vehicle, VehicleState
from repro.sim import RngStreams, Simulator
from repro.v2x import (
    BasicSafetyMessage,
    MessageVerifier,
    ObuStation,
    PkiHierarchy,
    PseudonymManager,
    TrackingAdversary,
    WirelessChannel,
)

BSM_RATE_HZ = 5.0


def _scene(rotation_period: float, silence_s: float, n_vehicles: int,
           duration: float, seed: int) -> Dict[str, float]:
    sim = Simulator()
    rng = RngStreams(seed)
    pki = PkiHierarchy(seed=b"e7")
    channel = WirelessChannel(sim, comm_range=5000.0)
    adversary = TrackingAdversary(
        max_speed=45.0, gate_slack=15.0,
        silence_window=min(rotation_period, 1e4) + silence_s + 2.0,
    )
    truth: Dict[str, str] = {}
    stations: List[ObuStation] = []
    vehicles: List[Vehicle] = []
    managers: List[PseudonymManager] = []

    speed_rng = rng.get("speeds")
    for i in range(n_vehicles):
        vid = f"veh-{i}"
        ecert, _ = pki.enroll_vehicle(vid)
        n_pseudonyms = max(4, int(duration / rotation_period) + 2) \
            if rotation_period < 1e8 else 2
        batch = pki.issue_pseudonyms(vid, ecert, count=n_pseudonyms,
                                     validity_start=0.0)
        for cert, _ in batch.entries:
            truth[cert.subject] = vid
        # Dense two-lane platoon: ~12 m spacing, similar speeds.
        vehicle = Vehicle(VehicleState(
            x=float(i * 12), y=float((i % 2) * 4),
            speed=speed_rng.uniform(20.0, 24.0),
        ), name=vid)
        manager = PseudonymManager(batch, rotation_period=rotation_period)
        station = ObuStation(
            sim, vid, vehicle, channel, manager,
            MessageVerifier(pki.trust_store(), skip_crypto=True),
            bsm_period=1.0 / BSM_RATE_HZ, real_crypto=False,
        )
        stations.append(station)
        vehicles.append(vehicle)
        managers.append(manager)

    sniffer = channel.attach("sniffer", lambda: (0.0, 0.0))

    def overhear(message, sender):
        bsm = BasicSafetyMessage.decode(message.payload)
        adversary.observe(sim.now, message.certificate.subject, bsm.position)

    sniffer.on_receive(overhear)

    def advance():
        for vehicle in vehicles:
            vehicle.step(0.2)
        sim.schedule(0.2, advance)

    sim.schedule(0.2, advance)
    for station in stations:
        station.start_broadcasting()

    # Mix-zone protocol: synchronized rotation with radio silence.
    if silence_s > 0 and rotation_period < 1e8:
        def enter_mix_zone():
            for station, manager in zip(stations, managers):
                station.stop_broadcasting()
                manager.force_rotate(sim.now)
            sim.schedule(silence_s, exit_mix_zone)

        def exit_mix_zone():
            for station in stations:
                station.start_broadcasting()
            sim.schedule(max(0.1, rotation_period - silence_s), enter_mix_zone)

        sim.schedule(rotation_period, enter_mix_zone)

    sim.run_until(duration)

    total_rotations = sum(m.rotations for m in managers)
    certs_per_hour = (total_rotations / n_vehicles) / duration * 3600.0
    return {
        "link_accuracy": adversary.link_accuracy(truth),
        "tracking_recall": adversary.recall(truth),
        "links_predicted": float(len(adversary.predicted_links)),
        "certs_per_vehicle_hour": certs_per_hour,
    }


def run(n_vehicles: int = 10, duration: float = 120.0,
        seed: int = 0) -> SweepResult:
    """Rotation-period sweep, with and without mix-zone silence."""
    result = SweepResult(
        "E7: pseudonym rotation vs tracking adversary",
        ["rotation_period_s", "mix_zone", "link_accuracy",
         "tracking_recall", "certs_per_vehicle_hour"],
    )
    for period in (15.0, 30.0, 60.0, 1e9):
        for silence in (0.0, 2.0):
            if period >= 1e8 and silence > 0:
                continue  # no rotation -> no mix zone to speak of
            row = _scene(period, silence, n_vehicles, duration, seed)
            result.add(
                rotation_period_s=period if period < 1e8 else float("inf"),
                mix_zone="yes" if silence > 0 else "no",
                link_accuracy=row["link_accuracy"],
                tracking_recall=row["tracking_recall"],
                certs_per_vehicle_hour=row["certs_per_vehicle_hour"],
            )
    return result
