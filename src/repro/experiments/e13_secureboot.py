"""E13 -- Secure boot: authenticity guarantees and their cost (§7).

Two results:

1. The guarantee table: authentic image boots RUNNING; each tamper class
   (payload flip, version swap, wrong image) lands in DEGRADED/LOCKED per
   policy -- exercised through the full ECU lifecycle.
2. The cost curve: CMAC-over-image time vs image size, measured on the
   real (pure-Python) implementation -- establishing the boot-time
   overhead scaling shape (linear in image size).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.analysis.sweep import SweepResult
from repro.crypto import aes_cmac
from repro.ecu import Ecu, EcuState, FirmwareImage, FirmwareStore, She
from repro.sim import Simulator

BOOT_KEY = b"B" * 16
UID = bytes(15)


def _boot_outcome(mutation: str, halt_policy: bool) -> str:
    image = FirmwareImage("fw", 3, b"payload" * 64, hardware_id="mcu")
    she = She(uid=UID)
    she.set_boot_mac(image.canonical_bytes(), BOOT_KEY)
    sim = Simulator()
    ecu = Ecu(sim, "ecu", she, FirmwareStore(image),
              halt_on_boot_failure=halt_policy)
    if mutation == "authentic":
        pass
    elif mutation == "payload-flip":
        ecu.firmware.active = image.tampered(10)
    elif mutation == "version-swap":
        ecu.firmware.active = FirmwareImage("fw", 2, image.payload,
                                            hardware_id="mcu")
    elif mutation == "wrong-image":
        ecu.firmware.active = FirmwareImage("fw", 3, b"different" * 50,
                                            hardware_id="mcu")
    else:
        raise ValueError(mutation)
    ecu.power_on()
    sim.run()
    return ecu.state.value


def run(seed: int = 0) -> SweepResult:
    """The guarantee table."""
    result = SweepResult(
        "E13a: secure-boot outcomes by image mutation and policy",
        ["mutation", "policy_degrade", "policy_halt"],
    )
    for mutation in ("authentic", "payload-flip", "version-swap", "wrong-image"):
        result.add(
            mutation=mutation,
            policy_degrade=_boot_outcome(mutation, halt_policy=False),
            policy_halt=_boot_outcome(mutation, halt_policy=True),
        )
    return result


def run_cost(seed: int = 0) -> SweepResult:
    """CMAC time vs image size (the boot-time overhead curve)."""
    result = SweepResult(
        "E13b: firmware authentication cost vs image size",
        ["image_kib", "cmac_ms", "throughput_kib_s"],
    )
    for kib in (4, 16, 64, 256):
        payload = bytes(kib * 1024)
        start = time.perf_counter()
        aes_cmac(BOOT_KEY, payload)
        elapsed = time.perf_counter() - start
        result.add(
            image_kib=kib,
            cmac_ms=elapsed * 1e3,
            throughput_kib_s=kib / elapsed if elapsed > 0 else float("inf"),
        )
    return result
