"""E2 -- IDS detection across attack classes (§7 "Secure Networks").

Four attack classes (flood DoS, targeted spoof, random fuzz, masquerade)
against four detectors (frequency, entropy, specification, ensemble),
scored per frame against ground truth.  The expected *shape*: every
detector has a blind spot (spec misses in-spec floods' payloads? no --
spec catches unknown ids; frequency misses masquerade; entropy misses
slow targeted spoofing), and the ensemble dominates single detectors on
recall.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.metrics import score_alerts
from repro.analysis.sweep import SweepResult
from repro.attacks import BusFloodAttack, FuzzAttack, MasqueradeAttack, SpoofAttack
from repro.ids import (
    EnsembleIds,
    EntropyIds,
    FrequencyIds,
    PayloadRangeIds,
    SignalSpec,
    SpecificationIds,
)
from repro.ivn import CanBus, CanFrame, typical_powertrain_matrix
from repro.sim import RngStreams, Simulator

TRAIN_S = 20.0
ATTACK_START_S = 2.0
DURATION_S = 10.0

ATTACKER_NODES = {"attacker", "flooder", "fuzzer", "masquerader"}


def _collect_clean(seed: int, duration: float) -> List[Tuple[float, CanFrame]]:
    sim = Simulator()
    bus = CanBus(sim, name="train")
    typical_powertrain_matrix().install(sim, bus)
    frames: List[Tuple[float, CanFrame]] = []
    bus.tap(lambda f: frames.append((sim.now, f)))
    sim.run_until(duration)
    return frames


def _collect_attack(attack_name: str, seed: int) -> List[Tuple[float, CanFrame, bool]]:
    """Run the scenario live; label each delivered frame."""
    sim = Simulator()
    rng = RngStreams(seed)
    bus = CanBus(sim, name="live")
    matrix = typical_powertrain_matrix()
    matrix.install(sim, bus)
    log: List[Tuple[float, CanFrame, bool]] = []

    masq = None

    def label(frame: CanFrame) -> bool:
        if frame.sender in ATTACKER_NODES:
            return True
        return False

    bus.tap(lambda f: log.append((sim.now, f, label(f))))

    if attack_name == "flood":
        attack = BusFloodAttack(sim, bus, headroom=0.4)  # partial flood
        sim.schedule(ATTACK_START_S, attack.start)
    elif attack_name == "spoof":
        attack = SpoofAttack(sim, bus, 0x0C9, b"\xff" * 8, rate_hz=150.0)
        sim.schedule(ATTACK_START_S, attack.start)
    elif attack_name == "fuzz":
        attack = FuzzAttack(sim, bus, rate_hz=150.0, rng=rng.get("fuzz"))
        sim.schedule(ATTACK_START_S, attack.start)
    elif attack_name == "masquerade":
        masq = MasqueradeAttack(
            sim, bus, victim="brake", target_id=0x0D1, period=0.010,
            payload_fn=lambda seq: bytes(6),
        )
        sim.schedule(ATTACK_START_S, masq.start)
    else:
        raise ValueError(f"unknown attack {attack_name!r}")

    sim.run_until(DURATION_S)
    return log


def _make_detectors() -> Dict[str, object]:
    specs = [
        SignalSpec(e.can_id, e.dlc) for e in typical_powertrain_matrix().entries
    ]
    freq = FrequencyIds(ratio_threshold=0.5)
    entropy = EntropyIds(window=64, k_sigma=4.0)
    spec = SpecificationIds(specs)
    payload = PayloadRangeIds(margin=16)
    ensemble = EnsembleIds(
        [FrequencyIds(ratio_threshold=0.5), EntropyIds(window=64, k_sigma=4.0),
         SpecificationIds(list(specs)), PayloadRangeIds(margin=16)],
        mode="any", name="ensemble",
    )
    return {"frequency": freq, "entropy": entropy, "spec": spec,
            "payload": payload, "ensemble": ensemble}


def run(seed: int = 0) -> SweepResult:
    """Attack x detector matrix.

    Recall is measured per attack frame during the attack run; the false
    positive rate comes from a *separate attack-free run* (the standard
    IDS evaluation protocol -- per-frame attribution during an attack
    window would charge windowed detectors for collateral alerts on
    interleaved benign frames).
    """
    clean = _collect_clean(seed, TRAIN_S)
    holdout = _collect_clean(seed + 1, DURATION_S)  # clean evaluation run
    result = SweepResult(
        "E2: IDS detection by attack class",
        ["attack", "detector", "recall", "clean_fpr", "alerts"],
    )
    # Clean-run FPR per detector type (fresh instances: detector state
    # must not leak between runs).
    clean_fpr: Dict[str, float] = {}
    for det_name, detector in _make_detectors().items():
        detector.train(iter(clean))
        for time, frame in holdout:
            detector.observe(time, frame)
        clean_fpr[det_name] = len(detector.alerts) / max(1, len(holdout))

    for attack_name in ("flood", "spoof", "fuzz", "masquerade"):
        log = _collect_attack(attack_name, seed)
        for det_name, detector in _make_detectors().items():
            detector.train(iter(clean))
            attack_obs = []
            for time, frame, is_attack in log:
                detector.observe(time, frame)
                if is_attack:
                    attack_obs.append((time, is_attack))
            cm = score_alerts(attack_obs, detector.alerts)
            result.add(
                attack=attack_name, detector=det_name,
                recall=cm.recall, clean_fpr=clean_fpr[det_name],
                alerts=len(detector.alerts),
            )
    return result
