"""E20 -- Ingest front-door hardening: auth overhead, quota fencing,
worker MTTR (§5, §7).

E19 made the network front door *fast*; E20 measures what hardening it
costs and proves what hardening buys, across the three layers the
service now carries:

- **Authentication overhead** -- the same E19-style client fleet run
  twice, plain vs CMAC-authenticated (HELLO/CHALLENGE/AUTH handshake,
  per-batch tag trailers sealed client-side and verified by the owning
  worker).  Reported as sustained acked eps for both modes and the
  relative overhead.  The repo's AES is the from-first-principles
  pure-Python implementation (:mod:`repro.crypto.aes`), so per-batch
  CMAC over multi-KB payloads *dominates* the authenticated cell --
  that is the honest price of in-tree crypto, and exactly why the smoke
  gate floors the authenticated eps against the committed reference run
  rather than asserting a flattering overhead fraction.
- **Quota fencing** -- N honest clients with and without one hostile
  flooder that ignores backpressure.  The per-client byte token bucket
  hard-refuses the flood (REFUSED frames, credits returned) and the
  refusal threshold disconnects the abuser, so honest goodput holds:
  the cell reports the honest-goodput ratio vs the hostile-free
  baseline (target >= 0.95) plus the refusal/disconnect counters that
  prove enforcement actually happened.
- **Worker MTTR** -- the supervised auto-restart path: every worker is
  SIGKILLed once under live load and the cell measures kill ->
  last resubmitted handoff reported (snapshot load + log-suffix replay
  + journal-deduped resubmission).  Driven deterministically (injected
  wall clock, one flush per round) so the run is also differentially
  compared against an uninterrupted twin: raw worker log segments AND
  analytics snapshots must be byte-identical, and zero admitted-batch
  ACKs may be lost -- the restart is invisible except as latency.

As with E19 these are wall-clock cells of a live multiprocess service,
so rows are host-dependent by design; ``benchmarks/e20_smoke.py`` gates
them with self-arming floors and ``benchmarks/results/BENCH_E20.json``
records the reference run.  The deterministic correctness properties
(tamper refusal, exactly-once replay, conservation) are pinned in
``tests/test_soc_hardening.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional

from repro.analysis.sweep import SweepResult
from repro.core.safety import Asil
from repro.soc import EventSource, ServiceConfig, make_event
from repro.soc.service import (
    IngestService,
    VehicleClient,
    derive_session_key,
    encode_batch,
    recover_worker,
    seal_payload,
    serve,
    worker_root,
)

FLEET_KEY = bytes(range(16))

N_CLIENTS = 40
ROUNDS = 5
PER_BATCH = 20
N_SIGNATURES = 32
MTTR_WORKERS = 2
MTTR_ROUNDS = 14
MTTR_CLIENTS = 3

#: Same analytic shape as the E19 bench cells: deep queue, lateness
#: bound wide enough that cross-client interleaving never trips the
#: hygiene drop (the cells assert acked == sent).
BENCH_CONFIG = ServiceConfig(max_lateness_s=120.0, snapshot_every_pumps=0,
                             queue_capacity=1 << 17, batch_size=512)


def _client_id(seed: int, i: int) -> str:
    return f"veh-{seed}-{i:04d}"


def _build_payloads(n_clients: int, rounds: int, per_batch: int, seed: int,
                    authenticated: bool) -> List[List[bytes]]:
    """Pre-encoded (and, in authenticated mode, pre-sealed) BATCH
    payloads per client -- serialization and CMAC signing that belongs
    to the *client* happens before the clock starts; what the cell
    measures is the service side (handshake + per-batch verify)."""
    base_t = time.time() - 60.0
    payloads: List[List[bytes]] = []
    for i in range(n_clients):
        cid = _client_id(seed, i)
        key = derive_session_key(FLEET_KEY, cid) if authenticated else None
        client_rounds = []
        for rnd in range(rounds):
            events = [
                make_event(
                    cid, EventSource.IDS,
                    f"e20.sig:{(i + rnd * 7 + j) % N_SIGNATURES:02d}",
                    base_t + rnd * 0.25 + j * 1e-3, rnd * per_batch + j,
                    severity=Asil.B)
                for j in range(per_batch)
            ]
            payload = encode_batch(rnd, events)
            if key is not None:
                payload = seal_payload(key, cid, payload)
            client_rounds.append(payload)
        payloads.append(client_rounds)
    return payloads


async def _drive_clients(port: int, payloads: List[List[bytes]],
                         per_batch: int, seed: int, authenticated: bool
                         ) -> tuple:
    clients = []
    for i in range(len(payloads)):
        cid = _client_id(seed, i)
        key = derive_session_key(FLEET_KEY, cid) if authenticated else None
        clients.append(VehicleClient(cid, port=port, session_key=key))
    await asyncio.gather(*(c.connect() for c in clients))

    async def one(client: VehicleClient, rounds: List[bytes]) -> None:
        for payload in rounds:
            await client.send_payload(payload, n_events=per_batch)
        await client.drain()

    t0 = time.perf_counter()
    await asyncio.gather(*(one(c, p) for c, p in zip(clients, payloads)))
    wall_s = time.perf_counter() - t0
    await asyncio.gather(*(c.close() for c in clients))
    return wall_s, clients


# ----------------------------------------------------------------------
# Cell 1: authentication overhead
# ----------------------------------------------------------------------
def auth_cell(
    authenticated: bool,
    seed: int = 0,
    n_clients: int = N_CLIENTS,
    rounds: int = ROUNDS,
    per_batch: int = PER_BATCH,
    num_workers: int = 2,
    config: ServiceConfig = BENCH_CONFIG,
) -> Dict[str, float]:
    """One throughput cell, plain or CMAC-authenticated end to end."""
    if authenticated:
        config = dataclasses.replace(config, fleet_key=FLEET_KEY)
    tmp = tempfile.mkdtemp(prefix="e20-auth-")
    try:
        async def main():
            svc = IngestService(num_workers, mode="process", root=tmp,
                                config=config)
            server = await serve(svc)
            try:
                wall_s, clients = await _drive_clients(
                    server.port,
                    _build_payloads(n_clients, rounds, per_batch, seed,
                                    authenticated),
                    per_batch, seed, authenticated)
            finally:
                worker_metrics = await server.stop()
            return svc, wall_s, clients, worker_metrics

        svc, wall_s, clients, worker_metrics = asyncio.run(main())
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    sent = sum(c.events_sent for c in clients)
    acked = sum(c.events_accepted for c in clients)
    if acked != sent:
        raise AssertionError(
            f"E20 auth cell lost telemetry: {acked} acked of {sent} sent")
    rejected = sum(m.get("service_cmac_rejected", 0.0)
                   for m in worker_metrics)
    if rejected:
        raise AssertionError(
            f"E20 auth cell: {rejected:.0f} honest batches CMAC-rejected")
    rtts = sorted(r for c in clients for r in c.rtts_s)
    return {
        "authenticated": float(authenticated),
        "clients": float(n_clients),
        "events": float(sent),
        "wall_s": wall_s,
        "eps": sent / wall_s if wall_s > 0 else 0.0,
        "p99_ms": rtts[max(0, int(len(rtts) * 0.99) - 1)] * 1e3,
        "auth_failures": svc.metrics()["auth_failures"],
    }


def overhead_cells(seed: int = 0, **kw) -> Dict[str, object]:
    """Plain vs authenticated throughput; overhead is relative eps loss."""
    plain = auth_cell(False, seed=seed, **kw)
    authed = auth_cell(True, seed=seed, **kw)
    overhead = (1.0 - authed["eps"] / plain["eps"]) if plain["eps"] else 0.0
    return {"plain": plain, "authenticated": authed,
            "overhead_frac": overhead}


# ----------------------------------------------------------------------
# Cell 2: quota fencing (1 hostile flooder vs N honest clients)
# ----------------------------------------------------------------------
def quota_cell(
    seed: int = 0,
    n_honest: int = 64,
    rounds: int = 32,
    per_batch: int = PER_BATCH,
    hostile_factor: int = 4,
    repeats: int = 5,
    config: ServiceConfig = BENCH_CONFIG,
) -> Dict[str, float]:
    """Honest fleet with and without one hostile flooder under the
    per-client byte quota.

    The bucket is sized so each honest client's whole run fits in its
    burst (honest traffic is never throttled -- asserted), while the
    hostile client ships ``hostile_factor``x that volume as fast as
    credits return: everything past its burst is hard-refused and the
    refusal threshold disconnects it.  Reports honest goodput in both
    runs and their ratio (the >= 0.95 acceptance), plus the enforcement
    counters.  Each arm runs ``repeats`` times, interleaved
    base/attack, and the goodput ratio is the *median of the paired
    per-iteration ratios*: pairing adjacent runs cancels the host's
    monotone run-to-run drift (which would bias whichever arm ran
    later), and the median discards the occasional scheduler spike that
    a mean or a cross-arm min comparison would sample.  The headline
    eps figures are each arm's best (min-wall) run."""
    honest_payloads = _build_payloads(n_honest, rounds, per_batch, seed,
                                      authenticated=False)
    per_client_bytes = max(
        sum(len(p) for p in rounds_) for rounds_ in honest_payloads)
    # Tight burst: each honest client's blast just fits, so the flooder's
    # free ride (the bucket cannot tell a blast from a flood until the
    # burst is spent) is capped at ~1/n_honest of the admitted work.
    burst = float(per_client_bytes) * 1.05
    hostile_id = f"veh-{seed}-hostile"
    base_t = time.time() - 60.0
    hostile_payloads = []
    for rnd in range(rounds * hostile_factor):
        events = [make_event(hostile_id, EventSource.IDS,
                             f"e20.sig:{j % N_SIGNATURES:02d}",
                             base_t + rnd * 0.01 + j * 1e-4,
                             rnd * per_batch + j, severity=Asil.B)
                  for j in range(per_batch)]
        hostile_payloads.append(encode_batch(rnd, events))

    def run_once(with_hostile: bool):
        tmp = tempfile.mkdtemp(prefix="e20-quota-")
        try:
            async def main():
                svc = IngestService(
                    2, mode="process", root=tmp, config=config,
                    quota_bytes_per_s=burst / 4.0,
                    quota_burst_bytes=burst,
                    quota_disconnect_after=10,
                    initial_credits=16)
                server = await serve(svc)
                honest = [VehicleClient(_client_id(seed, i), port=server.port)
                          for i in range(n_honest)]
                await asyncio.gather(*(c.connect() for c in honest))
                hostile = None
                if with_hostile:
                    hostile = VehicleClient(hostile_id, port=server.port)
                    await hostile.connect()

                async def drive_honest(client, rounds_):
                    for payload in rounds_:
                        await client.send_payload(payload,
                                                  n_events=per_batch)
                    await client.drain()

                async def drive_hostile(client):
                    # Ignores SUPPRESS entirely; floods until the
                    # service cuts the connection.
                    try:
                        for payload in hostile_payloads:
                            await client.send_payload(payload,
                                                      n_events=per_batch)
                    except ConnectionError:
                        pass

                t0 = time.perf_counter()
                tasks = [drive_honest(c, p)
                         for c, p in zip(honest, honest_payloads)]
                if hostile is not None:
                    tasks.append(drive_hostile(hostile))
                await asyncio.gather(*tasks)
                wall_s = time.perf_counter() - t0
                await asyncio.gather(*(c.close() for c in honest))
                if hostile is not None:
                    await hostile.close()
                await server.stop()
                return svc, wall_s, honest, hostile

            return asyncio.run(main())
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # Interleave the arms: host drift (page cache, heap growth, noisy
    # neighbors) hits both equally instead of biasing whichever arm
    # runs second.
    base_runs, att_runs = [], []
    for _ in range(repeats):
        base_runs.append(run_once(False))
        att_runs.append(run_once(True))

    for _, _, honest_att, hostile in att_runs:
        honest_sent = sum(c.events_sent for c in honest_att)
        honest_acked = sum(c.events_accepted for c in honest_att)
        if honest_acked != honest_sent:
            raise AssertionError(
                f"E20 quota cell: honest fleet lost telemetry under attack "
                f"({honest_acked} acked of {honest_sent} sent)")
        if sum(c.batches_refused for c in honest_att):
            raise AssertionError(
                "E20 quota cell: an honest client was quota-refused")
    svc_att, wall_att, honest_att, hostile = min(
        att_runs, key=lambda r: r[1])
    _, wall_base, honest_base, _ = min(base_runs, key=lambda r: r[1])
    honest_sent = sum(c.events_sent for c in honest_att)
    honest_acked = sum(c.events_accepted for c in honest_att)
    if not (hostile.batches_refused or svc_att.quota_refused):
        raise AssertionError("E20 quota cell: the flood was never refused")
    # Honest event totals are identical in both arms (asserted above),
    # so the per-pair goodput ratio reduces to the wall-time ratio.
    pair_ratios = sorted(b[1] / a[1] for a, b in zip(att_runs, base_runs))
    goodput_ratio = pair_ratios[len(pair_ratios) // 2]
    goodput_base = (sum(c.events_accepted for c in honest_base)
                    / wall_base if wall_base > 0 else 0.0)
    goodput_att = honest_acked / wall_att if wall_att > 0 else 0.0
    return {
        "honest_clients": float(n_honest),
        "honest_events": float(honest_sent),
        "goodput_baseline_eps": goodput_base,
        "goodput_under_attack_eps": goodput_att,
        "goodput_ratio": goodput_ratio,
        "hostile_batches_sent": float(hostile.batches_sent),
        "hostile_batches_refused": float(hostile.batches_refused),
        "hostile_events_admitted": float(hostile.events_accepted),
        "quota_refused": svc_att.metrics()["quota_refused"],
        "quota_refused_bytes": svc_att.metrics()["quota_refused_bytes"],
        "quota_disconnects": svc_att.metrics()["quota_disconnects"],
    }


# ----------------------------------------------------------------------
# Cell 3: worker MTTR under SIGKILL, differential vs twin
# ----------------------------------------------------------------------
def _drive_mttr(root, kill_every_worker: bool,
                num_workers: int = MTTR_WORKERS,
                rounds: int = MTTR_ROUNDS,
                n_clients: int = MTTR_CLIENTS,
                per_batch: int = 6,
                config: Optional[ServiceConfig] = None):
    """Deterministically drive a process-mode service (injected wall
    clock, one flush per round -- identical handoff grouping across
    runs), SIGKILLing every worker once mid-run when asked.  Returns
    (acked_batches, mttr_s_per_worker, frontend_metrics)."""
    config = config or ServiceConfig(max_lateness_s=7200.0,
                                     snapshot_every_pumps=4,
                                     fleet_key=FLEET_KEY)
    clk = [1000.0]
    svc = IngestService(num_workers, mode="process", root=root,
                        config=config, clock=lambda: clk[0])
    conns = [svc.open_conn(f"veh-m{i}") for i in range(n_clients)]
    keys = {c.client_id: derive_session_key(FLEET_KEY, c.client_id)
            for c in conns}
    kill_round = rounds // 2
    acked = 0
    mttrs: List[float] = []
    for rnd in range(rounds):
        clk[0] += 1.0
        for conn in conns:
            events = [make_event(conn.client_id, EventSource.IDS,
                                 f"e20.sig:{j % 8:02d}",
                                 900.0 + rnd + j * 1e-3,
                                 rnd * per_batch + j, severity=Asil.B)
                      for j in range(per_batch)]
            payload = seal_payload(keys[conn.client_id], conn.client_id,
                                   encode_batch(rnd, events))
            if not svc.route(conn, payload):
                raise AssertionError("E20 MTTR cell: unexpected refusal")
        svc.flush()
        if kill_every_worker and rnd == kill_round:
            t0 = time.perf_counter()
            for shard in range(num_workers):
                svc.sigkill_worker(shard)
            if svc.check_workers() != num_workers:
                raise AssertionError("supervisor missed a dead worker")
            while svc.inflight_batches():
                acked += len(svc.poll_completions(timeout=0.05))
            mttrs.append(time.perf_counter() - t0)
        acked += len(svc.poll_completions(timeout=0.01))
    deadline = time.monotonic() + 120.0
    while (svc.buffered() or svc.inflight_batches()) \
            and time.monotonic() < deadline:
        svc.flush()
        acked += len(svc.poll_completions(timeout=0.01))
    svc.audit_conservation()
    metrics = svc.metrics()
    svc.drain_and_close()
    return acked, mttrs, metrics


def mttr_cell(seed: int = 0) -> Dict[str, float]:
    """Kill every worker once under live load; report MTTR and prove the
    restart was invisible (byte-identical differential, zero lost ACKs).
    """
    tmp = tempfile.mkdtemp(prefix="e20-mttr-")
    try:
        killed_root = os.path.join(tmp, "killed")
        twin_root = os.path.join(tmp, "twin")
        acked, mttrs, metrics = _drive_mttr(killed_root, True)
        twin_acked, _, twin_metrics = _drive_mttr(twin_root, False)
        expected = MTTR_ROUNDS * MTTR_CLIENTS
        if acked != expected or twin_acked != expected:
            raise AssertionError(
                f"E20 MTTR cell lost ACKs: {acked} vs twin {twin_acked} "
                f"(expected {expected})")
        if metrics["events_acked"] != twin_metrics["events_acked"]:
            raise AssertionError("E20 MTTR cell: admitted-event divergence")
        identical = 1.0
        for shard in range(MTTR_WORKERS):
            a_dir = worker_root(killed_root, shard)
            b_dir = worker_root(twin_root, shard)
            segs_a = sorted(a_dir.rglob("seg-*.log"))
            segs_b = sorted(b_dir.rglob("seg-*.log"))
            if [p.relative_to(a_dir) for p in segs_a] != \
                    [p.relative_to(b_dir) for p in segs_b]:
                identical = 0.0
            elif any(a.read_bytes() != b.read_bytes()
                     for a, b in zip(segs_a, segs_b)):
                identical = 0.0
            if recover_worker(killed_root, shard).analytics_snapshot() != \
                    recover_worker(twin_root, shard).analytics_snapshot():
                identical = 0.0
        if not identical:
            raise AssertionError(
                "E20 MTTR cell: restarted run diverged from its twin")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "workers_killed": float(MTTR_WORKERS),
        "acked_batches": float(acked),
        "acks_lost": float(expected - acked),
        "mttr_mean_s": sum(mttrs) / len(mttrs),
        "mttr_max_s": max(mttrs),
        "worker_restarts": metrics["worker_restarts"],
        "handoffs_resubmitted": metrics["handoffs_resubmitted"],
        "duplicate_reports": metrics["duplicate_reports"],
        "byte_identical": identical,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def all_cells(seed: int = 0, n_clients: int = N_CLIENTS,
              rounds: int = ROUNDS) -> Dict[str, object]:
    return {
        "overhead": overhead_cells(seed=seed, n_clients=n_clients,
                                   rounds=rounds),
        "quota": quota_cell(seed=seed),
        "mttr": mttr_cell(seed=seed),
    }


def run(seed: int = 0, n_clients: int = N_CLIENTS,
        rounds: int = ROUNDS) -> SweepResult:
    """The three hardening cells as one SweepResult table."""
    cells = all_cells(seed=seed, n_clients=n_clients, rounds=rounds)
    over = cells["overhead"]
    quota = cells["quota"]
    mttr = cells["mttr"]
    result = SweepResult(
        "E20: ingest hardening -- auth overhead, quota fencing, "
        "worker MTTR",
        ["cell", "eps_plain", "eps_authed", "overhead_frac",
         "goodput_ratio", "mttr_max_s", "byte_identical"],
    )
    result.add(cell="overhead",
               eps_plain=over["plain"]["eps"],
               eps_authed=over["authenticated"]["eps"],
               overhead_frac=over["overhead_frac"],
               goodput_ratio=float("nan"),
               mttr_max_s=float("nan"),
               byte_identical=float("nan"))
    result.add(cell="quota",
               eps_plain=quota["goodput_baseline_eps"],
               eps_authed=quota["goodput_under_attack_eps"],
               overhead_frac=float("nan"),
               goodput_ratio=quota["goodput_ratio"],
               mttr_max_s=float("nan"),
               byte_identical=float("nan"))
    result.add(cell="mttr",
               eps_plain=float("nan"),
               eps_authed=float("nan"),
               overhead_frac=float("nan"),
               goodput_ratio=float("nan"),
               mttr_max_s=mttr["mttr_max_s"],
               byte_identical=mttr["byte_identical"])
    return result


def write_bench_json(path, cells: Dict[str, object]) -> Dict[str, object]:
    """Write the machine-readable E20 perf record (``BENCH_E20.json``).

    ``cpu_count`` is recorded because the throughput cells timeslice on
    small hosts; the smoke gate self-arms its floors from the committed
    reference run either way."""
    payload = {
        "schema": "bench-e20/v1",
        "cpu_count": os.cpu_count() or 1,
        "cells": cells,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
