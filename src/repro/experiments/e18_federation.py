"""E18 -- Federated VSOC: cross-region detection latency vs shipping lag.

The paper's §7 centralized-policy loop, deployed honestly, is not one
process: an OEM VSOC runs per continent, and the fleet-wide view is
stitched from regional backends over a WAN.  E18 runs M regional SOCs
(each its own sharded ingest, correlators, and durable
:mod:`repro.soc.store` log) whose log-segment streams ship to a
:class:`~repro.soc.federation.FederationHub`, and measures what the
transport costs: **cross-region campaigns** are planted so that every
region sees *fewer* than ``k`` victims -- no region can fire alone; only
the hub's cross-region merge can -- and the sweep varies the shipping
lag to chart detection latency against it.  A partition/heal cell takes
one region offline mid-campaign: the hub's watermark gate (the price of
byte-deterministic verdicts) stalls the *global* merge until the
partition heals, and the cell records the catch-up.
``availability_cell`` prices the alternative under the *same* outage:
an ``optimistic`` hub pages provisionally at the no-partition twin's
latency and then reconciles -- the cell asserts the reconciled snapshot
is byte-identical to the strict gate's and that the amendment counters
tie out, and reports the latency ratios the smoke gate enforces.

All scenes are deterministic for a fixed seed (per-region
:class:`~repro.sim.RngStreams` derived by region name; channel delivery
schedules from their own seeded RNG).  ``hub_apply_microbench`` times
the hub's watermark-gated replay path -- the ``apply_eps`` figure gated
by ``benchmarks/e18_smoke.py`` against ``BENCH_E18.json``.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.sweep import SweepResult
from repro.core.safety import Asil
from repro.sim import RngStreams, Simulator
from repro.sim.rng import derive_seed
from repro.soc import (
    AttackCampaign,
    DurableStore,
    EventSource,
    FederationHub,
    FleetModel,
    FleetWorkloadGenerator,
    SecurityOperationsCenter,
    SegmentShipper,
    ShippingChannel,
    make_event,
)
from repro.soc.store import LogRecord

REGION_NAMES: Tuple[str, ...] = ("region-0", "region-1", "region-2")
#: Disjoint per-region vehicle-id spaces (``v{id_base + i:06d}``).
REGION_ID_STRIDE = 1_000_000

DURATION_S = 28.0
N_PER_REGION = 2_000
NUM_SHARDS = 2
K = 3
SHIP_TICK_S = 0.25
#: Shipping lags swept by :func:`run` (seconds, one-way).
LAG_GRID: Tuple[float, ...] = (0.0, 1.0, 2.0, 5.0)

_CAMPAIGN_KINDS = (
    (EventSource.IDS, {"can_id": 0x0C9, "detector": "spec"}),
    (EventSource.DIAG, {"nrc": 0x35}),
    (EventSource.V2X, {"reason": "teleport"}),
)


def cross_region_campaigns(
    rng: RngStreams,
    region_names: Sequence[str],
    n_per_region: int,
    per_region_targets: int = 2,
    n_campaigns: int = 3,
    start_s: float = 4.0,
    spread_duration_s: float = 8.0,
) -> Dict[str, List[AttackCampaign]]:
    """Plant class-breaks that *straddle* regions: each campaign keeps
    the same signature everywhere but targets only ``per_region_targets``
    vehicles per region -- below ``k``, so no regional correlator can
    fire and the hub's cross-region stitch is the only detector.
    Returns the per-region campaign lists (same signatures, disjoint
    region-local target sets)."""
    picker = rng.get("soc.federation.campaigns")
    out: Dict[str, List[AttackCampaign]] = {r: [] for r in region_names}
    for i in range(n_campaigns):
        source, extra = _CAMPAIGN_KINDS[i % len(_CAMPAIGN_KINDS)]
        for region_index, region in enumerate(region_names):
            base = region_index * REGION_ID_STRIDE
            indices = picker.sample(range(n_per_region), per_region_targets)
            out[region].append(AttackCampaign(
                name=f"xr-campaign-{i}",
                source=source,
                start_s=start_s + 2.0 * i,
                targets=tuple(FleetModel.vehicle_id(base + j)
                              for j in indices),
                rate_per_s=max(0.5, per_region_targets / spread_duration_s),
                **extra,
            ))
    return out


@dataclass
class RegionRuntime:
    """One region's full stack plus its shipping leg."""

    name: str
    fleet: FleetModel
    center: SecurityOperationsCenter
    generator: FleetWorkloadGenerator
    store: DurableStore
    channel: ShippingChannel
    shipper: SegmentShipper


@dataclass
class FederatedScene:
    """M regions + hub on one simulation kernel.

    The ship driver runs each :data:`SHIP_TICK_S` at ``priority=1`` --
    strictly after every region's same-tick SOC pump, so a tick's log
    records (batches *and* the pump marker) are on disk before the
    shipper tails them.
    """

    sim: Simulator
    hub: FederationHub
    regions: Dict[str, RegionRuntime]
    ship_tick_s: float = SHIP_TICK_S
    root: Optional[Path] = None
    _owns_root: bool = False
    campaign_signatures: Set[str] = field(default_factory=set)

    def start(self) -> None:
        for runtime in self.regions.values():
            runtime.center.start()
            runtime.generator.start()
        self.sim.schedule(self.ship_tick_s, self._ship_tick, priority=1)

    def _ship_tick(self) -> None:
        now = self.sim.now
        for runtime in self.regions.values():
            runtime.shipper.pump(now)
        for runtime in self.regions.values():
            for blob in runtime.channel.deliver(now):
                self.hub.receive(blob)
        self.hub.advance(now)
        self.sim.schedule(self.ship_tick_s, self._ship_tick, priority=1)

    def run(self, duration_s: float) -> None:
        self.sim.run_until(duration_s)
        self.finish()

    def finish(self) -> None:
        """End-of-run flush: drain every region (audited pumps), ship
        the remainder, deliver everything still on the wire, and lift
        the hub's frontier gate (all logs are complete)."""
        for runtime in self.regions.values():
            runtime.center.final_drain()
        now = self.sim.now
        for runtime in self.regions.values():
            runtime.shipper.pump(now)
        for runtime in self.regions.values():
            for blob in runtime.channel.deliver(float("inf")):
                self.hub.receive(blob)
        self.hub.finalize(now)

    def detection_latencies(self) -> List[float]:
        """Seconds from each planted campaign's ``detect_time`` to the
        sim time its verdict was applied at the hub."""
        return [applied_at - detection.detect_time
                for applied_at, detection in self.hub.detection_log
                if detection.signature in self.campaign_signatures]

    def close(self) -> None:
        for runtime in self.regions.values():
            runtime.store.close()
        if self._owns_root and self.root is not None:
            shutil.rmtree(self.root, ignore_errors=True)


def build_federated_scene(
    seed: int = 0,
    region_names: Sequence[str] = REGION_NAMES,
    n_per_region: int = N_PER_REGION,
    num_shards: int = NUM_SHARDS,
    lag_s: float = 0.0,
    jitter_s: float = 0.0,
    duplicate_p: float = 0.0,
    outages: Optional[Dict[str, Sequence[Tuple[float, float]]]] = None,
    root=None,
    max_batch_records: int = 256,
    columnar: bool = False,
    consistency: str = "strict",
    staleness_budget_s: float = 2.0,
) -> FederatedScene:
    """Wire M regional SOCs, their shipping legs, and the hub.

    ``columnar`` switches every regional center *and* the hub's replay
    apply onto the columnar batch path; log bytes, shipments, and the
    hub's final state are byte-identical either way (the federation
    columnar tests pin it), so it is purely a throughput knob.

    Every region gets its own derived RNG universe, a disjoint
    vehicle-id space (``id_base``), a :class:`DurableStore` under
    ``root``, and a seeded :class:`ShippingChannel` with the given lag /
    jitter / duplication; ``outages`` maps region name to link-down
    windows.  Scene-level determinism: same seed, same verdicts --
    regardless of the channel parameters (the differential tests hold
    the hub to that).
    """
    owns_root = root is None
    base = Path(root) if root is not None else Path(tempfile.mkdtemp())
    sim = Simulator()
    rng = RngStreams(seed)
    per_region_campaigns = cross_region_campaigns(
        rng, region_names, n_per_region)

    profile: Optional[Dict[str, object]] = None
    regions: Dict[str, RegionRuntime] = {}
    signatures: Set[str] = set()
    for index, name in enumerate(region_names):
        region_rng = RngStreams(derive_seed(seed, f"e18.{name}"))
        campaigns = per_region_campaigns[name]
        signatures |= {c.signature for c in campaigns}
        fleet = FleetModel(n_per_region, campaigns,
                           id_base=index * REGION_ID_STRIDE)
        store = DurableStore(base / name)
        center = SecurityOperationsCenter(
            sim, fleet, k=K, respond=False, num_shards=num_shards,
            store=store, columnar=columnar,
        )
        generator = FleetWorkloadGenerator(sim, region_rng, fleet,
                                           center.pipeline)
        channel = ShippingChannel(
            random.Random(derive_seed(seed, f"e18.chan.{name}")),
            lag_s=lag_s, jitter_s=jitter_s, duplicate_p=duplicate_p,
            outages=(outages or {}).get(name, ()),
        )
        shipper = SegmentShipper(name, store.log, channel,
                                 max_batch_records=max_batch_records)
        regions[name] = RegionRuntime(
            name=name, fleet=fleet, center=center, generator=generator,
            store=store, channel=channel, shipper=shipper)
        if profile is None:
            profile = center.federation_profile()

    hub = FederationHub.from_profile(list(region_names), profile,
                                     columnar=columnar,
                                     consistency=consistency,
                                     staleness_budget_s=staleness_budget_s)
    return FederatedScene(sim=sim, hub=hub, regions=regions,
                          root=base, _owns_root=owns_root,
                          campaign_signatures=signatures)


# ----------------------------------------------------------------------
# The sweep: detection latency vs shipping lag
# ----------------------------------------------------------------------

def _lag_cell(seed: int, lag_s: float, jitter_s: float, duplicate_p: float,
              duration_s: float, n_per_region: int) -> Dict[str, float]:
    scene = build_federated_scene(
        seed=seed, lag_s=lag_s, jitter_s=jitter_s, duplicate_p=duplicate_p,
        n_per_region=n_per_region)
    try:
        scene.start()
        scene.run(duration_s)
        latencies = scene.detection_latencies()
        truth = scene.campaign_signatures
        flagged = scene.hub.flagged_signatures()
        shipped = sum(r.shipper.records_shipped
                      for r in scene.regions.values())
        shipments = sum(r.shipper.shipments_sent
                        for r in scene.regions.values())
        hub_metrics = scene.hub.metrics()
        return {
            "lag_s": lag_s,
            "jitter_s": jitter_s,
            "duplicate_p": duplicate_p,
            "campaigns_detected": float(len(flagged & truth)),
            "campaigns_planted": float(len(truth)),
            "mean_latency_s": (sum(latencies) / len(latencies)
                               if latencies else float("nan")),
            "max_latency_s": max(latencies) if latencies else float("nan"),
            "records_shipped": float(shipped),
            "shipments": float(shipments),
            "records_applied": hub_metrics["records_applied"],
            "receiver_duplicates": hub_metrics["receiver_duplicates"],
            "stalled_rounds": hub_metrics["stalled_rounds"],
            "unapplied": float(scene.hub.unapplied()),
        }
    finally:
        scene.close()


def run(
    seed: int = 0,
    lags: Sequence[float] = LAG_GRID,
    duration_s: float = DURATION_S,
    n_per_region: int = N_PER_REGION,
    jitter_s: float = 0.1,
    duplicate_p: float = 0.02,
) -> SweepResult:
    """Shipping-lag sweep over the federated topology.

    Every cell plants the same cross-region campaigns (sub-``k`` per
    region) and reports how long the fleet-wide verdict took to surface
    at the hub.  Jitter and duplication are on by default -- the hub's
    verdicts must not care, only the latency may.
    """
    result = SweepResult(
        "E18: federated VSOC -- cross-region detection latency vs "
        "shipping lag",
        ["lag_s", "detected", "planted", "mean_latency_s", "max_latency_s",
         "records_shipped", "shipments", "duplicates", "stalled_rounds"],
    )
    for lag_s in lags:
        cell = _lag_cell(seed, lag_s, jitter_s, duplicate_p, duration_s,
                         n_per_region)
        result.add(
            lag_s=lag_s,
            detected=cell["campaigns_detected"],
            planted=cell["campaigns_planted"],
            mean_latency_s=cell["mean_latency_s"],
            max_latency_s=cell["max_latency_s"],
            records_shipped=cell["records_shipped"],
            shipments=cell["shipments"],
            duplicates=cell["receiver_duplicates"],
            stalled_rounds=cell["stalled_rounds"],
        )
    return result


def summary(seed: int = 0, lags: Sequence[float] = LAG_GRID,
            duration_s: float = DURATION_S,
            n_per_region: int = N_PER_REGION) -> Dict[str, List[Dict[str, float]]]:
    """Plain-dict form of :func:`run` (the determinism tests pin this)."""
    result = run(seed=seed, lags=lags, duration_s=duration_s,
                 n_per_region=n_per_region)
    return {"rows": [dict(row) for row in result.rows]}


# ----------------------------------------------------------------------
# Partition / heal cell
# ----------------------------------------------------------------------

def partition_heal_cell(
    seed: int = 0,
    outage: Tuple[float, float] = (8.0, 16.0),
    partitioned_region: str = REGION_NAMES[-1],
    lag_s: float = 0.5,
    duration_s: float = DURATION_S,
    n_per_region: int = N_PER_REGION,
) -> Dict[str, float]:
    """One region's link down for ``outage`` -- squarely across the
    campaign window -- then healing.

    The watermark gate means the partition stalls the *global* merge
    (the hub cannot order other regions' records past the silent
    region's frontier), so detection latency for every campaign is
    dominated by the heal time: strict verdict determinism traded
    against availability, measured.  The cell also differentially
    checks that the healed run's verdict set equals the no-outage
    twin's -- an outage may only *delay* campaigns, never lose them.
    """
    twin = _lag_cell(seed, lag_s, 0.0, 0.0, duration_s, n_per_region)

    scene = build_federated_scene(
        seed=seed, lag_s=lag_s,
        outages={partitioned_region: (outage,)},
        n_per_region=n_per_region)
    try:
        scene.start()
        scene.run(duration_s)
        latencies = scene.detection_latencies()
        flagged = scene.hub.flagged_signatures()
        truth = scene.campaign_signatures
        if scene.hub.unapplied():
            raise AssertionError(
                "partition cell left unapplied records after heal")
        if (flagged & truth) != truth:
            raise AssertionError(
                "partition lost campaign verdicts the no-outage twin found")
        refused = scene.regions[partitioned_region].shipper.send_refused
        return {
            "outage_start_s": outage[0],
            "outage_end_s": outage[1],
            "lag_s": lag_s,
            "campaigns_detected": float(len(flagged & truth)),
            "campaigns_planted": float(len(truth)),
            "mean_latency_s": (sum(latencies) / len(latencies)
                               if latencies else float("nan")),
            "max_latency_s": max(latencies) if latencies else float("nan"),
            "twin_mean_latency_s": twin["mean_latency_s"],
            "sends_refused": float(refused),
            "stalled_rounds": scene.hub.metrics()["stalled_rounds"],
            "verdicts_match_twin": 1.0,
        }
    finally:
        scene.close()


# ----------------------------------------------------------------------
# Determinism vs availability: strict and optimistic under one outage
# ----------------------------------------------------------------------

def _outage_run(
    seed: int,
    consistency: str,
    outage: Optional[Tuple[float, float]],
    partitioned_region: str,
    lag_s: float,
    staleness_budget_s: float,
    duration_s: float,
    n_per_region: int,
) -> Dict[str, object]:
    """One federated run (optionally partitioned) in one consistency
    mode; returns latency stats, the canonical analytic snapshot, and
    the hub's amendment counters."""
    scene = build_federated_scene(
        seed=seed, lag_s=lag_s,
        outages=({partitioned_region: (outage,)} if outage else None),
        n_per_region=n_per_region, consistency=consistency,
        staleness_budget_s=staleness_budget_s)
    try:
        scene.start()
        scene.run(duration_s)
        latencies = scene.detection_latencies()
        metrics = scene.hub.metrics()
        return {
            "mean_latency_s": (sum(latencies) / len(latencies)
                               if latencies else float("nan")),
            "max_latency_s": max(latencies) if latencies else float("nan"),
            "detected": float(len(scene.hub.flagged_signatures()
                                  & scene.campaign_signatures)),
            "planted": float(len(scene.campaign_signatures)),
            "snapshot": json.dumps(scene.hub.analytics_snapshot(),
                                   sort_keys=True),
            "metrics": metrics,
            "unapplied": float(scene.hub.unapplied()),
        }
    finally:
        scene.close()


def availability_cell(
    seed: int = 0,
    outage: Tuple[float, float] = (8.0, 16.0),
    partitioned_region: str = REGION_NAMES[-1],
    lag_s: float = 0.5,
    staleness_budget_s: float = 1.0,
    duration_s: float = DURATION_S,
    n_per_region: int = N_PER_REGION,
) -> Dict[str, float]:
    """The determinism-vs-availability cell: one outage schedule, three
    runs.

    1. **Twin** -- no partition, strict mode: the latency floor.
    2. **Strict under partition** -- the watermark gate stalls the
       global merge until heal; latency is dominated by the outage.
    3. **Optimistic under partition** -- after ``staleness_budget_s`` of
       stall the hub rides ahead provisionally and reconciles at heal.

    The cell *asserts* the mode contract before reporting numbers: the
    optimistic run's reconciled snapshot must be byte-identical to the
    strict run's (same shipments, so same canonical order), no campaign
    may be lost in any run, and every provisional verdict must be
    classified by exactly one amendment.  ``latency_ratio`` --
    optimistic-under-partition mean latency over the twin's -- is the
    CI-gated availability figure (strict's same ratio is reported
    alongside as the price of the gate).
    """
    twin = _outage_run(seed, "strict", None, partitioned_region, lag_s,
                       staleness_budget_s, duration_s, n_per_region)
    strict = _outage_run(seed, "strict", outage, partitioned_region,
                         lag_s, staleness_budget_s, duration_s,
                         n_per_region)
    optimistic = _outage_run(seed, "optimistic", outage,
                             partitioned_region, lag_s,
                             staleness_budget_s, duration_s, n_per_region)
    if optimistic["snapshot"] != strict["snapshot"]:
        raise AssertionError(
            "optimistic reconciliation diverged from the strict gate")
    for label, cell in (("twin", twin), ("strict", strict),
                        ("optimistic", optimistic)):
        if cell["unapplied"]:
            raise AssertionError(f"{label} run left unapplied records")
        if cell["detected"] != cell["planted"]:
            raise AssertionError(f"{label} run lost campaign verdicts")
    om = optimistic["metrics"]
    classified = (om["amendments_confirmed"] + om["amendments_amended"]
                  + om["amendments_retracted"])
    if classified != om["provisional_verdicts"]:
        raise AssertionError(
            "amendment counters do not tie out against provisional "
            "verdicts")
    if om["episodes"] < 1.0:
        raise AssertionError(
            "the outage never opened an optimistic episode -- the cell "
            "is not measuring what it claims")
    return {
        "outage_start_s": outage[0],
        "outage_end_s": outage[1],
        "lag_s": lag_s,
        "staleness_budget_s": staleness_budget_s,
        "twin_mean_latency_s": twin["mean_latency_s"],
        "strict_mean_latency_s": strict["mean_latency_s"],
        "optimistic_mean_latency_s": optimistic["mean_latency_s"],
        "latency_ratio": (optimistic["mean_latency_s"]
                          / twin["mean_latency_s"]),
        "strict_latency_ratio": (strict["mean_latency_s"]
                                 / twin["mean_latency_s"]),
        "episodes": om["episodes"],
        "reconciliations": om["reconciliations"],
        "provisional_verdicts": om["provisional_verdicts"],
        "amendments_confirmed": om["amendments_confirmed"],
        "amendments_amended": om["amendments_amended"],
        "amendments_retracted": om["amendments_retracted"],
        "late_verdicts": om["late_verdicts"],
        "snapshots_identical": 1.0,
    }


# ----------------------------------------------------------------------
# Hub apply microbench (the CI-gated throughput figure)
# ----------------------------------------------------------------------

def _synthetic_region_records(
    region_index: int, n_batches: int, batch_size: int,
    num_shards: int, n_signatures: int, mark_every: int, tick_s: float,
) -> List[LogRecord]:
    """One region's worth of log records: ``batch_size``-event batches
    round-robined over shards, a pump marker every ``mark_every``
    batches, dispatch times on a shared tick grid so regions tie (the
    hub's common case)."""
    records: List[LogRecord] = []
    seq = 0
    event_no = 0
    for b in range(n_batches):
        dispatch_t = (b // num_shards + 1) * tick_s
        events = []
        for _ in range(batch_size):
            event_no += 1
            vid = f"v{region_index * REGION_ID_STRIDE + event_no % 9973:06d}"
            events.append(make_event(
                vid, EventSource.IDS,
                f"bench.sig:{event_no % n_signatures:03d}",
                dispatch_t - tick_s * 0.5, event_no, severity=Asil.C))
        seq += 1
        records.append(LogRecord(seq=seq, kind="batch",
                                 dispatch_t=dispatch_t,
                                 shard=b % num_shards,
                                 events=tuple(events)))
        if (b + 1) % mark_every == 0:
            seq += 1
            records.append(LogRecord(seq=seq, kind="mark",
                                     dispatch_t=dispatch_t,
                                     pump_no=(b + 1) // mark_every))
    return records


def hub_apply_microbench(
    n_events: int = 24_000,
    n_regions: int = 3,
    num_shards: int = 2,
    batch_size: int = 64,
    n_signatures: int = 64,
    mark_every: int = 8,
) -> Dict[str, float]:
    """Time the hub's watermark-gated replay on a synthetic multi-region
    stream (transport excluded -- the store bench already prices the
    codec).  ``k`` is unreachable so every record pays full window
    maintenance and every marker pays a merge over all replica engines;
    ``apply_eps`` is the CI-gated figure in ``BENCH_E18.json``.
    """
    per_region_batches = n_events // (n_regions * batch_size)
    hub = FederationHub(
        [f"bench-r{i}" for i in range(n_regions)], num_shards,
        window_s=4.0, k=1_000_000, dedup_window_s=0.0,
        max_lateness_s=1e12)
    total_events = 0
    for index, region in enumerate(hub.regions):
        records = _synthetic_region_records(
            index, per_region_batches, batch_size, num_shards,
            n_signatures, mark_every, tick_s=0.25)
        receiver = hub.receivers[region]
        for record in records:
            receiver.buffer[record.seq] = record
            if record.kind == "batch":
                total_events += len(record.events)

    t0 = time.perf_counter()
    applied = hub.finalize(0.0)
    wall_s = time.perf_counter() - t0
    assert hub.unapplied() == 0
    return {
        "events": float(total_events),
        "records": float(applied),
        "regions": float(n_regions),
        "num_shards": float(num_shards),
        "apply_eps": total_events / wall_s if wall_s > 0 else 0.0,
        "apply_rps": applied / wall_s if wall_s > 0 else 0.0,
        "pumps_applied": float(hub.pumps_applied),
    }


def write_bench_json(
    path,
    lag_cells: List[Dict[str, float]],
    partition: Dict[str, float],
    hub_apply: Dict[str, float],
    availability: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Write the machine-readable E18 perf record (``BENCH_E18.json``)."""
    payload = {
        "schema": "bench-e18/v2",
        "duration_s": DURATION_S,
        "lag_cells": lag_cells,
        "partition": partition,
        "hub_apply": hub_apply,
    }
    if availability is not None:
        payload["availability"] = availability
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
