"""Experiment drivers E1..E20.

The paper has no tables or figures (it is an invited survey); DESIGN.md §3
derives one quantitative experiment from each of its claims.  Every module
here exposes ``run(...) -> SweepResult`` (or a small set of such
functions) used by both ``benchmarks/`` and the examples.  All drivers are
seeded and deterministic.
"""

from repro.experiments import (
    e01_gateway,
    e02_ids,
    e03_realtime,
    e04_sidechannel,
    e05_classbreak,
    e06_v2x_density,
    e07_privacy,
    e08_access,
    e09_extensibility,
    e10_ota,
    e11_tradeoff,
    e12_sensors,
    e13_secureboot,
    e14_verification,
    e15_diagnostics,
    e16_misbehavior,
    e17_soc,
    e18_federation,
    e19_service,
    e20_hardening,
)

ALL_EXPERIMENTS = {
    "E1": e01_gateway.run,
    "E2": e02_ids.run,
    "E3": e03_realtime.run,
    "E4": e04_sidechannel.run,
    "E5": e05_classbreak.run,
    "E6": e06_v2x_density.run,
    "E7": e07_privacy.run,
    "E8": e08_access.run,
    "E9": e09_extensibility.run,
    "E10": e10_ota.run,
    "E11": e11_tradeoff.run,
    "E12": e12_sensors.run,
    "E13": e13_secureboot.run,
    "E14": e14_verification.run,
    "E15": e15_diagnostics.run,
    "E16": e16_misbehavior.run,
    "E17": e17_soc.run,
    "E18": e18_federation.run,
    "E19": e19_service.run,
    "E20": e20_hardening.run,
}

__all__ = ["ALL_EXPERIMENTS"] + [f"e{i:02d}" for i in range(1, 21)]
