"""Command-line experiment runner.

Run any experiment (or all of them) and print its results table::

    python -m repro.experiments E1
    python -m repro.experiments E4 --seed 7
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run autosec experiments E1..E17 and print their tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (E1..E17, case-insensitive) or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    args = parser.parse_args(argv)

    requested = args.experiment.upper()
    if requested == "ALL":
        ids = sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    elif requested in ALL_EXPERIMENTS:
        ids = [requested]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])))} or 'all'"
        )

    for exp_id in ids:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[exp_id](seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.to_table())
        print(f"[{exp_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
