"""E4 -- Side-channel key extraction vs countermeasure (§4.2).

CPA against the software AES under swept measurement noise, with and
without first-order masking.  Expected shape: traces-to-recovery grows
with noise for the unprotected implementation and recovery *never*
happens (within the budget) for the masked one -- the paper's argument
for hardened secure-processing blocks.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.analysis.sweep import SweepResult
from repro.attacks import CpaAttack
from repro.crypto.aes import AES, MaskedAES
from repro.physical import PowerTraceModel

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def traces_to_recover(engine_kind: str, noise_std: float, seed: int,
                      max_traces: int = 1200, step: int = 100) -> Optional[int]:
    """Smallest trace count on the grid that recovers the full key."""
    rng = random.Random(seed)
    if engine_kind == "masked":
        engine = MaskedAES(KEY, rng=random.Random(seed + 1))
    else:
        engine = AES(KEY)
    model = PowerTraceModel(engine, noise_std=noise_std, rng=rng)
    attack = CpaAttack(model)
    return attack.traces_to_success(KEY, max_traces=max_traces, step=step,
                                    start=step)


def run(seed: int = 0, max_traces: int = 1200) -> SweepResult:
    """Noise x implementation sweep."""
    result = SweepResult(
        "E4: CPA traces-to-key-recovery",
        ["implementation", "noise_std", "traces_needed", "recovered"],
    )
    for engine_kind in ("unprotected", "masked"):
        for noise in (0.5, 1.0, 2.0, 4.0):
            needed = traces_to_recover(engine_kind, noise, seed,
                                       max_traces=max_traces)
            result.add(
                implementation=engine_kind, noise_std=noise,
                traces_needed=needed if needed is not None else f">{max_traces}",
                recovered=needed is not None,
            )
    return result
