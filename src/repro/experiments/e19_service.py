"""E19 -- Network ingest service: throughput scaling past the GIL (§7).

E17/E18 made the *analytics* fast (columnar correlate at millions of
events per second in-engine) but every event still entered the VSOC
through single-process Python calls.  E19 measures the front door the
paper's §7 centralized-policy direction actually requires: the
:mod:`repro.soc.service` asyncio TCP server, fed by hundreds-to-
thousands of concurrent :class:`~repro.soc.service.VehicleClient`
connections, fanned out to 1/2/4 shard worker *processes*.

Per cell (worker count), the driver reports:

- ``eps`` -- sustained acknowledged ingest throughput: events whose ACK
  (sent only after the owning worker *dispatched* them through its
  pipeline + correlator + durable log) returned, divided by wall time;
- ``p50_ms`` / ``p99_ms`` -- client-observed ACK round-trip latency,
  i.e. honest end-to-end ingest latency including framing, routing,
  queue handoff, admission, correlation, and the log write;
- ``speedup`` -- eps relative to the 1-worker cell of the same run.

Methodology notes (they are what make the numbers mean something):

- **Clients pre-serialize.**  Every BATCH payload is encoded before the
  clock starts, so the measurement is of the *service* (frontend
  routing + worker decode/correlate/log), not of client-side
  ``json.dumps``.
- **The clock covers sends through final ACK** -- throughput is
  "sustained acked", not "bytes fired into a socket".
- **Conservation is asserted, not assumed**: every cell requires
  acked == sent events and frontend/worker counter tie-out, so a cell
  that quietly dropped telemetry fails the experiment rather than
  posting a flattering number.

Scaling expectation: the frontend never JSON-decodes an event, so with
``N`` worker processes on >= ``N+1`` free cores the decode+correlate+log
cost parallelizes; the acceptance target is >=3x sustained eps at 4
workers vs 1.  On fewer cores the extra processes just timeslice one
CPU, so ``benchmarks/e19_smoke.py`` arms its scaling gate only where
the host can physically express the speedup (``cpu_count`` is recorded
in ``BENCH_E19.json`` either way).

Unlike E1..E17 this driver measures wall-clock behavior of a live
multiprocess service, so rows are host-dependent by design (like the
micro-benchmarks E17/E18 keep out of their SweepResults); the
deterministic correctness properties of the same stack are pinned in
``tests/test_soc_service.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepResult
from repro.core.safety import Asil
from repro.soc import EventSource, ServiceConfig, make_event
from repro.soc.service import IngestService, VehicleClient, encode_batch, serve

DEFAULT_WORKERS: Tuple[int, ...] = (1, 2, 4)
N_CLIENTS = 100
ROUNDS = 6
PER_BATCH = 20
#: Benign signature catalog size: shared signatures make the correlator
#: do real campaign work (k co-occurrence fires), not just bookkeeping.
N_SIGNATURES = 32

#: Bench-cell analytic config: a network front door's deep queue, and a
#: lateness bound wide enough that interleaving across hundreds of
#: independent client timelines never trips the hygiene drop (the cells
#: assert acked == sent; hygiene behavior has its own tests).
BENCH_CONFIG = ServiceConfig(max_lateness_s=120.0, snapshot_every_pumps=0,
                             queue_capacity=1 << 17, batch_size=512)


def _build_payloads(n_clients: int, rounds: int, per_batch: int,
                    seed: int) -> List[List[bytes]]:
    """Pre-encoded BATCH payloads per client (serialize once, before the
    clock starts).  Event times sit on one shared recent timeline so
    cross-client interleaving stays inside the lateness bound."""
    base_t = time.time() - 60.0
    payloads: List[List[bytes]] = []
    for i in range(n_clients):
        client_rounds = []
        for rnd in range(rounds):
            events = [
                make_event(
                    f"veh-{seed}-{i:04d}", EventSource.IDS,
                    f"e19.sig:{(i + rnd * 7 + j) % N_SIGNATURES:02d}",
                    base_t + rnd * 0.25 + j * 1e-3, rnd * per_batch + j,
                    severity=Asil.B)
                for j in range(per_batch)
            ]
            client_rounds.append(encode_batch(rnd, events))
        payloads.append(client_rounds)
    return payloads


async def _drive_clients(port: int, payloads: List[List[bytes]],
                         per_batch: int
                         ) -> Tuple[float, List[VehicleClient]]:
    """Connect every client, fire all pre-built batches under credit
    flow control, wait for every ACK; returns (wall_s, clients)."""
    clients = [VehicleClient(f"veh-c{i:04d}", port=port)
               for i in range(len(payloads))]
    await asyncio.gather(*(c.connect() for c in clients))

    async def one(client: VehicleClient, rounds: List[bytes]) -> None:
        for payload in rounds:
            await client.send_payload(payload, n_events=per_batch)
        await client.drain()

    t0 = time.perf_counter()
    await asyncio.gather(*(one(c, p) for c, p in zip(clients, payloads)))
    wall_s = time.perf_counter() - t0
    await asyncio.gather(*(c.close() for c in clients))
    return wall_s, clients


def service_cell(
    num_workers: int,
    seed: int = 0,
    n_clients: int = N_CLIENTS,
    rounds: int = ROUNDS,
    per_batch: int = PER_BATCH,
    mode: str = "process",
    root: Optional[str] = None,
    config: ServiceConfig = BENCH_CONFIG,
) -> Dict[str, float]:
    """One measured cell: ``n_clients`` concurrent connections through
    the asyncio frontend into ``num_workers`` shard workers."""
    tmp = None
    if root is None:
        tmp = tempfile.mkdtemp(prefix="e19-")
        root = tmp
    try:
        async def main():
            svc = IngestService(num_workers, mode=mode, root=root,
                                config=config)
            server = await serve(svc)
            try:
                wall_s, clients = await _drive_clients(
                    server.port,
                    _build_payloads(n_clients, rounds, per_batch, seed),
                    per_batch)
            finally:
                worker_metrics = await server.stop()
            return svc, wall_s, clients, worker_metrics

        svc, wall_s, clients, worker_metrics = asyncio.run(main())
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)

    sent = sum(c.events_sent for c in clients)
    acked = sum(c.events_accepted for c in clients)
    rtts = sorted(r for c in clients for r in c.rtts_s)
    if acked != sent:
        raise AssertionError(
            f"E19 cell lost telemetry: {acked} acked of {sent} sent")
    worker_in = sum(m.get("service_events_in", 0.0) for m in worker_metrics)
    worker_dispatched = sum(m.get("dispatched", 0.0) for m in worker_metrics)
    if worker_in != sent or worker_dispatched != acked:
        raise AssertionError(
            "E19 frontend/worker accounting mismatch: "
            f"sent={sent} worker_in={worker_in:.0f} "
            f"acked={acked} dispatched={worker_dispatched:.0f}")
    return {
        "workers": float(num_workers),
        "clients": float(n_clients),
        "batches": float(sum(c.batches_sent for c in clients)),
        "events": float(sent),
        "wall_s": wall_s,
        "eps": sent / wall_s if wall_s > 0 else 0.0,
        "p50_ms": rtts[len(rtts) // 2] * 1e3,
        "p99_ms": rtts[max(0, int(len(rtts) * 0.99) - 1)] * 1e3,
        "suppress_transitions": svc.metrics()["suppress_transitions"],
        "handoffs": svc.metrics()["handoffs_submitted"],
    }


def scaling_cells(
    seed: int = 0,
    workers: Sequence[int] = DEFAULT_WORKERS,
    n_clients: int = N_CLIENTS,
    rounds: int = ROUNDS,
    per_batch: int = PER_BATCH,
    mode: str = "process",
) -> List[Dict[str, float]]:
    """The worker-count sweep; each cell gains ``speedup`` vs the first."""
    cells = [service_cell(w, seed=seed, n_clients=n_clients, rounds=rounds,
                          per_batch=per_batch, mode=mode) for w in workers]
    base = cells[0]["eps"]
    for cell in cells:
        cell["speedup"] = cell["eps"] / base if base > 0 else 0.0
    return cells


def run(
    seed: int = 0,
    workers: Sequence[int] = DEFAULT_WORKERS,
    n_clients: int = N_CLIENTS,
    rounds: int = ROUNDS,
    per_batch: int = PER_BATCH,
    mode: str = "process",
) -> SweepResult:
    """Worker-count sweep as a SweepResult table (the E19 row format)."""
    result = SweepResult(
        "E19: network ingest service -- sustained eps + ACK p99 vs "
        "worker processes",
        ["workers", "clients", "events", "eps", "p50_ms", "p99_ms",
         "speedup"],
    )
    for cell in scaling_cells(seed=seed, workers=workers,
                              n_clients=n_clients, rounds=rounds,
                              per_batch=per_batch, mode=mode):
        result.add(workers=int(cell["workers"]),
                   clients=int(cell["clients"]),
                   events=int(cell["events"]),
                   eps=cell["eps"],
                   p50_ms=cell["p50_ms"],
                   p99_ms=cell["p99_ms"],
                   speedup=cell["speedup"])
    return result


def write_bench_json(path, cells: List[Dict[str, float]],
                     inline_cell: Optional[Dict[str, float]] = None
                     ) -> Dict[str, object]:
    """Write the machine-readable E19 perf record (``BENCH_E19.json``).

    ``cpu_count`` is recorded because the >=3x scaling acceptance is
    physically expressible only with enough cores; the smoke gate reads
    it back to decide whether the scaling gate is armed on this host."""
    payload = {
        "schema": "bench-e19/v1",
        "cpu_count": os.cpu_count() or 1,
        "n_clients": int(cells[0]["clients"]) if cells else 0,
        "cells": cells,
    }
    if inline_cell is not None:
        payload["inline_cell"] = inline_cell
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
