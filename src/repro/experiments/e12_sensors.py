"""E12 -- Sensor spoofing vs fusion plausibility gating (§4.1).

Four sensor attacks (GPS jump, GPS slow drift, TPMS fake blowout, LIDAR
phantom) against the fusion layer with gating on vs off.  "Success" means
the forged data influenced the fused output (position error, accepted
pressure, confirmed phantom); "detected" means the fusion layer raised an
anomaly.  Expected shape: gating kills the crude attacks (jump, instant
blowout, static phantom) and the *slow drift* survives -- the honest
residual-risk row.
"""

from __future__ import annotations

import math
import random
from typing import Dict

from repro.analysis.sweep import SweepResult
from repro.attacks import (
    GpsSpoofingAttack,
    LidarPhantomAttack,
    TpmsSpoofingAttack,
)
from repro.physical import (
    GpsSensor,
    LidarSensor,
    SensorFusion,
    TpmsSensor,
    Vehicle,
    VehicleState,
)

STEPS = 60
DT = 0.25


def _rig(defended: bool, seed: int):
    vehicle = Vehicle(VehicleState(speed=15.0))
    gps = GpsSensor(vehicle, noise_std=1.0, rng=random.Random(seed))
    tpms = TpmsSensor(rng=random.Random(seed + 1))
    lidar = LidarSensor(vehicle, rng=random.Random(seed + 2))
    fusion = SensorFusion(
        vehicle, gps, tpms=tpms, lidar=lidar,
        # "Undefended" = gates wide open.
        gps_gate_base=15.0 if defended else 1e9,
        tpms_max_rate_kpa_s=50.0 if defended else 1e12,
        lidar_persistence=3 if defended else 1,
    )
    return vehicle, gps, tpms, lidar, fusion


def _drive(vehicle, fusion, attack_step=None, n_steps=STEPS):
    anomalies = 0
    estimates = []
    for i in range(n_steps):
        vehicle.step(DT)
        if attack_step is not None:
            attack_step(i)
        est = fusion.step(DT, now=(i + 1) * DT)
        anomalies += bool(est.anomalies)
        estimates.append(est)
    return estimates, anomalies


def _gps_jump(defended: bool, seed: int) -> Dict:
    vehicle, gps, _, _, fusion = _rig(defended, seed)
    attack = GpsSpoofingAttack(gps, vehicle)

    def step(i):
        if i == 20:
            attack.start_jump((vehicle.state.x + 800.0, vehicle.state.y))

    estimates, anomalies = _drive(vehicle, fusion, step)
    final_error = math.hypot(
        estimates[-1].position[0] - vehicle.state.x,
        estimates[-1].position[1] - vehicle.state.y,
    )
    return {"induced_error_m": final_error, "success": final_error > 100.0,
            "detected": anomalies > 0}


def _gps_drift(defended: bool, seed: int) -> Dict:
    vehicle, gps, _, _, fusion = _rig(defended, seed)
    attack = GpsSpoofingAttack(gps, vehicle)
    attack.start_drift(rate_m_s=3.0, bearing=math.pi / 2)

    def step(i):
        attack.step_drift(DT)

    estimates, anomalies = _drive(vehicle, fusion, step)
    final_error = math.hypot(
        estimates[-1].position[0] - vehicle.state.x,
        estimates[-1].position[1] - vehicle.state.y,
    )
    return {"induced_error_m": final_error, "success": final_error > 20.0,
            "detected": anomalies > 0}


def _tpms_blowout(defended: bool, seed: int) -> Dict:
    vehicle, _, tpms, _, fusion = _rig(defended, seed)
    attack = TpmsSpoofingAttack(tpms)
    target = tpms.sensor_ids[0]

    def step(i):
        if i == 20:
            attack.fake_blowout(target)

    _, anomalies = _drive(vehicle, fusion, step)
    accepted_zero = fusion._last_tpms.get(target, (220.0, 0))[0] < 50.0
    return {"induced_error_m": 0.0, "success": accepted_zero,
            "detected": fusion.rejected_tpms > 0}


def _lidar_phantom(defended: bool, seed: int) -> Dict:
    vehicle, _, _, lidar, fusion = _rig(defended, seed)
    attack = LidarPhantomAttack(lidar)

    def step(i):
        if i == 10:
            attack.inject(25.0, 0.0)

    estimates, _ = _drive(vehicle, fusion, step)
    phantom_confirmed = any(
        any(t.phantom for t in est.confirmed_targets) for est in estimates
    )
    return {"induced_error_m": 0.0, "success": phantom_confirmed,
            "detected": fusion.rejected_lidar > 0}


ATTACKS = {
    "gps-jump": _gps_jump,
    "gps-drift": _gps_drift,
    "tpms-blowout": _tpms_blowout,
    "lidar-phantom": _lidar_phantom,
}


def run(seed: int = 0) -> SweepResult:
    """Attack x defence matrix."""
    result = SweepResult(
        "E12: sensor spoofing vs fusion plausibility gating",
        ["attack", "gating", "success", "detected", "induced_error_m"],
    )
    for attack_name, fn in ATTACKS.items():
        for defended in (False, True):
            row = fn(defended, seed)
            result.add(
                attack=attack_name,
                gating="on" if defended else "off",
                success=row["success"], detected=row["detected"],
                induced_error_m=row["induced_error_m"],
            )
    return result
