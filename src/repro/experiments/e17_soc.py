"""E17 -- Fleet-scale VSOC: ingest, correlate, contain (§4.2 + §7).

The paper's §7 centralized-policy direction implies a backend consuming
fleet telemetry; §4.2's class-break argument says that backend is where
an attack on one vehicle becomes *observable* as an attack on the fleet.
E17 runs the :mod:`repro.soc` stack over fleets of 10^2..10^6 vehicles
with seeded cross-fleet attack campaigns planted in benign noise, and
for every cell also runs the identical scenario with response disabled
(the no-SOC baseline).  Cells at/above :data:`SHARDED_FLEET` run the
scale-out configuration -- a :class:`~repro.soc.shard.ShardedIngestPipeline`
worker pool plus the numpy-vectorized workload generator -- and *every*
cell runs with the :class:`~repro.soc.shard.ConservationAudit` enabled,
so a single unaccounted event in any pump of any cell fails the
experiment loudly.  Reported per cell:

- ingest health: offered vs dispatched events, shed rate (explicit, not
  silent), peak queue depth, mean dispatch latency;
- correlation quality: precision/recall of flagged signatures against
  the planted campaigns at k=3;
- loop closure: mean detection-to-containment latency, policy pushes,
  Uptane sample installs, and blast radius (compromised vehicles) with
  response on vs off.

Deterministic for a fixed seed: all stochastic draws go through named
:class:`~repro.sim.RngStreams`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepResult
from repro.sim import RngStreams, Simulator
from repro.soc import (
    FleetModel,
    FleetWorkloadGenerator,
    SecurityOperationsCenter,
    seeded_campaigns,
)

#: (fleet size, attack prevalence) grid; prevalence shrinks with scale so
#: planted campaigns stay a minority class against the benign noise.
DEFAULT_GRID: Tuple[Tuple[int, float], ...] = (
    (100, 0.05),
    (1_000, 0.02),
    (10_000, 0.01),
    (100_000, 0.002),
    (1_000_000, 0.0005),
)

DURATION_S = 40.0
CAPACITY_EPS = 250.0
K = 3

#: Fleet size at/above which a cell runs the scale-out configuration:
#: a sharded ingest pipeline (NUM_SHARDS workers sharing a budget of
#: CAPACITY_EPS per worker) and the numpy-vectorized workload generator.
#: Cells below it keep the exact single-pipeline configuration (and
#: random-draw sequences) the pre-shard tables published.
SHARDED_FLEET = 1_000_000
NUM_SHARDS = 8


def _cell_config(n_vehicles: int, capacity_eps: float) -> Dict[str, object]:
    """Scale knobs for one cell: sharded + vectorized at/above
    :data:`SHARDED_FLEET`, the seed-identical scalar setup below it."""
    if n_vehicles >= SHARDED_FLEET:
        return {"num_shards": NUM_SHARDS,
                "capacity_eps": capacity_eps * NUM_SHARDS,
                "vectorized": True}
    return {"num_shards": 1, "capacity_eps": capacity_eps,
            "vectorized": False}


def _scene(
    n_vehicles: int,
    prevalence: float,
    seed: int,
    respond: bool,
    duration_s: float = DURATION_S,
    capacity_eps: float = CAPACITY_EPS,
    num_shards: int = 1,
    vectorized: bool = False,
) -> Dict[str, float]:
    """One fleet, one SOC configuration; returns the flat metrics dict."""
    sim = Simulator()
    rng = RngStreams(seed)
    campaigns = seeded_campaigns(rng, n_vehicles, prevalence)
    fleet = FleetModel(n_vehicles, campaigns)
    soc = SecurityOperationsCenter(
        sim, fleet, capacity_eps=capacity_eps, k=K, respond=respond,
        num_shards=num_shards,
    )
    generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline,
                                       vectorized=vectorized)
    soc.start()
    generator.start()
    sim.run_until(duration_s)
    # Final drain so in-flight events are accounted before scoring --
    # audited like every scheduled pump.
    soc.pipeline.pump(sim.now)
    if soc.audit is not None:
        soc.audit.check(soc.pipeline)

    metrics = soc.metrics()
    metrics["suppressed_at_source"] = float(generator.suppressed_at_source)
    metrics["emitted"] = float(generator.emitted)
    metrics["offered_eps"] = metrics["offered"] / duration_s
    metrics["dispatched_eps"] = metrics["dispatched"] / duration_s
    return metrics


def run(
    seed: int = 0,
    grid: Optional[Sequence[Tuple[int, float]]] = None,
    duration_s: float = DURATION_S,
    capacity_eps: float = CAPACITY_EPS,
) -> SweepResult:
    """Fleet-size x prevalence sweep, SOC vs no-SOC baseline per cell."""
    result = SweepResult(
        "E17: fleet VSOC -- ingest, correlate, contain vs no-SOC baseline",
        ["fleet", "prevalence", "offered_eps", "shed_rate", "src_suppressed",
         "queue_peak", "latency_ms", "precision", "recall", "t_contain_s",
         "policy_pushes", "ota_installs", "compromised_soc",
         "compromised_nosoc", "averted"],
    )
    for n_vehicles, prevalence in (grid or DEFAULT_GRID):
        config = _cell_config(n_vehicles, capacity_eps)
        with_soc = _scene(n_vehicles, prevalence, seed, respond=True,
                          duration_s=duration_s, **config)
        baseline = _scene(n_vehicles, prevalence, seed, respond=False,
                          duration_s=duration_s, **config)
        result.add(
            fleet=n_vehicles,
            prevalence=prevalence,
            offered_eps=with_soc["offered_eps"],
            shed_rate=with_soc["shed_rate"],
            src_suppressed=with_soc["suppressed_at_source"],
            queue_peak=with_soc["queue_depth_max"],
            latency_ms=with_soc["mean_dispatch_latency_s"] * 1e3,
            precision=with_soc["precision"],
            recall=with_soc["recall"],
            t_contain_s=with_soc["mean_time_to_containment_s"],
            policy_pushes=with_soc["policy_pushes"],
            ota_installs=with_soc["ota_installs"],
            compromised_soc=with_soc["fleet_compromised"],
            compromised_nosoc=baseline["fleet_compromised"],
            averted=with_soc["blast_radius_averted"],
        )
    return result


def summary(seed: int = 0,
            grid: Optional[Sequence[Tuple[int, float]]] = None,
            duration_s: float = DURATION_S) -> Dict[str, List[Dict[str, float]]]:
    """Plain-dict form of :func:`run` (the determinism tests pin this)."""
    result = run(seed=seed, grid=grid, duration_s=duration_s)
    return {"rows": [dict(row) for row in result.rows]}
