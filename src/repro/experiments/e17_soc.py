"""E17 -- Fleet-scale VSOC: ingest, correlate, contain (§4.2 + §7).

The paper's §7 centralized-policy direction implies a backend consuming
fleet telemetry; §4.2's class-break argument says that backend is where
an attack on one vehicle becomes *observable* as an attack on the fleet.
E17 runs the :mod:`repro.soc` stack over fleets of 10^2..10^7 vehicles
with seeded cross-fleet attack campaigns planted in benign noise, and
for every cell also runs the identical scenario with response disabled
(the no-SOC baseline).  Cells at/above :data:`SHARDED_FLEET` run the
scale-out configuration -- a :class:`~repro.soc.shard.ShardedIngestPipeline`
worker pool, **shard-local correlators** stitched by the
:class:`~repro.soc.correlate.GlobalCampaignMerger`, batched sink
delivery end-to-end, and the numpy-vectorized workload generator -- and
*every* cell runs with the :class:`~repro.soc.shard.ConservationAudit`
enabled, so a single unaccounted event in any pump of any cell fails
the experiment loudly.  Reported per cell:

- ingest health: offered vs dispatched events, shed rate (explicit, not
  silent), peak queue depth, mean dispatch latency;
- correlation quality: precision/recall of flagged signatures against
  the planted campaigns at k=3;
- loop closure: mean detection-to-containment latency, policy pushes,
  Uptane sample installs, and blast radius (compromised vehicles) with
  response on vs off.

Deterministic for a fixed seed: all stochastic draws go through named
:class:`~repro.sim.RngStreams` (wall-clock timings, when requested, ride
in a side dict so the published tables stay bit-reproducible).

:func:`correlate_microbench` is the perf-trajectory probe behind
``BENCH_E17.json``: it times the batched correlate fast path against the
same-run per-event baseline (:class:`ReferenceCorrelationEngine`, the
pre-optimization implementation kept as executable spec).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepResult
from repro.sim import RngStreams, Simulator
from repro.soc import (
    CorrelationEngine,
    DurableStore,
    EventLog,
    EventSource,
    FleetModel,
    FleetWorkloadGenerator,
    ReferenceCorrelationEngine,
    SecurityOperationsCenter,
    StringInterner,
    k_for_fleet_size,
    build_batch,
    make_event,
    recover_soc_state,
    seeded_campaigns,
)
from repro.core.safety import Asil

#: (fleet size, attack prevalence) grid; prevalence shrinks with scale so
#: planted campaigns stay a minority class against the benign noise.
DEFAULT_GRID: Tuple[Tuple[int, float], ...] = (
    (100, 0.05),
    (1_000, 0.02),
    (10_000, 0.01),
    (100_000, 0.002),
    (1_000_000, 0.0005),
    (10_000_000, 0.0001),
)

DURATION_S = 40.0
CAPACITY_EPS = 250.0
K = 3

#: Fleet size at/above which a cell runs the scale-out configuration:
#: a sharded ingest pipeline (NUM_SHARDS workers sharing a budget of
#: CAPACITY_EPS per worker), shard-local correlators behind the global
#: campaign merger, batched sink delivery, and the numpy-vectorized
#: workload generator.  Cells below it keep the single-pipeline,
#: single-correlator configuration (batched delivery is on everywhere --
#: it is differential-tested byte-identical to per-event).
SHARDED_FLEET = 1_000_000
NUM_SHARDS = 8
#: The 10^7 cell widens the worker pool again: twice the shards, twice
#: the shared backend budget.
MEGA_FLEET = 10_000_000
MEGA_SHARDS = 16
#: The 10^8 cell (opt-in: :func:`giga_cell`, the EXPERIMENTS.md XL row --
#: not in DEFAULT_GRID) doubles the pool once more and is where the
#: columnar correlate path is mandatory: per-event Python observes at
#: this drain rate dominate the sweep wall clock.
GIGA_FLEET = 100_000_000
GIGA_SHARDS = 32


def _cell_config(n_vehicles: int, capacity_eps: float) -> Dict[str, object]:
    """Scale knobs for one cell: sharded + vectorized at/above
    :data:`SHARDED_FLEET` (columnar correlate delivery -- differential-
    tested byte-identical to batched/per-event, so it is purely a wall
    clock knob), the seed-identical scalar setup below it.

    ``k`` scales with the fleet (:func:`~repro.soc.correlate.\
k_for_fleet_size`): a fixed k=3 tuned at 10^6 vehicles is crossed by
    benign chance co-occurrence at 10^8 (the XL cell measured precision
    0.6 before this), so the threshold gains one distinct-vehicle demand
    per decade -- k=4 at 10^7, k=5 at 10^8 -- restoring precision >= 0.9
    at recall 1.0 (pinned by the XL regression test)."""
    k = k_for_fleet_size(n_vehicles, base_k=K, base_fleet=SHARDED_FLEET)
    if n_vehicles >= GIGA_FLEET:
        return {"num_shards": GIGA_SHARDS,
                "capacity_eps": capacity_eps * GIGA_SHARDS,
                "vectorized": True, "columnar": True, "k": k}
    if n_vehicles >= MEGA_FLEET:
        return {"num_shards": MEGA_SHARDS,
                "capacity_eps": capacity_eps * MEGA_SHARDS,
                "vectorized": True, "columnar": True, "k": k}
    if n_vehicles >= SHARDED_FLEET:
        return {"num_shards": NUM_SHARDS,
                "capacity_eps": capacity_eps * NUM_SHARDS,
                "vectorized": True, "k": k}
    return {"num_shards": 1, "capacity_eps": capacity_eps,
            "vectorized": False, "k": k}


def _scene(
    n_vehicles: int,
    prevalence: float,
    seed: int,
    respond: bool,
    duration_s: float = DURATION_S,
    capacity_eps: float = CAPACITY_EPS,
    num_shards: int = 1,
    vectorized: bool = False,
    columnar: bool = False,
    k: int = K,
) -> Dict[str, float]:
    """One fleet, one SOC configuration; returns the flat metrics dict."""
    sim = Simulator()
    rng = RngStreams(seed)
    campaigns = seeded_campaigns(rng, n_vehicles, prevalence)
    fleet = FleetModel(n_vehicles, campaigns)
    soc = SecurityOperationsCenter(
        sim, fleet, capacity_eps=capacity_eps, k=k, respond=respond,
        num_shards=num_shards, columnar=columnar,
    )
    generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline,
                                       vectorized=vectorized)
    soc.start()
    generator.start()
    sim.run_until(duration_s)
    # Final drain so in-flight events are accounted before scoring --
    # audited (and campaign-merged) like every scheduled pump.
    soc.final_drain()

    metrics = soc.metrics()
    metrics["suppressed_at_source"] = float(generator.suppressed_at_source)
    metrics["emitted"] = float(generator.emitted)
    metrics["offered_eps"] = metrics["offered"] / duration_s
    metrics["dispatched_eps"] = metrics["dispatched"] / duration_s
    return metrics


def run(
    seed: int = 0,
    grid: Optional[Sequence[Tuple[int, float]]] = None,
    duration_s: float = DURATION_S,
    capacity_eps: float = CAPACITY_EPS,
    timings: Optional[Dict[int, Dict[str, float]]] = None,
) -> SweepResult:
    """Fleet-size x prevalence sweep, SOC vs no-SOC baseline per cell.

    ``timings``, when given, is filled per fleet size with wall-clock
    figures (``wall_s`` for the SOC scene incl. its baseline twin, and
    the real-time ``ingest_correlate_eps`` the SOC scene sustained) --
    kept out of the SweepResult so the published tables and the
    determinism tests stay independent of host speed.
    """
    result = SweepResult(
        "E17: fleet VSOC -- ingest, correlate, contain vs no-SOC baseline",
        ["fleet", "prevalence", "offered_eps", "shed_rate", "src_suppressed",
         "queue_peak", "latency_ms", "precision", "recall", "t_contain_s",
         "policy_pushes", "ota_installs", "compromised_soc",
         "compromised_nosoc", "averted"],
    )
    for n_vehicles, prevalence in (grid or DEFAULT_GRID):
        config = _cell_config(n_vehicles, capacity_eps)
        t0 = time.perf_counter()
        with_soc = _scene(n_vehicles, prevalence, seed, respond=True,
                          duration_s=duration_s, **config)
        t_soc = time.perf_counter() - t0
        baseline = _scene(n_vehicles, prevalence, seed, respond=False,
                          duration_s=duration_s, **config)
        wall_s = time.perf_counter() - t0
        if timings is not None:
            processed = with_soc["dispatched"] + with_soc["emitted"]
            timings[n_vehicles] = {
                "wall_s": wall_s,
                "soc_scene_wall_s": t_soc,
                "ingest_correlate_eps": processed / t_soc if t_soc > 0 else 0.0,
            }
        result.add(
            fleet=n_vehicles,
            prevalence=prevalence,
            offered_eps=with_soc["offered_eps"],
            shed_rate=with_soc["shed_rate"],
            src_suppressed=with_soc["suppressed_at_source"],
            queue_peak=with_soc["queue_depth_max"],
            latency_ms=with_soc["mean_dispatch_latency_s"] * 1e3,
            precision=with_soc["precision"],
            recall=with_soc["recall"],
            t_contain_s=with_soc["mean_time_to_containment_s"],
            policy_pushes=with_soc["policy_pushes"],
            ota_installs=with_soc["ota_installs"],
            compromised_soc=with_soc["fleet_compromised"],
            compromised_nosoc=baseline["fleet_compromised"],
            averted=with_soc["blast_radius_averted"],
        )
    return result


def summary(seed: int = 0,
            grid: Optional[Sequence[Tuple[int, float]]] = None,
            duration_s: float = DURATION_S) -> Dict[str, List[Dict[str, float]]]:
    """Plain-dict form of :func:`run` (the determinism tests pin this)."""
    result = run(seed=seed, grid=grid, duration_s=duration_s)
    return {"rows": [dict(row) for row in result.rows]}


def giga_cell(
    seed: int = 0,
    n_vehicles: int = GIGA_FLEET,
    prevalence: float = 0.00002,
    duration_s: float = 10.0,
    capacity_eps: float = CAPACITY_EPS,
) -> Dict[str, float]:
    """The 10^8-vehicle XL cell: 32 shards, vectorized generator,
    columnar correlate delivery end-to-end.  Opt-in (too heavy for the
    default grid / the CI sweep); the EXPERIMENTS.md E17 XL row records
    one measured run.  Returns the scene metrics plus wall-clock
    throughput (``ingest_correlate_eps``: dispatched events per second
    of real time, the figure the columnar hot path exists to raise)."""
    config = _cell_config(n_vehicles, capacity_eps)
    t0 = time.perf_counter()
    metrics = _scene(n_vehicles, prevalence, seed, respond=True,
                     duration_s=duration_s, **config)
    wall_s = time.perf_counter() - t0
    metrics["fleet"] = float(n_vehicles)
    metrics["num_shards"] = float(config["num_shards"])
    metrics["k"] = float(config["k"])
    metrics["wall_s"] = wall_s
    metrics["ingest_correlate_eps"] = metrics["dispatched"] / wall_s
    return metrics


# ----------------------------------------------------------------------
# Perf trajectory: correlate-path throughput (BENCH_E17.json)
# ----------------------------------------------------------------------

def _correlate_stream(n_events: int, n_signatures: int, window_s: float,
                      per_sig_window: int) -> List:
    """Synthetic correlate workload: ``n_signatures`` concurrently active
    signatures, each holding ~``per_sig_window`` live entries -- the
    regime where the reference engine's per-event window rescan hurts."""
    dt = window_s / (n_signatures * per_sig_window)
    return [
        make_event(f"v{i:07d}", EventSource.IDS,
                   f"bench.sig:{i % n_signatures:03d}", i * dt, i,
                   severity=Asil.C)
        for i in range(n_events)
    ]


def correlate_microbench(
    n_events: int = 30_000,
    n_signatures: int = 64,
    window_s: float = 4.0,
    per_sig_window: int = 256,
    batch_size: int = 64,
    columnar_batch: int = 4096,
    reps: int = 1,
) -> Dict[str, float]:
    """Time the four correlate paths on one identical stream:

    - ``reference_eps``: the pre-optimization per-event engine
      (:class:`ReferenceCorrelationEngine`, O(window) per event) -- the
      same-run baseline the speedups are measured against;
    - ``per_event_eps``: the incremental engine fed one event per call;
    - ``batched_eps``: the incremental engine fed ``batch_size``-event
      batches via :meth:`~CorrelationEngine.observe_batch`;
    - ``columnar_eps``: the incremental engine fed
      ``columnar_batch``-event :class:`~repro.soc.columnar.ColumnarBatch`
      arrays via :meth:`~CorrelationEngine.observe_columnar`, with the
      drain-time array build timed separately (``columnar_build_eps``;
      ``columnar_e2e_eps`` combines both, which is what the live
      dispatch path pays).

    ``columnar_batch`` defaults wider than ``batch_size``: the columnar
    path's per-batch numpy/dict setup amortizes across the batch, and
    the 10^7+-vehicle cells drain thousands of events per pump anyway.
    ``k`` is set unreachably high so no campaign fires and every event
    pays the full window-maintenance cost; lateness is unbounded and
    dedup disabled so nothing short-circuits.

    ``reps`` re-times every arm except the slow reference that many
    times (fresh engine each rep, best-of-N kept): on a shared host a
    single run measures scheduler luck as much as the code, and the CI
    speedup gates want the ratio of capabilities, not of noise draws.

    Beyond timing, the run asserts all four engines finished with equal
    counters/watermark and that the columnar engine's ``snapshot()`` is
    byte-identical to the per-event engine's -- every bench run is also
    a differential check.
    """
    events = _correlate_stream(n_events, n_signatures, window_s,
                               per_sig_window)
    kwargs = dict(window_s=window_s, k=1_000_000, dedup_window_s=0.0,
                  max_lateness_s=1e12)

    reference = ReferenceCorrelationEngine(**kwargs)
    t0 = time.perf_counter()
    for event in events:
        reference.observe(event)
    reference_s = time.perf_counter() - t0

    per_event_s = float("inf")
    for _ in range(reps):
        per_event = CorrelationEngine(**kwargs)
        t0 = time.perf_counter()
        for event in events:
            per_event.observe(event)
        per_event_s = min(per_event_s, time.perf_counter() - t0)

    batched_s = float("inf")
    for _ in range(reps):
        batched = CorrelationEngine(**kwargs)
        t0 = time.perf_counter()
        for start in range(0, n_events, batch_size):
            batched.observe_batch(events[start:start + batch_size])
        batched_s = min(batched_s, time.perf_counter() - t0)

    build_s = columnar_s = float("inf")
    for _ in range(reps):
        interner = StringInterner()
        t0 = time.perf_counter()
        cbatches = [build_batch(events[start:start + columnar_batch],
                                interner)
                    for start in range(0, n_events, columnar_batch)]
        build_s = min(build_s, time.perf_counter() - t0)
        columnar = CorrelationEngine(**kwargs)
        t0 = time.perf_counter()
        for cb in cbatches:
            columnar.observe_columnar(cb)
        columnar_s = min(columnar_s, time.perf_counter() - t0)

    # The four paths must have done the same correlation work, and the
    # columnar engine must land in byte-identical state.
    assert (reference.metrics() == per_event.metrics()
            == batched.metrics() == columnar.metrics())
    assert (reference.watermark == per_event.watermark
            == batched.watermark == columnar.watermark)
    assert (json.dumps(columnar.snapshot(), sort_keys=True)
            == json.dumps(per_event.snapshot(), sort_keys=True))

    return {
        "events": float(n_events),
        "reference_eps": n_events / reference_s,
        "per_event_eps": n_events / per_event_s,
        "batched_eps": n_events / batched_s,
        "columnar_eps": n_events / columnar_s,
        "columnar_build_eps": n_events / build_s,
        "columnar_e2e_eps": n_events / (build_s + columnar_s),
        "columnar_batch": float(columnar_batch),
        "columnar_fallbacks": float(columnar.columnar_fallbacks),
        "speedup_batched_vs_reference": reference_s / batched_s,
        "speedup_batched_vs_per_event": per_event_s / batched_s,
        "speedup_per_event_vs_reference": reference_s / per_event_s,
        "speedup_columnar_vs_per_event": per_event_s / columnar_s,
        "speedup_columnar_vs_reference": reference_s / columnar_s,
        "speedup_columnar_e2e_vs_per_event":
            per_event_s / (build_s + columnar_s),
    }


# ----------------------------------------------------------------------
# Crash recovery cell: kill the analytics, restore from the durable store
# ----------------------------------------------------------------------

def _durable_scene(seed: int, n_vehicles: int, prevalence: float,
                   num_shards: int, capacity_eps: float, root,
                   snapshot_every_pumps: int):
    """A store-backed observe-only SOC scene (the responder's transitions
    live in the simulator, outside the snapshot/replay contract)."""
    sim = Simulator()
    rng = RngStreams(seed)
    campaigns = seeded_campaigns(rng, n_vehicles, prevalence)
    fleet = FleetModel(n_vehicles, campaigns)
    store = DurableStore(root)
    soc = SecurityOperationsCenter(
        sim, fleet, capacity_eps=capacity_eps, k=K, respond=False,
        num_shards=num_shards, store=store,
        snapshot_every_pumps=snapshot_every_pumps,
    )
    generator = FleetWorkloadGenerator(sim, rng, fleet, soc.pipeline)
    soc.start()
    generator.start()
    return sim, soc, store


def crash_recovery_cell(
    seed: int = 0,
    n_vehicles: int = 10_000,
    prevalence: float = 0.01,
    duration_s: float = 16.0,
    kill_pump: int = 27,
    num_shards: int = 4,
    capacity_eps: float = CAPACITY_EPS,
    snapshot_every_pumps: int = 10,
    root=None,
) -> Dict[str, float]:
    """Kill-at-pump + recover, differentially checked against an
    uninterrupted twin.

    The crashed run's analytic state (correlators, merger, incident
    tracker) is discarded at pump ``kill_pump`` and rebuilt from the
    durable store (latest snapshot + log-suffix replay); the rebuilt
    state must be byte-identical to the live state at the kill point,
    and the resumed run's final analytics and metrics byte-identical to
    the uninterrupted run's.  Any divergence raises -- the cell is the
    check.  Returns recovery-side stats (replayed volume, recovery wall
    time, log/snapshot footprint).
    """
    base = Path(root) if root is not None else Path(tempfile.mkdtemp())
    made_tmp = root is None
    try:
        ref_root = base / "reference"
        crash_root = base / "crashed"

        sim, soc, _ = _durable_scene(seed, n_vehicles, prevalence,
                                     num_shards, capacity_eps, ref_root,
                                     snapshot_every_pumps)
        sim.run_until(duration_s)
        soc.final_drain()
        ref_state = json.dumps(soc.analytics_snapshot(), sort_keys=True)
        ref_metrics = soc.metrics()

        sim, soc, store = _durable_scene(seed, n_vehicles, prevalence,
                                         num_shards, capacity_eps,
                                         crash_root, snapshot_every_pumps)
        sim.run_until(kill_pump * soc.pump_tick_s)
        live_mid = json.dumps(soc.analytics_snapshot(), sort_keys=True)
        t0 = time.perf_counter()
        recovered = recover_soc_state(store)
        recovery_wall_s = time.perf_counter() - t0
        rec_mid = json.dumps(recovered.analytics_snapshot(), sort_keys=True)
        if rec_mid != live_mid:
            raise AssertionError(
                "recovered state diverged from the live state at the "
                f"kill point (pump {kill_pump})")
        soc.adopt_analytics(recovered)
        sim.run_until(duration_s)
        soc.final_drain()
        if json.dumps(soc.analytics_snapshot(), sort_keys=True) != ref_state:
            raise AssertionError(
                "resumed run's final analytics diverged from the "
                "uninterrupted run")
        if soc.metrics() != ref_metrics:
            raise AssertionError(
                "resumed run's metrics diverged from the uninterrupted run")

        log_bytes = sum(p.stat().st_size
                        for p in store.log.root.glob("seg-*.log"))
        return {
            "fleet": float(n_vehicles),
            "num_shards": float(num_shards),
            "kill_pump": float(kill_pump),
            "events_logged": ref_metrics["dispatched"],
            "log_records": float(store.log.last_seq),
            "log_bytes": float(log_bytes),
            "replayed_events": float(recovered.replayed_events),
            "replayed_batches": float(recovered.replayed_batches),
            "replayed_pumps": float(recovered.replayed_pumps),
            "recovery_wall_s": recovery_wall_s,
            "incidents_recovered": float(len(recovered.tracker.incidents)),
            "campaigns_recovered": float(
                len(recovered.flagged_signatures())),
            "byte_identical": 1.0,
        }
    finally:
        if made_tmp:
            shutil.rmtree(base, ignore_errors=True)


# ----------------------------------------------------------------------
# Durable-log microbench: append / replay / forensics-scan throughput
# ----------------------------------------------------------------------

def store_microbench(
    n_events: int = 20_000,
    batch_size: int = 64,
    segment_max_records: int = 512,
    fsync: str = "never",
    root=None,
) -> Dict[str, float]:
    """Time the durable-log hot paths on a synthetic dispatch stream:
    ``append_eps`` (batched archival appends, the per-pump tap cost),
    ``replay_eps`` (full-log recovery replay), and ``scan_eps`` plus the
    sparse-index skip ratio for a narrow forensics window.  ``fsync``
    defaults to ``never`` so the numbers price the framing/codec, not
    the host's disk.
    """
    events = _correlate_stream(n_events, n_signatures=64, window_s=4.0,
                               per_sig_window=256)
    base = Path(root) if root is not None else Path(tempfile.mkdtemp())
    made_tmp = root is None
    try:
        log = EventLog(base / "log",
                       segment_max_records=segment_max_records,
                       fsync=fsync)
        t0 = time.perf_counter()
        for start in range(0, n_events, batch_size):
            batch = events[start:start + batch_size]
            log.append_batch(batch[0].time, 0, batch)
        append_s = time.perf_counter() - t0
        log.rotate()  # close the tail so every segment is indexed

        t0 = time.perf_counter()
        replayed = sum(len(r.events) for r in log.replay())
        replay_s = time.perf_counter() - t0
        assert replayed == n_events

        # Forensics: a 10%-of-stream time window; the sparse index should
        # let the scan touch only a fraction of the records.
        t_lo = events[int(n_events * 0.45)].time
        t_hi = events[int(n_events * 0.55)].time
        t0 = time.perf_counter()
        hits = sum(1 for _ in log.scan(t0=t_lo, t1=t_hi, max_disorder_s=0.0))
        scan_s = time.perf_counter() - t0
        stats = log.last_scan_stats
        total_records = log.last_seq
        log.close()

        return {
            "events": float(n_events),
            "batch_size": float(batch_size),
            "append_eps": n_events / append_s,
            "replay_eps": n_events / replay_s,
            "scan_eps": hits / scan_s if scan_s > 0 else 0.0,
            "scan_hits": float(hits),
            "scan_records_read": float(stats["records_read"]),
            "scan_read_fraction": (stats["records_read"] / total_records
                                   if total_records else 0.0),
            "segments": float(len(log.segment_paths())),
        }
    finally:
        if made_tmp:
            shutil.rmtree(base, ignore_errors=True)


def write_bench_json(
    path,
    cells: List[Dict[str, float]],
    correlate: Dict[str, float],
    store: Optional[Dict[str, float]] = None,
    recovery: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Write the machine-readable E17 perf record (``BENCH_E17.json``)."""
    payload = {
        "schema": "bench-e17/v1",
        "duration_s": DURATION_S,
        "cells": cells,
        "correlate": correlate,
    }
    if store is not None:
        payload["store"] = store
    if recovery is not None:
        payload["recovery"] = recovery
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
