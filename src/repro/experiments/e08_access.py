"""E8 -- Physical access security: relay + key cracking (§4.3).

Two sub-experiments:

1. **PKES relay**: unlock success for (defence) x (attack) combinations,
   sweeping relay latency -- the Francillon relay works against plain
   PKES; distance bounding stops all but the fastest analogue relays.
2. **Immobilizer cracking**: measured brute-force time vs effective key
   width, extrapolated to the full 40-bit transponder key (the Bono-style
   feasibility argument).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.access import (
    DistanceBounder,
    KeyCracker,
    KeyFob,
    PkesSystem,
    RelayAttack,
    Transponder,
)
from repro.analysis.sweep import SweepResult

FOB_KEY = b"F" * 16
OWNER_DISTANCE_M = 30.0  # fob on the hallway table, car on the street


def run_relay(seed: int = 0) -> SweepResult:
    """Defence x relay-latency unlock matrix."""
    result = SweepResult(
        "E8a: PKES relay attack vs distance bounding",
        ["defense", "scenario", "unlocked", "implied_distance_m"],
    )
    scenarios = [
        ("owner-at-car", None, 1.0),
        ("no-attack-fob-far", None, OWNER_DISTANCE_M),
        ("relay-digital-1us", RelayAttack(relay_latency_s=1e-6), OWNER_DISTANCE_M),
        ("relay-analog-50ns", RelayAttack(relay_latency_s=50e-9), OWNER_DISTANCE_M),
        ("relay-analog-5ns", RelayAttack(relay_latency_s=5e-9), OWNER_DISTANCE_M),
    ]
    for defense_name, bounder in (
        ("none", None),
        ("distance-bounding-3m", DistanceBounder(max_distance_m=3.0)),
    ):
        for scenario_name, relay, distance in scenarios:
            pkes = PkesSystem(FOB_KEY, distance_bounder=bounder,
                              rng=random.Random(seed))
            fob = KeyFob(FOB_KEY)
            if relay is not None:
                relay.engage()
            attempt = pkes.attempt_unlock(fob, fob_distance_m=distance, relay=relay)
            if relay is not None:
                relay.disengage()
            result.add(
                defense=defense_name, scenario=scenario_name,
                unlocked=attempt.unlocked,
                implied_distance_m=attempt.implied_distance_m,
            )
    return result


def run_crack(seed: int = 0) -> SweepResult:
    """Brute-force scaling: measured crack time vs key width."""
    result = SweepResult(
        "E8b: immobilizer key cracking (measured, extrapolated to 40-bit)",
        ["unknown_bits", "keys_tried", "crack_time_s", "extrapolated_40bit_days"],
    )
    rng = random.Random(seed)
    for unknown_bits in (12, 14, 16, 18):
        key = rng.getrandbits(unknown_bits)  # high bits zero = known prefix
        transponder = Transponder(key)
        pairs = KeyCracker.eavesdrop(transponder, 3, rng=rng)
        outcome = KeyCracker(pairs).crack(
            true_key_prefix=key, known_bits=40 - unknown_bits,
        )
        assert outcome.key == key
        result.add(
            unknown_bits=unknown_bits,
            keys_tried=outcome.keys_tried,
            crack_time_s=outcome.elapsed_s,
            extrapolated_40bit_days=outcome.extrapolate(40) / 86400.0,
        )
    return result


def run(seed: int = 0) -> SweepResult:
    """Headline sub-experiment (relay matrix); crack scaling separate."""
    return run_relay(seed)
