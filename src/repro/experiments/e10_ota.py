"""E10 -- OTA security under key compromise (§1, §4.2).

The attack-success matrix: which combinations of compromised signing keys
let an attacker install arbitrary firmware, for the naive single-key
client vs the role-separated (Uptane-style) client.  The paper's demand
that the in-field update flow itself be robust is exactly the difference
between the two columns.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.sweep import SweepResult
from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota import (
    CompromiseScenario,
    DirectorRepository,
    FleetCampaign,
    ImageRepository,
    NaiveClient,
    UptaneClient,
)

MALICIOUS = FirmwareImage("engine-fw", 77, b"owned" * 16, hardware_id="mcu-a")

SCENARIOS: List[tuple] = [
    ("none", {}),
    ("timestamp-keys", {"image": ["timestamp"], "director": ["timestamp"]}),
    ("snapshot+timestamp", {
        "image": ["snapshot", "timestamp"], "director": ["snapshot", "timestamp"],
    }),
    ("director-online-all", {"director": ["targets", "snapshot", "timestamp"]}),
    ("image-targets-only", {"image": ["targets", "snapshot", "timestamp"]}),
    ("both-repos-all-online", {
        "director": ["targets", "snapshot", "timestamp"],
        "image": ["targets", "snapshot", "timestamp"],
    }),
]


def _fresh_uptane():
    image_repo = ImageRepository(seed=b"e10/img")
    director = DirectorRepository(seed=b"e10/dir")
    store = FirmwareStore(FirmwareImage("engine-fw", 1, b"base" * 12,
                                        hardware_id="mcu-a"))
    client = UptaneClient("veh-0", store,
                          image_root=image_repo.metadata["root"],
                          director_root=director.metadata["root"])
    FleetCampaign(director, image_repo, [client]).rollout(
        FirmwareImage("engine-fw", 2, b"honest" * 10, hardware_id="mcu-a"),
        now=10.0,
    )
    return image_repo, director, client


def run(seed: int = 0) -> SweepResult:
    """Key-compromise scenario x client flavour attack matrix."""
    result = SweepResult(
        "E10: malicious-update success under key compromise",
        ["compromised_keys", "naive_client", "uptane_client"],
    )
    oem = EcdsaKeyPair.generate(HmacDrbg(b"e10-oem"))
    for name, compromised in SCENARIOS:
        # Naive: the analogue of "any online signing key" is the single
        # OEM key; it falls whenever the attacker got ANY signing key.
        naive_store = FirmwareStore(FirmwareImage(
            "engine-fw", 1, b"base" * 12, hardware_id="mcu-a"))
        naive = NaiveClient("veh-0", naive_store, oem.public)
        attacker_has_any_key = bool(compromised)
        naive_result = CompromiseScenario.attack_naive(
            naive, MALICIOUS, oem if attacker_has_any_key else None,
        )

        image_repo, director, client = _fresh_uptane()
        scenario = CompromiseScenario(director, image_repo, compromised)
        uptane_result = scenario.attack_uptane(client, MALICIOUS, now=20.0)

        result.add(
            compromised_keys=name,
            naive_client="COMPROMISED" if naive_result.installed else "safe",
            uptane_client="COMPROMISED" if uptane_result.installed else "safe",
        )
    return result
