"""E1 -- Gateway isolation of a compromised domain (§7 "Secure Gateway").

Scenario: the infotainment domain is compromised and injects forged
engine-speed frames (id 0x0C9) toward the powertrain domain, under
realistic background traffic.  Architectures compared:

- ``flat-bus``          -- no gateway: one shared CAN segment (legacy).
- ``gateway-open``      -- gateway routes everything (default-allow, no rules).
- ``gateway-domain``    -- domain-level allow rule (diagnostics id block only).
- ``gateway-allowlist`` -- id-allowlist of exactly the routed signals.
- ``gateway-quarantine``-- allowlist + IDS-triggered quarantine of the
  infotainment domain.

Metric: forged frames that reach a powertrain receiver, and the worst
latency inflicted on the highest-priority legitimate signal.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.sweep import SweepResult
from repro.gateway import Firewall, FirewallAction, FirewallRule, SecureGateway
from repro.ids import FrequencyIds
from repro.ivn import (
    CanBus,
    CanFrame,
    DeadlineMonitor,
    typical_body_matrix,
    typical_powertrain_matrix,
)
from repro.attacks import SpoofAttack
from repro.sim import RngStreams, Simulator, TraceRecorder

FORGED_ID = 0x0C9  # engine speed/torque
ATTACK_RATE_HZ = 200.0
DURATION_S = 5.0
ROUTED_IDS = (0x244, 0x350)  # body signals powertrain legitimately needs


def _run_config(config: str, seed: int) -> Dict[str, float]:
    sim = Simulator()
    trace = TraceRecorder()
    rng = RngStreams(seed)

    forged_received = 0

    def count_forged(frame: CanFrame) -> None:
        nonlocal forged_received
        if frame.can_id == FORGED_ID and frame.sender is not None and (
            frame.sender == "attacker" or frame.sender.startswith("gateway.")
        ):
            forged_received += 1

    if config == "flat-bus":
        bus = CanBus(sim, name="shared", trace=trace)
        typical_powertrain_matrix().install(sim, bus)
        typical_body_matrix().install(sim, bus)
        monitor = DeadlineMonitor(trace, {FORGED_ID: 0.010})
        bus.tap(count_forged)
        attack = SpoofAttack(sim, bus, FORGED_ID, b"\xff" * 8, ATTACK_RATE_HZ)
        attack.start()
        sim.run_until(DURATION_S)
        return {
            "forged_delivered": float(forged_received),
            "worst_latency_ms": monitor.worst_latency(FORGED_ID) * 1e3,
        }

    # Gateway architectures: two domains.
    powertrain = CanBus(sim, name="powertrain", trace=trace)
    infotainment = CanBus(sim, name="infotainment", trace=trace)
    typical_powertrain_matrix().install(sim, powertrain)
    typical_body_matrix().install(sim, infotainment)

    firewall = Firewall(default=FirewallAction.DENY)
    if config in ("gateway-open", "gateway-quarantine"):
        # Quarantine variant: a permissive firewall, so the quarantine
        # response (not rule granularity) is what stops the attack.
        firewall = Firewall(default=FirewallAction.ALLOW)
    elif config == "gateway-domain":
        # Domain-level rule: everything from infotainment below the
        # diagnostics block may cross (too coarse: 0x0C9 < 0x700 passes).
        firewall.add_rule(FirewallRule(
            "infotainment", "powertrain", FirewallAction.ALLOW,
            id_range=(0x000, 0x6FF), description="domain allow",
        ))
    else:  # allowlist variants
        for rid in ROUTED_IDS:
            firewall.add_rule(FirewallRule(
                "infotainment", "powertrain", FirewallAction.ALLOW,
                id_range=(rid, rid), description=f"signal {rid:#x}",
            ))

    gateway = SecureGateway(sim, firewall=firewall, trace=trace)
    gateway.attach_domain("powertrain", powertrain)
    gateway.attach_domain("infotainment", infotainment)
    for rid in ROUTED_IDS:
        gateway.add_route("infotainment", rid, {"powertrain"})
    # The forged id must have a route for the attack to even be attemptable
    # through the gateway (mimicking a signal the OEM routes for dashboards).
    gateway.add_route("infotainment", FORGED_ID, {"powertrain"})

    monitor = DeadlineMonitor(trace, {FORGED_ID: 0.010})
    powertrain.tap(count_forged)

    if config == "gateway-quarantine":
        # Spec IDS over the infotainment signal database: the forged
        # powertrain id appearing on the infotainment bus is an anomaly;
        # the response quarantines the whole domain at the gateway.
        from repro.ids import SignalSpec, SpecificationIds

        ids = SpecificationIds(
            [SignalSpec(e.can_id, e.dlc) for e in typical_body_matrix().entries],
        )

        def react(frame: CanFrame) -> None:
            alert = ids.observe(sim.now, frame)
            if alert is not None and "infotainment" not in gateway.quarantined:
                gateway.quarantine("infotainment")

        infotainment.tap(react)

    attack = SpoofAttack(sim, infotainment, FORGED_ID, b"\xff" * 8, ATTACK_RATE_HZ)
    attack.start()
    sim.run_until(DURATION_S)
    return {
        "forged_delivered": float(forged_received),
        "worst_latency_ms": monitor.worst_latency(FORGED_ID) * 1e3,
    }


def run(seed: int = 0) -> SweepResult:
    """Run all E1 configurations; returns the results table."""
    result = SweepResult(
        "E1: gateway isolation vs forged-frame propagation",
        ["config", "forged_delivered", "forged_per_s", "worst_latency_ms"],
    )
    for config in ("flat-bus", "gateway-open", "gateway-domain",
                   "gateway-allowlist", "gateway-quarantine"):
        row = _run_config(config, seed)
        result.add(
            config=config,
            forged_delivered=row["forged_delivered"],
            forged_per_s=row["forged_delivered"] / DURATION_S,
            worst_latency_ms=row["worst_latency_ms"],
        )
    return result
