"""E15 -- Diagnostic SecurityAccess strength (§2 repair-shop interface).

The paper lists repair shops and third-party tools among the networks a
vehicle talks to; UDS SecurityAccess is that interface's gate.  The
experiment runs the full attack chain (sniff a legitimate workshop
unlock, recover the transform, exploit) against the two seed/key
families, plus the online-guessing fallback:

- weak XOR transform: one sniffed exchange -> constant recovered ->
  attacker unlocks and writes a protected identifier;
- CMAC transform: recovery fails (cross-check rejects), online guessing
  hits the attempt lockout after ``max_key_attempts`` tries.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.analysis.sweep import SweepResult
from repro.diag import (
    CmacSeedKey,
    IsoTpEndpoint,
    SeedKeyRecoveryAttack,
    UdsClient,
    UdsServer,
    UdsSession,
    XorSeedKey,
)
from repro.ivn import CanBus
from repro.sim import Simulator

REQ_ID, RSP_ID = 0x7E0, 0x7E8
PROTECTED_DID = 0xF015


def _scenario(algorithm, seed: int) -> Dict[str, object]:
    sim = Simulator()
    bus = CanBus(sim)
    tester_ep = IsoTpEndpoint(sim, bus, "tester", tx_id=REQ_ID, rx_id=RSP_ID)
    ecu_ep = IsoTpEndpoint(sim, bus, "ecu", tx_id=RSP_ID, rx_id=REQ_ID)
    server = UdsServer(ecu_ep, algorithm, rng=random.Random(seed))
    server.add_did(PROTECTED_DID, b"\x00\x01", protected=True)
    client = UdsClient(sim, tester_ep)
    attack = SeedKeyRecoveryAttack(bus, REQ_ID, RSP_ID)

    # Phase 1: legitimate workshop session (two unlocks; the attacker
    # needs a second exchange only for the recovery cross-check).
    for _ in range(2):
        client.start_session(UdsSession.EXTENDED)
        client.unlock(algorithm)
        client.ecu_reset()

    # Phase 2: offline recovery.
    constant = attack.recover_xor_constant()
    recovered = constant is not None

    # Phase 3: exploitation (or online fallback).
    exploited = False
    wrote_protected = False
    bruteforce_attempts = 0
    if recovered:
        exploited = SeedKeyRecoveryAttack.exploit(client, constant)
        if exploited:
            try:
                client.write_did(PROTECTED_DID, b"\x13\x37")
                wrote_protected = server.data_identifiers[PROTECTED_DID] == b"\x13\x37"
            except Exception:
                wrote_protected = False
    else:
        unlocked, bruteforce_attempts = SeedKeyRecoveryAttack.online_bruteforce(
            client, random.Random(seed + 1), attempts=1000,
        )
        exploited = unlocked

    return {
        "exchanges_sniffed": len(attack.exchanges),
        "transform_recovered": recovered,
        "ecu_unlocked": exploited,
        "protected_write": wrote_protected,
        "lockout": server.locked_out,
        "bruteforce_attempts": bruteforce_attempts,
    }


def run(seed: int = 0) -> SweepResult:
    """Weak vs sound seed/key under the full attack chain."""
    result = SweepResult(
        "E15: UDS SecurityAccess attack chain by seed/key algorithm",
        ["algorithm", "exchanges_sniffed", "transform_recovered",
         "ecu_unlocked", "protected_write", "lockout"],
    )
    for name, algorithm in (
        ("xor-constant", XorSeedKey(b"\xde\xad\xbe\xef")),
        ("aes-cmac", CmacSeedKey(b"S" * 16)),
    ):
        row = _scenario(algorithm, seed)
        result.add(
            algorithm=name,
            exchanges_sniffed=row["exchanges_sniffed"],
            transform_recovered=row["transform_recovered"],
            ecu_unlocked=row["ecu_unlocked"],
            protected_write=row["protected_write"],
            lockout=row["lockout"],
        )
    return result
