"""E6 -- V2X verification load vs vehicle density (§5 "Verification Needs").

"It is necessary to verify that the V2X communication remains secure
regardless of how many vehicles and RSUs are in proximity."  Each station
has a fixed verification budget (messages/second it can ECDSA-verify,
calibrated from the real crypto micro-benchmarks in ``benchmarks/``); the
sweep raises the number of broadcasting neighbours and measures, at a
probe station: offered load, verified fraction, overload drops, and
verification queueing latency.

Crypto is surrogate (``skip_crypto`` + dummy signatures) so the sweep
measures *queueing*, not pure-Python ECDSA time; the budget parameter is
where real crypto cost enters.  See DESIGN.md §4.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.stats import summarize
from repro.analysis.sweep import SweepResult
from repro.physical import Vehicle, VehicleState
from repro.sim import RngStreams, Simulator
from repro.v2x import (
    MessageVerifier,
    ObuStation,
    PkiHierarchy,
    PseudonymManager,
    WirelessChannel,
)

BSM_RATE_HZ = 10.0


def _scene(n_vehicles: int, verify_rate: float, duration: float,
           seed: int) -> Dict[str, float]:
    sim = Simulator()
    rng = RngStreams(seed)
    pki = PkiHierarchy(seed=b"e6")
    channel = WirelessChannel(sim, comm_range=500.0,
                              loss_probability=0.05, rng=rng.get("channel"))
    stations = []
    for i in range(n_vehicles):
        vid = f"veh-{i}"
        ecert, _ = pki.enroll_vehicle(vid)
        batch = pki.issue_pseudonyms(vid, ecert, count=2, validity_start=0.0)
        vehicle = Vehicle(VehicleState(
            x=float((i * 37) % 400), y=float((i * 61) % 50), speed=15.0,
        ), name=vid)
        station = ObuStation(
            sim, vid, vehicle, channel,
            PseudonymManager(batch, rotation_period=1e9),
            MessageVerifier(pki.trust_store(), skip_crypto=True),
            bsm_period=1.0 / BSM_RATE_HZ,
            verify_rate=verify_rate,
            queue_deadline=0.1,
            real_crypto=False,
        )
        stations.append(station)
    for s in stations:
        s.start_broadcasting()
    sim.run_until(duration)

    probe = stations[0]
    offered = probe.radio.received / duration
    latencies = summarize(probe.verify_latencies)
    processed = probe.verified_ok + sum(probe.rejects.values())
    return {
        "offered_msgs_per_s": offered,
        "verified_per_s": probe.verified_ok / duration,
        "dropped_per_s": probe.dropped_overload / duration,
        "verified_fraction": (
            probe.verified_ok / probe.radio.received if probe.radio.received else 0.0
        ),
        "p95_latency_ms": latencies["p95"] * 1e3,
    }


def run(verify_rate: float = 250.0, duration: float = 3.0,
        seed: int = 0) -> SweepResult:
    """Density sweep at a fixed verification budget."""
    result = SweepResult(
        f"E6: V2X verification vs density (budget={verify_rate:.0f} verifies/s)",
        ["n_vehicles", "offered_msgs_per_s", "verified_per_s",
         "verified_fraction", "dropped_per_s", "p95_latency_ms"],
    )
    for n in (5, 10, 20, 40, 60):
        row = _scene(n, verify_rate, duration, seed)
        result.add(n_vehicles=n, **row)
    return result
