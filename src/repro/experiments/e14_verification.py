"""E14 -- Extensibility's verification burden and "reserved" attack surface (§6).

Two measurements of the paper's §6 verification claims:

1. **Configuration-space growth**: the decision space a verifier must
   cover as the architecture adds subjects/objects/contexts for future
   use.  Exhaustive policy evaluation time is measured directly, showing
   the (multiplicative) blow-up.
2. **Reserved-configuration exposure**: a signal database with a fraction
   of "reserved for future use" ids.  Random fuzzing measures how often
   traffic lands on reserved ids -- configurations that, per the paper,
   are "typical targets of security vulnerabilities" precisely because
   they have no current functional requirement (and thus no tests).  The
   specification IDS reports them as unused; the experiment reports the
   attack-surface fraction vs the degree of extensibility.
"""

from __future__ import annotations

import random
import time
from typing import Dict

from repro.analysis.sweep import SweepResult
from repro.core.policy import PolicyDecision, PolicyEngine, PolicyRule, SecurityPolicy
from repro.ids import SignalSpec, SpecificationIds
from repro.ivn import CanFrame


def run(seed: int = 0) -> SweepResult:
    """Configuration-space growth vs extensibility level."""
    result = SweepResult(
        "E14a: policy verification space vs extensibility level",
        ["extensibility", "subjects", "objects", "contexts",
         "config_space", "exhaustive_eval_ms"],
    )
    levels = [
        ("current-only", 6, 8, 1),
        ("near-future", 10, 14, 2),
        ("extensible", 16, 24, 4),
        ("maximal", 24, 40, 6),
    ]
    actions = ["read", "write", "call", "configure"]
    for name, n_subjects, n_objects, n_contexts in levels:
        subjects = [f"s{i}" for i in range(n_subjects)]
        objects = [f"o{i}" for i in range(n_objects)]
        contexts = [f"c{i}" for i in range(n_contexts)]
        rules = [
            PolicyRule(frozenset({subjects[i % n_subjects]}),
                       frozenset({objects[i % n_objects]}),
                       frozenset({actions[i % 4]}),
                       PolicyDecision.ALLOW)
            for i in range(min(32, n_subjects * 2))
        ]
        engine = PolicyEngine(SecurityPolicy(version=1, rules=rules))
        space = engine.configuration_space(subjects, objects, actions, contexts)
        start = time.perf_counter()
        engine.decision_table(subjects, objects, actions, contexts)
        elapsed = time.perf_counter() - start
        result.add(
            extensibility=name, subjects=n_subjects, objects=n_objects,
            contexts=n_contexts, config_space=space,
            exhaustive_eval_ms=elapsed * 1e3,
        )
    return result


def run_reserved(seed: int = 0, n_fuzz_frames: int = 5000) -> SweepResult:
    """Reserved-id attack surface vs degree of extensibility."""
    rng = random.Random(seed)
    result = SweepResult(
        "E14b: reserved ('future use') id space hit by fuzzing",
        ["reserved_fraction", "spec_ids", "reserved_ids",
         "fuzz_hits_reserved", "hit_rate"],
    )
    active_ids = [0x100 + 8 * i for i in range(20)]
    for reserved_count in (0, 10, 30, 60):
        reserved_ids = [0x500 + 4 * i for i in range(reserved_count)]
        specs = [SignalSpec(cid, 8) for cid in active_ids + reserved_ids]
        ids = SpecificationIds(specs)
        # Train on active traffic only: reserved ids never appear.
        ids.train([(0.0, CanFrame(cid, bytes(8))) for cid in active_ids])
        assert len(ids.unused_specs()) == reserved_count

        hits = 0
        for i in range(n_fuzz_frames):
            frame = CanFrame(rng.randint(0, 0x7FF), bytes(rng.randint(0, 8)))
            if frame.can_id in ids.unused_specs():
                # A fuzz frame landed on a spec'd-but-unexercised id: it
                # will be *accepted* by any id-allowlist (it is in spec!)
                # while hitting code no test has ever run.
                if frame.dlc == 8:
                    hits += 1
        result.add(
            reserved_fraction=reserved_count / (len(active_ids) + reserved_count)
            if (len(active_ids) + reserved_count) else 0.0,
            spec_ids=len(specs), reserved_ids=reserved_count,
            fuzz_hits_reserved=hits, hit_rate=hits / n_fuzz_frames,
        )
    return result
