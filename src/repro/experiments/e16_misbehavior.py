"""E16 -- Insider misbehavior: ghost vehicles vs detection + revocation.

Authentication cannot stop an *enrolled* attacker from lying.  An insider
with valid pseudonyms broadcasts a "ghost" stationary vehicle teleporting
around the road; honest vehicles run BSM plausibility checks and report
to the misbehavior authority, which revokes the insider's whole
credential set at a report threshold.  Metrics per threshold: time to
revocation, lies accepted before revocation vs after (CRL in force), and
false revocations of honest vehicles (must be zero).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.sweep import SweepResult
from repro.physical import Vehicle, VehicleState
from repro.sim import RngStreams, Simulator
from repro.v2x import (
    BsmPlausibilityChecker,
    MessageVerifier,
    MisbehaviorAuthority,
    MisbehaviorReport,
    ObuStation,
    PkiHierarchy,
    PseudonymManager,
    WirelessChannel,
)
from repro.v2x.bsm import BasicSafetyMessage
from repro.v2x.ieee1609 import SignedMessage
from repro.crypto import EcdsaSignature

N_HONEST = 6
DURATION = 30.0


def _scene(threshold: int, seed: int) -> Dict[str, float]:
    sim = Simulator()
    rng = RngStreams(seed)
    pki = PkiHierarchy(seed=b"e16")
    channel = WirelessChannel(sim, comm_range=2000.0)
    authority = MisbehaviorAuthority(pki, report_threshold=threshold)
    revocation_time: list = []

    stations = []
    for i in range(N_HONEST):
        vid = f"honest-{i}"
        ecert, _ = pki.enroll_vehicle(vid)
        batch = pki.issue_pseudonyms(vid, ecert, count=2, validity_start=0.0)
        vehicle = Vehicle(VehicleState(x=float(i * 25), speed=20.0), name=vid)
        station = ObuStation(
            sim, vid, vehicle, channel,
            PseudonymManager(batch, rotation_period=1e9),
            MessageVerifier(pki.trust_store(), skip_crypto=True,
                            crls=[pki.pseudonym_ca.crl]),
            real_crypto=False,
        )
        checker = BsmPlausibilityChecker(max_speed=45.0)

        def on_bsm(now, bsm, subject, message, st=station, ck=checker):
            reason = ck.check(now, subject, bsm, st.vehicle.state.position)
            if reason is not None:
                revoked = authority.submit(MisbehaviorReport(
                    now, st.name, subject, message.certificate.digest, reason,
                ))
                if revoked is not None:
                    revocation_time.append(now)

        station.on_bsm = on_bsm
        stations.append(station)

    # The insider: enrolled, valid pseudonyms, lying payloads.
    ecert, _ = pki.enroll_vehicle("insider")
    batch = pki.issue_pseudonyms("insider", ecert, count=2, validity_start=0.0)
    insider_cert, _ = batch.entries[0]
    insider_radio = channel.attach("insider", lambda: (60.0, 0.0))
    ghost_positions = rng.get("ghost")
    lie_count = [0]

    def broadcast_lie():
        # Ghost vehicle jumping hundreds of metres between broadcasts.
        bsm = BasicSafetyMessage(
            lie_count[0] % 128,
            ghost_positions.uniform(0, 1000), ghost_positions.uniform(0, 50),
            0.0, 0.0, event="stopped vehicle",
        )
        lie_count[0] += 1
        insider_radio.broadcast(SignedMessage(
            bsm.encode(), "bsm", sim.now, insider_cert, EcdsaSignature(1, 1),
        ))
        sim.schedule(0.5, broadcast_lie)

    # Step motion faster than the 10 Hz BSM rate, otherwise honest BSM
    # pairs straddling an unmoved position look kinematically
    # inconsistent and honest vehicles get (wrongly) accused.
    def drive():
        for s in stations:
            s.vehicle.step(0.05)
        sim.schedule(0.05, drive)

    sim.schedule(0.05, drive)
    for s in stations:
        s.start_broadcasting()
    sim.schedule(1.0, broadcast_lie)
    sim.run_until(DURATION)

    revoked_at = revocation_time[0] if revocation_time else None
    lies_accepted_after = 0
    lies_accepted_before = 0
    for s in stations:
        for t, bsm, subject in s.accepted:
            if subject == insider_cert.subject:
                if revoked_at is not None and t > revoked_at:
                    lies_accepted_after += 1
                else:
                    lies_accepted_before += 1
    cert_rejections = sum(s.rejects.get("certificate", 0) for s in stations)
    return {
        "revoked": revoked_at is not None,
        "time_to_revocation_s": revoked_at - 1.0 if revoked_at else float("inf"),
        "lies_accepted_before": float(lies_accepted_before),
        "lies_accepted_after": float(lies_accepted_after),
        "crl_rejections": float(cert_rejections),
        "honest_revoked": float(len(
            authority.revoked_vehicles - {"insider"}
        )),
    }


def run(seed: int = 0) -> SweepResult:
    """Report-threshold sweep for the ghost-vehicle insider."""
    result = SweepResult(
        "E16: ghost-vehicle insider vs misbehavior detection + revocation",
        ["report_threshold", "revoked", "time_to_revocation_s",
         "lies_accepted_before", "lies_accepted_after", "crl_rejections",
         "honest_revoked"],
    )
    for threshold in (1, 3, 5):
        row = _scene(threshold, seed)
        result.add(report_threshold=threshold, **row)
    return result
