"""SecurityAccess seed/key algorithms.

UDS SecurityAccess (service 0x27) is a challenge-response: the ECU sends a
random *seed*, the tester answers with ``key = f(seed, secret)``.  Two
implementations of ``f``:

- :class:`XorSeedKey` -- the historically common scheme: XOR with a fixed
  constant (sometimes plus rotation).  One sniffed (seed, key) pair
  reveals the constant; experiment E15 performs exactly that recovery.
- :class:`CmacSeedKey` -- the sound construction: a truncated AES-CMAC
  under a per-ECU secret (SHE-resident on real parts).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto import aes_cmac
from repro.crypto.util import xor_bytes


class SeedKeyAlgorithm(ABC):
    """ECU-side seed/key transform."""

    seed_length = 4

    @abstractmethod
    def compute_key(self, seed: bytes) -> bytes:
        """The key the ECU expects for a given seed."""


class XorSeedKey(SeedKeyAlgorithm):
    """key = seed XOR constant (with a 1-bit rotate for cosmetics).

    The rotate does not help: ``constant = rotr(key) XOR seed`` is still
    recoverable from a single observed exchange.
    """

    def __init__(self, constant: bytes) -> None:
        if len(constant) != self.seed_length:
            raise ValueError(f"constant must be {self.seed_length} bytes")
        self.constant = bytes(constant)

    @staticmethod
    def _rotl1(data: bytes) -> bytes:
        value = int.from_bytes(data, "big")
        width = 8 * len(data)
        rotated = ((value << 1) | (value >> (width - 1))) & ((1 << width) - 1)
        return rotated.to_bytes(len(data), "big")

    @staticmethod
    def _rotr1(data: bytes) -> bytes:
        value = int.from_bytes(data, "big")
        width = 8 * len(data)
        rotated = ((value >> 1) | ((value & 1) << (width - 1)))
        return rotated.to_bytes(len(data), "big")

    def compute_key(self, seed: bytes) -> bytes:
        return self._rotl1(xor_bytes(seed, self.constant))

    @classmethod
    def recover_constant(cls, seed: bytes, key: bytes) -> bytes:
        """Attacker side: invert the transform from one observed pair."""
        return xor_bytes(cls._rotr1(key), seed)


class CmacSeedKey(SeedKeyAlgorithm):
    """key = AES-CMAC(secret, seed) truncated to the seed length."""

    def __init__(self, secret: bytes) -> None:
        if len(secret) != 16:
            raise ValueError("secret must be 16 bytes")
        self.secret = bytes(secret)

    def compute_key(self, seed: bytes) -> bytes:
        return aes_cmac(self.secret, seed, tag_len=self.seed_length)
