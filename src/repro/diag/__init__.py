"""Diagnostics stack: ISO-TP transport + UDS services + security access.

The paper's §2 lists repair shops and third-party applications among the
networks a vehicle must talk to; diagnostics is that interface in
practice, and its *SecurityAccess* seed/key handshake is a classic weak
point (fixed XOR "algorithms" recoverable from one sniffed exchange).

- :mod:`repro.diag.isotp` -- ISO 15765-2 segmented transport over CAN
  (single/first/consecutive/flow-control frames).
- :mod:`repro.diag.uds` -- ISO 14229 services: session control, security
  access, read/write data by identifier, ECU reset, routine control.
- :mod:`repro.diag.seedkey` -- seed/key algorithms: the historically
  common weak XOR transform and a CMAC-based sound one.
- :mod:`repro.diag.attack` -- the seed/key recovery + unauthorized-write
  attack chain (experiment E15).
"""

from repro.diag.isotp import IsoTpEndpoint, IsoTpError
from repro.diag.uds import (
    NegativeResponse,
    UdsClient,
    UdsServer,
    UdsSession,
    NRC_ACCESS_DENIED,
    NRC_INVALID_KEY,
    NRC_REQUEST_OUT_OF_RANGE,
    NRC_SERVICE_NOT_SUPPORTED,
)
from repro.diag.seedkey import CmacSeedKey, SeedKeyAlgorithm, XorSeedKey
from repro.diag.attack import SeedKeyRecoveryAttack

__all__ = [
    "IsoTpEndpoint",
    "IsoTpError",
    "NegativeResponse",
    "UdsClient",
    "UdsServer",
    "UdsSession",
    "NRC_ACCESS_DENIED",
    "NRC_INVALID_KEY",
    "NRC_REQUEST_OUT_OF_RANGE",
    "NRC_SERVICE_NOT_SUPPORTED",
    "CmacSeedKey",
    "SeedKeyAlgorithm",
    "XorSeedKey",
    "SeedKeyRecoveryAttack",
]
