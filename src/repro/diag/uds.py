"""UDS (ISO 14229) diagnostic services over ISO-TP.

Implemented services (the security-relevant core):

- 0x10 DiagnosticSessionControl (default / extended / programming)
- 0x11 ECUReset
- 0x27 SecurityAccess (requestSeed / sendKey, lockout after failures)
- 0x22 ReadDataByIdentifier
- 0x2E WriteDataByIdentifier (gated: extended session + unlocked)
- 0x31 RoutineControl (gated like writes)

Negative responses use standard NRCs.  The server enforces the session /
security-level state machine; the E15 experiment attacks exactly that
gate through the weak seed/key algorithm.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.diag.isotp import IsoTpEndpoint
from repro.diag.seedkey import SeedKeyAlgorithm
from repro.crypto.util import constant_time_eq
from repro.sim import Simulator

# Service ids.
SVC_SESSION = 0x10
SVC_RESET = 0x11
SVC_READ_DID = 0x22
SVC_SECURITY = 0x27
SVC_WRITE_DID = 0x2E
SVC_ROUTINE = 0x31
_POSITIVE_OFFSET = 0x40
_NEGATIVE = 0x7F

# Negative response codes.
NRC_SERVICE_NOT_SUPPORTED = 0x11
NRC_CONDITIONS_NOT_CORRECT = 0x22
NRC_REQUEST_OUT_OF_RANGE = 0x31
NRC_ACCESS_DENIED = 0x33
NRC_INVALID_KEY = 0x35
NRC_EXCEEDED_ATTEMPTS = 0x36


class UdsSession(Enum):
    DEFAULT = 0x01
    PROGRAMMING = 0x02
    EXTENDED = 0x03


class NegativeResponse(Exception):
    """Raised by :class:`UdsClient` when the server answers 0x7F."""

    def __init__(self, service: int, nrc: int) -> None:
        super().__init__(f"service {service:#04x} rejected, NRC {nrc:#04x}")
        self.service = service
        self.nrc = nrc


class UdsServer:
    """The ECU-side diagnostic server."""

    def __init__(
        self,
        endpoint: IsoTpEndpoint,
        seed_key: SeedKeyAlgorithm,
        rng: Optional[random.Random] = None,
        max_key_attempts: int = 3,
    ) -> None:
        self.endpoint = endpoint
        self.seed_key = seed_key
        self.rng = rng if rng is not None else random.Random()
        self.max_key_attempts = max_key_attempts
        endpoint.on_message = self._on_request

        self.session = UdsSession.DEFAULT
        self.unlocked = False
        self._pending_seed: Optional[bytes] = None
        self._failed_attempts = 0
        self.locked_out = False
        self.data_identifiers: Dict[int, bytes] = {}
        self.protected_dids: set = set()
        self.routines: Dict[int, Callable[[], bytes]] = {}
        self.resets = 0
        self.audit: List[Tuple[int, bool]] = []  # (service, positive?)

    # ------------------------------------------------------------------
    def add_did(self, did: int, value: bytes, protected: bool = False) -> None:
        """Register a data identifier; protected ones need security access
        to write."""
        self.data_identifiers[did] = value
        if protected:
            self.protected_dids.add(did)

    def add_routine(self, rid: int, fn: Callable[[], bytes]) -> None:
        self.routines[rid] = fn

    # ------------------------------------------------------------------
    def _respond(self, data: bytes) -> None:
        self.endpoint.send(data)

    def _negative(self, service: int, nrc: int) -> None:
        self.audit.append((service, False))
        self._respond(bytes([_NEGATIVE, service, nrc]))

    def _positive(self, service: int, data: bytes = b"") -> None:
        self.audit.append((service, True))
        self._respond(bytes([service + _POSITIVE_OFFSET]) + data)

    def _on_request(self, request: bytes) -> None:
        if not request:
            return
        service = request[0]
        handler = {
            SVC_SESSION: self._handle_session,
            SVC_RESET: self._handle_reset,
            SVC_SECURITY: self._handle_security,
            SVC_READ_DID: self._handle_read,
            SVC_WRITE_DID: self._handle_write,
            SVC_ROUTINE: self._handle_routine,
        }.get(service)
        if handler is None:
            self._negative(service, NRC_SERVICE_NOT_SUPPORTED)
            return
        handler(request)

    # ------------------------------------------------------------------
    def _handle_session(self, request: bytes) -> None:
        if len(request) < 2:
            self._negative(SVC_SESSION, NRC_REQUEST_OUT_OF_RANGE)
            return
        try:
            session = UdsSession(request[1])
        except ValueError:
            self._negative(SVC_SESSION, NRC_REQUEST_OUT_OF_RANGE)
            return
        self.session = session
        if session == UdsSession.DEFAULT:
            self.unlocked = False  # leaving extended drops security access
        self._positive(SVC_SESSION, bytes([session.value]))

    def _handle_reset(self, request: bytes) -> None:
        self.resets += 1
        self.session = UdsSession.DEFAULT
        self.unlocked = False
        self._pending_seed = None
        self._positive(SVC_RESET, b"\x01")

    def _handle_security(self, request: bytes) -> None:
        if self.locked_out:
            self._negative(SVC_SECURITY, NRC_EXCEEDED_ATTEMPTS)
            return
        if self.session == UdsSession.DEFAULT:
            self._negative(SVC_SECURITY, NRC_CONDITIONS_NOT_CORRECT)
            return
        if len(request) < 2:
            self._negative(SVC_SECURITY, NRC_REQUEST_OUT_OF_RANGE)
            return
        sub = request[1]
        if sub == 0x01:  # requestSeed
            if self.unlocked:
                self._positive(SVC_SECURITY, bytes([sub]) + bytes(self.seed_key.seed_length))
                return
            self._pending_seed = bytes(
                self.rng.randrange(256) for _ in range(self.seed_key.seed_length)
            )
            self._positive(SVC_SECURITY, bytes([sub]) + self._pending_seed)
        elif sub == 0x02:  # sendKey
            if self._pending_seed is None:
                self._negative(SVC_SECURITY, NRC_CONDITIONS_NOT_CORRECT)
                return
            expected = self.seed_key.compute_key(self._pending_seed)
            provided = request[2:]
            self._pending_seed = None
            if constant_time_eq(expected, provided):
                self.unlocked = True
                self._failed_attempts = 0
                self._positive(SVC_SECURITY, bytes([sub]))
            else:
                self._failed_attempts += 1
                if self._failed_attempts >= self.max_key_attempts:
                    self.locked_out = True
                    self._negative(SVC_SECURITY, NRC_EXCEEDED_ATTEMPTS)
                else:
                    self._negative(SVC_SECURITY, NRC_INVALID_KEY)
        else:
            self._negative(SVC_SECURITY, NRC_REQUEST_OUT_OF_RANGE)

    def _handle_read(self, request: bytes) -> None:
        if len(request) < 3:
            self._negative(SVC_READ_DID, NRC_REQUEST_OUT_OF_RANGE)
            return
        did = (request[1] << 8) | request[2]
        value = self.data_identifiers.get(did)
        if value is None:
            self._negative(SVC_READ_DID, NRC_REQUEST_OUT_OF_RANGE)
            return
        self._positive(SVC_READ_DID, request[1:3] + value)

    def _check_write_access(self, service: int, did: Optional[int] = None) -> bool:
        if self.session == UdsSession.DEFAULT:
            self._negative(service, NRC_CONDITIONS_NOT_CORRECT)
            return False
        needs_unlock = did is None or did in self.protected_dids
        if needs_unlock and not self.unlocked:
            self._negative(service, NRC_ACCESS_DENIED)
            return False
        return True

    def _handle_write(self, request: bytes) -> None:
        if len(request) < 4:
            self._negative(SVC_WRITE_DID, NRC_REQUEST_OUT_OF_RANGE)
            return
        did = (request[1] << 8) | request[2]
        if did not in self.data_identifiers:
            self._negative(SVC_WRITE_DID, NRC_REQUEST_OUT_OF_RANGE)
            return
        if not self._check_write_access(SVC_WRITE_DID, did):
            return
        self.data_identifiers[did] = bytes(request[3:])
        self._positive(SVC_WRITE_DID, request[1:3])

    def _handle_routine(self, request: bytes) -> None:
        if len(request) < 4:
            self._negative(SVC_ROUTINE, NRC_REQUEST_OUT_OF_RANGE)
            return
        rid = (request[2] << 8) | request[3]
        routine = self.routines.get(rid)
        if routine is None:
            self._negative(SVC_ROUTINE, NRC_REQUEST_OUT_OF_RANGE)
            return
        if not self._check_write_access(SVC_ROUTINE):
            return
        result = routine()
        self._positive(SVC_ROUTINE, request[1:4] + result)


class UdsClient:
    """Tester-side client with blocking-style request/response over the
    event kernel (runs the simulator until the response arrives)."""

    def __init__(self, sim: Simulator, endpoint: IsoTpEndpoint,
                 timeout: float = 1.0) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.timeout = timeout
        self._responses: List[bytes] = []
        endpoint.on_message = self._responses.append

    def request(self, data: bytes) -> bytes:
        """Send a request, run the sim until the response (or timeout)."""
        before = len(self._responses)
        self.endpoint.send(data)
        deadline = self.sim.now + self.timeout
        while len(self._responses) == before:
            if self.sim.peek_time() is None or self.sim.now >= deadline:
                raise TimeoutError("no diagnostic response")
            self.sim.step()
        response = self._responses[-1]
        if response and response[0] == _NEGATIVE:
            raise NegativeResponse(response[1], response[2])
        return response

    # Convenience wrappers ------------------------------------------------
    def start_session(self, session: UdsSession) -> None:
        self.request(bytes([SVC_SESSION, session.value]))

    def request_seed(self) -> bytes:
        response = self.request(bytes([SVC_SECURITY, 0x01]))
        return response[2:]

    def send_key(self, key: bytes) -> None:
        self.request(bytes([SVC_SECURITY, 0x02]) + key)

    def unlock(self, algorithm: SeedKeyAlgorithm) -> None:
        """Legitimate unlock: compute the key with the shared algorithm."""
        seed = self.request_seed()
        if any(seed):
            self.send_key(algorithm.compute_key(seed))

    def read_did(self, did: int) -> bytes:
        response = self.request(bytes([SVC_READ_DID, did >> 8, did & 0xFF]))
        return response[3:]

    def write_did(self, did: int, value: bytes) -> None:
        self.request(bytes([SVC_WRITE_DID, did >> 8, did & 0xFF]) + value)

    def routine(self, rid: int) -> bytes:
        response = self.request(bytes([SVC_ROUTINE, 0x01, rid >> 8, rid & 0xFF]))
        return response[4:]

    def ecu_reset(self) -> None:
        self.request(bytes([SVC_RESET, 0x01]))
