"""ISO 15765-2 (ISO-TP) segmented transport over CAN.

Carries diagnostic payloads up to 4095 bytes over 8-byte CAN frames:

- **Single frame** (SF): PCI ``0x0L`` + up to 7 data bytes.
- **First frame** (FF): PCI ``0x1L LL`` (12-bit length) + 6 data bytes.
- **Flow control** (FC): PCI ``0x30`` + block size + separation time,
  sent by the receiver after the FF.
- **Consecutive frames** (CF): PCI ``0x2N`` (4-bit sequence) + 7 bytes.

The model honours block-size pacing and sequence-number checking -- enough
fidelity for the diagnostics experiments (and for the gateway to observe
realistic multi-frame diagnostic bursts).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator

MAX_ISOTP_LEN = 4095
_FC_CONTINUE = 0x30


class IsoTpError(Exception):
    """Transport-level failure (bad sequence, overflow, timeout)."""


class IsoTpEndpoint:
    """One side of an ISO-TP link.

    ``tx_id``/``rx_id`` are the CAN ids this endpoint transmits on and
    listens to (the peer uses them swapped).  Received complete payloads
    are delivered to ``on_message``.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        name: str,
        tx_id: int,
        rx_id: int,
        block_size: int = 8,
        st_min: float = 1e-3,
    ) -> None:
        self.sim = sim
        self.name = name
        self.tx_id = tx_id
        self.rx_id = rx_id
        self.block_size = block_size
        self.st_min = st_min
        self.node: CanNode = bus.nodes.get(name) or bus.attach(name)
        self.node.on_receive(self._on_frame)
        self.on_message: Optional[Callable[[bytes], None]] = None

        # Receive reassembly state.
        self._rx_buffer = bytearray()
        self._rx_expected_len = 0
        self._rx_next_seq = 0
        self._rx_frames_until_fc = 0
        # Transmit state.
        self._tx_queue: List[bytes] = []
        self._tx_chunks: List[bytes] = []
        self._tx_seq = 0
        self._tx_awaiting_fc = False
        self._tx_frames_left_in_block = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, payload: bytes) -> None:
        """Send one ISO-TP message (segmented as needed)."""
        if len(payload) > MAX_ISOTP_LEN:
            raise IsoTpError(f"payload {len(payload)}B exceeds ISO-TP limit")
        if len(payload) <= 7:
            self.node.send(CanFrame(
                self.tx_id,
                bytes([len(payload)]) + payload + bytes(7 - len(payload)),
            ))
            self.messages_sent += 1
            return
        # Multi-frame: FF now, CFs after flow control.
        first = payload[:6]
        rest = payload[6:]
        self._tx_chunks = [rest[i : i + 7] for i in range(0, len(rest), 7)]
        self._tx_seq = 1
        self._tx_awaiting_fc = True
        length = len(payload)
        self.node.send(CanFrame(
            self.tx_id,
            bytes([0x10 | (length >> 8), length & 0xFF]) + first,
        ))

    def _send_next_cf(self) -> None:
        if not self._tx_chunks:
            return
        if self._tx_awaiting_fc:
            return
        if self._tx_frames_left_in_block == 0:
            self._tx_awaiting_fc = True
            return
        chunk = self._tx_chunks.pop(0)
        self.node.send(CanFrame(
            self.tx_id,
            bytes([0x20 | (self._tx_seq & 0xF)]) + chunk + bytes(7 - len(chunk)),
        ))
        self._tx_seq = (self._tx_seq + 1) & 0xF
        self._tx_frames_left_in_block -= 1
        if self._tx_chunks:
            self.sim.schedule(self.st_min, self._send_next_cf)
        else:
            self.messages_sent += 1

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_frame(self, frame: CanFrame) -> None:
        if frame.can_id != self.rx_id or frame.dlc == 0:
            return
        pci = frame.data[0] & 0xF0
        if pci == 0x00:  # single frame
            length = frame.data[0] & 0x0F
            if length == 0 or length > 7 or frame.dlc < 1 + length:
                self.errors += 1
                return
            self._deliver(bytes(frame.data[1 : 1 + length]))
        elif pci == 0x10:  # first frame
            if frame.dlc < 8:
                self.errors += 1
                return
            self._rx_expected_len = ((frame.data[0] & 0x0F) << 8) | frame.data[1]
            self._rx_buffer = bytearray(frame.data[2:8])
            self._rx_next_seq = 1
            self._rx_frames_until_fc = self.block_size
            self._send_fc()
        elif pci == 0x20:  # consecutive frame
            seq = frame.data[0] & 0x0F
            if not self._rx_expected_len:
                self.errors += 1
                return
            if seq != self._rx_next_seq:
                self.errors += 1
                self._rx_expected_len = 0
                return
            self._rx_next_seq = (self._rx_next_seq + 1) & 0xF
            self._rx_buffer.extend(frame.data[1:8])
            if len(self._rx_buffer) >= self._rx_expected_len:
                payload = bytes(self._rx_buffer[: self._rx_expected_len])
                self._rx_expected_len = 0
                self._deliver(payload)
                return
            self._rx_frames_until_fc -= 1
            if self._rx_frames_until_fc == 0:
                self._rx_frames_until_fc = self.block_size
                self._send_fc()
        elif pci == _FC_CONTINUE:  # flow control for our transmission
            # The FC may arrive before our pump tick notices the block is
            # exhausted; credit the new block either way and restart the
            # pump only if it actually stopped (avoids a duplicate chain).
            block_size = frame.data[1] if frame.dlc >= 2 else 0
            was_awaiting = self._tx_awaiting_fc
            self._tx_awaiting_fc = False
            self._tx_frames_left_in_block = block_size if block_size else 0xFFFF
            if was_awaiting:
                self._send_next_cf()

    def _send_fc(self) -> None:
        self.node.send(CanFrame(
            self.tx_id,
            bytes([_FC_CONTINUE, self.block_size, 0]) + bytes(5),
        ))

    def _deliver(self, payload: bytes) -> None:
        self.messages_received += 1
        if self.on_message is not None:
            self.on_message(payload)
