"""Seed/key recovery attack against UDS SecurityAccess (experiment E15).

Attack chain (the standard aftermarket-tool / chip-tuning break):

1. **Eavesdrop** one legitimate SecurityAccess exchange on the bus
   (the tester in the repair shop unlocks the ECU; the attacker's dongle
   records the seed and key frames).
2. **Recover** the transform: for the fixed-XOR family one pair suffices.
3. **Unlock** the ECU at will and write protected identifiers.

Against :class:`~repro.diag.seedkey.CmacSeedKey` step 2 fails: the pair
reveals nothing about the secret, and online guessing hits the attempt
lockout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.diag.seedkey import XorSeedKey
from repro.diag.uds import NegativeResponse, UdsClient, UdsSession
from repro.ivn.canbus import CanBus
from repro.ivn.frame import CanFrame


@dataclass
class SniffedExchange:
    seed: bytes
    key: bytes


class SeedKeyRecoveryAttack:
    """Passive recovery + active exploitation of weak SecurityAccess."""

    def __init__(self, bus: CanBus, request_id: int, response_id: int) -> None:
        """``request_id``/``response_id``: the diagnostic CAN id pair to
        watch (tester->ECU and ECU->tester)."""
        self.request_id = request_id
        self.response_id = response_id
        self.exchanges: List[SniffedExchange] = []
        self._pending_seed: Optional[bytes] = None
        bus.tap(self._observe)

    def _observe(self, frame: CanFrame) -> None:
        # Single-frame ISO-TP only (seed/key exchanges fit in one frame).
        if frame.dlc < 2 or (frame.data[0] & 0xF0) != 0x00:
            return
        length = frame.data[0] & 0x0F
        payload = frame.data[1 : 1 + length]
        if frame.can_id == self.response_id and len(payload) >= 3 \
                and payload[0] == 0x67 and payload[1] == 0x01:
            seed = payload[2:]
            if any(seed):
                self._pending_seed = bytes(seed)
        elif frame.can_id == self.request_id and len(payload) >= 3 \
                and payload[0] == 0x27 and payload[1] == 0x02:
            if self._pending_seed is not None:
                self.exchanges.append(
                    SniffedExchange(self._pending_seed, bytes(payload[2:]))
                )
                self._pending_seed = None

    # ------------------------------------------------------------------
    def recover_xor_constant(self) -> Optional[bytes]:
        """Invert the XOR transform from the first sniffed exchange;
        cross-check against any further ones."""
        if not self.exchanges:
            return None
        candidate = XorSeedKey.recover_constant(
            self.exchanges[0].seed, self.exchanges[0].key,
        )
        algorithm = XorSeedKey(candidate)
        for exchange in self.exchanges[1:]:
            if algorithm.compute_key(exchange.seed) != exchange.key:
                return None  # not the XOR family (e.g. CMAC-based)
        return candidate

    @staticmethod
    def exploit(client: UdsClient, constant: bytes) -> bool:
        """Unlock a fresh session using the recovered constant."""
        algorithm = XorSeedKey(constant)
        try:
            client.start_session(UdsSession.EXTENDED)
            client.unlock(algorithm)
            return True
        except (NegativeResponse, TimeoutError):
            return False

    @staticmethod
    def online_bruteforce(client: UdsClient, rng: random.Random,
                          attempts: int) -> Tuple[bool, int]:
        """Fallback when recovery fails: guess keys online.

        Returns (unlocked, attempts_used).  Against a 32-bit key space
        with a 3-attempt lockout this is hopeless -- which is the point.
        """
        try:
            client.start_session(UdsSession.EXTENDED)
        except NegativeResponse:
            return (False, 0)
        for attempt in range(1, attempts + 1):
            try:
                seed = client.request_seed()
                client.send_key(rng.randbytes(len(seed)))
                return (True, attempt)
            except NegativeResponse as exc:
                if exc.nrc == 0x36:  # exceededNumberOfAttempts
                    return (False, attempt)
            except TimeoutError:
                return (False, attempt)
        return (False, attempts)
