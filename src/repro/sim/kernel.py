"""Event-calendar simulation kernel.

The kernel is deliberately small: a heap of pending events, a current time,
and run-loop variants (``run_until``, ``run``, ``step``).  Components built on
top of it (buses, ECUs, radios) schedule callbacks; there is no implicit
global state, so multiple independent simulators can coexist in one process
(used heavily by the test suite and by parameter sweeps).

Time is a ``float`` in **seconds**.  Determinism guarantees:

- events at equal times fire in scheduling order (monotonic sequence number);
- an explicit integer ``priority`` may be used to order same-time events
  regardless of scheduling order (lower fires first).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    priority: int
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; callers may :meth:`cancel` it
    before it fires.  A cancelled event stays in the heap but is skipped by
    the run loop (lazy deletion).
    """

    __slots__ = ("time", "priority", "action", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        action: Callable[..., Any],
        args: tuple,
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.action = action
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.action, "__name__", repr(self.action))
        return f"<Event t={self.time:.6f} {name} [{state}]>"


class Simulator:
    """A discrete-event simulator.

    >>> sim = Simulator()
    >>> log = []
    >>> _ = sim.schedule(1.0, log.append, "a")
    >>> _ = sim.schedule(0.5, log.append, "b")
    >>> sim.run()
    >>> log
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_HeapEntry] = []
        self._seq = 0
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.event.cancelled)

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be >= 0.  Returns a cancellable :class:`Event`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, action, args, priority)
        self._seq += 1
        heapq.heappush(self._heap, _HeapEntry(time, priority, self._seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry.event
            if event.cancelled:
                continue
            self._now = entry.time
            event.fired = True
            self._processed += 1
            event.action(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the calendar is empty (or ``max_events`` executed).

        Returns the number of events executed by this call.
        """
        executed = 0
        while max_events is None or executed < max_events:
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(self, end_time: float) -> int:
        """Run all events with time <= ``end_time``; advance clock to it.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._heap:
            entry = self._heap[0]
            if entry.event.cancelled:
                heapq.heappop(self._heap)
                continue
            if entry.time > end_time:
                break
            self.step()
            executed += 1
        if end_time > self._now:
            self._now = end_time
        return executed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the calendar is empty."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Process:
    """Coroutine-style process on top of :class:`Simulator`.

    The generator passed in yields delays (floats, seconds); the process
    resumes after each delay.  This gives sequential-looking code for
    naturally sequential behaviours (e.g. an ECU boot sequence) without a
    full process-interaction framework.

    >>> sim = Simulator()
    >>> out = []
    >>> def worker():
    ...     out.append(("start", sim.now))
    ...     yield 2.0
    ...     out.append(("done", sim.now))
    >>> p = Process(sim, worker())
    >>> sim.run()
    >>> out
    [('start', 0.0), ('done', 2.0)]
    """

    def __init__(self, sim: Simulator, generator: Iterator[float]) -> None:
        self._sim = sim
        self._gen = generator
        self.finished = False
        self._event: Optional[Event] = sim.schedule(0.0, self._resume)

    def _resume(self) -> None:
        try:
            delay = next(self._gen)
        except StopIteration:
            self.finished = True
            self._event = None
            return
        if not isinstance(delay, (int, float)) or delay < 0:
            raise SimulationError(f"process yielded invalid delay {delay!r}")
        self._event = self._sim.schedule(float(delay), self._resume)

    def cancel(self) -> None:
        """Stop the process before its next resumption."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.finished = True
