"""Structured simulation tracing.

Components emit :class:`TraceRecord` entries (time, source, kind, payload
dict) into a shared :class:`TraceRecorder`.  Analyses and intrusion-detection
experiments replay these traces rather than re-running the simulation, and
the test suite asserts on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``kind`` is a dotted event name (e.g. ``"can.tx"``, ``"ids.alert"``,
    ``"gateway.drop"``); ``data`` carries event-specific fields.
    """

    time: float
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only in-memory trace with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self.dropped = 0

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        """Record an event; notify live listeners."""
        record = TraceRecord(time, source, kind, data)
        if self._capacity is not None and len(self._records) >= self._capacity:
            self.dropped += 1
        else:
            self._records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked on every future record."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceRecord]:
        """All records, optionally filtered by kind prefix and/or source."""
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind == kind or r.kind.startswith(kind + ".")]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def count(self, kind: Optional[str] = None, source: Optional[str] = None) -> int:
        """Number of matching records."""
        return len(self.records(kind=kind, source=source))

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent matching record, or ``None``."""
        matches = self.records(kind=kind)
        return matches[-1] if matches else None

    def clear(self) -> None:
        """Drop all stored records (listeners stay subscribed)."""
        self._records.clear()
        self.dropped = 0
