"""Discrete-event simulation kernel.

Every time-based substrate in :mod:`repro` (in-vehicle networks, V2X radio,
ECU task execution, attack schedules) runs on this kernel.  The kernel is a
classic event-calendar design: events are ``(time, priority, seq, action)``
tuples kept in a binary heap, executed in nondecreasing time order with a
deterministic tie-break, so simulations are exactly reproducible for a fixed
seed.

Public surface:

- :class:`~repro.sim.kernel.Simulator` -- the event calendar.
- :class:`~repro.sim.kernel.Event` -- a scheduled, cancellable event handle.
- :class:`~repro.sim.kernel.Process` -- coroutine-style process helper.
- :class:`~repro.sim.rng.RngStreams` -- named, independently seeded RNG streams.
- :class:`~repro.sim.trace.TraceRecorder` -- structured event trace.
"""

from repro.sim.kernel import Event, Process, Simulator, SimulationError
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder, TraceRecord

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "SimulationError",
    "RngStreams",
    "TraceRecorder",
    "TraceRecord",
]
