"""Named, independently seeded random streams.

Reproducibility discipline: a simulation takes one master seed; every
stochastic component asks :class:`RngStreams` for a *named* stream.  Stream
seeds are derived by hashing ``(master_seed, name)``, so adding a new
component never perturbs the random numbers drawn by existing ones -- a
property parameter sweeps rely on when comparing architecture variants under
identical workloads.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """Factory and cache of named :class:`random.Random` streams.

    >>> streams = RngStreams(42)
    >>> a1 = streams.get("channel").random()
    >>> b1 = streams.get("attacker").random()
    >>> streams2 = RngStreams(42)
    >>> a1 == streams2.get("channel").random()
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """Create a child stream-space (for a sub-simulation)."""
        return RngStreams(derive_seed(self.master_seed, f"fork:{name}"))

    def randbytes(self, name: str, n: int) -> bytes:
        """Draw ``n`` random bytes from the named stream."""
        return self.get(name).randbytes(n)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
