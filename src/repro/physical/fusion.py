"""ADAS sensor fusion with plausibility gating.

The fusion module is both a consumer of sensor data (§2: "sensor data is
accumulated into a Sensor Fusion module") and the natural place for
sensor-attack *defence*: cross-sensor consistency checks reject readings
that contradict dead reckoning or each other.  Experiment E12 measures how
much of each spoofing attack this gating catches.

Defences implemented:

- **GPS innovation gate**: reject a fix whose distance from the
  dead-reckoned position exceeds a bound that grows with time since the
  last accepted fix.
- **TPMS rate gate**: reject pressure readings that change faster than
  physics allows (a blowout is fast, but not instantaneous-to-zero).
- **LIDAR persistence gate**: a target must be seen in ``k`` consecutive
  scans (and move consistently) before it is acted upon; naive phantom
  injection produces targets that appear at fixed sensor-relative
  positions regardless of ego motion, failing the world-frame consistency
  check.
- **Accelerometer spectral gate**: flag sustained narrow-band oscillation
  far above vehicle dynamics bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.physical.sensors import GpsSensor, LidarSensor, LidarTarget, TpmsSensor
from repro.physical.vehicle import Vehicle


@dataclass
class FusionEstimate:
    """The fused vehicle estimate plus anomaly flags for the cycle."""

    position: Tuple[float, float]
    speed: float
    anomalies: List[str] = field(default_factory=list)
    confirmed_targets: List[LidarTarget] = field(default_factory=list)

    @property
    def attack_suspected(self) -> bool:
        return bool(self.anomalies)


class SensorFusion:
    """Cross-sensor plausibility fusion for one vehicle."""

    def __init__(
        self,
        vehicle: Vehicle,
        gps: GpsSensor,
        tpms: Optional[TpmsSensor] = None,
        lidar: Optional[LidarSensor] = None,
        gps_gate_base: float = 15.0,
        gps_gate_growth: float = 10.0,
        tpms_max_rate_kpa_s: float = 50.0,
        lidar_persistence: int = 3,
        lidar_match_radius: float = 3.0,
    ) -> None:
        self.vehicle = vehicle
        self.gps = gps
        self.tpms = tpms
        self.lidar = lidar
        self.gps_gate_base = gps_gate_base
        self.gps_gate_growth = gps_gate_growth
        self.tpms_max_rate = tpms_max_rate_kpa_s
        self.lidar_persistence = lidar_persistence
        self.lidar_match_radius = lidar_match_radius

        self._estimate = vehicle.state.position
        self._last_fix_age = 0.0
        self._last_tpms: Dict[int, Tuple[float, float]] = {}
        self._track_history: List[List[Tuple[float, float]]] = []
        self.rejected_gps = 0
        self.rejected_tpms = 0
        self.rejected_lidar = 0

    # ------------------------------------------------------------------
    def _dead_reckon(self, dt: float) -> Tuple[float, float]:
        s = self.vehicle.state
        return (
            self._estimate[0] + s.speed * math.cos(s.heading) * dt,
            self._estimate[1] + s.speed * math.sin(s.heading) * dt,
        )

    def _world_targets(self) -> List[Tuple[float, float, LidarTarget]]:
        s = self.vehicle.state
        out = []
        for target in self.lidar.scan():
            angle = s.heading + target.bearing
            out.append((
                s.x + target.range_m * math.cos(angle),
                s.y + target.range_m * math.sin(angle),
                target,
            ))
        return out

    def step(self, dt: float, now: float = 0.0) -> FusionEstimate:
        """One fusion cycle: read sensors, gate, fuse."""
        anomalies: List[str] = []
        predicted = self._dead_reckon(dt)
        self._last_fix_age += dt

        # --- GPS innovation gate -------------------------------------
        fix = self.gps.read()
        gate = self.gps_gate_base + self.gps_gate_growth * self._last_fix_age
        innovation = math.hypot(fix[0] - predicted[0], fix[1] - predicted[1])
        if innovation <= gate:
            # Complementary blend: trust GPS but keep continuity.
            alpha = 0.7
            self._estimate = (
                alpha * fix[0] + (1 - alpha) * predicted[0],
                alpha * fix[1] + (1 - alpha) * predicted[1],
            )
            self._last_fix_age = 0.0
        else:
            anomalies.append(f"gps innovation {innovation:.1f}m > gate {gate:.1f}m")
            self.rejected_gps += 1
            self._estimate = predicted

        # --- TPMS rate gate -------------------------------------------
        if self.tpms is not None:
            for sid, pressure in self.tpms.read_all().items():
                prev = self._last_tpms.get(sid)
                if prev is not None:
                    prev_pressure, prev_time = prev
                    elapsed = max(1e-6, now - prev_time)
                    rate = abs(pressure - prev_pressure) / elapsed
                    if rate > self.tpms_max_rate:
                        anomalies.append(
                            f"tpms {sid:#x} rate {rate:.0f} kPa/s implausible"
                        )
                        self.rejected_tpms += 1
                        continue  # keep previous value
                self._last_tpms[sid] = (pressure, now)

        # --- LIDAR persistence gate -----------------------------------
        confirmed: List[LidarTarget] = []
        if self.lidar is not None:
            world = self._world_targets()
            new_history: List[List[Tuple[float, float]]] = []
            for (wx, wy, target) in world:
                matched = None
                for track in self._track_history:
                    tx, ty = track[-1]
                    if math.hypot(wx - tx, wy - ty) <= self.lidar_match_radius:
                        matched = track
                        break
                if matched is not None:
                    self._track_history.remove(matched)
                    matched.append((wx, wy))
                    new_history.append(matched)
                    if len(matched) >= self.lidar_persistence:
                        confirmed.append(target)
                else:
                    new_history.append([(wx, wy)])
                    if self.lidar_persistence <= 1:
                        confirmed.append(target)
            rejected_now = sum(
                1 for track in self._track_history if len(track) < self.lidar_persistence
            )
            self.rejected_lidar += rejected_now
            if rejected_now:
                anomalies.append(f"lidar dropped {rejected_now} non-persistent tracks")
            self._track_history = new_history

        return FusionEstimate(
            position=self._estimate,
            speed=self.vehicle.state.speed,
            anomalies=anomalies,
            confirmed_targets=confirmed,
        )
