"""Cyber-physical substrate: vehicle dynamics, sensors, fusion, emissions.

The paper stresses that an automotive is a cyber-physical system whose
*physical* domain both leaks information (side channels, §4.2) and can be
manipulated to deceive the cyber domain (sensor spoofing, §4.1).  This
package provides:

- :mod:`repro.physical.vehicle` -- planar kinematic vehicle model.
- :mod:`repro.physical.sensors` -- GPS, TPMS, LIDAR, accelerometer and
  battery sensors, each with an explicit spoofing surface.
- :mod:`repro.physical.fusion` -- the ADAS sensor-fusion module with
  plausibility gating (the defence evaluated in E12).
- :mod:`repro.physical.emissions` -- Hamming-weight power-trace model over
  the software AES (the measurement channel attacked in E4).
"""

from repro.physical.vehicle import Vehicle, VehicleState
from repro.physical.sensors import (
    Accelerometer,
    BatterySensor,
    GpsSensor,
    LidarSensor,
    LidarTarget,
    TpmsSensor,
)
from repro.physical.fusion import FusionEstimate, SensorFusion
from repro.physical.emissions import PowerTraceModel, hamming_weight

__all__ = [
    "Vehicle",
    "VehicleState",
    "Accelerometer",
    "BatterySensor",
    "GpsSensor",
    "LidarSensor",
    "LidarTarget",
    "TpmsSensor",
    "FusionEstimate",
    "SensorFusion",
    "PowerTraceModel",
    "hamming_weight",
]
