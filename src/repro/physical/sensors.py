"""Sensor models with explicit spoofing surfaces.

Every sensor reads truth from a :class:`~repro.physical.vehicle.Vehicle`
(or its own internal physical state), adds noise, and -- crucially --
exposes a ``spoof(...)`` interface representing the attacker's physical
channel (RF for GPS/TPMS, optical for LIDAR, acoustic for the MEMS
accelerometer).  This keeps the attack surface explicit instead of letting
tests poke sensor internals.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.physical.vehicle import Vehicle


class GpsSensor:
    """GPS receiver: position plus Gaussian noise; RF spoofing overrides.

    Spoofing follows the civilian-GPS-spoofer literature the paper cites:
    the attacker transmits a stronger counterfeit constellation, so the
    receiver reports the attacker's chosen position (optionally drifting
    from the true one to avoid a detectable jump).
    """

    def __init__(self, vehicle: Vehicle, noise_std: float = 1.5, rng=None) -> None:
        self.vehicle = vehicle
        self.noise_std = noise_std
        self.rng = rng if rng is not None else random.Random()
        self._spoof_position: Optional[Tuple[float, float]] = None

    def spoof(self, position: Optional[Tuple[float, float]]) -> None:
        """Engage (or clear, with ``None``) a counterfeit position."""
        self._spoof_position = position

    @property
    def spoofed(self) -> bool:
        return self._spoof_position is not None

    def read(self) -> Tuple[float, float]:
        if self._spoof_position is not None:
            base = self._spoof_position
        else:
            base = self.vehicle.state.position
        return (
            base[0] + self.rng.gauss(0, self.noise_std),
            base[1] + self.rng.gauss(0, self.noise_std),
        )


class TpmsSensor:
    """Tire-pressure monitoring: four unauthenticated RF sensors.

    Per the cited TPMS case study, packets carry a fixed sensor id and no
    authentication, so an attacker can (a) track the vehicle by the ids and
    (b) inject false pressure readings.
    """

    NOMINAL_KPA = 220.0

    def __init__(self, sensor_ids: Optional[List[int]] = None, rng=None) -> None:
        self.sensor_ids = sensor_ids or [0x1A2B3C01, 0x1A2B3C02, 0x1A2B3C03, 0x1A2B3C04]
        if len(self.sensor_ids) != 4:
            raise ValueError("TPMS needs exactly 4 sensor ids")
        self.rng = rng if rng is not None else random.Random()
        self.true_pressures: Dict[int, float] = {
            sid: self.NOMINAL_KPA for sid in self.sensor_ids
        }
        self._injected: Dict[int, float] = {}

    def spoof(self, sensor_id: int, pressure: Optional[float]) -> None:
        """Inject (or clear) a forged reading for one wheel sensor."""
        if sensor_id not in self.true_pressures:
            raise ValueError(f"unknown TPMS sensor {sensor_id:#x}")
        if pressure is None:
            self._injected.pop(sensor_id, None)
        else:
            self._injected[sensor_id] = pressure

    def read(self, sensor_id: int) -> float:
        if sensor_id in self._injected:
            return self._injected[sensor_id]
        return self.true_pressures[sensor_id] + self.rng.gauss(0, 1.0)

    def read_all(self) -> Dict[int, float]:
        return {sid: self.read(sid) for sid in self.sensor_ids}


@dataclass(frozen=True)
class LidarTarget:
    """One detected object: range (m), bearing (rad), and authenticity."""

    range_m: float
    bearing: float
    phantom: bool = False  # ground truth tag for evaluation only


class LidarSensor:
    """LIDAR: returns targets within range; laser spoofing adds phantoms.

    The cited $60 LIDAR hack replays laser pulses to create phantom
    obstacles at attacker-chosen ranges; we model exactly that surface.
    """

    def __init__(self, vehicle: Vehicle, max_range: float = 120.0, rng=None) -> None:
        self.vehicle = vehicle
        self.max_range = max_range
        self.rng = rng if rng is not None else random.Random()
        self.real_objects: List[Tuple[float, float]] = []  # world (x, y)
        self._phantoms: List[LidarTarget] = []

    def add_object(self, x: float, y: float) -> None:
        self.real_objects.append((x, y))

    def spoof_phantom(self, range_m: float, bearing: float) -> None:
        """Inject a phantom return (persists until cleared)."""
        if not 0 < range_m <= self.max_range:
            raise ValueError("phantom must be within sensor range")
        self._phantoms.append(LidarTarget(range_m, bearing, phantom=True))

    def clear_phantoms(self) -> None:
        self._phantoms.clear()

    def scan(self) -> List[LidarTarget]:
        state = self.vehicle.state
        targets: List[LidarTarget] = []
        for ox, oy in self.real_objects:
            dx, dy = ox - state.x, oy - state.y
            dist = math.hypot(dx, dy)
            if dist <= self.max_range:
                bearing = (math.atan2(dy, dx) - state.heading) % (2 * math.pi)
                noisy = max(0.1, dist + self.rng.gauss(0, 0.1))
                targets.append(LidarTarget(noisy, bearing))
        targets.extend(self._phantoms)
        return targets


class Accelerometer:
    """MEMS accelerometer; acoustic resonance injects a false oscillation.

    Models the "hacked using sound waves" result the paper cites: driving
    the MEMS proof mass at its resonant frequency biases the output.
    """

    def __init__(self, vehicle: Vehicle, noise_std: float = 0.05,
                 resonant_hz: float = 2_000.0, rng=None) -> None:
        self.vehicle = vehicle
        self.noise_std = noise_std
        self.resonant_hz = resonant_hz
        self.rng = rng if rng is not None else random.Random()
        self._acoustic_amplitude = 0.0
        self._acoustic_freq = 0.0

    def acoustic_inject(self, amplitude: float, freq_hz: float) -> None:
        """Apply an acoustic tone; effective only near resonance."""
        self._acoustic_amplitude = amplitude
        self._acoustic_freq = freq_hz

    def injection_gain(self) -> float:
        """Resonance response: Lorentzian around the resonant frequency."""
        if self._acoustic_amplitude == 0.0:
            return 0.0
        bandwidth = self.resonant_hz * 0.05
        detune = (self._acoustic_freq - self.resonant_hz) / bandwidth
        return 1.0 / (1.0 + detune * detune)

    def read(self, time: float) -> float:
        true_accel = self.vehicle.state.accel
        injected = (
            self._acoustic_amplitude
            * self.injection_gain()
            * math.sin(2 * math.pi * self._acoustic_freq * time)
        )
        return true_accel + injected + self.rng.gauss(0, self.noise_std)


class BatterySensor:
    """EV battery telemetry (state of charge, voltage); spoofable firmware.

    The cited smart-battery firmware hack lets an attacker misreport
    charge state; fleet analytics and range estimation consume this value.
    """

    def __init__(self, capacity_kwh: float = 60.0, soc: float = 0.8, rng=None) -> None:
        if not 0 <= soc <= 1:
            raise ValueError("soc in [0, 1]")
        self.capacity_kwh = capacity_kwh
        self.true_soc = soc
        self.rng = rng if rng is not None else random.Random()
        self._reported_offset = 0.0

    def drain(self, kwh: float) -> None:
        self.true_soc = max(0.0, self.true_soc - kwh / self.capacity_kwh)

    def spoof_offset(self, offset: float) -> None:
        """Firmware-level misreporting: reported = true + offset."""
        self._reported_offset = offset

    def read_soc(self) -> float:
        return min(1.0, max(0.0, self.true_soc + self._reported_offset
                            + self.rng.gauss(0, 0.002)))
