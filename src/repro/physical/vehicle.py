"""Planar kinematic vehicle model.

A deliberately simple bicycle-free kinematics (position, heading, speed,
longitudinal acceleration, yaw rate) -- enough physics for sensor models,
dead reckoning, and V2X geometry, with no pretence of tyre dynamics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class VehicleState:
    """Immutable kinematic snapshot (SI units, radians)."""

    x: float = 0.0
    y: float = 0.0
    heading: float = 0.0
    speed: float = 0.0
    accel: float = 0.0
    yaw_rate: float = 0.0

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def distance_to(self, other: "VehicleState") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Vehicle:
    """A vehicle advancing under simple kinematics.

    >>> v = Vehicle(VehicleState(speed=10.0))
    >>> v.step(1.0)
    >>> round(v.state.x, 6)
    10.0
    """

    def __init__(self, state: VehicleState = VehicleState(), name: str = "ego") -> None:
        self.state = state
        self.name = name
        self.odometer = 0.0

    def set_controls(self, accel: float, yaw_rate: float) -> None:
        """Commanded longitudinal acceleration and yaw rate."""
        self.state = replace(self.state, accel=accel, yaw_rate=yaw_rate)

    def step(self, dt: float) -> VehicleState:
        """Advance ``dt`` seconds; returns the new state."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        s = self.state
        speed = max(0.0, s.speed + s.accel * dt)
        heading = (s.heading + s.yaw_rate * dt) % (2 * math.pi)
        # Integrate with the average speed over the step.
        avg_speed = (s.speed + speed) / 2
        x = s.x + avg_speed * math.cos(heading) * dt
        y = s.y + avg_speed * math.sin(heading) * dt
        self.odometer += avg_speed * dt
        self.state = VehicleState(x, y, heading, speed, s.accel, s.yaw_rate)
        return self.state
