"""Side-channel emission models.

The standard academic leakage model for power/EM analysis: the device's
instantaneous power draw during the AES first-round S-box stage is
proportional to the **Hamming weight** of the processed intermediate, plus
Gaussian measurement noise.  :class:`PowerTraceModel` runs our software AES
with the leak hook and converts the leaked intermediates into a 16-sample
trace (one sample per state byte).

With :class:`~repro.crypto.aes.MaskedAES` as the engine, the leaked
intermediates are masked and the traces decorrelate from the key -- the
countermeasure arm of experiment E4.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.crypto.aes import AES


def hamming_weight(value: int) -> int:
    """Number of set bits."""
    return bin(value).count("1")


class PowerTraceModel:
    """Produces (plaintext, trace) pairs for a given AES engine.

    ``noise_std`` is in Hamming-weight units (signal range 0..8); SNR is
    the knob the E4 sweep turns.
    """

    def __init__(self, engine: AES, noise_std: float = 1.0, rng=None) -> None:
        self.engine = engine
        self.noise_std = noise_std
        self.rng = rng if rng is not None else random.Random()

    def trace(self, plaintext: bytes) -> List[float]:
        """One 16-sample power trace for a single encryption."""
        leaked: List[int] = [0] * 16
        self.engine.encrypt_block(
            plaintext,
            leak=lambda rnd, idx, val: leaked.__setitem__(idx, val),
        )
        return [
            hamming_weight(v) + self.rng.gauss(0.0, self.noise_std) for v in leaked
        ]

    def collect(self, n_traces: int) -> Tuple[List[bytes], List[List[float]]]:
        """Acquire ``n_traces`` with uniformly random plaintexts."""
        plaintexts: List[bytes] = []
        traces: List[List[float]] = []
        for _ in range(n_traces):
            pt = bytes(self.rng.randrange(256) for _ in range(16))
            plaintexts.append(pt)
            traces.append(self.trace(pt))
        return plaintexts, traces
