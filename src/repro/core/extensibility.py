"""In-field extensibility: features, signed configuration, generations.

Section 5's drivers made concrete:

- **Feature registry**: capabilities with versions and activation state;
  "reserved" features can ship dark and be enabled in-field (bulk
  production: one hardware SKU, many configurations).
- **Signed configuration updates** with monotonic versions ("the flow for
  in-field updates which itself must be upgradable").
- **Capability negotiation**: two endpoints agree on the highest mutually
  supported protocol version (the V2X/communication evolution driver).
- **Generation cost model** for experiment E9: extensible architectures
  cost more up front (development + larger verification space) and less
  per subsequent generation; custom architectures are cheap now and
  re-engineered every generation.  The crossover generation is the
  paper's time-to-market trade-off, quantified.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.crypto import aes_cmac, cmac_verify


class UpdateRejected(Exception):
    """A configuration update failed authentication or versioning."""


@dataclass
class Feature:
    """One configurable capability."""

    name: str
    version: int = 1
    enabled: bool = False
    reserved: bool = False  # shipped dark ("reserved for future use")

    def to_dict(self) -> Dict:
        return {"name": self.name, "version": self.version,
                "enabled": self.enabled, "reserved": self.reserved}


@dataclass(frozen=True)
class ConfigUpdate:
    """A signed feature-configuration bundle."""

    config_version: int
    features: Tuple[Tuple[str, int, bool], ...]  # (name, version, enabled)
    blob: bytes
    tag: bytes


class ExtensibilityManager:
    """Feature registry + authenticated in-field reconfiguration."""

    def __init__(self, update_key: bytes, features: Optional[Iterable[Feature]] = None) -> None:
        if len(update_key) != 16:
            raise ValueError("update key is 16 bytes")
        self._key = update_key
        self.features: Dict[str, Feature] = {}
        for feature in features or []:
            self.register(feature)
        self.config_version = 0
        self.rejected_updates = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, feature: Feature) -> None:
        if feature.name in self.features:
            raise ValueError(f"feature {feature.name!r} already registered")
        self.features[feature.name] = feature

    def enabled_features(self) -> Set[str]:
        return {name for name, f in self.features.items() if f.enabled}

    def reserved_features(self) -> Set[str]:
        return {name for name, f in self.features.items() if f.reserved}

    def is_enabled(self, name: str) -> bool:
        feature = self.features.get(name)
        return feature is not None and feature.enabled

    # ------------------------------------------------------------------
    # Signed configuration updates
    # ------------------------------------------------------------------
    @staticmethod
    def build_update(key: bytes, config_version: int,
                     settings: Dict[str, Tuple[int, bool]]) -> ConfigUpdate:
        """Backend: create an authenticated bundle.

        ``settings`` maps feature name -> (version, enabled).
        """
        features = tuple(sorted(
            (name, version, enabled)
            for name, (version, enabled) in settings.items()
        ))
        blob = json.dumps(
            {"config_version": config_version, "features": features},
            sort_keys=True, separators=(",", ":"),
        ).encode()
        return ConfigUpdate(config_version, features, blob, aes_cmac(key, blob))

    def apply_update(self, update: ConfigUpdate) -> None:
        """Vehicle: verify tag + version, then reconfigure."""
        if not cmac_verify(self._key, update.blob, update.tag):
            self.rejected_updates += 1
            raise UpdateRejected("configuration authentication failed")
        if update.config_version <= self.config_version:
            self.rejected_updates += 1
            raise UpdateRejected(
                f"configuration rollback ({update.config_version} <= {self.config_version})"
            )
        body = json.loads(update.blob.decode())
        if body["config_version"] != update.config_version:
            self.rejected_updates += 1
            raise UpdateRejected("bundle metadata mismatch")
        for name, version, enabled in body["features"]:
            feature = self.features.get(name)
            if feature is None:
                # Unknown feature: register it (this is the extensibility
                # point -- new capabilities arriving in-field).
                self.features[name] = Feature(name, version, enabled, reserved=False)
                continue
            if version < feature.version:
                self.rejected_updates += 1
                raise UpdateRejected(f"feature {name!r} version rollback")
            feature.version = version
            feature.enabled = enabled
            if enabled:
                feature.reserved = False
        self.config_version = update.config_version

    # ------------------------------------------------------------------
    # Capability negotiation
    # ------------------------------------------------------------------
    @staticmethod
    def negotiate(local_versions: Set[int], remote_versions: Set[int]) -> Optional[int]:
        """Highest mutually supported protocol version, or None."""
        common = local_versions & remote_versions
        return max(common) if common else None


# ----------------------------------------------------------------------
# Architecture-generation cost model (experiment E9)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GenerationCostModel:
    """Cost model comparing extensible vs custom architectures.

    All costs in arbitrary engineering units.  Defaults reflect the
    qualitative claims of §6: extensibility costs more at first deployment
    (more behaviours to design and verify) and much less per follow-on
    generation (reconfigure instead of re-engineer).
    """

    custom_dev: float = 100.0
    custom_verify: float = 60.0
    custom_gen_reuse: float = 0.75        # each custom generation redoes 75%
    extensible_dev_factor: float = 1.6    # upfront development premium
    extensible_verify_factor: float = 2.2  # larger configuration space
    extensible_gen_cost: float = 25.0     # per-generation reconfig + delta verify

    def custom_cumulative(self, generations: int) -> List[float]:
        """Cumulative cost after each of ``generations`` products."""
        costs = []
        total = 0.0
        per_gen_first = self.custom_dev + self.custom_verify
        for gen in range(generations):
            if gen == 0:
                total += per_gen_first
            else:
                total += per_gen_first * self.custom_gen_reuse
            costs.append(total)
        return costs

    def extensible_cumulative(self, generations: int) -> List[float]:
        costs = []
        total = 0.0
        for gen in range(generations):
            if gen == 0:
                total += (self.custom_dev * self.extensible_dev_factor
                          + self.custom_verify * self.extensible_verify_factor)
            else:
                total += self.extensible_gen_cost
            costs.append(total)
        return costs

    def crossover_generation(self, max_generations: int = 20) -> Optional[int]:
        """First generation (1-based) where extensible is cheaper overall."""
        custom = self.custom_cumulative(max_generations)
        extensible = self.extensible_cumulative(max_generations)
        for gen, (c, e) in enumerate(zip(custom, extensible), start=1):
            if e < c:
                return gen
        return None

    def time_to_market_penalty(self) -> float:
        """Relative first-deployment latency (the §6 time-to-market cost)."""
        first_custom = self.custom_dev + self.custom_verify
        first_ext = (self.custom_dev * self.extensible_dev_factor
                     + self.custom_verify * self.extensible_verify_factor)
        return first_ext / first_custom
