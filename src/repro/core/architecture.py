"""The 4+1-layer vehicle security architecture facade.

Wires the substrates into one assessable object: CAN domains behind a
secure gateway (layer 2/3), SHE-equipped ECUs (layer 4), a V2X station
(layer 1), PKES/immobilizer (the +1), IDS sensors, a policy engine, and
an extensibility manager.  :meth:`VehicleArchitecture.assess` evaluates
threat coverage against the catalog and prices residual risk by the ASIL
of security-induced hazards -- the quantified version of the paper's
architecture discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.safety import DEFAULT_HAZARDS, Asil, Hazard
from repro.core.threat import (
    SecurityLayer,
    ThreatCatalog,
    default_catalog,
)
from repro.ecu.ecu import Ecu
from repro.gateway.router import SecureGateway
from repro.ids.base import Detector
from repro.ivn.canbus import CanBus
from repro.sim import Simulator, TraceRecorder


@dataclass
class ArchitectureReport:
    """Outcome of a security-architecture assessment."""

    deployed_layers: Set[SecurityLayer]
    covered_threats: List[str]
    uncovered_threats: List[str]
    residual_hazards: List[Hazard]

    @property
    def coverage_ratio(self) -> float:
        total = len(self.covered_threats) + len(self.uncovered_threats)
        return len(self.covered_threats) / total if total else 1.0

    @property
    def max_residual_asil(self) -> Asil:
        if not self.residual_hazards:
            return Asil.QM
        return max(h.asil for h in self.residual_hazards)

    def summary(self) -> str:
        lines = [
            f"layers deployed : {sorted(l.value for l in self.deployed_layers)}",
            f"threat coverage : {len(self.covered_threats)}/"
            f"{len(self.covered_threats) + len(self.uncovered_threats)}"
            f" ({self.coverage_ratio:.0%})",
            f"max residual    : {self.max_residual_asil}",
        ]
        for hazard in sorted(self.residual_hazards, key=lambda h: -h.asil):
            lines.append(f"  residual hazard: {hazard.name} [{hazard.asil}] "
                         f"via {hazard.induced_by_threat}")
        return "\n".join(lines)


class VehicleArchitecture:
    """Builder/facade for one vehicle's security architecture."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "vehicle",
        catalog: Optional[ThreatCatalog] = None,
        hazards: Optional[List[Hazard]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.catalog = catalog if catalog is not None else default_catalog()
        self.hazards = list(hazards) if hazards is not None else list(DEFAULT_HAZARDS)
        self.trace = trace if trace is not None else TraceRecorder()

        self.domains: Dict[str, CanBus] = {}
        self.gateway: Optional[SecureGateway] = None
        self.ecus: Dict[str, Ecu] = {}
        self.detectors: List[Detector] = []
        self.has_v2x_security = False
        self.has_access_protection = False
        self.has_secure_boot = False
        self.has_tamper_detection = False
        self.has_can_authentication = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_domain(self, name: str, bitrate: float = 500_000.0) -> CanBus:
        if name in self.domains:
            raise ValueError(f"domain {name!r} exists")
        bus = CanBus(self.sim, name=name, bitrate=bitrate, trace=self.trace)
        self.domains[name] = bus
        if self.gateway is not None:
            self.gateway.attach_domain(name, bus)
        return bus

    def install_gateway(self, gateway: SecureGateway) -> SecureGateway:
        self.gateway = gateway
        for name, bus in self.domains.items():
            gateway.attach_domain(name, bus)
        return gateway

    def add_ecu(self, ecu: Ecu, domain: str) -> Ecu:
        if domain not in self.domains:
            raise ValueError(f"unknown domain {domain!r}")
        ecu.attach_can(self.domains[domain])
        self.ecus[ecu.name] = ecu
        if ecu.she.has_key(2):  # BOOT_MAC_KEY slot provisioned
            self.has_secure_boot = True
        return ecu

    def install_ids(self, detector: Detector, domain: str) -> Detector:
        if domain not in self.domains:
            raise ValueError(f"unknown domain {domain!r}")
        detector.attach(self.domains[domain])
        self.detectors.append(detector)
        return detector

    # ------------------------------------------------------------------
    # Assessment
    # ------------------------------------------------------------------
    def deployed_layers(self) -> Set[SecurityLayer]:
        layers: Set[SecurityLayer] = set()
        if self.has_v2x_security:
            layers.add(SecurityLayer.SECURE_INTERFACES)
        if self.gateway is not None and self.gateway.firewall.rules:
            layers.add(SecurityLayer.SECURE_GATEWAY)
        if self.detectors or self.has_can_authentication:
            layers.add(SecurityLayer.SECURE_NETWORKS)
        if self.has_secure_boot or self.has_tamper_detection:
            layers.add(SecurityLayer.SECURE_PROCESSING)
        if self.has_access_protection:
            layers.add(SecurityLayer.PHYSICAL_PROTECTION)
        return layers

    def assess(self) -> ArchitectureReport:
        """Coverage + residual-risk report for the current configuration."""
        layers = self.deployed_layers()
        coverage = self.catalog.coverage(layers)
        covered = sorted(name for name, ok in coverage.items() if ok)
        uncovered = sorted(name for name, ok in coverage.items() if not ok)
        residual = [
            hazard for hazard in self.hazards
            if hazard.induced_by_threat in uncovered
        ]
        return ArchitectureReport(layers, covered, uncovered, residual)
