"""ISO 26262 ASIL determination and the safety/security interplay.

Section 3: functional safety classifies hazards by Automotive Safety
Integrity Level, from QM (no hazard) to ASIL D.  The level is determined
from three factors of the hazardous event: Severity (S0-S3), Exposure
(E0-E4) and Controllability (C0-C3), via the standard's table.  The
paper's point that "an external hack can cause the system to fail in a way
that harms other agents, reducing functional safety to a security issue"
is modelled by letting security threats *induce* hazards: a threat entry
can be bound to a hazard, and the architecture report (E14/architecture
assessment) then prices an uncovered threat at its hazard's ASIL.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional


class Severity(IntEnum):
    """S0 (no injuries) .. S3 (life-threatening/fatal)."""

    S0 = 0
    S1 = 1
    S2 = 2
    S3 = 3


class Exposure(IntEnum):
    """E0 (incredible) .. E4 (high probability)."""

    E0 = 0
    E1 = 1
    E2 = 2
    E3 = 3
    E4 = 4


class Controllability(IntEnum):
    """C0 (controllable in general) .. C3 (difficult/uncontrollable)."""

    C0 = 0
    C1 = 1
    C2 = 2
    C3 = 3


class Asil(IntEnum):
    """QM < A < B < C < D."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "QM" if self is Asil.QM else f"ASIL {self.name}"


def determine_asil(severity: Severity, exposure: Exposure,
                   controllability: Controllability) -> Asil:
    """The ISO 26262-3 ASIL determination table.

    S0, E0, or C0 always yields QM; otherwise the level rises with the sum
    of the three factors, topping out at D only for S3/E4/C3.

    >>> determine_asil(Severity.S3, Exposure.E4, Controllability.C3)
    <Asil.D: 4>
    >>> determine_asil(Severity.S1, Exposure.E1, Controllability.C1)
    <Asil.QM: 0>
    """
    if severity == Severity.S0 or exposure == Exposure.E0 or controllability == Controllability.C0:
        return Asil.QM
    # The standard's table is equivalent to this rank arithmetic.
    rank = int(severity) + int(exposure) + int(controllability)
    # rank ranges 3..10; QM below 7, then A..D.
    if rank <= 6:
        return Asil.QM
    return Asil(min(4, rank - 6))


@dataclass(frozen=True)
class Hazard:
    """A hazardous event from the HARA with its classification."""

    name: str
    severity: Severity
    exposure: Exposure
    controllability: Controllability
    description: str = ""
    induced_by_threat: Optional[str] = None  # ThreatCatalog entry name

    @property
    def asil(self) -> Asil:
        return determine_asil(self.severity, self.exposure, self.controllability)

    @property
    def is_security_induced(self) -> bool:
        return self.induced_by_threat is not None


# Representative hazards used by the examples and the architecture report.
DEFAULT_HAZARDS = [
    Hazard("unintended-braking", Severity.S3, Exposure.E4, Controllability.C3,
           "forged brake command at speed", induced_by_threat="can-spoof"),
    Hazard("loss-of-brake-signal", Severity.S3, Exposure.E4, Controllability.C2,
           "brake ECU silenced", induced_by_threat="bus-off"),
    Hazard("phantom-obstacle-swerve", Severity.S2, Exposure.E3, Controllability.C2,
           "emergency maneuver for a non-existent obstacle",
           induced_by_threat="lidar-phantom"),
    Hazard("wrong-position-estimate", Severity.S2, Exposure.E2, Controllability.C2,
           "navigation follows a spoofed fix", induced_by_threat="gps-spoofing"),
    Hazard("malicious-firmware", Severity.S3, Exposure.E2, Controllability.C3,
           "attacker firmware in a safety ECU", induced_by_threat="malicious-ota"),
    Hazard("false-v2x-warning", Severity.S2, Exposure.E3, Controllability.C1,
           "forged hazard warning causes hard braking",
           induced_by_threat="v2x-forgery"),
    Hazard("vehicle-theft", Severity.S0, Exposure.E3, Controllability.C3,
           "physical access via cracked immobilizer",
           induced_by_threat="immobilizer-crack"),
]
