"""Dynamic security / smartness / communication trade-off controller.

Section 5: "a car driving on a desolate, straight highway requires less
data analytics for pot-hole or pedestrian detection than when driving in a
busy city; this enables the car to adjust its communication bandwidth to
the cloud in real time."  The controller maps a driving context to an
*operating point* -- analytics load, cloud bandwidth, V2X verification
strictness, energy draw -- through a generic, extensible mode table (the
architecture requirement the paper derives), with hysteresis so noisy
context signals don't thrash the modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class DrivingContext(Enum):
    PARKED = "parked"
    HIGHWAY = "highway"
    RURAL = "rural"
    URBAN = "urban"
    DENSE_URBAN = "dense_urban"


@dataclass(frozen=True)
class OperatingPoint:
    """One row of the mode table.

    - ``analytics_load``: fraction of compute devoted to perception.
    - ``cloud_bandwidth_mbps``: uplink budget.
    - ``v2x_verify_fraction``: fraction of incoming V2X messages fully
      verified (the rest are spot-checked) -- the security/throughput
      knob of E6/E11.
    - ``power_w``: electrical draw of the above.
    """

    analytics_load: float
    cloud_bandwidth_mbps: float
    v2x_verify_fraction: float
    power_w: float

    def __post_init__(self) -> None:
        if not 0 <= self.analytics_load <= 1:
            raise ValueError("analytics_load in [0,1]")
        if not 0 <= self.v2x_verify_fraction <= 1:
            raise ValueError("v2x_verify_fraction in [0,1]")
        if self.cloud_bandwidth_mbps < 0 or self.power_w < 0:
            raise ValueError("bandwidth/power non-negative")


DEFAULT_MODE_TABLE: Dict[DrivingContext, OperatingPoint] = {
    DrivingContext.PARKED: OperatingPoint(0.05, 0.5, 1.0, 15.0),
    DrivingContext.HIGHWAY: OperatingPoint(0.35, 2.0, 0.6, 80.0),
    DrivingContext.RURAL: OperatingPoint(0.45, 1.0, 0.7, 95.0),
    DrivingContext.URBAN: OperatingPoint(0.75, 6.0, 0.9, 160.0),
    DrivingContext.DENSE_URBAN: OperatingPoint(0.95, 10.0, 1.0, 220.0),
}


@dataclass(frozen=True)
class ContextEstimate:
    """Sensor-derived context evidence fed to the controller."""

    speed: float            # m/s
    object_density: float   # tracked objects per scan
    v2x_neighbors: int      # distinct senders heard recently


def classify_context(estimate: ContextEstimate) -> DrivingContext:
    """Heuristic context classifier over fused evidence."""
    if estimate.speed < 0.5 and estimate.object_density < 1:
        return DrivingContext.PARKED
    if estimate.object_density >= 12 or estimate.v2x_neighbors >= 40:
        return DrivingContext.DENSE_URBAN
    if estimate.object_density >= 5 or estimate.v2x_neighbors >= 15:
        return DrivingContext.URBAN
    if estimate.speed > 22.0 and estimate.object_density < 3:
        return DrivingContext.HIGHWAY
    return DrivingContext.RURAL


class TradeoffController:
    """Hysteretic mode switcher over an extensible mode table.

    ``dwell_time``: minimum seconds between mode changes; prevents
    thrashing when context evidence is noisy.  New contexts/operating
    points can be registered in-field (the extensibility requirement).
    """

    def __init__(
        self,
        mode_table: Optional[Dict[DrivingContext, OperatingPoint]] = None,
        dwell_time: float = 5.0,
        initial: DrivingContext = DrivingContext.PARKED,
    ) -> None:
        self.mode_table = dict(mode_table) if mode_table else dict(DEFAULT_MODE_TABLE)
        self.dwell_time = dwell_time
        self.context = initial
        self._last_switch = -float("inf")
        self.switches: List[Tuple[float, DrivingContext]] = []

    @property
    def operating_point(self) -> OperatingPoint:
        return self.mode_table[self.context]

    def register_mode(self, context: DrivingContext, point: OperatingPoint) -> None:
        """In-field extension: add or replace an operating point."""
        self.mode_table[context] = point

    def update(self, time: float, estimate: ContextEstimate) -> OperatingPoint:
        """Feed new evidence; returns the (possibly unchanged) mode."""
        target = classify_context(estimate)
        if target != self.context and time - self._last_switch >= self.dwell_time:
            self.context = target
            self._last_switch = time
            self.switches.append((time, target))
        return self.operating_point

    # ------------------------------------------------------------------
    # Accounting over a drive (E11)
    # ------------------------------------------------------------------
    def integrate(self, timeline: List[Tuple[float, ContextEstimate]],
                  dt: float) -> Dict[str, float]:
        """Run a context timeline; return consumed energy (Wh), data (MB),
        and mean verification strictness."""
        energy_j = 0.0
        data_mb = 0.0
        verify_acc = 0.0
        for time, estimate in timeline:
            point = self.update(time, estimate)
            energy_j += point.power_w * dt
            data_mb += point.cloud_bandwidth_mbps * dt / 8.0
            verify_acc += point.v2x_verify_fraction
        n = max(1, len(timeline))
        return {
            "energy_wh": energy_j / 3600.0,
            "data_mb": data_mb,
            "mean_verify_fraction": verify_acc / n,
            "mode_switches": float(len(self.switches)),
        }
