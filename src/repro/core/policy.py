"""Centralized security policy engine.

The research direction the paper highlights ([3, 4, 20]): instead of
scattering security decisions across ECU firmware, express them as a
central, versioned *policy* -- rules over (subject, object, action,
context) -- enforced at the architecture's control points (gateway
firewall, hypervisor grants, SHE key usage, diagnostic access).  The
engine supports:

- first-match rule evaluation with default-deny;
- policy versioning with monotonicity (rollback protection);
- in-field update via CMAC-authenticated policy bundles (the update key
  lives in a SHE slot);
- enumeration of the reachable configuration space for the E14
  verification-burden experiment.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.crypto import aes_cmac, cmac_verify


class PolicyDecision(Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass(frozen=True)
class PolicyRule:
    """One policy assertion.

    ``subjects``/``objects``/``actions`` are sets of names, with ``"*"``
    as wildcard; ``contexts`` restricts applicability to named operating
    contexts (empty = any).
    """

    subjects: FrozenSet[str]
    objects: FrozenSet[str]
    actions: FrozenSet[str]
    decision: PolicyDecision
    contexts: FrozenSet[str] = frozenset()
    name: str = ""

    def matches(self, subject: str, obj: str, action: str, context: str) -> bool:
        def hit(field_values: FrozenSet[str], value: str) -> bool:
            return "*" in field_values or value in field_values

        if not (hit(self.subjects, subject) and hit(self.objects, obj)
                and hit(self.actions, action)):
            return False
        return not self.contexts or context in self.contexts

    def to_dict(self) -> Dict:
        return {
            "subjects": sorted(self.subjects),
            "objects": sorted(self.objects),
            "actions": sorted(self.actions),
            "decision": self.decision.value,
            "contexts": sorted(self.contexts),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PolicyRule":
        return cls(
            subjects=frozenset(data["subjects"]),
            objects=frozenset(data["objects"]),
            actions=frozenset(data["actions"]),
            decision=PolicyDecision(data["decision"]),
            contexts=frozenset(data.get("contexts", [])),
            name=data.get("name", ""),
        )


@dataclass
class SecurityPolicy:
    """A versioned, serialisable rule set."""

    version: int
    rules: List[PolicyRule] = field(default_factory=list)
    default: PolicyDecision = PolicyDecision.DENY

    def serialize(self) -> bytes:
        body = {
            "version": self.version,
            "default": self.default.value,
            "rules": [r.to_dict() for r in self.rules],
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def deserialize(cls, data: bytes) -> "SecurityPolicy":
        body = json.loads(data.decode())
        return cls(
            version=int(body["version"]),
            rules=[PolicyRule.from_dict(r) for r in body["rules"]],
            default=PolicyDecision(body["default"]),
        )


class PolicyEngine:
    """Evaluates and (securely) updates the active policy.

    ``update_key``: the 16-byte symmetric key authenticating policy
    bundles (held in a SHE slot on real silicon).
    """

    def __init__(self, policy: SecurityPolicy, update_key: Optional[bytes] = None) -> None:
        self.policy = policy
        self._update_key = update_key
        self.evaluations = 0
        self.denials = 0
        self.update_history: List[int] = [policy.version]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def check(self, subject: str, obj: str, action: str,
              context: str = "normal") -> PolicyDecision:
        """First-match evaluation with the policy default as fallback."""
        self.evaluations += 1
        for rule in self.policy.rules:
            if rule.matches(subject, obj, action, context):
                if rule.decision is PolicyDecision.DENY:
                    self.denials += 1
                return rule.decision
        if self.policy.default is PolicyDecision.DENY:
            self.denials += 1
        return self.policy.default

    def allows(self, subject: str, obj: str, action: str,
               context: str = "normal") -> bool:
        return self.check(subject, obj, action, context) is PolicyDecision.ALLOW

    # ------------------------------------------------------------------
    # In-field update
    # ------------------------------------------------------------------
    def export_update(self, new_policy: SecurityPolicy, key: bytes) -> Tuple[bytes, bytes]:
        """Backend side: produce an authenticated policy bundle."""
        blob = new_policy.serialize()
        return blob, aes_cmac(key, blob)

    def apply_update(self, blob: bytes, tag: bytes) -> None:
        """Vehicle side: verify and install a policy bundle.

        Raises ``PermissionError`` on a bad tag and ``ValueError`` on a
        version rollback.
        """
        if self._update_key is None:
            raise PermissionError("engine has no update key; updates disabled")
        if not cmac_verify(self._update_key, blob, tag):
            raise PermissionError("policy bundle authentication failed")
        candidate = SecurityPolicy.deserialize(blob)
        if candidate.version <= self.policy.version:
            raise ValueError(
                f"policy rollback rejected ({candidate.version} <= {self.policy.version})"
            )
        self.policy = candidate
        self.update_history.append(candidate.version)

    # ------------------------------------------------------------------
    # Verification-space analysis (E14)
    # ------------------------------------------------------------------
    def configuration_space(
        self,
        subjects: Iterable[str],
        objects: Iterable[str],
        actions: Iterable[str],
        contexts: Iterable[str] = ("normal",),
    ) -> int:
        """Size of the decision space a verifier must cover."""
        return (
            len(list(subjects)) * len(list(objects))
            * len(list(actions)) * len(list(contexts))
        )

    def decision_table(
        self,
        subjects: Iterable[str],
        objects: Iterable[str],
        actions: Iterable[str],
        contexts: Iterable[str] = ("normal",),
    ) -> Dict[Tuple[str, str, str, str], PolicyDecision]:
        """Exhaustive evaluation over a configuration space (E14 driver)."""
        table = {}
        for s, o, a, c in itertools.product(subjects, objects, actions, contexts):
            table[(s, o, a, c)] = self.check(s, o, a, c)
        return table
