"""Static analysis of security policies: shadowing, conflicts, coverage.

The paper's verification-needs argument (§5, §6) is not just about state
space size -- policies themselves accumulate defects as they are extended
in-field.  Three analyses a policy-review gate runs before signing an
update bundle:

- **Shadowed rules**: a rule that can never fire because earlier rules
  match a superset of its traffic.  Shadowed DENYs are latent security
  holes (someone *believed* the traffic was blocked).
- **Conflicts**: rule pairs whose match sets overlap with opposite
  decisions -- the outcome silently depends on rule order.
- **Coverage**: the fraction of a declared configuration space decided by
  explicit rules rather than the default (explicitness is auditable;
  default-reliance is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.policy import PolicyDecision, PolicyRule, SecurityPolicy


def _field_overlaps(a: frozenset, b: frozenset) -> bool:
    return "*" in a or "*" in b or bool(a & b)


def _field_covers(outer: frozenset, inner: frozenset) -> bool:
    """Does ``outer`` match everything ``inner`` matches?"""
    if "*" in outer:
        return True
    if "*" in inner:
        return False
    return inner <= outer


def _contexts_overlap(a: frozenset, b: frozenset) -> bool:
    return not a or not b or bool(a & b)


def _contexts_cover(outer: frozenset, inner: frozenset) -> bool:
    if not outer:
        return True
    if not inner:
        return False
    return inner <= outer


def rules_overlap(a: PolicyRule, b: PolicyRule) -> bool:
    """Can any single request match both rules?"""
    return (
        _field_overlaps(a.subjects, b.subjects)
        and _field_overlaps(a.objects, b.objects)
        and _field_overlaps(a.actions, b.actions)
        and _contexts_overlap(a.contexts, b.contexts)
    )


def rule_covers(outer: PolicyRule, inner: PolicyRule) -> bool:
    """Does ``outer`` match every request ``inner`` matches?"""
    return (
        _field_covers(outer.subjects, inner.subjects)
        and _field_covers(outer.objects, inner.objects)
        and _field_covers(outer.actions, inner.actions)
        and _contexts_cover(outer.contexts, inner.contexts)
    )


@dataclass(frozen=True)
class PolicyFinding:
    """One analysis result."""

    kind: str          # "shadowed" | "conflict"
    rule_index: int
    other_index: int
    detail: str


def find_shadowed_rules(policy: SecurityPolicy) -> List[PolicyFinding]:
    """Rules fully covered by an earlier rule (they can never fire)."""
    findings = []
    for i, rule in enumerate(policy.rules):
        for j in range(i):
            earlier = policy.rules[j]
            if rule_covers(earlier, rule):
                findings.append(PolicyFinding(
                    "shadowed", i, j,
                    f"rule {i} ({rule.name or rule.decision.value}) is "
                    f"unreachable: rule {j} ({earlier.name or earlier.decision.value}) "
                    f"matches a superset first",
                ))
                break
    return findings


def find_conflicts(policy: SecurityPolicy) -> List[PolicyFinding]:
    """Overlapping rule pairs with opposite decisions (order-sensitive)."""
    findings = []
    for i, rule in enumerate(policy.rules):
        for j in range(i + 1, len(policy.rules)):
            other = policy.rules[j]
            if rule.decision != other.decision and rules_overlap(rule, other):
                findings.append(PolicyFinding(
                    "conflict", i, j,
                    f"rules {i} and {j} overlap with opposite decisions "
                    f"({rule.decision.value} vs {other.decision.value}); "
                    f"outcome depends on ordering",
                ))
    return findings


def explicit_coverage(
    policy: SecurityPolicy,
    subjects: Sequence[str],
    objects: Sequence[str],
    actions: Sequence[str],
    contexts: Sequence[str] = ("normal",),
) -> float:
    """Fraction of the configuration space decided by an explicit rule."""
    total = 0
    explicit = 0
    for s, o, a, c in product(subjects, objects, actions, contexts):
        total += 1
        for rule in policy.rules:
            if rule.matches(s, o, a, c):
                explicit += 1
                break
    return explicit / total if total else 1.0


def audit(policy: SecurityPolicy) -> Dict[str, List[PolicyFinding]]:
    """Run all structural analyses; the policy-review gate's output."""
    return {
        "shadowed": find_shadowed_rules(policy),
        "conflicts": find_conflicts(policy),
    }
