"""Core: the extensible 4+1-layer security assurance architecture.

This package is the paper's primary subject matter made executable:

- :mod:`repro.core.threat` -- attack models (confidentiality / integrity /
  availability) and attack modes (§4), as a queryable taxonomy mapped to
  the concrete attack classes in :mod:`repro.attacks` and the layers that
  mitigate them.
- :mod:`repro.core.safety` -- ISO 26262 ASIL determination (severity x
  exposure x controllability) and the safety/security interplay of §3.
- :mod:`repro.core.policy` -- the centralized security policy engine of
  the research directions ([3, 4, 20]): declarative rules over subjects,
  objects, and actions, versioned and updatable in-field.
- :mod:`repro.core.extensibility` -- the in-field configurability
  machinery of §5: feature registry, signed configuration updates with
  rollback protection, capability negotiation.
- :mod:`repro.core.tradeoff` -- the dynamic security/smartness/bandwidth
  controller of §5 (highway vs city).
- :mod:`repro.core.architecture` -- the 4+1-layer facade wiring all the
  substrates into one vehicle (used by the examples and experiments).
"""

from repro.core.threat import (
    AttackModel,
    AttackMode,
    SecurityLayer,
    ThreatCatalog,
    ThreatEntry,
    default_catalog,
)
from repro.core.safety import (
    Asil,
    Controllability,
    Exposure,
    Hazard,
    Severity,
    determine_asil,
)
from repro.core.policy import (
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    SecurityPolicy,
)
from repro.core.extensibility import (
    ConfigUpdate,
    ExtensibilityManager,
    Feature,
    UpdateRejected,
)
from repro.core.tradeoff import DrivingContext, OperatingPoint, TradeoffController
from repro.core.architecture import ArchitectureReport, VehicleArchitecture
from repro.core.policy_analysis import (
    PolicyFinding,
    audit,
    explicit_coverage,
    find_conflicts,
    find_shadowed_rules,
)

__all__ = [
    "AttackModel",
    "AttackMode",
    "SecurityLayer",
    "ThreatCatalog",
    "ThreatEntry",
    "default_catalog",
    "Asil",
    "Controllability",
    "Exposure",
    "Hazard",
    "Severity",
    "determine_asil",
    "PolicyDecision",
    "PolicyEngine",
    "PolicyRule",
    "SecurityPolicy",
    "ConfigUpdate",
    "ExtensibilityManager",
    "Feature",
    "UpdateRejected",
    "DrivingContext",
    "OperatingPoint",
    "TradeoffController",
    "ArchitectureReport",
    "VehicleArchitecture",
    "PolicyFinding",
    "audit",
    "explicit_coverage",
    "find_conflicts",
    "find_shadowed_rules",
]
