"""Threat taxonomy: attack models, attack modes, mitigating layers.

Section 4 of the paper organises automotive security as *attack models*
(what the attacker wants: confidentiality, integrity, availability) times
*attack modes* (how: side channels, in-field communication, physical
access).  The catalog cross-references each concrete attack implemented in
:mod:`repro.attacks` with its model, mode, and the architecture layers
(§7) expected to mitigate it -- making "which layer buys what" a queryable
property instead of prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set


class AttackModel(Enum):
    """The attacker's objective (CIA)."""

    CONFIDENTIALITY = "confidentiality"
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"


class AttackMode(Enum):
    """The attacker's channel."""

    SIDE_CHANNEL = "side_channel"
    IN_FIELD_COMMUNICATION = "in_field_communication"
    IN_VEHICLE_NETWORK = "in_vehicle_network"
    SENSOR_CHANNEL = "sensor_channel"
    PHYSICAL_ACCESS = "physical_access"
    FAULT_INJECTION = "fault_injection"


class SecurityLayer(Enum):
    """The 4+1 assurance layers of §7."""

    SECURE_INTERFACES = "secure_interfaces"
    SECURE_GATEWAY = "secure_gateway"
    SECURE_NETWORKS = "secure_networks"
    SECURE_PROCESSING = "secure_processing"
    PHYSICAL_PROTECTION = "physical_protection"  # the "+1"


@dataclass(frozen=True)
class ThreatEntry:
    """One catalogued threat."""

    name: str
    model: AttackModel
    mode: AttackMode
    mitigating_layers: FrozenSet[SecurityLayer]
    attack_class: str  # dotted path into repro.attacks
    description: str = ""


class ThreatCatalog:
    """Queryable collection of threats."""

    def __init__(self, entries: Optional[List[ThreatEntry]] = None) -> None:
        self._entries: Dict[str, ThreatEntry] = {}
        for entry in entries or []:
            self.add(entry)

    def add(self, entry: ThreatEntry) -> None:
        if entry.name in self._entries:
            raise ValueError(f"duplicate threat {entry.name!r}")
        self._entries[entry.name] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def get(self, name: str) -> Optional[ThreatEntry]:
        return self._entries.get(name)

    def by_model(self, model: AttackModel) -> List[ThreatEntry]:
        return [e for e in self if e.model == model]

    def by_mode(self, mode: AttackMode) -> List[ThreatEntry]:
        return [e for e in self if e.mode == mode]

    def mitigated_by(self, layer: SecurityLayer) -> List[ThreatEntry]:
        return [e for e in self if layer in e.mitigating_layers]

    def coverage(self, deployed_layers: Set[SecurityLayer]) -> Dict[str, bool]:
        """Per-threat: is at least one mitigating layer deployed?"""
        return {
            e.name: bool(e.mitigating_layers & deployed_layers) for e in self
        }

    def uncovered(self, deployed_layers: Set[SecurityLayer]) -> List[str]:
        """Threats no deployed layer mitigates (the residual risk list)."""
        return [name for name, ok in self.coverage(deployed_layers).items() if not ok]


def default_catalog() -> ThreatCatalog:
    """The catalog corresponding to the attacks implemented in this repo."""
    L = SecurityLayer
    entries = [
        ThreatEntry(
            "can-injection", AttackModel.INTEGRITY, AttackMode.IN_VEHICLE_NETWORK,
            frozenset({L.SECURE_NETWORKS, L.SECURE_GATEWAY}),
            "repro.attacks.injection.InjectionAttack",
            "forged frames on an unauthenticated IVN",
        ),
        ThreatEntry(
            "can-spoof", AttackModel.INTEGRITY, AttackMode.IN_VEHICLE_NETWORK,
            frozenset({L.SECURE_NETWORKS, L.SECURE_GATEWAY}),
            "repro.attacks.injection.SpoofAttack",
            "targeted forgery of one signal id",
        ),
        ThreatEntry(
            "bus-flood-dos", AttackModel.AVAILABILITY, AttackMode.IN_VEHICLE_NETWORK,
            frozenset({L.SECURE_NETWORKS, L.SECURE_GATEWAY}),
            "repro.attacks.dos.BusFloodAttack",
            "low-id arbitration starvation",
        ),
        ThreatEntry(
            "bus-off", AttackModel.AVAILABILITY, AttackMode.IN_VEHICLE_NETWORK,
            frozenset({L.SECURE_NETWORKS}),
            "repro.attacks.busoff.BusOffAttack",
            "error-counter weaponisation silencing a node",
        ),
        ThreatEntry(
            "replay", AttackModel.INTEGRITY, AttackMode.IN_VEHICLE_NETWORK,
            frozenset({L.SECURE_NETWORKS, L.SECURE_PROCESSING}),
            "repro.attacks.replay.ReplayAttack",
            "verbatim re-transmission of recorded traffic",
        ),
        ThreatEntry(
            "masquerade", AttackModel.INTEGRITY, AttackMode.IN_VEHICLE_NETWORK,
            frozenset({L.SECURE_PROCESSING}),
            "repro.attacks.masquerade.MasqueradeAttack",
            "silence victim then impersonate at nominal timing",
        ),
        ThreatEntry(
            "side-channel-key-extraction", AttackModel.CONFIDENTIALITY,
            AttackMode.SIDE_CHANNEL,
            frozenset({L.SECURE_PROCESSING}),
            "repro.attacks.sidechannel.CpaAttack",
            "CPA on power emissions recovers AES keys",
        ),
        ThreatEntry(
            "gps-spoofing", AttackModel.AVAILABILITY, AttackMode.SENSOR_CHANNEL,
            frozenset({L.SECURE_INTERFACES}),
            "repro.attacks.sensors.GpsSpoofingAttack",
            "counterfeit constellation steers localisation",
        ),
        ThreatEntry(
            "lidar-phantom", AttackModel.AVAILABILITY, AttackMode.SENSOR_CHANNEL,
            frozenset({L.SECURE_INTERFACES}),
            "repro.attacks.sensors.LidarPhantomAttack",
            "laser replay creates phantom obstacles",
        ),
        ThreatEntry(
            "tpms-spoofing", AttackModel.INTEGRITY, AttackMode.SENSOR_CHANNEL,
            frozenset({L.SECURE_INTERFACES}),
            "repro.attacks.sensors.TpmsSpoofingAttack",
            "forged tire-pressure RF packets",
        ),
        ThreatEntry(
            "acoustic-mems", AttackModel.INTEGRITY, AttackMode.SENSOR_CHANNEL,
            frozenset({L.PHYSICAL_PROTECTION}),
            "repro.attacks.sensors.AcousticMemsAttack",
            "resonant sound biases MEMS accelerometers",
        ),
        ThreatEntry(
            "keyless-relay", AttackModel.INTEGRITY, AttackMode.PHYSICAL_ACCESS,
            frozenset({L.PHYSICAL_PROTECTION}),
            "repro.attacks.relay.RelayAttack"
            if False else "repro.access.keyless.RelayAttack",
            "LF relay defeats PKES proximity inference",
        ),
        ThreatEntry(
            "immobilizer-crack", AttackModel.CONFIDENTIALITY, AttackMode.PHYSICAL_ACCESS,
            frozenset({L.PHYSICAL_PROTECTION, L.SECURE_PROCESSING}),
            "repro.access.immobilizer.KeyCracker",
            "brute force of a short transponder key",
        ),
        ThreatEntry(
            "voltage-glitch", AttackModel.INTEGRITY, AttackMode.FAULT_INJECTION,
            frozenset({L.SECURE_PROCESSING}),
            "repro.attacks.glitch.VoltageGlitchAttack",
            "supply glitching to skip security checks",
        ),
        ThreatEntry(
            "malicious-ota", AttackModel.INTEGRITY, AttackMode.IN_FIELD_COMMUNICATION,
            frozenset({L.SECURE_INTERFACES, L.SECURE_PROCESSING}),
            "repro.ota.campaign.CompromiseScenario",
            "forged update metadata installs attacker firmware",
        ),
        ThreatEntry(
            "v2x-forgery", AttackModel.INTEGRITY, AttackMode.IN_FIELD_COMMUNICATION,
            frozenset({L.SECURE_INTERFACES}),
            "repro.v2x.ieee1609.MessageVerifier",
            "unauthenticated or forged V2X warnings",
        ),
        ThreatEntry(
            "v2x-tracking", AttackModel.CONFIDENTIALITY, AttackMode.IN_FIELD_COMMUNICATION,
            frozenset({L.SECURE_INTERFACES}),
            "repro.v2x.privacy.TrackingAdversary",
            "linking broadcast pseudonyms into trajectories",
        ),
    ]
    return ThreatCatalog(entries)
