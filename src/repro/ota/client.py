"""Vehicle-side update clients.

:class:`UptaneClient` implements the full verification workflow over both
repositories; :class:`NaiveClient` implements the pre-Uptane practice the
paper's scenario attacks: one signature with one (class-shared) key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.crypto import ecdsa_verify, EcdsaSignature
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota.metadata import (
    Metadata,
    MetadataError,
    role_keys_from_root,
    verify_metadata,
)
from repro.ota.repository import DirectorRepository, ImageRepository


@dataclass
class UpdateResult:
    """Outcome of one update attempt."""

    installed: bool
    reason: str
    image: Optional[FirmwareImage] = None


class UptaneClient:
    """Full-verification OTA client for one vehicle.

    The client is pinned to both repositories' root metadata (installed at
    the factory) and remembers the last seen version of every role, giving
    rollback/freeze protection.
    """

    def __init__(
        self,
        vehicle_id: str,
        store: FirmwareStore,
        image_root: Metadata,
        director_root: Metadata,
    ) -> None:
        self.vehicle_id = vehicle_id
        self.store = store
        self._roots = {"image": image_root, "director": director_root}
        self._last_versions: Dict[Tuple[str, str], int] = {}
        self.history: list = []

    # ------------------------------------------------------------------
    def _check_chain(self, repo_name: str, metadata: Dict[str, Metadata],
                     now: float) -> Dict:
        """Verify timestamp -> snapshot -> targets; returns targets payload."""
        root_payload = self._roots[repo_name].payload

        def step(role: str, meta: Metadata) -> None:
            keys, threshold = role_keys_from_root(root_payload, role)
            verify_metadata(meta, keys, threshold, now, expected_role=role)
            last = self._last_versions.get((repo_name, role), 0)
            if meta.version < last:
                raise MetadataError(f"{repo_name}/{role} version rollback")
            self._last_versions[(repo_name, role)] = meta.version

        timestamp = metadata["timestamp"]
        step("timestamp", timestamp)
        snapshot = metadata["snapshot"]
        step("snapshot", snapshot)
        if snapshot.digest != timestamp.payload.get("snapshot_digest"):
            raise MetadataError(f"{repo_name}: snapshot digest mismatch")
        targets = metadata["targets"]
        step("targets", targets)
        if targets.digest != snapshot.payload.get("targets_digest"):
            raise MetadataError(f"{repo_name}: targets digest mismatch")
        return targets.payload

    def update(self, director: DirectorRepository, image_repo: ImageRepository,
               now: float) -> UpdateResult:
        """Run one full update cycle; returns the outcome."""
        director.targets_for(self.vehicle_id, now)
        try:
            director_targets = self._check_chain("director", director.metadata, now)
            image_targets = self._check_chain("image", image_repo.metadata, now)
        except MetadataError as exc:
            result = UpdateResult(False, f"metadata: {exc}")
            self.history.append(result)
            return result

        assignments = director_targets.get("targets", {})
        if not assignments:
            result = UpdateResult(False, "no assignment")
            self.history.append(result)
            return result

        for target_key, director_entry in assignments.items():
            image_entry = image_targets.get("targets", {}).get(target_key)
            if image_entry is None:
                result = UpdateResult(False, f"{target_key} not in image repo targets")
                self.history.append(result)
                return result
            if image_entry["digest"] != director_entry["digest"]:
                result = UpdateResult(False, f"{target_key} digest disagreement")
                self.history.append(result)
                return result
            image = image_repo.download(target_key)
            if image is None:
                result = UpdateResult(False, f"{target_key} download failed")
                self.history.append(result)
                return result
            if image.digest.hex() != director_entry["digest"]:
                result = UpdateResult(False, f"{target_key} image digest mismatch")
                self.history.append(result)
                return result
            if image.version <= self.store.active.version:
                result = UpdateResult(False, f"{target_key} not newer than installed")
                self.history.append(result)
                return result
            self.store.stage(image)
            self.store.activate()
            result = UpdateResult(True, "installed", image)
            self.history.append(result)
            return result
        result = UpdateResult(False, "nothing to do")
        self.history.append(result)
        return result


class NaiveClient:
    """Single-signature client with a class-shared verification key.

    The paper's scenario: every vehicle of the class verifies updates with
    the same key; extract it (or its signing counterpart) from one unit via
    side channels and the whole class accepts malicious firmware.
    """

    def __init__(self, vehicle_id: str, store: FirmwareStore,
                 oem_public_key: Tuple[int, int]) -> None:
        self.vehicle_id = vehicle_id
        self.store = store
        self.oem_public_key = oem_public_key
        self.history: list = []

    def update(self, image: FirmwareImage, signature: EcdsaSignature) -> UpdateResult:
        """Install if the single signature over the digest verifies."""
        if not ecdsa_verify(self.oem_public_key, image.digest, signature):
            result = UpdateResult(False, "bad signature")
            self.history.append(result)
            return result
        # No version check in the naive flow (also historically accurate).
        self.store.stage(image)
        self.store.activate()
        result = UpdateResult(True, "installed", image)
        self.history.append(result)
        return result
