"""Fleet campaigns and key-compromise scenarios (E5 / E10).

:class:`FleetCampaign` rolls an update across a fleet of Uptane clients.
:class:`CompromiseScenario` gives an attacker a chosen subset of signing
keys and attempts to push a malicious image through each client flavour;
the result matrix is the E10 deliverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import EcdsaKeyPair, HmacDrbg, ecdsa_sign
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota.client import NaiveClient, UpdateResult, UptaneClient
from repro.ota.metadata import Metadata, sign_metadata
from repro.ota.repository import DirectorRepository, ImageRepository


@dataclass
class FleetCampaign:
    """Roll one image to a fleet of Uptane clients."""

    director: DirectorRepository
    image_repo: ImageRepository
    clients: List[UptaneClient]

    def rollout(self, image: FirmwareImage, now: float) -> Dict[str, UpdateResult]:
        """Assign and update every vehicle; returns per-vehicle results."""
        self.image_repo.add_image(image, now)
        results: Dict[str, UpdateResult] = {}
        for client in self.clients:
            self.director.assign(client.vehicle_id, image, now)
            results[client.vehicle_id] = client.update(
                self.director, self.image_repo, now,
            )
        return results

    def success_rate(self, results: Dict[str, UpdateResult]) -> float:
        if not results:
            return 0.0
        return sum(1 for r in results.values() if r.installed) / len(results)


class CompromiseScenario:
    """Attacker holding some signing keys tries to install malicious firmware.

    ``compromised``: mapping repo name ("image"/"director") -> list of role
    names whose keys the attacker controls.
    """

    def __init__(
        self,
        director: DirectorRepository,
        image_repo: ImageRepository,
        compromised: Dict[str, List[str]],
    ) -> None:
        self.director = director
        self.image_repo = image_repo
        self.compromised = {
            repo: list(roles) for repo, roles in compromised.items()
        }

    def _repo(self, name: str):
        return self.image_repo if name == "image" else self.director

    def _has(self, repo: str, role: str) -> bool:
        return role in self.compromised.get(repo, [])

    def attack_uptane(self, client: UptaneClient, malicious: FirmwareImage,
                      now: float) -> UpdateResult:
        """Forge whatever chains the compromised keys allow, then let the
        client run its normal verification."""
        # Save honest state to restore afterwards.
        saved = {
            "image": dict(self.image_repo.metadata),
            "director": dict(self.director.metadata),
            "images": dict(self.image_repo.images),
            "assignments": {
                vid: dict(entries)
                for vid, entries in self.director._assignments.items()
            },
        }
        try:
            key = f"{malicious.name}-v{malicious.version}"
            # Attacker plants the malicious binary (storage is not trusted).
            self.image_repo.images[key] = malicious
            for repo_name in ("director", "image"):
                repo = self._repo(repo_name)
                if not self._has(repo_name, "targets"):
                    continue  # cannot forge this repo's targets
                entry = {
                    "digest": malicious.digest.hex(),
                    "version": malicious.version,
                    "length": len(malicious.payload),
                    "hardware_id": malicious.hardware_id,
                }
                payload = {"targets": {key: entry}}
                if repo_name == "director":
                    payload["vehicle"] = client.vehicle_id
                    # Freeze the director's own republication for this run.
                    repo._assignments[client.vehicle_id] = {key: entry}
                targets = Metadata(
                    role="targets",
                    version=repo.metadata["targets"].version + 1,
                    expires=now + 1e6, payload=payload,
                )
                targets = sign_metadata(targets, repo.keysets["targets"].keypairs)
                repo.metadata["targets"] = targets
                repo._versions["targets"] = targets.version
                # The snapshot/timestamp chain must also be re-signed; the
                # attacker can only do that with those roles' keys.
                if self._has(repo_name, "snapshot"):
                    snapshot = Metadata(
                        role="snapshot",
                        version=repo.metadata["snapshot"].version + 1,
                        expires=now + 1e6,
                        payload={"targets_version": targets.version,
                                 "targets_digest": targets.digest},
                    )
                    snapshot = sign_metadata(snapshot, repo.keysets["snapshot"].keypairs)
                    repo.metadata["snapshot"] = snapshot
                    repo._versions["snapshot"] = snapshot.version
                if self._has(repo_name, "timestamp"):
                    snapshot = repo.metadata["snapshot"]
                    timestamp = Metadata(
                        role="timestamp",
                        version=repo.metadata["timestamp"].version + 1,
                        expires=now + 1e6,
                        payload={"snapshot_version": snapshot.version,
                                 "snapshot_digest": snapshot.digest},
                    )
                    timestamp = sign_metadata(timestamp, repo.keysets["timestamp"].keypairs)
                    repo.metadata["timestamp"] = timestamp
                    repo._versions["timestamp"] = timestamp.version
            # A director-side forgery must survive the client's session
            # refresh; emulate attacker-in-the-middle by freezing
            # targets_for if the attacker controls the channel... the
            # simplest faithful model: skip the refresh when director
            # targets are forged.
            if self._has("director", "targets"):
                original_targets_for = self.director.targets_for
                self.director.targets_for = lambda vid, t: None
                try:
                    return client.update(self.director, self.image_repo, now)
                finally:
                    self.director.targets_for = original_targets_for
            return client.update(self.director, self.image_repo, now)
        finally:
            self.image_repo.metadata = saved["image"]
            self.director.metadata = saved["director"]
            self.image_repo.images = saved["images"]
            self.director._assignments = saved["assignments"]

    @staticmethod
    def attack_naive(client: NaiveClient, malicious: FirmwareImage,
                     oem_keypair: Optional[EcdsaKeyPair]) -> UpdateResult:
        """Attack the naive client; needs the single OEM key (or fails)."""
        if oem_keypair is None:
            # Attacker signs with a random key: rejected.
            rogue = EcdsaKeyPair.generate(HmacDrbg(b"rogue"))
            return client.update(malicious, ecdsa_sign(rogue.private, malicious.digest))
        return client.update(malicious, ecdsa_sign(oem_keypair.private, malicious.digest))
