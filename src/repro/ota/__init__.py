"""Over-the-air (OTA) update framework.

The paper's OTA threat scenario (§4.2): update flows gated by a single
cryptographic key shared across a vehicle class turn one side-channel key
extraction into a fleet-wide compromise.  The mitigation practice settled
on (Uptane) separates signing authority across *roles* and *repositories*
so that no single key compromise suffices to install arbitrary firmware.

- :mod:`repro.ota.metadata` -- signed role metadata (root, timestamp,
  snapshot, targets) with thresholds, expiry, and version monotonicity.
- :mod:`repro.ota.repository` -- image repository + director (per-vehicle
  assignment), both publishing full role chains.
- :mod:`repro.ota.client` -- :class:`UptaneClient` (full verification
  workflow) and :class:`NaiveClient` (single shared key -- the baseline
  the paper's scenario breaks).
- :mod:`repro.ota.campaign` -- fleet rollout bookkeeping and the E5/E10
  key-compromise scenario driver.
"""

from repro.ota.metadata import (
    Metadata,
    MetadataError,
    RoleKeySet,
    key_id_of,
    sign_metadata,
    verify_metadata,
)
from repro.ota.repository import DirectorRepository, ImageRepository
from repro.ota.client import NaiveClient, UpdateResult, UptaneClient
from repro.ota.campaign import CompromiseScenario, FleetCampaign

__all__ = [
    "Metadata",
    "MetadataError",
    "RoleKeySet",
    "key_id_of",
    "sign_metadata",
    "verify_metadata",
    "DirectorRepository",
    "ImageRepository",
    "NaiveClient",
    "UpdateResult",
    "UptaneClient",
    "CompromiseScenario",
    "FleetCampaign",
]
