"""Signed role metadata (TUF/Uptane shape).

Four roles, each with its own key set and threshold:

- **root**: distributes the role keys themselves (offline, high threshold);
- **timestamp**: short-lived pointer to the current snapshot (online);
- **snapshot**: version map of all targets metadata (online);
- **targets**: the actual firmware assignments (offline for the image
  repo, online for the director).

Metadata is canonically JSON-encoded for signing; verification checks
expiry, threshold-many valid signatures from the authorised keys, and
leaves version-monotonicity to the client (who remembers what it last saw).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.crypto import EcdsaKeyPair, EcdsaSignature, ecdsa_sign, ecdsa_verify, sha256

ROLES = ("root", "timestamp", "snapshot", "targets")


class MetadataError(Exception):
    """Verification failure (bad signature, expired, threshold not met)."""


def key_id_of(public: Tuple[int, int]) -> str:
    """Stable key identifier: hash of the public point."""
    raw = public[0].to_bytes(32, "big") + public[1].to_bytes(32, "big")
    return sha256(raw)[:8].hex()


@dataclass
class RoleKeySet:
    """The key material and threshold for one role."""

    role: str
    keypairs: List[EcdsaKeyPair]
    threshold: int = 1

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown role {self.role!r}")
        if not 1 <= self.threshold <= len(self.keypairs):
            raise ValueError("threshold must be in 1..len(keys)")

    @property
    def public_keys(self) -> Dict[str, Tuple[int, int]]:
        return {key_id_of(kp.public): kp.public for kp in self.keypairs}


@dataclass(frozen=True)
class Metadata:
    """One signed metadata file."""

    role: str
    version: int
    expires: float
    payload: Dict
    signatures: Tuple[Tuple[str, EcdsaSignature], ...] = ()

    def tbs_bytes(self) -> bytes:
        body = {
            "role": self.role,
            "version": self.version,
            "expires": self.expires,
            "payload": self.payload,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    @property
    def digest(self) -> str:
        return sha256(self.tbs_bytes()).hex()


def sign_metadata(meta: Metadata, keypairs: List[EcdsaKeyPair]) -> Metadata:
    """Attach signatures from ``keypairs`` (replaces existing ones)."""
    tbs = meta.tbs_bytes()
    sigs = tuple(
        (key_id_of(kp.public), ecdsa_sign(kp.private, tbs)) for kp in keypairs
    )
    return replace(meta, signatures=sigs)


def verify_metadata(
    meta: Metadata,
    authorized: Dict[str, Tuple[int, int]],
    threshold: int,
    now: float,
    expected_role: str,
) -> None:
    """Verify one metadata file; raises :class:`MetadataError` on failure.

    ``authorized`` maps key id -> public key for the role (from root
    metadata).  Counts distinct authorised keys with valid signatures.
    """
    if meta.role != expected_role:
        raise MetadataError(f"role mismatch: {meta.role} != {expected_role}")
    if now > meta.expires:
        raise MetadataError(f"{meta.role} metadata expired")
    tbs = meta.tbs_bytes()
    valid_keys = set()
    for key_id, signature in meta.signatures:
        public = authorized.get(key_id)
        if public is None:
            continue  # signature from an unauthorised key: ignored
        if ecdsa_verify(public, tbs, signature):
            valid_keys.add(key_id)
    if len(valid_keys) < threshold:
        raise MetadataError(
            f"{meta.role}: {len(valid_keys)} valid signatures < threshold {threshold}"
        )


def make_root_payload(keysets: Dict[str, RoleKeySet]) -> Dict:
    """The root role's payload: authorised keys + thresholds per role."""
    return {
        "roles": {
            role: {
                "key_ids": sorted(ks.public_keys),
                "keys": {
                    kid: [str(pub[0]), str(pub[1])]
                    for kid, pub in ks.public_keys.items()
                },
                "threshold": ks.threshold,
            }
            for role, ks in keysets.items()
        }
    }


def role_keys_from_root(root_payload: Dict, role: str) -> Tuple[Dict[str, Tuple[int, int]], int]:
    """Extract (authorised keys, threshold) for ``role`` from root payload."""
    entry = root_payload["roles"].get(role)
    if entry is None:
        raise MetadataError(f"root payload has no role {role!r}")
    keys = {
        kid: (int(x), int(y)) for kid, (x, y) in entry["keys"].items()
    }
    return keys, int(entry["threshold"])
