"""Update repositories: image repository and director.

Uptane's two-repository design: the **image repository** holds the actual
firmware and offline-signed targets metadata; the **director** assigns
specific images to specific vehicles with online-signed targets metadata.
A client only installs an image *both* repositories agree on -- so an
attacker must compromise signing keys in both to install arbitrary
firmware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.ecu.firmware import FirmwareImage
from repro.ota.metadata import (
    Metadata,
    RoleKeySet,
    make_root_payload,
    sign_metadata,
)

_DEFAULT_EXPIRY = {
    "root": 365 * 86400.0,
    "timestamp": 86400.0,
    "snapshot": 7 * 86400.0,
    "targets": 30 * 86400.0,
}


def generate_keysets(seed: bytes, thresholds: Optional[Dict[str, int]] = None,
                     keys_per_role: int = 2) -> Dict[str, RoleKeySet]:
    """Deterministic role key generation for a repository."""
    thresholds = thresholds or {"root": 2, "timestamp": 1, "snapshot": 1, "targets": 2}
    keysets = {}
    for role in ("root", "timestamp", "snapshot", "targets"):
        n = max(keys_per_role, thresholds.get(role, 1))
        keypairs = [
            EcdsaKeyPair.generate(HmacDrbg(seed, personalization=f"{role}/{i}".encode()))
            for i in range(n)
        ]
        keysets[role] = RoleKeySet(role, keypairs, thresholds.get(role, 1))
    return keysets


def _target_entry(image: FirmwareImage) -> Dict:
    return {
        "digest": image.digest.hex(),
        "version": image.version,
        "length": len(image.payload),
        "hardware_id": image.hardware_id,
    }


class _BaseRepository:
    """Shared machinery: role keys, versioned metadata publication."""

    def __init__(self, name: str, seed: bytes,
                 thresholds: Optional[Dict[str, int]] = None) -> None:
        self.name = name
        self.keysets = generate_keysets(seed, thresholds)
        self._versions = {role: 0 for role in self.keysets}
        self.metadata: Dict[str, Metadata] = {}
        self._targets_payload: Dict = {"targets": {}}
        self.publish_root(now=0.0)
        self.publish_targets(now=0.0)  # empty initial chain

    def _publish(self, role: str, payload: Dict, now: float,
                 signing_keys: Optional[List[EcdsaKeyPair]] = None) -> Metadata:
        self._versions[role] += 1
        meta = Metadata(
            role=role, version=self._versions[role],
            expires=now + _DEFAULT_EXPIRY[role], payload=payload,
        )
        keys = signing_keys if signing_keys is not None else self.keysets[role].keypairs
        meta = sign_metadata(meta, keys)
        self.metadata[role] = meta
        return meta

    def publish_root(self, now: float) -> Metadata:
        return self._publish("root", make_root_payload(self.keysets), now)

    def publish_targets(self, now: float) -> None:
        """Re-sign the whole chain: targets -> snapshot -> timestamp."""
        targets = self._publish("targets", dict(self._targets_payload), now)
        snapshot = self._publish(
            "snapshot", {"targets_version": targets.version,
                         "targets_digest": targets.digest}, now,
        )
        self._publish(
            "timestamp", {"snapshot_version": snapshot.version,
                          "snapshot_digest": snapshot.digest}, now,
        )


class ImageRepository(_BaseRepository):
    """Holds firmware binaries and their offline-signed targets metadata."""

    def __init__(self, seed: bytes = b"image-repo",
                 thresholds: Optional[Dict[str, int]] = None) -> None:
        self.images: Dict[str, FirmwareImage] = {}
        super().__init__("image-repo", seed, thresholds)

    def add_image(self, image: FirmwareImage, now: float) -> None:
        key = f"{image.name}-v{image.version}"
        self.images[key] = image
        self._targets_payload["targets"][key] = _target_entry(image)
        self.publish_targets(now)

    def download(self, target_key: str) -> Optional[FirmwareImage]:
        return self.images.get(target_key)


class DirectorRepository(_BaseRepository):
    """Assigns images to vehicles (online targets signing)."""

    def __init__(self, seed: bytes = b"director-repo",
                 thresholds: Optional[Dict[str, int]] = None) -> None:
        # Director targets are online: threshold 1 by default.
        thresholds = thresholds or {
            "root": 2, "timestamp": 1, "snapshot": 1, "targets": 1,
        }
        self._assignments: Dict[str, Dict[str, Dict]] = {}
        super().__init__("director", seed, thresholds)

    def assign(self, vehicle_id: str, image: FirmwareImage, now: float) -> None:
        key = f"{image.name}-v{image.version}"
        self._assignments.setdefault(vehicle_id, {})[key] = _target_entry(image)
        self._targets_payload = {"targets": dict(self._assignments.get(vehicle_id, {})),
                                 "vehicle": vehicle_id}
        self.publish_targets(now)

    def targets_for(self, vehicle_id: str, now: float) -> None:
        """Publish the chain scoped to one vehicle (call before a client
        session; the director is an online service)."""
        self._targets_payload = {
            "targets": dict(self._assignments.get(vehicle_id, {})),
            "vehicle": vehicle_id,
        }
        self.publish_targets(now)
