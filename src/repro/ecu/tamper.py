"""Voltage/clock tamper detection.

The paper's Secure Processing layer: "Tamper detection and resistance
mechanisms are often implemented to protect MCU/MPUs from voltage/clock
manipulation."  The detector watches a stream of supply-voltage and clock
readings; excursions outside the guard band (fault-injection glitches)
trigger a configurable response, by default locking the SHE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.ecu.she import She
from repro.sim import Simulator, TraceRecorder


@dataclass(frozen=True)
class TamperEvent:
    """A detected physical manipulation."""

    time: float
    kind: str      # "voltage" | "clock"
    value: float
    limit_low: float
    limit_high: float


class TamperDetector:
    """Guard-band monitor over voltage and clock frequency.

    ``detection_probability`` models imperfect sensors: fast glitches can
    slip under the sampling window, which is why glitch attacks sweep
    repetition counts (see :mod:`repro.attacks.glitch`).
    """

    def __init__(
        self,
        sim: Simulator,
        she: Optional[She] = None,
        nominal_voltage: float = 3.3,
        voltage_tolerance: float = 0.10,
        nominal_clock_hz: float = 100e6,
        clock_tolerance: float = 0.05,
        detection_probability: float = 0.95,
        rng=None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.she = she
        self.v_low = nominal_voltage * (1 - voltage_tolerance)
        self.v_high = nominal_voltage * (1 + voltage_tolerance)
        self.c_low = nominal_clock_hz * (1 - clock_tolerance)
        self.c_high = nominal_clock_hz * (1 + clock_tolerance)
        self.detection_probability = detection_probability
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder()
        self.events: List[TamperEvent] = []
        self.response_callbacks: List[Callable[[TamperEvent], None]] = []
        self.missed = 0

    def on_tamper(self, callback: Callable[[TamperEvent], None]) -> None:
        self.response_callbacks.append(callback)

    def _out_of_band(self, kind: str, value: float) -> Optional[TamperEvent]:
        low, high = (self.v_low, self.v_high) if kind == "voltage" else (self.c_low, self.c_high)
        if low <= value <= high:
            return None
        return TamperEvent(self.sim.now, kind, value, low, high)

    def sample(self, kind: str, value: float) -> bool:
        """Feed one sensor reading; returns True if tamper was flagged."""
        if kind not in ("voltage", "clock"):
            raise ValueError(f"unknown tamper channel {kind!r}")
        event = self._out_of_band(kind, value)
        if event is None:
            return False
        detected = True
        if self.rng is not None and self.detection_probability < 1.0:
            detected = self.rng.random() < self.detection_probability
        if not detected:
            self.missed += 1
            return False
        self.events.append(event)
        self.trace.emit(
            self.sim.now, "tamper", "tamper.detected",
            channel=kind, value=value,
        )
        if self.she is not None:
            self.she.lock()
        for callback in self.response_callbacks:
            callback(event)
        return True
