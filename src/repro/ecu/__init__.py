"""ECU and "Secure Processing" layer substrate.

Models the paper's fourth architecture layer: MCU/MPU units "equipped with
hardware implementation of the Secure Hardware Extension (SHE)
specification", virtualization-based process isolation, and tamper
detection against voltage/clock manipulation.

- :mod:`repro.ecu.she` -- functional SHE model: protected key slots, the
  M1/M2/M3 key-update protocol (AES-MP KDF, rollback-protected counters),
  CMAC generation/verification, secure boot.
- :mod:`repro.ecu.firmware` -- firmware images, versioning, CMAC and
  ECDSA signing.
- :mod:`repro.ecu.ecu` -- the ECU itself: boot flow, task dispatch,
  compromise modelling.
- :mod:`repro.ecu.hypervisor` -- partition isolation (one compromised
  software stack must not reach another).
- :mod:`repro.ecu.tamper` -- voltage/clock tamper detection and response.
"""

from repro.ecu.she import (
    KeySlot,
    KeyUpdateMessage,
    She,
    SheError,
    SheFlags,
    SLOT_BOOT_MAC,
    SLOT_BOOT_MAC_KEY,
    SLOT_KEY_1,
    SLOT_KEY_10,
    SLOT_MASTER_ECU_KEY,
    SLOT_RAM_KEY,
    make_key_update,
)
from repro.ecu.firmware import FirmwareImage, FirmwareStore, sign_firmware_cmac
from repro.ecu.ecu import Ecu, EcuState
from repro.ecu.keymaster import KeyBackend, KeyDistributionService, derive_master_key
from repro.ecu.hypervisor import Hypervisor, IsolationViolation, Partition
from repro.ecu.tamper import TamperDetector, TamperEvent

__all__ = [
    "KeySlot",
    "KeyUpdateMessage",
    "She",
    "SheError",
    "SheFlags",
    "SLOT_BOOT_MAC",
    "SLOT_BOOT_MAC_KEY",
    "SLOT_KEY_1",
    "SLOT_KEY_10",
    "SLOT_MASTER_ECU_KEY",
    "SLOT_RAM_KEY",
    "make_key_update",
    "FirmwareImage",
    "FirmwareStore",
    "sign_firmware_cmac",
    "Ecu",
    "EcuState",
    "KeyBackend",
    "KeyDistributionService",
    "derive_master_key",
    "Hypervisor",
    "IsolationViolation",
    "Partition",
    "TamperDetector",
    "TamperEvent",
]
