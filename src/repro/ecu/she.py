"""Functional model of the Secure Hardware Extension (SHE).

SHE is the automotive secure-key-storage / crypto-accelerator specification
the paper names for the "Secure Processing" layer.  The model keeps the
architecturally relevant behaviours:

- **Key slots** with usage and protection flags.  Key *values* never leave
  the module; software gets handles (slot ids) and operations.
- **Key update protocol**: keys are provisioned with the M1/M2/M3 message
  set, authenticated and encrypted under keys derived from an authorising
  key by the AES-Miyaguchi-Preneel KDF, with a monotonic counter for
  rollback protection.
- **Secure boot**: BOOT_MAC_KEY authenticates the firmware image against
  the stored BOOT_MAC; failure locks boot-protected keys.
- **Lockdown** on tamper detection (used by :mod:`repro.ecu.tamper`).

The side-channel experiments attack the *unprotected software AES* in
:mod:`repro.crypto.aes` directly; SHE key extraction is modelled at a
higher level (a compromised ECU can *use* SHE keys but not read them --
which is exactly why the paper's shared-key class-break matters: the
attacker clones behaviour, not bits, unless side channels leak the key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto
from typing import Dict, Optional

from repro.crypto import (
    SHE_KEY_UPDATE_ENC_C,
    SHE_KEY_UPDATE_MAC_C,
    aes_cmac,
    cbc_decrypt,
    cbc_encrypt,
    cmac_verify,
    constant_time_eq,
    she_kdf,
)
from repro.crypto.aes import AES

# Canonical slot numbers (SHE spec ordering).
SLOT_SECRET_KEY = 0
SLOT_MASTER_ECU_KEY = 1
SLOT_BOOT_MAC_KEY = 2
SLOT_BOOT_MAC = 3
SLOT_KEY_1 = 4
SLOT_KEY_10 = 13
SLOT_RAM_KEY = 14

_UPDATABLE_SLOTS = {SLOT_MASTER_ECU_KEY, SLOT_BOOT_MAC_KEY, SLOT_BOOT_MAC} | set(
    range(SLOT_KEY_1, SLOT_KEY_10 + 1)
)


class SheFlags(Flag):
    """Per-slot protection/usage flags."""

    NONE = 0
    WRITE_PROTECTION = auto()   # slot can never be updated again
    BOOT_PROTECTION = auto()    # unusable after failed secure boot
    DEBUGGER_PROTECTION = auto()  # unusable while a debugger is attached
    KEY_USAGE_MAC = auto()      # CMAC operations only (else encryption)
    WILDCARD_FORBIDDEN = auto()


class SheError(Exception):
    """Raised for any rejected SHE command (matching spec error codes)."""


@dataclass
class KeySlot:
    """Internal slot state; never handed to callers."""

    value: bytes
    flags: SheFlags = SheFlags.NONE
    counter: int = 0
    empty: bool = False


@dataclass(frozen=True)
class KeyUpdateMessage:
    """The M1/M2/M3 triple of the SHE key-update protocol."""

    m1: bytes
    m2: bytes
    m3: bytes


def make_key_update(
    uid: bytes,
    target_slot: int,
    auth_slot: int,
    auth_key: bytes,
    new_key: bytes,
    counter: int,
    flags: SheFlags = SheFlags.NONE,
) -> KeyUpdateMessage:
    """Build an M1/M2/M3 key-update message set (the OEM/backend side).

    ``auth_key`` is the value of the authorising key (slot ``auth_slot``),
    known to the backend that provisioned it.
    """
    if len(uid) != 15:
        raise ValueError("UID must be 15 bytes")
    if len(new_key) != 16:
        raise ValueError("new key must be 16 bytes")
    if not 0 <= counter < (1 << 28):
        raise ValueError("counter must fit in 28 bits")
    k1 = she_kdf(auth_key, SHE_KEY_UPDATE_ENC_C)
    k2 = she_kdf(auth_key, SHE_KEY_UPDATE_MAC_C)
    m1 = uid + bytes([((target_slot & 0xF) << 4) | (auth_slot & 0xF)])
    header = (counter << 4 | (flags.value & 0xF)).to_bytes(4, "big") + bytes(12)
    m2 = cbc_encrypt(k1, bytes(16), header + new_key)
    m3 = aes_cmac(k2, m1 + m2)
    return KeyUpdateMessage(m1, m2, m3)


class She:
    """One SHE instance, bound to a device UID.

    >>> she = She(uid=bytes(15))
    >>> she.load_plain_key(bytes(16))
    >>> tag = she.generate_mac(SLOT_RAM_KEY, b"hello")
    >>> she.verify_mac(SLOT_RAM_KEY, b"hello", tag)
    True
    """

    def __init__(self, uid: bytes, secret_key: Optional[bytes] = None) -> None:
        if len(uid) != 15:
            raise ValueError("UID must be 15 bytes")
        self.uid = bytes(uid)
        self._slots: Dict[int, KeySlot] = {
            SLOT_SECRET_KEY: KeySlot(
                secret_key if secret_key is not None else bytes(16),
                SheFlags.WRITE_PROTECTION,
            ),
        }
        self.locked = False
        self.debugger_attached = False
        self.boot_failed = False
        self.command_count = 0

    # ------------------------------------------------------------------
    # Slot access control
    # ------------------------------------------------------------------
    def _check_operational(self) -> None:
        if self.locked:
            raise SheError("SHE is locked (tamper response)")

    def _get_slot(self, slot: int, for_mac: Optional[bool] = None) -> KeySlot:
        self._check_operational()
        entry = self._slots.get(slot)
        if entry is None or entry.empty:
            raise SheError(f"slot {slot} is empty")
        if self.boot_failed and SheFlags.BOOT_PROTECTION in entry.flags:
            raise SheError(f"slot {slot} unavailable after failed secure boot")
        if self.debugger_attached and SheFlags.DEBUGGER_PROTECTION in entry.flags:
            raise SheError(f"slot {slot} unavailable with debugger attached")
        if for_mac is not None and slot != SLOT_RAM_KEY:
            is_mac_key = SheFlags.KEY_USAGE_MAC in entry.flags
            if for_mac != is_mac_key:
                raise SheError(
                    f"slot {slot} key usage mismatch "
                    f"({'MAC' if is_mac_key else 'ENC'} key)"
                )
        return entry

    def has_key(self, slot: int) -> bool:
        """True if the slot holds a key (no value disclosure)."""
        entry = self._slots.get(slot)
        return entry is not None and not entry.empty

    def slot_counter(self, slot: int) -> int:
        """The slot's rollback counter (public metadata)."""
        entry = self._slots.get(slot)
        if entry is None:
            raise SheError(f"slot {slot} is empty")
        return entry.counter

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def provision(self, slot: int, key: bytes, flags: SheFlags = SheFlags.NONE) -> None:
        """Factory provisioning (pre-personalisation; bypasses M1-M3).

        Only allowed for empty slots -- in-field updates must use
        :meth:`load_key`, which is the security-relevant path.
        """
        self._check_operational()
        if len(key) != 16:
            raise SheError("keys are 16 bytes")
        if slot in self._slots and not self._slots[slot].empty:
            raise SheError(f"slot {slot} already provisioned; use load_key")
        self._slots[slot] = KeySlot(bytes(key), flags)

    def load_key(self, update: KeyUpdateMessage) -> None:
        """CMD_LOAD_KEY: install a key from an M1/M2/M3 message set."""
        self._check_operational()
        if len(update.m1) != 16:
            raise SheError("malformed M1")
        uid, meta = update.m1[:15], update.m1[15]
        target_slot = (meta >> 4) & 0xF
        auth_slot = meta & 0xF
        if uid != self.uid:
            raise SheError("M1 UID mismatch")
        if target_slot not in _UPDATABLE_SLOTS:
            raise SheError(f"slot {target_slot} is not updatable")
        auth_entry = self._slots.get(auth_slot)
        if auth_entry is None or auth_entry.empty:
            raise SheError(f"authorising slot {auth_slot} is empty")

        k1 = she_kdf(auth_entry.value, SHE_KEY_UPDATE_ENC_C)
        k2 = she_kdf(auth_entry.value, SHE_KEY_UPDATE_MAC_C)
        if not cmac_verify(k2, update.m1 + update.m2, update.m3):
            raise SheError("M3 authentication failed")
        try:
            plain = cbc_decrypt(k1, bytes(16), update.m2)
        except ValueError as exc:
            raise SheError("M2 decryption failed") from exc
        if len(plain) != 32:
            raise SheError("malformed M2 payload")
        header_word = int.from_bytes(plain[:4], "big")
        counter = header_word >> 4
        flags = SheFlags(header_word & 0xF)
        new_key = plain[16:32]

        target = self._slots.get(target_slot)
        if target is not None and not target.empty:
            if SheFlags.WRITE_PROTECTION in target.flags:
                raise SheError(f"slot {target_slot} is write-protected")
            if counter <= target.counter:
                raise SheError(
                    f"rollback rejected: counter {counter} <= {target.counter}"
                )
        self._slots[target_slot] = KeySlot(new_key, flags, counter)
        self.command_count += 1

    def load_plain_key(self, key: bytes) -> None:
        """CMD_LOAD_PLAIN_KEY: the RAM key is the only plaintext-loadable one."""
        self._check_operational()
        if len(key) != 16:
            raise SheError("keys are 16 bytes")
        self._slots[SLOT_RAM_KEY] = KeySlot(bytes(key))
        self.command_count += 1

    # ------------------------------------------------------------------
    # Crypto commands
    # ------------------------------------------------------------------
    def encrypt_ecb(self, slot: int, block: bytes) -> bytes:
        """CMD_ENC_ECB with the key in ``slot``."""
        entry = self._get_slot(slot, for_mac=False)
        self.command_count += 1
        return AES(entry.value).encrypt_block(block)

    def decrypt_ecb(self, slot: int, block: bytes) -> bytes:
        """CMD_DEC_ECB."""
        entry = self._get_slot(slot, for_mac=False)
        self.command_count += 1
        return AES(entry.value).decrypt_block(block)

    def encrypt_cbc(self, slot: int, iv: bytes, data: bytes) -> bytes:
        """CMD_ENC_CBC."""
        entry = self._get_slot(slot, for_mac=False)
        self.command_count += 1
        return cbc_encrypt(entry.value, iv, data)

    def decrypt_cbc(self, slot: int, iv: bytes, data: bytes) -> bytes:
        """CMD_DEC_CBC."""
        entry = self._get_slot(slot, for_mac=False)
        self.command_count += 1
        return cbc_decrypt(entry.value, iv, data)

    def generate_mac(self, slot: int, message: bytes, tag_len: int = 16) -> bytes:
        """CMD_GENERATE_MAC (CMAC)."""
        entry = self._get_slot(slot, for_mac=True)
        self.command_count += 1
        return aes_cmac(entry.value, message, tag_len=tag_len)

    def verify_mac(self, slot: int, message: bytes, tag: bytes) -> bool:
        """CMD_VERIFY_MAC (constant-time)."""
        entry = self._get_slot(slot, for_mac=True)
        self.command_count += 1
        return cmac_verify(entry.value, message, tag)

    # ------------------------------------------------------------------
    # Secure boot
    # ------------------------------------------------------------------
    def set_boot_mac(self, firmware: bytes, boot_mac_key: bytes) -> None:
        """Factory step: store BOOT_MAC_KEY and the image's BOOT_MAC."""
        self.provision(SLOT_BOOT_MAC_KEY, boot_mac_key,
                       SheFlags.KEY_USAGE_MAC | SheFlags.BOOT_PROTECTION)
        mac = aes_cmac(boot_mac_key, firmware)
        self._slots[SLOT_BOOT_MAC] = KeySlot(mac, SheFlags.NONE)

    def secure_boot(self, firmware: bytes) -> bool:
        """CMD_SECURE_BOOT: authenticate the firmware image.

        On failure, boot-protected keys become unusable for this power
        cycle and ``False`` is returned (the ECU decides whether to halt).
        """
        self._check_operational()
        key_entry = self._slots.get(SLOT_BOOT_MAC_KEY)
        mac_entry = self._slots.get(SLOT_BOOT_MAC)
        if key_entry is None or mac_entry is None:
            raise SheError("secure boot not provisioned")
        self.command_count += 1
        expected = mac_entry.value
        actual = aes_cmac(key_entry.value, firmware, tag_len=len(expected))
        if constant_time_eq(actual, expected):
            self.boot_failed = False
            return True
        self.boot_failed = True
        return False

    # ------------------------------------------------------------------
    # Tamper response
    # ------------------------------------------------------------------
    def lock(self) -> None:
        """Tamper response: refuse all further commands."""
        self.locked = True

    def export_key_for_test(self, slot: int) -> bytes:
        """Debug/back-door used ONLY by white-box tests and the attacker
        model for side-channel ground truth.  Real SHE has no such command;
        the attack experiments never call it from 'inside' a scenario."""
        entry = self._slots.get(slot)
        if entry is None:
            raise SheError(f"slot {slot} is empty")
        return entry.value
