"""The ECU model: boot flow, CAN attachment, compromise semantics.

An :class:`Ecu` ties together a SHE instance, a firmware store, and a CAN
node.  Its lifecycle captures the architecture points the paper makes:

- secure boot gates entry to ``RUNNING`` (tampered firmware -> ``LOCKED``
  if the policy says halt, or ``DEGRADED`` with boot-protected keys
  disabled);
- a *compromised* ECU keeps its SHE (keys are not readable) but the
  attacker controls what the application layer sends -- the basis of the
  masquerade/injection attacks.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, List, Optional

from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ecu.she import She, SheError
from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator, TraceRecorder


class EcuState(Enum):
    OFF = "off"
    BOOTING = "booting"
    RUNNING = "running"
    DEGRADED = "degraded"   # boot auth failed, boot-protected keys disabled
    LOCKED = "locked"       # halted by policy or tamper response
    COMPROMISED = "compromised"


class Ecu:
    """One electronic control unit.

    ``halt_on_boot_failure`` selects the secure-boot response strategy:
    halting maximises integrity, degrading maximises availability -- the
    safety/security trade-off of paper section 3.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        she: She,
        firmware: FirmwareStore,
        boot_time: float = 0.050,
        halt_on_boot_failure: bool = False,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.she = she
        self.firmware = firmware
        self.boot_time = boot_time
        self.halt_on_boot_failure = halt_on_boot_failure
        self.trace = trace if trace is not None else TraceRecorder()
        self.state = EcuState.OFF
        self.node: Optional[CanNode] = None
        self._attacker_controlled = False
        self._boot_callbacks: List[Callable[[bool], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach_can(self, bus: CanBus) -> CanNode:
        """Join a CAN bus segment."""
        self.node = bus.attach(self.name)
        return self.node

    def on_boot_complete(self, callback: Callable[[bool], None]) -> None:
        self._boot_callbacks.append(callback)

    def power_on(self) -> None:
        """Start the boot sequence (secure boot after ``boot_time``)."""
        if self.state not in (EcuState.OFF, EcuState.LOCKED):
            raise RuntimeError(f"{self.name} already powered ({self.state})")
        self.state = EcuState.BOOTING
        self.sim.schedule(self.boot_time, self._finish_boot)

    def _finish_boot(self) -> None:
        image = self.firmware.active
        try:
            ok = self.she.secure_boot(image.canonical_bytes())
        except SheError:
            ok = False
        if ok:
            self.state = EcuState.RUNNING
        elif self.halt_on_boot_failure:
            self.state = EcuState.LOCKED
        else:
            self.state = EcuState.DEGRADED
        self.trace.emit(
            self.sim.now, self.name, "ecu.boot",
            ok=ok, state=self.state.value,
            firmware=image.name, version=image.version,
        )
        for callback in self._boot_callbacks:
            callback(ok)

    def reboot(self) -> None:
        """Power-cycle (clears the SHE boot-failure latch)."""
        self.state = EcuState.OFF
        self.she.boot_failed = False
        self.power_on()

    # ------------------------------------------------------------------
    # Application behaviour
    # ------------------------------------------------------------------
    @property
    def operational(self) -> bool:
        return self.state in (EcuState.RUNNING, EcuState.DEGRADED, EcuState.COMPROMISED)

    def send(self, frame: CanFrame) -> None:
        """Transmit on the attached CAN node (only while operational)."""
        if self.node is None:
            raise RuntimeError(f"{self.name} not attached to a bus")
        if not self.operational:
            return
        self.node.send(frame)

    # ------------------------------------------------------------------
    # Attack surface
    # ------------------------------------------------------------------
    def compromise(self) -> None:
        """Attacker takes over the application software.

        The SHE keeps its keys; the attacker gains the ability to *invoke*
        SHE operations and send arbitrary frames as this node -- the
        paper's point that one compromised ECU can authenticate malicious
        traffic if keys are shared across a class.
        """
        if self.state == EcuState.LOCKED:
            raise RuntimeError("cannot compromise a locked ECU")
        self.state = EcuState.COMPROMISED
        self._attacker_controlled = True
        self.trace.emit(self.sim.now, self.name, "ecu.compromised")

    @property
    def compromised(self) -> bool:
        return self._attacker_controlled

    def lock(self) -> None:
        """Policy/tamper response: halt and lock the SHE."""
        self.state = EcuState.LOCKED
        self.she.lock()
        self.trace.emit(self.sim.now, self.name, "ecu.locked")
