"""Virtualization-based partition isolation on an MCU/MPU.

The paper: "Virtualization is employed to realize process isolation to
prevent one compromised software stack from being exploited to attack
other software stacks."  The model is an access-control matrix over
partitions' memory regions and service endpoints, with an audit log.  The
gateway experiment (E1) and the core architecture use it to show that a
compromised infotainment stack cannot reach the ADAS partition unless the
isolation policy says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class IsolationViolation(Exception):
    """Raised when a partition attempts an access the policy forbids."""


@dataclass
class Partition:
    """One virtualized software stack."""

    name: str
    memory: Dict[str, bytes] = field(default_factory=dict)
    services: Set[str] = field(default_factory=set)
    compromised: bool = False

    def write(self, region: str, data: bytes) -> None:
        self.memory[region] = data

    def read(self, region: str) -> bytes:
        if region not in self.memory:
            raise KeyError(f"{self.name} has no region {region!r}")
        return self.memory[region]


class Hypervisor:
    """Partition manager with an explicit inter-partition access policy.

    Policy entries are (source, target, kind) with kind in
    {"read", "write", "call"}.  Everything not granted is denied.
    """

    def __init__(self, name: str = "hv0") -> None:
        self.name = name
        self.partitions: Dict[str, Partition] = {}
        self._grants: Set[Tuple[str, str, str]] = set()
        self.audit: List[Tuple[str, str, str, bool]] = []

    def create_partition(self, name: str, services: Optional[Set[str]] = None) -> Partition:
        if name in self.partitions:
            raise ValueError(f"partition {name!r} exists")
        part = Partition(name, services=set(services) if services else set())
        self.partitions[name] = part
        return part

    def grant(self, source: str, target: str, kind: str) -> None:
        """Allow ``source`` to perform ``kind`` against ``target``."""
        if kind not in ("read", "write", "call"):
            raise ValueError(f"unknown access kind {kind!r}")
        for p in (source, target):
            if p not in self.partitions:
                raise ValueError(f"unknown partition {p!r}")
        self._grants.add((source, target, kind))

    def revoke(self, source: str, target: str, kind: str) -> None:
        self._grants.discard((source, target, kind))

    def _check(self, source: str, target: str, kind: str) -> None:
        allowed = (source, target, kind) in self._grants
        self.audit.append((source, target, kind, allowed))
        if not allowed:
            raise IsolationViolation(f"{source} may not {kind} {target}")

    # ------------------------------------------------------------------
    # Mediated operations
    # ------------------------------------------------------------------
    def read(self, source: str, target: str, region: str) -> bytes:
        """Cross-partition memory read, policy-mediated."""
        if source != target:
            self._check(source, target, "read")
        return self.partitions[target].read(region)

    def write(self, source: str, target: str, region: str, data: bytes) -> None:
        """Cross-partition memory write, policy-mediated."""
        if source != target:
            self._check(source, target, "write")
        self.partitions[target].write(region, data)

    def call(self, source: str, target: str, service: str) -> None:
        """Invoke a service endpoint in another partition."""
        if source != target:
            self._check(source, target, "call")
        if service not in self.partitions[target].services:
            raise KeyError(f"{target} exposes no service {service!r}")

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def reachable_from(self, source: str) -> Set[str]:
        """Transitive closure of partitions a compromised ``source`` can
        influence through write/call grants (the blast radius)."""
        frontier = {source}
        reached = {source}
        while frontier:
            current = frontier.pop()
            for (s, t, kind) in self._grants:
                if s == current and kind in ("write", "call") and t not in reached:
                    reached.add(t)
                    frontier.add(t)
        return reached

    def denied_attempts(self) -> List[Tuple[str, str, str]]:
        """Audit entries that were denied (IDS food)."""
        return [(s, t, k) for (s, t, k, ok) in self.audit if not ok]
