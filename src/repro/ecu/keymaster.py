"""In-vehicle key distribution: provisioning SHE slots across the fleet.

The paper's bulk-production driver (§5): components ship "in bulk" and are
"reconfigured and tuned for various in-field needs" — including their key
material.  This module models the OEM backend + in-vehicle flow that turns
a bulk-provisioned ECU (only its MASTER_ECU_KEY installed at the factory)
into a personalised one:

- :class:`KeyBackend` -- the OEM's HSM-resident database: per-device
  master keys indexed by UID, and a monotonic counter per (UID, slot) so
  generated updates can never be replayed or rolled back.
- :class:`KeyDistributionService` -- the vehicle-side agent: applies
  update bundles to local SHE instances and reports results.

The security property (tested): an update bundle built for one UID is
useless on every other device, even of the same model — the per-device
diversification the paper's class-break scenario calls for.  Diversified
master keys are derived ``KDF(fleet_secret, UID)``, so the backend stores
one secret, not a million.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import hkdf
from repro.ecu.she import (
    KeyUpdateMessage,
    She,
    SheError,
    SheFlags,
    SLOT_MASTER_ECU_KEY,
    make_key_update,
)


def derive_master_key(fleet_secret: bytes, uid: bytes) -> bytes:
    """Per-device MASTER_ECU_KEY from one fleet secret (key diversification)."""
    if len(uid) != 15:
        raise ValueError("UID must be 15 bytes")
    return hkdf(fleet_secret, 16, salt=uid, info=b"master-ecu-key")


class KeyBackend:
    """The OEM backend holding the fleet secret and update counters."""

    def __init__(self, fleet_secret: bytes) -> None:
        if len(fleet_secret) < 16:
            raise ValueError("fleet secret must be at least 16 bytes")
        self._fleet_secret = bytes(fleet_secret)
        self._counters: Dict[Tuple[bytes, int], int] = {}
        self.updates_issued = 0

    def master_key_for(self, uid: bytes) -> bytes:
        """The device's diversified master key (factory provisioning and
        update authorisation both derive it on demand)."""
        return derive_master_key(self._fleet_secret, uid)

    def provision_factory(self, she: She) -> None:
        """Install the diversified master key into a blank SHE."""
        she.provision(SLOT_MASTER_ECU_KEY, self.master_key_for(she.uid))

    def build_update(
        self,
        uid: bytes,
        target_slot: int,
        new_key: bytes,
        flags: SheFlags = SheFlags.NONE,
    ) -> KeyUpdateMessage:
        """Create an M1/M2/M3 bundle for one device, bumping its counter."""
        counter_key = (bytes(uid), target_slot)
        counter = self._counters.get(counter_key, 0) + 1
        self._counters[counter_key] = counter
        self.updates_issued += 1
        return make_key_update(
            uid, target_slot, SLOT_MASTER_ECU_KEY,
            self.master_key_for(uid), new_key, counter, flags,
        )


@dataclass
class DistributionReport:
    """Outcome of one vehicle-wide key rollout."""

    installed: List[str] = field(default_factory=list)
    failed: List[Tuple[str, str]] = field(default_factory=list)  # (ecu, reason)

    @property
    def complete(self) -> bool:
        return not self.failed


class KeyDistributionService:
    """Vehicle-side agent applying backend bundles to the local ECUs."""

    def __init__(self, shes: Dict[str, She]) -> None:
        self.shes = dict(shes)

    def distribute(
        self,
        backend: KeyBackend,
        target_slot: int,
        keys: Dict[str, bytes],
        flags: SheFlags = SheFlags.NONE,
    ) -> DistributionReport:
        """Install a per-ECU key into ``target_slot`` of each named ECU."""
        report = DistributionReport()
        for ecu_name, new_key in keys.items():
            she = self.shes.get(ecu_name)
            if she is None:
                report.failed.append((ecu_name, "unknown ECU"))
                continue
            update = backend.build_update(she.uid, target_slot, new_key, flags)
            try:
                she.load_key(update)
                report.installed.append(ecu_name)
            except SheError as exc:
                report.failed.append((ecu_name, str(exc)))
        return report
