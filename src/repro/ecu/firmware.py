"""Firmware images, versioning, and signing.

Two authentication schemes coexist, matching practice:

- **CMAC** (symmetric, SHE-backed) for *local* secure boot;
- **ECDSA** (asymmetric) for *distribution*: OTA metadata in
  :mod:`repro.ota` signs image hashes with ECDSA so the vehicle never
  needs the OEM's signing secret.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.crypto import aes_cmac, ecdsa_sign, ecdsa_verify, EcdsaSignature, sha256


@dataclass(frozen=True)
class FirmwareImage:
    """A versioned firmware image for one ECU model."""

    name: str
    version: int
    payload: bytes
    hardware_id: str = "generic"

    def __post_init__(self) -> None:
        if self.version < 0:
            raise ValueError("version must be non-negative")
        if not self.payload:
            raise ValueError("payload must be non-empty")

    @property
    def digest(self) -> bytes:
        """SHA-256 over the canonical serialisation."""
        return sha256(self.canonical_bytes())

    def canonical_bytes(self) -> bytes:
        header = f"{self.name}|{self.version}|{self.hardware_id}|".encode()
        return header + self.payload

    def tampered(self, flip_byte: int = 0) -> "FirmwareImage":
        """Copy with one payload byte flipped (attack helper)."""
        idx = flip_byte % len(self.payload)
        mutated = (
            self.payload[:idx]
            + bytes([self.payload[idx] ^ 0xFF])
            + self.payload[idx + 1 :]
        )
        return replace(self, payload=mutated)


def sign_firmware_cmac(image: FirmwareImage, boot_mac_key: bytes, tag_len: int = 16) -> bytes:
    """Produce the CMAC a SHE BOOT_MAC slot would store for this image."""
    return aes_cmac(boot_mac_key, image.canonical_bytes(), tag_len=tag_len)


@dataclass(frozen=True)
class SignedFirmware:
    """An image plus a detached ECDSA signature over its digest."""

    image: FirmwareImage
    signature: EcdsaSignature

    def verify(self, public_key) -> bool:
        return ecdsa_verify(public_key, self.image.digest, self.signature)


def sign_firmware_ecdsa(image: FirmwareImage, private_key: int) -> SignedFirmware:
    """OEM-side detached signature over the image digest."""
    return SignedFirmware(image, ecdsa_sign(private_key, image.digest))


class FirmwareStore:
    """The flash bank of one ECU: active image + staged update slot.

    A/B semantics: an update is *staged*, then *activated*; activation can
    be rolled back once (the previous image is retained).
    """

    def __init__(self, initial: FirmwareImage) -> None:
        self.active = initial
        self.staged: Optional[FirmwareImage] = None
        self.previous: Optional[FirmwareImage] = None
        self.history: List[Tuple[str, int]] = [(initial.name, initial.version)]

    def stage(self, image: FirmwareImage) -> None:
        """Write an image to the inactive bank."""
        if image.hardware_id != self.active.hardware_id:
            raise ValueError(
                f"hardware mismatch: {image.hardware_id} != {self.active.hardware_id}"
            )
        self.staged = image

    def activate(self) -> FirmwareImage:
        """Swap banks; the old active image becomes the rollback target."""
        if self.staged is None:
            raise ValueError("no staged image")
        self.previous = self.active
        self.active = self.staged
        self.staged = None
        self.history.append((self.active.name, self.active.version))
        return self.active

    def rollback(self) -> FirmwareImage:
        """Return to the previous image (once)."""
        if self.previous is None:
            raise ValueError("nothing to roll back to")
        self.active = self.previous
        self.previous = None
        self.history.append((self.active.name, self.active.version))
        return self.active
