"""CAN frame encoding: CRC-15, bit stuffing, and wire-time arithmetic.

The experiments that matter here (arbitration starvation in E1, timing IDS
in E2, authentication bus-load in E3) all hinge on *how long a frame
occupies the wire*, which depends on the stuffed bit length.  Rather than
use a worst-case formula we serialise the stuffed region of each frame
(SOF, arbitration, control, data, CRC) and count actual stuff bits, so two
frames with the same DLC but different payloads correctly take different
times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

CAN_MAX_STD_ID = 0x7FF
CAN_MAX_EXT_ID = 0x1FFFFFFF

# Non-stuffed trailer: CRC delimiter(1) + ACK slot(1) + ACK delimiter(1)
# + EOF(7) + IFS(3)
_TRAILER_BITS = 13


@dataclass(frozen=True)
class CanFrame:
    """A CAN 2.0 data or remote frame.

    ``can_id`` is the arbitration identifier (lower wins arbitration),
    ``data`` the 0..8-byte payload.  Frames are immutable; mutation attacks
    construct modified copies (which is also how real attackers operate --
    they cannot rewrite a frame in flight, only inject new ones).
    """

    can_id: int
    data: bytes = b""
    extended: bool = False
    remote: bool = False
    sender: Optional[str] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        limit = CAN_MAX_EXT_ID if self.extended else CAN_MAX_STD_ID
        if not 0 <= self.can_id <= limit:
            raise ValueError(
                f"CAN id {self.can_id:#x} out of range for "
                f"{'extended' if self.extended else 'standard'} frame"
            )
        if len(self.data) > 8:
            raise ValueError(f"CAN payload limited to 8 bytes, got {len(self.data)}")
        if self.remote and self.data:
            raise ValueError("remote frames carry no data")

    @property
    def dlc(self) -> int:
        return len(self.data)

    def stuffed_region_bits(self) -> List[int]:
        """Serialise the bit-stuffing-covered region of the frame.

        Standard frame: SOF(1) ID(11) RTR(1) IDE(1) r0(1) DLC(4) DATA CRC(15).
        Extended frame: SOF(1) ID-A(11) SRR(1) IDE(1) ID-B(18) RTR(1)
        r1(1) r0(1) DLC(4) DATA CRC(15).
        """
        bits: List[int] = [0]  # SOF is dominant (0)
        if self.extended:
            id_a = (self.can_id >> 18) & 0x7FF
            id_b = self.can_id & 0x3FFFF
            bits += _int_bits(id_a, 11)
            bits += [1]  # SRR recessive
            bits += [1]  # IDE recessive (extended)
            bits += _int_bits(id_b, 18)
            bits += [1 if self.remote else 0]  # RTR
            bits += [0, 0]  # r1, r0
        else:
            bits += _int_bits(self.can_id, 11)
            bits += [1 if self.remote else 0]  # RTR
            bits += [0]  # IDE dominant (standard)
            bits += [0]  # r0
        bits += _int_bits(self.dlc, 4)
        for byte in self.data:
            bits += _int_bits(byte, 8)
        bits += _int_bits(can_crc15(bits), 15)
        return bits

    def bit_length(self) -> int:
        """Total on-wire bits, including actual stuff bits and IFS."""
        region = self.stuffed_region_bits()
        return len(region) + count_stuff_bits(region) + _TRAILER_BITS

    def wire_time(self, bitrate: float) -> float:
        """Seconds this frame occupies the bus at ``bitrate`` bits/s."""
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        return self.bit_length() / bitrate

    def with_data(self, data: bytes) -> "CanFrame":
        """Copy with replaced payload (used by attack mutators)."""
        return CanFrame(
            self.can_id, data, extended=self.extended,
            remote=self.remote, sender=self.sender, timestamp=self.timestamp,
        )

    def stamped(self, sender: str, timestamp: float) -> "CanFrame":
        """Copy with transmission metadata (called by the sending node)."""
        return CanFrame(
            self.can_id, self.data, extended=self.extended,
            remote=self.remote, sender=sender, timestamp=timestamp,
        )


def _int_bits(value: int, width: int) -> List[int]:
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def can_crc15(bits: List[int]) -> int:
    """CAN CRC-15 over a bit sequence (polynomial 0x4599)."""
    crc = 0
    for bit in bits:
        crc_next = bit ^ ((crc >> 14) & 1)
        crc = (crc << 1) & 0x7FFF
        if crc_next:
            crc ^= 0x4599
    return crc


def count_stuff_bits(bits: List[int]) -> int:
    """Count stuff bits CAN inserts after 5 consecutive equal bits.

    Stuff bits themselves participate in subsequent run-length counting, so
    this walks the stream statefully rather than just counting runs.
    """
    count = 0
    run_bit = None
    run_len = 0
    for bit in bits:
        if bit == run_bit:
            run_len += 1
        else:
            run_bit = bit
            run_len = 1
        if run_len == 5:
            count += 1
            # The inserted stuff bit is the complement; it starts a new run.
            run_bit = 1 - bit
            run_len = 1
    return count


def can_frame_bit_length(dlc: int, extended: bool = False, worst_case: bool = False) -> int:
    """Frame length formula without constructing a payload.

    With ``worst_case=True`` returns the classical worst-case stuffing bound;
    otherwise returns the unstuffed length (useful as a lower bound).
    """
    if not 0 <= dlc <= 8:
        raise ValueError("dlc must be 0..8")
    stuffable = (54 if extended else 34) + 8 * dlc
    base = stuffable + _TRAILER_BITS
    if worst_case:
        return base + (stuffable - 1) // 4
    return base
