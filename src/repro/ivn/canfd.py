"""CAN FD: flexible data-rate CAN.

The successor protocol production vehicles adopted after the paper's
timeframe: payloads up to 64 bytes and a faster *data phase* bitrate
(arbitration still runs at the nominal rate).  Security-wise it changes
the E3 economics completely -- a full 16-byte CMAC plus counter fits one
frame with room to spare, so authentication stops costing frames.

The model reuses the classic :class:`~repro.ivn.canbus.CanBus` semantics
(arbitration, errors) with FD frame timing: the arbitration/control
fields at the nominal bitrate, the data+CRC field at ``data_bitrate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ivn.canbus import CanBus

# Valid CAN FD DLC payload sizes.
FD_PAYLOAD_SIZES = (0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64)

_ARBITRATION_BITS = 30   # SOF + 11-bit id + control at nominal rate
_DATA_OVERHEAD_BITS = 28  # CRC(17/21) + delimiters + ACK + EOF, simplified
_TRAILER_NOMINAL_BITS = 12  # ACK/EOF/IFS back at nominal rate


def fd_dlc_for(length: int) -> int:
    """Smallest valid FD payload size holding ``length`` bytes."""
    for size in FD_PAYLOAD_SIZES:
        if size >= length:
            return size
    raise ValueError(f"payload {length}B exceeds CAN FD maximum of 64")


@dataclass(frozen=True)
class CanFdFrame:
    """A CAN FD data frame (11-bit id, up to 64 payload bytes)."""

    can_id: int
    data: bytes = b""
    sender: Optional[str] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= 0x7FF:
            raise ValueError(f"CAN FD id {self.can_id:#x} out of range")
        if len(self.data) > 64:
            raise ValueError("CAN FD payload limited to 64 bytes")

    @property
    def dlc(self) -> int:
        return fd_dlc_for(len(self.data))

    def stamped(self, sender: str, timestamp: float) -> "CanFdFrame":
        """Copy with transmission metadata (called by the sending node)."""
        return CanFdFrame(self.can_id, self.data, sender=sender,
                          timestamp=timestamp)

    def bit_length(self) -> int:
        """Approximate on-wire bits (for the random bit-error model)."""
        return _ARBITRATION_BITS + _TRAILER_NOMINAL_BITS + 8 * self.dlc + _DATA_OVERHEAD_BITS

    def wire_time(self, nominal_bitrate: float, data_bitrate: float) -> float:
        """Dual-rate transmission time (stuffing folded into overheads)."""
        if nominal_bitrate <= 0 or data_bitrate <= 0:
            raise ValueError("bitrates must be positive")
        padded = self.dlc
        data_bits = 8 * padded + _DATA_OVERHEAD_BITS
        return (
            (_ARBITRATION_BITS + _TRAILER_NOMINAL_BITS) / nominal_bitrate
            + data_bits / data_bitrate
        )


class CanFdBus(CanBus):
    """A CAN FD segment: classic arbitration, dual-rate frame timing.

    Accepts both :class:`CanFdFrame` and classic :class:`CanFrame` (the
    mixed-traffic reality of transition-era vehicles; classic frames are
    timed entirely at the nominal rate).
    """

    def __init__(
        self,
        sim,
        name: str = "canfd0",
        bitrate: float = 500_000.0,
        data_bitrate: float = 2_000_000.0,
        **kwargs,
    ) -> None:
        super().__init__(sim, name=name, bitrate=bitrate, **kwargs)
        self.data_bitrate = float(data_bitrate)

    def _arbitrate(self) -> None:
        # Identical to CanBus._arbitrate but times FD frames dual-rate.
        self._arbitration_pending = False
        if self.busy:
            return
        contenders = self._contenders()
        if not contenders:
            return
        winner = min(contenders, key=lambda n: n.tx_queue[0][0].can_id)
        for node in contenders:
            if node is not winner:
                node.arbitration_losses += 1
        frame, _ = winner.tx_queue[0]
        self.busy = True
        if isinstance(frame, CanFdFrame):
            duration = frame.wire_time(self.bitrate, self.data_bitrate)
        else:
            duration = frame.wire_time(self.bitrate)
        self._busy_time += duration
        self.sim.schedule(duration, self._complete, winner, frame)
