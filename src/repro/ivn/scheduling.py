"""Traffic generation and timing bookkeeping for IVN workloads.

The benchmark harness needs realistic background traffic.  A
:class:`TrafficMatrix` lists periodic CAN signals (id, period, dlc, source
ECU); :func:`typical_powertrain_matrix` and :func:`typical_body_matrix`
provide matrices with the id/period structure commonly reported for
production vehicles (engine data at 10 ms on low ids, body electronics at
100 ms -- 1 s on high ids).  :class:`DeadlineMonitor` measures per-id
latency against deadlines, the metric of experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator, TraceRecorder


@dataclass(frozen=True)
class TrafficEntry:
    """One periodic signal in a traffic matrix."""

    can_id: int
    period: float
    dlc: int
    source: str
    deadline: Optional[float] = None  # defaults to the period


@dataclass
class TrafficMatrix:
    """A set of periodic CAN signals plus generator helpers."""

    entries: List[TrafficEntry] = field(default_factory=list)

    def add(self, can_id: int, period: float, dlc: int, source: str,
            deadline: Optional[float] = None) -> "TrafficMatrix":
        self.entries.append(TrafficEntry(can_id, period, dlc, source, deadline))
        return self

    @property
    def sources(self) -> List[str]:
        return sorted({e.source for e in self.entries})

    def nominal_busload(self, bitrate: float) -> float:
        """Approximate utilisation the matrix induces (unstuffed estimate)."""
        from repro.ivn.frame import can_frame_bit_length

        load = sum(
            can_frame_bit_length(e.dlc) / bitrate / e.period for e in self.entries
        )
        return load

    def install(
        self,
        sim: Simulator,
        bus: CanBus,
        payload_fn: Optional[Callable[[TrafficEntry, int], bytes]] = None,
        jitter: float = 0.0,
        rng=None,
    ) -> Dict[str, CanNode]:
        """Attach source nodes and start periodic senders.  Returns nodes."""
        nodes: Dict[str, CanNode] = {}
        for source in self.sources:
            nodes[source] = bus.nodes.get(source) or bus.attach(source)
        for entry in self.entries:
            PeriodicSender(
                sim, nodes[entry.source], entry.can_id, entry.period,
                dlc=entry.dlc, payload_fn=payload_fn and
                (lambda seq, e=entry: payload_fn(e, seq)),
                jitter=jitter, rng=rng,
            )
        return nodes


class PeriodicSender:
    """Emits a CAN frame with a fixed id every ``period`` seconds.

    ``payload_fn(seq)`` supplies payload bytes; default is the sequence
    counter packed big-endian (gives realistic changing payloads so stuff
    bits vary frame-to-frame).
    """

    def __init__(
        self,
        sim: Simulator,
        node: CanNode,
        can_id: int,
        period: float,
        dlc: int = 8,
        payload_fn: Optional[Callable[[int], bytes]] = None,
        jitter: float = 0.0,
        rng=None,
        start_offset: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.node = node
        self.can_id = can_id
        self.period = period
        self.dlc = dlc
        self.payload_fn = payload_fn
        self.jitter = jitter
        self.rng = rng
        self.seq = 0
        self.stopped = False
        offset = start_offset
        if offset is None:
            # Desynchronise phases deterministically by id to avoid the
            # pathological all-at-once release pattern.
            offset = (can_id % 97) / 97.0 * period
        sim.schedule(offset, self._tick)

    def _payload(self) -> bytes:
        if self.payload_fn is not None:
            data = self.payload_fn(self.seq)
            return data[: self.dlc].ljust(self.dlc, b"\x00")
        return (self.seq % (1 << (8 * max(1, self.dlc)))).to_bytes(
            max(1, self.dlc), "big"
        )[: self.dlc].rjust(self.dlc, b"\x00")

    def _tick(self) -> None:
        if self.stopped:
            return
        self.node.send(CanFrame(self.can_id, self._payload()))
        self.seq += 1
        delay = self.period
        if self.jitter > 0 and self.rng is not None:
            delay += self.rng.uniform(-self.jitter, self.jitter) * self.period
            delay = max(1e-9, delay)
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self.stopped = True


class DeadlineMonitor:
    """Tracks per-id delivery latency against deadlines from trace records."""

    def __init__(self, trace: TraceRecorder, deadlines: Dict[int, float]) -> None:
        self.deadlines = dict(deadlines)
        self.latencies: Dict[int, List[float]] = {cid: [] for cid in deadlines}
        self.misses: Dict[int, int] = {cid: 0 for cid in deadlines}
        trace.subscribe(self._observe)

    def _observe(self, record) -> None:
        if record.kind != "can.tx":
            return
        can_id = record.data.get("can_id")
        if can_id not in self.deadlines:
            return
        latency = record.data.get("latency", 0.0)
        self.latencies[can_id].append(latency)
        if latency > self.deadlines[can_id]:
            self.misses[can_id] += 1

    def miss_rate(self, can_id: Optional[int] = None) -> float:
        """Fraction of monitored frames missing their deadline."""
        if can_id is not None:
            total = len(self.latencies.get(can_id, []))
            return self.misses.get(can_id, 0) / total if total else 0.0
        total = sum(len(v) for v in self.latencies.values())
        missed = sum(self.misses.values())
        return missed / total if total else 0.0

    def worst_latency(self, can_id: int) -> float:
        values = self.latencies.get(can_id, [])
        return max(values) if values else 0.0

    def mean_latency(self, can_id: int) -> float:
        values = self.latencies.get(can_id, [])
        return sum(values) / len(values) if values else 0.0


def typical_powertrain_matrix() -> TrafficMatrix:
    """A representative powertrain CAN matrix (ids/periods as in production
    vehicles: fast engine/chassis signals on low ids)."""
    m = TrafficMatrix()
    m.add(0x0C9, 0.010, 8, "engine")      # engine speed/torque
    m.add(0x0F9, 0.010, 8, "transmission")
    m.add(0x0D1, 0.010, 6, "brake")       # brake pressure
    m.add(0x0C1, 0.020, 8, "steering")    # steering angle
    m.add(0x185, 0.020, 8, "abs")         # wheel speeds
    m.add(0x1E5, 0.050, 8, "engine")      # coolant, lambda
    m.add(0x2C3, 0.100, 8, "transmission")
    m.add(0x3D1, 0.100, 4, "brake")       # pad wear
    m.add(0x4C1, 0.500, 8, "engine")      # diagnostics counters
    return m


def typical_body_matrix() -> TrafficMatrix:
    """A representative body-domain CAN matrix (slow, high ids)."""
    m = TrafficMatrix()
    m.add(0x244, 0.100, 8, "bcm")         # body control module status
    m.add(0x2F1, 0.100, 4, "doors")
    m.add(0x350, 0.200, 8, "climate")
    m.add(0x3B5, 0.500, 6, "lighting")
    m.add(0x470, 1.000, 8, "instrument")
    m.add(0x52A, 1.000, 2, "doors")       # lock state
    return m
