"""CAN bus simulation: arbitration, error handling, bus-off.

Semantics modelled (these are what the experiments exercise):

- **Arbitration**: when the bus goes idle, all nodes with pending frames
  contend; the lowest identifier wins (dominant bits win, CAN 2.0 §3).
  A flood of low-ID frames therefore starves higher-ID traffic -- the DoS
  attack mode of §4.1 of the paper and experiment E1/E2.
- **Error handling**: frames can be corrupted (random bit errors or a
  targeted attacker).  Receivers signal an error frame; the transmitter's
  TEC rises by 8 per error and falls by 1 per success; >127 puts the node
  in error-passive, >255 in **bus-off** -- which is itself an attack target
  (the bus-off attack in :mod:`repro.attacks.busoff`).
- **Timing**: each frame occupies the wire for its stuffed bit length
  divided by the bitrate; enqueue-to-delivery latency is traced for the
  deadline analysis of E3.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.ivn.frame import CanFrame
from repro.sim import Simulator, TraceRecorder

ReceiveFn = Callable[[CanFrame], None]

_ERROR_FRAME_BITS = 29  # error flag(6..12) + delimiter(8) + IFS(3), worst-ish
_TEC_ERROR_PASSIVE = 127
_TEC_BUS_OFF = 255


class BusState(Enum):
    """CAN controller fault-confinement states."""

    ERROR_ACTIVE = "error_active"
    ERROR_PASSIVE = "error_passive"
    BUS_OFF = "bus_off"


class CanNode:
    """A CAN controller attached to a :class:`CanBus`.

    Transmit queue is ordered by (can_id, FIFO), mirroring hardware mailbox
    behaviour where the highest-priority pending message enters arbitration.
    """

    def __init__(self, bus: "CanBus", name: str) -> None:
        self.bus = bus
        self.name = name
        self.tx_queue: List[Tuple[CanFrame, float]] = []
        self.receive_callbacks: List[ReceiveFn] = []
        self.tec = 0  # transmit error counter
        self.rec = 0  # receive error counter
        self.frames_sent = 0
        self.frames_received = 0
        self.arbitration_losses = 0
        self.tx_errors = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BusState:
        if self.tec > _TEC_BUS_OFF:
            return BusState.BUS_OFF
        if self.tec > _TEC_ERROR_PASSIVE or self.rec > _TEC_ERROR_PASSIVE:
            return BusState.ERROR_PASSIVE
        return BusState.ERROR_ACTIVE

    @property
    def bus_off(self) -> bool:
        return self.state == BusState.BUS_OFF

    def send(self, frame: CanFrame) -> None:
        """Queue a frame for transmission (no-op if bus-off)."""
        if self.bus_off:
            return
        stamped = frame.stamped(self.name, self.bus.sim.now)
        self.tx_queue.append((stamped, self.bus.sim.now))
        self.tx_queue.sort(key=lambda item: (item[0].can_id, item[1]))
        self.bus.request_arbitration()

    def on_receive(self, callback: ReceiveFn) -> None:
        """Register a frame-delivery callback (acceptance filtering is the
        callback's business, as with real controllers in promiscuous mode)."""
        self.receive_callbacks.append(callback)

    def recover(self) -> None:
        """Bus-off recovery (the 128 x 11 recessive-bit sequence, abstracted)."""
        self.tec = 0
        self.rec = 0
        self.bus.request_arbitration()

    def _deliver(self, frame: CanFrame) -> None:
        self.frames_received += 1
        if self.rec > 0:
            self.rec -= 1
        for callback in self.receive_callbacks:
            callback(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CanNode {self.name} tec={self.tec} {self.state.value}>"


class CanBus:
    """A single CAN segment on the event kernel.

    ``corruption_hook`` -- if set, called with each frame about to complete
    transmission; returning ``True`` corrupts it (used by targeted attacks);
    independent random corruption is controlled by ``bit_error_rate``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "can0",
        bitrate: float = 500_000.0,
        trace: Optional[TraceRecorder] = None,
        bit_error_rate: float = 0.0,
        rng=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.bitrate = float(bitrate)
        self.trace = trace if trace is not None else TraceRecorder()
        self.bit_error_rate = bit_error_rate
        self.rng = rng
        self.nodes: Dict[str, CanNode] = {}
        self.listeners: List[ReceiveFn] = []
        self.corruption_hook: Optional[Callable[[CanFrame], bool]] = None
        self.busy = False
        self.frames_on_wire = 0
        self.error_frames = 0
        self._arbitration_pending = False
        self._busy_time = 0.0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, name: str) -> CanNode:
        """Create and attach a named node."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already attached to {self.name}")
        node = CanNode(self, name)
        self.nodes[name] = node
        return node

    def tap(self, listener: ReceiveFn) -> None:
        """Attach a bus-level monitor (IDS sensors, gateways, sniffers)."""
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # Arbitration and transmission
    # ------------------------------------------------------------------
    def request_arbitration(self) -> None:
        """Ask the bus to (re)start arbitration as soon as it is idle."""
        if self.busy or self._arbitration_pending:
            return
        self._arbitration_pending = True
        self.sim.schedule(0.0, self._arbitrate)

    def _contenders(self) -> List[CanNode]:
        return [n for n in self.nodes.values() if n.tx_queue and not n.bus_off]

    def _arbitrate(self) -> None:
        self._arbitration_pending = False
        if self.busy:
            return
        contenders = self._contenders()
        if not contenders:
            return
        winner = min(contenders, key=lambda n: n.tx_queue[0][0].can_id)
        for node in contenders:
            if node is not winner:
                node.arbitration_losses += 1
        frame, _ = winner.tx_queue[0]
        self.busy = True
        duration = frame.wire_time(self.bitrate)
        self._busy_time += duration
        self.sim.schedule(duration, self._complete, winner, frame)

    def _complete(self, node: CanNode, frame: CanFrame) -> None:
        corrupted = False
        if self.corruption_hook is not None and self.corruption_hook(frame):
            corrupted = True
        elif self.bit_error_rate > 0 and self.rng is not None:
            # Probability any of the frame's bits flipped.
            n_bits = frame.bit_length()
            p_frame = 1.0 - (1.0 - self.bit_error_rate) ** n_bits
            corrupted = self.rng.random() < p_frame

        if corrupted:
            self.error_frames += 1
            node.tec += 8
            node.tx_errors += 1
            for other in self.nodes.values():
                if other is not node:
                    other.rec += 1
            self.trace.emit(
                self.sim.now, self.name, "can.error",
                can_id=frame.can_id, sender=node.name, tec=node.tec,
            )
            if node.bus_off:
                node.tx_queue.clear()
                self.trace.emit(self.sim.now, self.name, "can.busoff", node=node.name)
            # Error frame occupies the wire before the retransmission.
            error_time = _ERROR_FRAME_BITS / self.bitrate
            self._busy_time += error_time
            self.sim.schedule(error_time, self._release)
            return

        # Successful transmission.
        node.tx_queue.pop(0)
        node.frames_sent += 1
        if node.tec > 0:
            node.tec -= 1
        self.frames_on_wire += 1
        latency = self.sim.now - frame.timestamp
        self.trace.emit(
            self.sim.now, self.name, "can.tx",
            can_id=frame.can_id, dlc=frame.dlc, sender=node.name, latency=latency,
        )
        for other in self.nodes.values():
            if other is not node:
                other._deliver(frame)
        for listener in self.listeners:
            listener(frame)
        self._release()

    def _release(self) -> None:
        self.busy = False
        if self._contenders():
            self.request_arbitration()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of wall-clock the wire was occupied."""
        window = elapsed if elapsed is not None else self.sim.now
        if window <= 0:
            return 0.0
        return min(1.0, self._busy_time / window)
