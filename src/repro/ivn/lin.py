"""LIN (Local Interconnect Network) master/slave simulation.

LIN is the low-cost sensor/actuator bus the paper lists among IVNs lacking
security.  It is strictly schedule-driven: the single master broadcasts a
frame *header* per schedule slot and the designated publisher (master or a
slave) answers with the response.  There is no arbitration and no sender
authentication -- any node physically on the wire can answer a header, which
is exactly the weakness :mod:`repro.attacks.injection` exploits on LIN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim import Simulator, TraceRecorder

LIN_MAX_ID = 0x3F
_HEADER_BITS = 34  # break(13) + sync(10) + protected id(10), rounded
_BITS_PER_BYTE = 10  # 8N1 UART framing


@dataclass(frozen=True)
class LinFrameSlot:
    """One entry of the master's schedule table."""

    frame_id: int
    publisher: str  # node name expected to supply the response
    length: int = 8  # response bytes

    def __post_init__(self) -> None:
        if not 0 <= self.frame_id <= LIN_MAX_ID:
            raise ValueError(f"LIN id {self.frame_id:#x} out of range")
        if not 1 <= self.length <= 8:
            raise ValueError("LIN response length must be 1..8")

    def slot_time(self, bitrate: float) -> float:
        """Nominal slot duration: header + response + checksum byte."""
        response_bits = _BITS_PER_BYTE * (self.length + 1)
        return 1.4 * (_HEADER_BITS + response_bits) / bitrate  # 40% inter-byte space


class LinSlave:
    """A LIN slave: publishes responses for some ids, listens to all."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._publications: Dict[int, Callable[[], bytes]] = {}
        self.receive_callbacks: List[Callable[[int, bytes, str], None]] = []
        self.frames_received = 0

    def publish(self, frame_id: int, supplier: Callable[[], bytes]) -> None:
        """Register as the data supplier for ``frame_id``."""
        self._publications[frame_id] = supplier

    def respond(self, frame_id: int) -> Optional[bytes]:
        supplier = self._publications.get(frame_id)
        return None if supplier is None else supplier()

    def on_frame(self, callback: Callable[[int, bytes, str], None]) -> None:
        self.receive_callbacks.append(callback)

    def deliver(self, frame_id: int, data: bytes, publisher: str) -> None:
        self.frames_received += 1
        for callback in self.receive_callbacks:
            callback(frame_id, data, publisher)


class LinMaster(LinSlave):
    """The LIN master also owns the schedule; modelled by :class:`LinBus`."""


class LinBus:
    """A LIN cluster: one master, many slaves, cyclic schedule."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "lin0",
        bitrate: float = 19_200.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.bitrate = float(bitrate)
        self.trace = trace if trace is not None else TraceRecorder()
        self.master = LinMaster("master")
        self.slaves: Dict[str, LinSlave] = {}
        self.schedule: List[LinFrameSlot] = []
        self.impostor: Optional[Callable[[int], Optional[bytes]]] = None
        self._slot_index = 0
        self._running = False
        self.collisions = 0

    def attach_slave(self, name: str) -> LinSlave:
        if name in self.slaves or name == "master":
            raise ValueError(f"slave {name!r} already attached")
        slave = LinSlave(name)
        self.slaves[name] = slave
        return slave

    def set_schedule(self, slots: List[LinFrameSlot]) -> None:
        for slot in slots:
            if slot.publisher != "master" and slot.publisher not in self.slaves:
                raise ValueError(f"unknown publisher {slot.publisher!r}")
        self.schedule = list(slots)

    def start(self) -> None:
        """Begin executing the schedule table cyclically."""
        if not self.schedule:
            raise ValueError("cannot start LIN bus with empty schedule")
        if not self._running:
            self._running = True
            self.sim.schedule(0.0, self._run_slot)

    def stop(self) -> None:
        self._running = False

    def _node(self, name: str) -> LinSlave:
        return self.master if name == "master" else self.slaves[name]

    def _run_slot(self) -> None:
        if not self._running:
            return
        slot = self.schedule[self._slot_index]
        self._slot_index = (self._slot_index + 1) % len(self.schedule)

        publisher = self._node(slot.publisher)
        response = publisher.respond(slot.frame_id)

        # An impostor (attacker on the wire) may answer the header too.
        spoofed = self.impostor(slot.frame_id) if self.impostor else None
        effective_publisher = slot.publisher
        if spoofed is not None:
            if response is not None:
                self.collisions += 1  # both drive the wire; attacker wins timing
            response = spoofed
            effective_publisher = "<impostor>"

        if response is not None:
            self.trace.emit(
                self.sim.now, self.name, "lin.tx",
                frame_id=slot.frame_id, publisher=effective_publisher,
                dlc=len(response),
            )
            for node in [self.master, *self.slaves.values()]:
                if node.name != effective_publisher:
                    node.deliver(slot.frame_id, response, effective_publisher)
        else:
            self.trace.emit(
                self.sim.now, self.name, "lin.no_response", frame_id=slot.frame_id,
            )
        self.sim.schedule(slot.slot_time(self.bitrate), self._run_slot)
