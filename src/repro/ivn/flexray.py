"""FlexRay simulation: TDMA static segment + minislot dynamic segment.

FlexRay is the time-triggered, high-rate IVN used for chassis/x-by-wire.
Security-wise it shares CAN's weakness (no authentication), but its TDMA
static segment gives *temporal* protection: a node cannot transmit in a
slot it does not own without causing a detectable coding violation.  The
dynamic segment degrades to priority order like CAN.  The model captures
both segments at slot granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import Simulator, TraceRecorder


@dataclass(frozen=True)
class FlexRayConfig:
    """Cluster timing parameters (one channel).

    Defaults give a 5 ms cycle with a 3 ms static segment -- representative
    of production chassis clusters.
    """

    static_slots: int = 30
    static_slot_duration: float = 100e-6
    dynamic_minislots: int = 40
    minislot_duration: float = 50e-6
    payload_bytes: int = 32

    @property
    def cycle_duration(self) -> float:
        return (
            self.static_slots * self.static_slot_duration
            + self.dynamic_minislots * self.minislot_duration
        )


class FlexRayNode:
    """A FlexRay communication controller."""

    def __init__(self, bus: "FlexRayBus", name: str) -> None:
        self.bus = bus
        self.name = name
        self._static_suppliers: Dict[int, Callable[[], bytes]] = {}
        self._dynamic_queue: List[Tuple[int, bytes]] = []
        self.receive_callbacks: List[Callable[[int, bytes, str], None]] = []
        self.frames_sent = 0
        self.frames_received = 0

    def assign_static(self, slot: int, supplier: Callable[[], bytes]) -> None:
        """Claim a static slot (ownership enforced by the bus)."""
        self.bus.claim_slot(slot, self.name)
        self._static_suppliers[slot] = supplier

    def send_dynamic(self, frame_id: int, data: bytes) -> None:
        """Queue a dynamic-segment frame; lower id transmits earlier."""
        if len(data) > self.bus.config.payload_bytes:
            raise ValueError("payload exceeds configured FlexRay payload size")
        self._dynamic_queue.append((frame_id, data))
        self._dynamic_queue.sort(key=lambda item: item[0])

    def on_frame(self, callback: Callable[[int, bytes, str], None]) -> None:
        self.receive_callbacks.append(callback)

    def deliver(self, slot_or_id: int, data: bytes, sender: str) -> None:
        self.frames_received += 1
        for callback in self.receive_callbacks:
            callback(slot_or_id, data, sender)


class FlexRayBus:
    """One FlexRay channel executing communication cycles."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[FlexRayConfig] = None,
        name: str = "flexray0",
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else FlexRayConfig()
        self.name = name
        self.trace = trace if trace is not None else TraceRecorder()
        self.nodes: Dict[str, FlexRayNode] = {}
        self.slot_owners: Dict[int, str] = {}
        self.cycle_count = 0
        self.slot_violations = 0
        self._running = False

    def attach(self, name: str) -> FlexRayNode:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already attached")
        node = FlexRayNode(self, name)
        self.nodes[name] = node
        return node

    def claim_slot(self, slot: int, owner: str) -> None:
        if not 1 <= slot <= self.config.static_slots:
            raise ValueError(f"static slot {slot} out of range")
        current = self.slot_owners.get(slot)
        if current is not None and current != owner:
            raise ValueError(f"slot {slot} already owned by {current!r}")
        self.slot_owners[slot] = owner

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.sim.schedule(0.0, self._run_cycle)

    def stop(self) -> None:
        self._running = False

    def _broadcast(self, key: int, data: bytes, sender: str) -> None:
        for node in self.nodes.values():
            if node.name != sender:
                node.deliver(key, data, sender)

    def _run_cycle(self) -> None:
        if not self._running:
            return
        cycle_start = self.sim.now
        cfg = self.config

        # Static segment: each slot belongs to exactly one node.
        for slot in range(1, cfg.static_slots + 1):
            owner_name = self.slot_owners.get(slot)
            if owner_name is None:
                continue
            owner = self.nodes.get(owner_name)
            if owner is None:
                continue
            supplier = owner._static_suppliers.get(slot)
            if supplier is None:
                continue
            data = supplier()
            if data is None:
                continue
            owner.frames_sent += 1
            self.trace.emit(
                cycle_start + slot * cfg.static_slot_duration,
                self.name, "flexray.static",
                slot=slot, sender=owner_name, dlc=len(data), cycle=self.cycle_count,
            )
            self._broadcast(slot, data, owner_name)

        # Dynamic segment: minislot counting, priority by frame id.
        minislots_left = cfg.dynamic_minislots
        pending = []
        for node in self.nodes.values():
            pending.extend((fid, data, node) for fid, data in node._dynamic_queue)
        pending.sort(key=lambda item: item[0])
        dyn_time = cycle_start + cfg.static_slots * cfg.static_slot_duration
        for frame_id, data, node in pending:
            # A frame needs ceil(payload/8)+1 minislots, simplified.
            needed = max(1, (len(data) + 7) // 8 + 1)
            if needed > minislots_left:
                break  # deferred to a later cycle (minislot exhaustion)
            minislots_left -= needed
            node._dynamic_queue.remove((frame_id, data))
            node.frames_sent += 1
            self.trace.emit(
                dyn_time, self.name, "flexray.dynamic",
                frame_id=frame_id, sender=node.name, dlc=len(data),
                cycle=self.cycle_count,
            )
            dyn_time += needed * cfg.minislot_duration
            self._broadcast(frame_id, data, node.name)

        self.cycle_count += 1
        self.sim.schedule(cfg.cycle_duration, self._run_cycle)
