"""Authenticated CAN messaging (AUTOSAR SecOC shape).

CAN frames carry at most 8 bytes, so message authentication must either
steal payload bytes for a truncated MAC (**inline** mode: SecOC's default
-- typically 4 bytes of truncated CMAC + 1 byte of freshness counter) or
send the tag in a **separate** frame (full-width tag, doubled bus load).
Both modes are implemented; experiment E3 sweeps tag length against bus
load and deadline misses, experiment ablations compare the modes.

Freshness: a per-id monotonic counter is MAC'd and (partially) transmitted;
receivers accept a bounded window ahead of their last seen counter, which
defeats replay while tolerating loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.crypto import aes_cmac, cmac_verify
from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame

# Separate-mode tag frames ride on extended ids in a reserved space so no
# 11-bit base id can collide with its own (or another signal's) tag id.
TAG_ID_BASE = 0x1F000000


@dataclass
class SecOcStats:
    sent: int = 0
    accepted: int = 0
    rejected_mac: int = 0
    rejected_freshness: int = 0


class SecOcSender:
    """Authenticates outgoing frames for a set of ids.

    ``tag_len`` payload bytes are spent on the truncated CMAC and one byte
    on the freshness counter (inline mode), leaving ``8 - tag_len - 1``
    bytes of application payload.
    """

    def __init__(self, node: CanNode, key: bytes, tag_len: int = 4,
                 mode: str = "inline") -> None:
        if mode not in ("inline", "separate"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "inline" and not 1 <= tag_len <= 7:
            raise ValueError("inline tag must leave at least one payload byte")
        if mode == "separate" and not 1 <= tag_len <= 7:
            raise ValueError(
                "separate tag must fit one frame alongside the counter byte"
            )
        self.node = node
        self.key = key
        self.tag_len = tag_len
        self.mode = mode
        self._counters: Dict[int, int] = {}
        self.stats = SecOcStats()

    def max_payload(self) -> int:
        """Application bytes available per frame."""
        return 8 - self.tag_len - 1 if self.mode == "inline" else 7

    def send(self, can_id: int, payload: bytes) -> None:
        """Authenticate and transmit ``payload`` under ``can_id``."""
        if len(payload) > self.max_payload():
            raise ValueError(
                f"payload {len(payload)}B exceeds authenticated capacity "
                f"{self.max_payload()}B"
            )
        counter = self._counters.get(can_id, 0) + 1
        self._counters[can_id] = counter
        counter_byte = counter & 0xFF
        auth_input = (
            can_id.to_bytes(4, "big") + counter.to_bytes(8, "big") + payload
        )
        tag = aes_cmac(self.key, auth_input, tag_len=self.tag_len)
        self.stats.sent += 1
        if self.mode == "inline":
            frame_payload = payload + bytes([counter_byte]) + tag
            self.node.send(CanFrame(can_id, frame_payload))
        else:
            self.node.send(CanFrame(can_id, payload + bytes([counter_byte])))
            # Tag frame carries the counter byte so receivers can pair
            # data and tag even when congestion reorders them.
            self.node.send(CanFrame(
                TAG_ID_BASE | can_id, bytes([counter_byte]) + tag, extended=True,
            ))


class SecOcReceiver:
    """Verifies authenticated frames; delivers accepted payloads.

    ``window``: how far ahead of the last accepted counter the received
    (truncated) counter may be -- loss tolerance vs replay window.
    """

    def __init__(self, key: bytes, tag_len: int = 4, window: int = 16,
                 on_accept: Optional[Callable[[int, bytes], None]] = None) -> None:
        self.key = key
        self.tag_len = tag_len
        self.window = window
        self.on_accept = on_accept
        self._counters: Dict[int, int] = {}
        self.stats = SecOcStats()
        # Separate mode: per-id map of counter byte -> waiting payload,
        # bounded so a flood of unpaired data frames cannot grow it.
        self._pending_separate: Dict[int, Dict[int, bytes]] = {}

    def _reconstruct_counter(self, can_id: int, counter_byte: int) -> Optional[int]:
        """Recover the full counter from its low byte within the window."""
        last = self._counters.get(can_id, 0)
        for candidate in range(last + 1, last + 1 + self.window):
            if candidate & 0xFF == counter_byte:
                return candidate
        return None

    def _verify(self, can_id: int, payload: bytes, counter_byte: int,
                tag: bytes) -> bool:
        counter = self._reconstruct_counter(can_id, counter_byte)
        if counter is None:
            self.stats.rejected_freshness += 1
            return False
        auth_input = (
            can_id.to_bytes(4, "big") + counter.to_bytes(8, "big") + payload
        )
        if not cmac_verify(self.key, auth_input, tag):
            self.stats.rejected_mac += 1
            return False
        self._counters[can_id] = counter
        self.stats.accepted += 1
        if self.on_accept is not None:
            self.on_accept(can_id, payload)
        return True

    def receive_inline(self, frame: CanFrame) -> bool:
        """Process one inline-authenticated frame."""
        if frame.dlc < self.tag_len + 1:
            self.stats.rejected_mac += 1
            return False
        tag = frame.data[-self.tag_len:]
        counter_byte = frame.data[-self.tag_len - 1]
        payload = frame.data[: -self.tag_len - 1]
        return self._verify(frame.can_id, payload, counter_byte, tag)

    def receive_separate(self, frame: CanFrame) -> Optional[bool]:
        """Process frames of the two-frame (data + tag) scheme.

        Returns None while waiting for the companion frame.
        """
        if frame.extended and (frame.can_id & TAG_ID_BASE) == TAG_ID_BASE:
            if frame.dlc < 2:
                self.stats.rejected_mac += 1
                return False
            base_id = frame.can_id & 0x7FF
            counter_byte, tag = frame.data[0], frame.data[1:]
            payload = self._pending_separate.get(base_id, {}).pop(counter_byte, None)
            if payload is None:
                self.stats.rejected_freshness += 1
                return False
            return self._verify(base_id, payload, counter_byte, tag)
        if frame.dlc < 1:
            self.stats.rejected_mac += 1
            return False
        pending = self._pending_separate.setdefault(frame.can_id, {})
        if len(pending) >= self.window:
            pending.pop(next(iter(pending)))
        pending[frame.data[-1]] = frame.data[:-1]
        return None


def secured_payload_overhead(tag_len: int, mode: str = "inline") -> float:
    """Bus-load multiplier of authentication vs plain 8-byte frames.

    Inline: same frame count, same dlc (payload shrinks instead) -> 1.0 in
    frame terms but the *effective* multiplier is payload-based: to move N
    application bytes you need N / (7 - tag_len) frames instead of N / 8.
    Separate: two frames per message.
    """
    if mode == "inline":
        capacity = 8 - tag_len - 1
        if capacity <= 0:
            raise ValueError("no capacity at this tag length")
        return 8.0 / capacity
    if mode == "separate":
        return 2.0
    raise ValueError(f"unknown mode {mode!r}")
