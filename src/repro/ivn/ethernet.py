"""Switched Automotive Ethernet with VLANs and a filtering hook.

The paper cites Automotive Ethernet as the next-generation IVN with "more
intrusion detection capabilities and stricter separation".  We model a
store-and-forward switch: MAC learning, per-port VLAN membership, and an
optional per-frame filter hook -- the attachment point for the secure
gateway (:mod:`repro.gateway`) and Ethernet-level IDS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim import Simulator, TraceRecorder

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"
_OVERHEAD_BYTES = 38  # preamble 8 + header 14 + FCS 4 + IPG 12
_SWITCH_LATENCY = 3e-6


@dataclass(frozen=True)
class EthernetFrame:
    """An L2 frame (payload abstracted to a byte count + tag dict)."""

    src: str
    dst: str
    payload_len: int
    vlan: int = 1
    ethertype: int = 0x0800
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 46 <= self.payload_len <= 1500:
            raise ValueError("payload must be 46..1500 bytes")
        if not 1 <= self.vlan <= 4094:
            raise ValueError("vlan must be 1..4094")

    def wire_time(self, link_rate: float) -> float:
        return 8.0 * (self.payload_len + _OVERHEAD_BYTES) / link_rate


class EthernetEndpoint:
    """A host NIC attached to one switch port."""

    def __init__(self, switch: "EthernetSwitch", mac: str, port: int) -> None:
        self.switch = switch
        self.mac = mac
        self.port = port
        self.receive_callbacks: List[Callable[[EthernetFrame], None]] = []
        self.frames_sent = 0
        self.frames_received = 0

    def send(self, frame: EthernetFrame) -> None:
        if frame.src != self.mac:
            raise ValueError("source MAC must match endpoint (spoofing goes via meta)")
        self.frames_sent += 1
        self.switch.ingress(frame, self.port)

    def on_receive(self, callback: Callable[[EthernetFrame], None]) -> None:
        self.receive_callbacks.append(callback)

    def deliver(self, frame: EthernetFrame) -> None:
        self.frames_received += 1
        for callback in self.receive_callbacks:
            callback(frame)


FilterFn = Callable[[EthernetFrame, int], bool]


class EthernetSwitch:
    """A learning switch with VLAN separation.

    ``link_rate`` defaults to 100BASE-T1 (the automotive PHY).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "sw0",
        link_rate: float = 100e6,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.link_rate = float(link_rate)
        self.trace = trace if trace is not None else TraceRecorder()
        self.ports: Dict[int, EthernetEndpoint] = {}
        self.port_vlans: Dict[int, set] = {}
        self.mac_table: Dict[str, int] = {}
        self.filter_hook: Optional[FilterFn] = None
        self.forwarded = 0
        self.dropped = 0
        self.flooded = 0

    def attach(self, mac: str, port: int, vlans: Optional[set] = None) -> EthernetEndpoint:
        if port in self.ports:
            raise ValueError(f"port {port} already in use")
        endpoint = EthernetEndpoint(self, mac, port)
        self.ports[port] = endpoint
        self.port_vlans[port] = set(vlans) if vlans else {1}
        return endpoint

    def ingress(self, frame: EthernetFrame, in_port: int) -> None:
        """Frame arriving at a port; forwarded after store-and-forward delay."""
        if frame.vlan not in self.port_vlans.get(in_port, set()):
            self.dropped += 1
            self.trace.emit(
                self.sim.now, self.name, "eth.drop",
                reason="vlan", src=frame.src, dst=frame.dst, vlan=frame.vlan,
            )
            return
        if self.filter_hook is not None and not self.filter_hook(frame, in_port):
            self.dropped += 1
            self.trace.emit(
                self.sim.now, self.name, "eth.drop",
                reason="filter", src=frame.src, dst=frame.dst, vlan=frame.vlan,
            )
            return
        self.mac_table[frame.src] = in_port
        delay = frame.wire_time(self.link_rate) + _SWITCH_LATENCY
        self.sim.schedule(delay, self._egress, frame, in_port)

    def _egress(self, frame: EthernetFrame, in_port: int) -> None:
        out_port = self.mac_table.get(frame.dst)
        if frame.dst == BROADCAST_MAC or out_port is None:
            # Flood within the VLAN.
            self.flooded += 1
            targets = [
                p for p, vlans in self.port_vlans.items()
                if p != in_port and frame.vlan in vlans
            ]
        else:
            if frame.vlan not in self.port_vlans.get(out_port, set()):
                self.dropped += 1
                return
            targets = [out_port] if out_port != in_port else []
        self.forwarded += bool(targets)
        self.trace.emit(
            self.sim.now, self.name, "eth.fwd",
            src=frame.src, dst=frame.dst, vlan=frame.vlan, ports=list(targets),
        )
        for port in targets:
            self.ports[port].deliver(frame)
