"""In-vehicle network (IVN) substrate.

The paper's "Secure Networks" layer observes that the dominant IVN protocols
-- LIN, CAN, FlexRay -- lack security mechanisms, and that Automotive
Ethernet is the next-generation option.  This package models all four at
frame granularity on the discrete-event kernel:

- :mod:`repro.ivn.frame` -- CAN frame encoding: real CRC-15, bit-stuffing
  computation, wire-time arithmetic.
- :mod:`repro.ivn.canbus` -- CAN bus with ID-priority arbitration, error
  counters and the bus-off state machine (the substrate attacked in E1/E2
  and loaded in E3).
- :mod:`repro.ivn.lin` -- LIN master/slave schedule table.
- :mod:`repro.ivn.flexray` -- FlexRay TDMA static segment + minislot
  dynamic segment.
- :mod:`repro.ivn.ethernet` -- switched Automotive Ethernet with VLANs and
  a filtering hook.
- :mod:`repro.ivn.scheduling` -- periodic senders, realistic automotive
  traffic matrices, deadline bookkeeping.
"""

from repro.ivn.frame import CanFrame, can_frame_bit_length, can_crc15, count_stuff_bits
from repro.ivn.canbus import BusState, CanBus, CanNode
from repro.ivn.canfd import CanFdBus, CanFdFrame, fd_dlc_for
from repro.ivn.lin import LinBus, LinFrameSlot, LinMaster, LinSlave
from repro.ivn.flexray import FlexRayBus, FlexRayConfig, FlexRayNode
from repro.ivn.ethernet import EthernetFrame, EthernetSwitch, EthernetEndpoint
from repro.ivn.scheduling import (
    DeadlineMonitor,
    PeriodicSender,
    TrafficMatrix,
    typical_powertrain_matrix,
    typical_body_matrix,
)

__all__ = [
    "CanFrame",
    "can_frame_bit_length",
    "can_crc15",
    "count_stuff_bits",
    "BusState",
    "CanFdBus",
    "CanFdFrame",
    "fd_dlc_for",
    "CanBus",
    "CanNode",
    "LinBus",
    "LinFrameSlot",
    "LinMaster",
    "LinSlave",
    "FlexRayBus",
    "FlexRayConfig",
    "FlexRayNode",
    "EthernetFrame",
    "EthernetSwitch",
    "EthernetEndpoint",
    "DeadlineMonitor",
    "PeriodicSender",
    "TrafficMatrix",
    "typical_powertrain_matrix",
    "typical_body_matrix",
]
