"""Payload-range (signal-value) intrusion detection.

Learns, per CAN id and byte position, the value range observed in benign
traffic and alerts when a live frame carries an out-of-range byte.  This
is the *learned* sibling of :class:`~repro.ids.specification.SpecificationIds`
(which needs the OEM database): it catches payload manipulation that
keeps the id and timing intact -- the gap between the frequency and
specification detectors in E2.

Limitations (deliberately preserved): values that stay inside the learned
envelope pass (a forged-but-plausible speed), and byte-wise ranges miss
cross-byte invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ids.base import Alert, Detector
from repro.ivn.frame import CanFrame


@dataclass
class _ByteRange:
    low: int
    high: int

    def widen(self, value: int) -> None:
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value

    def contains(self, value: int, margin: int) -> bool:
        return self.low - margin <= value <= self.high + margin


class PayloadRangeIds(Detector):
    """Per-(id, byte) min/max envelope detector.

    ``margin``: slack added to each learned bound (absorbs benign drift).
    ``min_training_frames``: ids seen fewer times are not modelled.
    """

    def __init__(self, name: str = "payload-ids", margin: int = 8,
                 min_training_frames: int = 20) -> None:
        super().__init__(name)
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin
        self.min_training_frames = min_training_frames
        self._ranges: Dict[int, List[_ByteRange]] = {}
        self._counts: Dict[int, int] = {}

    def train(self, frames: Iterable[Tuple[float, CanFrame]]) -> None:
        for _, frame in frames:
            self._counts[frame.can_id] = self._counts.get(frame.can_id, 0) + 1
            ranges = self._ranges.get(frame.can_id)
            if ranges is None or len(ranges) != frame.dlc:
                self._ranges[frame.can_id] = [
                    _ByteRange(b, b) for b in frame.data
                ]
                continue
            for byte_range, value in zip(ranges, frame.data):
                byte_range.widen(value)
        # Drop under-trained ids.
        for can_id, count in list(self._counts.items()):
            if count < self.min_training_frames:
                self._ranges.pop(can_id, None)
        self.trained = True

    def learned_envelope(self, can_id: int) -> Optional[List[Tuple[int, int]]]:
        ranges = self._ranges.get(can_id)
        if ranges is None:
            return None
        return [(r.low, r.high) for r in ranges]

    def _evaluate(self, time: float, frame: CanFrame) -> Optional[Alert]:
        ranges = self._ranges.get(frame.can_id)
        if ranges is None:
            return None
        if len(ranges) != frame.dlc:
            return Alert(time, self.name, frame.can_id,
                         reason=f"dlc {frame.dlc} != learned {len(ranges)}",
                         score=1.0)
        for index, (byte_range, value) in enumerate(zip(ranges, frame.data)):
            if not byte_range.contains(value, self.margin):
                span = max(1, byte_range.high - byte_range.low + 2 * self.margin)
                deviation = min(
                    abs(value - byte_range.low), abs(value - byte_range.high),
                ) / span
                return Alert(
                    time, self.name, frame.can_id,
                    reason=(f"byte {index} value {value} outside learned "
                            f"[{byte_range.low}, {byte_range.high}] "
                            f"(margin {self.margin})"),
                    score=1.0 + deviation,
                )
        return None
