"""Detector ensembles.

Single detectors have complementary blind spots (timing vs content vs
distribution); the ensemble combines their verdicts per frame.  ``mode``:

- ``"any"``    -- alert if any member alerts (max recall);
- ``"majority"`` -- alert if more than half the members alert (precision).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.ids.base import Alert, Detector
from repro.ivn.frame import CanFrame


class EnsembleIds(Detector):
    """Combines member detectors' per-frame verdicts."""

    def __init__(
        self,
        members: List[Detector],
        mode: str = "any",
        name: str = "ensemble-ids",
    ) -> None:
        super().__init__(name)
        if not members:
            raise ValueError("ensemble needs at least one member")
        if mode not in ("any", "majority"):
            raise ValueError(f"unknown mode {mode!r}")
        self.members = list(members)
        self.mode = mode

    def train(self, frames: Iterable[Tuple[float, CanFrame]]) -> None:
        cached = list(frames)
        for member in self.members:
            member.train(iter(cached))
        self.trained = True

    def _evaluate(self, time: float, frame: CanFrame) -> Optional[Alert]:
        votes: List[Alert] = []
        for member in self.members:
            # Use observe() so members keep their own state/alert logs.
            alert = member.observe(time, frame)
            if alert is not None:
                votes.append(alert)
        if not votes:
            return None
        needed = 1 if self.mode == "any" else len(self.members) // 2 + 1
        if len(votes) < needed:
            return None
        strongest = max(votes, key=lambda a: a.score)
        return Alert(
            time, self.name, frame.can_id,
            reason=f"{len(votes)}/{len(self.members)} members: {strongest.reason}",
            score=strongest.score,
        )
