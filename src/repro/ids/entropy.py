"""Entropy-based intrusion detection.

The Shannon entropy of the CAN-id distribution over a sliding window is
remarkably stable in benign operation (the traffic matrix is fixed).  A
flood of one id collapses entropy; random-id fuzzing inflates it.  The
detector learns the benign entropy band during training and alerts when a
window falls outside ``mean +/- k * std``.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import Deque, Iterable, List, Optional, Tuple

from repro.ids.base import Alert, Detector
from repro.ivn.frame import CanFrame


def shannon_entropy(counter: Counter) -> float:
    """Entropy in bits of a frequency table."""
    total = sum(counter.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counter.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


class EntropyIds(Detector):
    """Sliding-window id-entropy anomaly detector."""

    def __init__(
        self,
        name: str = "entropy-ids",
        window: int = 64,
        k_sigma: float = 4.0,
        min_sigma: float = 0.05,
    ) -> None:
        super().__init__(name)
        if window < 8:
            raise ValueError("window must be >= 8")
        self.window = window
        self.k_sigma = k_sigma
        self.min_sigma = min_sigma
        self.mean = 0.0
        self.sigma = 0.0
        self._buffer: Deque[int] = deque(maxlen=window)

    def train(self, frames: Iterable[Tuple[float, CanFrame]]) -> None:
        ids = [frame.can_id for _, frame in frames]
        entropies: List[float] = []
        for start in range(0, max(0, len(ids) - self.window + 1), self.window // 2):
            window_ids = ids[start : start + self.window]
            if len(window_ids) < self.window:
                break
            entropies.append(shannon_entropy(Counter(window_ids)))
        if not entropies:
            raise ValueError(
                f"training needs at least {self.window} frames, got {len(ids)}"
            )
        self.mean = sum(entropies) / len(entropies)
        variance = sum((e - self.mean) ** 2 for e in entropies) / len(entropies)
        self.sigma = max(math.sqrt(variance), self.min_sigma)
        self.trained = True
        self._buffer.clear()

    @property
    def band(self) -> Tuple[float, float]:
        """The benign entropy interval."""
        delta = self.k_sigma * self.sigma
        return (self.mean - delta, self.mean + delta)

    def _evaluate(self, time: float, frame: CanFrame) -> Optional[Alert]:
        if not self.trained:
            return None
        self._buffer.append(frame.can_id)
        if len(self._buffer) < self.window:
            return None
        entropy = shannon_entropy(Counter(self._buffer))
        low, high = self.band
        if low <= entropy <= high:
            return None
        direction = "collapse" if entropy < low else "inflation"
        deviation = abs(entropy - self.mean) / self.sigma
        return Alert(
            time, self.name, frame.can_id,
            reason=f"entropy {direction}: {entropy:.3f} outside [{low:.3f}, {high:.3f}]",
            score=deviation,
        )
