"""Frequency-based (timing) intrusion detection.

Periodic CAN traffic has stable inter-arrival times per id.  Injection adds
frames *between* the legitimate ones, so observed inter-arrivals drop well
below the learned period.  The detector learns per-id mean/min inter-arrival
during training and alerts when a live gap is shorter than
``ratio_threshold`` x the learned mean.

Known blind spot (kept deliberately -- it is the classical one): attacks on
*aperiodic* ids and attacks that first silence the legitimate sender
(masquerade after bus-off) evade pure timing analysis; experiment E2 shows
this as the frequency detector's miss column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.ids.base import Alert, Detector
from repro.ivn.frame import CanFrame


@dataclass
class _IdStats:
    mean_gap: float
    min_gap: float
    count: int


class FrequencyIds(Detector):
    """Per-id inter-arrival anomaly detector.

    ``ratio_threshold``: alert when gap < threshold * learned mean gap.
    ``min_training_frames``: ids seen fewer times than this during training
    are treated as aperiodic and exempted from timing checks.
    """

    def __init__(
        self,
        name: str = "freq-ids",
        ratio_threshold: float = 0.5,
        min_training_frames: int = 5,
    ) -> None:
        super().__init__(name)
        if not 0 < ratio_threshold < 1:
            raise ValueError("ratio_threshold must be in (0, 1)")
        self.ratio_threshold = ratio_threshold
        self.min_training_frames = min_training_frames
        self._baseline: Dict[int, _IdStats] = {}
        self._last_seen: Dict[int, float] = {}

    def train(self, frames: Iterable[Tuple[float, CanFrame]]) -> None:
        last: Dict[int, float] = {}
        gaps: Dict[int, list] = {}
        for time, frame in frames:
            prev = last.get(frame.can_id)
            if prev is not None:
                gaps.setdefault(frame.can_id, []).append(time - prev)
            last[frame.can_id] = time
        for can_id, values in gaps.items():
            if len(values) + 1 < self.min_training_frames:
                continue
            self._baseline[can_id] = _IdStats(
                mean_gap=sum(values) / len(values),
                min_gap=min(values),
                count=len(values) + 1,
            )
        self.trained = True
        self._last_seen.clear()

    def learned_period(self, can_id: int) -> Optional[float]:
        stats = self._baseline.get(can_id)
        return stats.mean_gap if stats else None

    def _evaluate(self, time: float, frame: CanFrame) -> Optional[Alert]:
        stats = self._baseline.get(frame.can_id)
        prev = self._last_seen.get(frame.can_id)
        self._last_seen[frame.can_id] = time
        if stats is None or prev is None:
            return None
        gap = time - prev
        limit = self.ratio_threshold * stats.mean_gap
        if gap < limit:
            return Alert(
                time, self.name, frame.can_id,
                reason=f"inter-arrival {gap:.6f}s < {limit:.6f}s",
                score=limit / gap if gap > 0 else float("inf"),
            )
        return None
