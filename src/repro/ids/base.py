"""Detector base class and alert type."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.ivn.canbus import CanBus
from repro.ivn.frame import CanFrame


@dataclass(frozen=True)
class Alert:
    """An IDS detection event."""

    time: float
    detector: str
    can_id: int
    reason: str
    score: float = 1.0


class Detector(ABC):
    """Base class for CAN intrusion detectors.

    Lifecycle: feed attack-free traffic to :meth:`train`, then stream live
    frames through :meth:`observe` (directly or by :meth:`attach`-ing to a
    bus tap).  Alerts accumulate in :attr:`alerts`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.alerts: List[Alert] = []
        self.frames_seen = 0
        self.trained = False

    @abstractmethod
    def train(self, frames: Iterable[Tuple[float, CanFrame]]) -> None:
        """Learn the benign baseline from (time, frame) pairs."""

    @abstractmethod
    def _evaluate(self, time: float, frame: CanFrame) -> Optional[Alert]:
        """Detector-specific logic; return an alert or ``None``."""

    def observe(self, time: float, frame: CanFrame) -> Optional[Alert]:
        """Process one live frame; records and returns any alert."""
        self.frames_seen += 1
        alert = self._evaluate(time, frame)
        if alert is not None:
            self.alerts.append(alert)
        return alert

    def attach(self, bus: CanBus) -> None:
        """Tap a bus: every transmitted frame is observed at bus time."""
        bus.tap(lambda frame: self.observe(bus.sim.now, frame))

    def reset_alerts(self) -> None:
        self.alerts.clear()

    @property
    def alert_rate(self) -> float:
        """Alerts per observed frame."""
        return len(self.alerts) / self.frames_seen if self.frames_seen else 0.0
