"""Intrusion detection for in-vehicle networks.

CAN has no authentication, so practice (and the paper's "Secure Networks"
layer) leans on network-level anomaly detection.  Three classical detector
families are implemented, plus an ensemble:

- :class:`~repro.ids.frequency.FrequencyIds` -- learns per-id inter-arrival
  statistics; catches injection floods and added traffic.
- :class:`~repro.ids.entropy.EntropyIds` -- windowed Shannon entropy of the
  id distribution; floods collapse entropy, fuzzing inflates it.
- :class:`~repro.ids.specification.SpecificationIds` -- whitelist of ids,
  DLCs and payload ranges from the OEM database; catches unknown ids and
  malformed signals.
- :class:`~repro.ids.ensemble.EnsembleIds` -- any/majority combination.

Detection quality metrics live in :mod:`repro.analysis.metrics`.
"""

from repro.ids.base import Alert, Detector
from repro.ids.frequency import FrequencyIds
from repro.ids.entropy import EntropyIds
from repro.ids.specification import SignalSpec, SpecificationIds
from repro.ids.ensemble import EnsembleIds
from repro.ids.payload import PayloadRangeIds

__all__ = [
    "Alert",
    "Detector",
    "FrequencyIds",
    "EntropyIds",
    "SignalSpec",
    "SpecificationIds",
    "EnsembleIds",
    "PayloadRangeIds",
]
