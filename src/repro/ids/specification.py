"""Specification-based intrusion detection.

Uses the OEM signal database as ground truth: which ids exist, their DLC,
and per-signal physical bounds.  Anything outside the specification is an
attack (or a defect) by definition, so the false-positive rate is near zero
-- but the detector is blind to attacks that stay *within* spec (replayed
plausible values), which is why the ensemble matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.ids.base import Alert, Detector
from repro.ivn.frame import CanFrame

PayloadValidator = Callable[[bytes], bool]


@dataclass(frozen=True)
class SignalSpec:
    """Specification entry for one CAN id."""

    can_id: int
    dlc: int
    validator: Optional[PayloadValidator] = None
    description: str = ""


class SpecificationIds(Detector):
    """Whitelist detector over the OEM signal database.

    Training is optional (the spec *is* the baseline); calling
    :meth:`train` additionally learns which ids actually appear, flagging
    spec'd-but-never-seen ids for review (the paper's "reserved for future
    use" configurations -- see experiment E14).
    """

    def __init__(self, specs: Iterable[SignalSpec], name: str = "spec-ids") -> None:
        super().__init__(name)
        self.specs: Dict[int, SignalSpec] = {}
        for spec in specs:
            if spec.can_id in self.specs:
                raise ValueError(f"duplicate spec for id {spec.can_id:#x}")
            self.specs[spec.can_id] = spec
        self.seen_in_training: set = set()
        self.trained = True  # usable without training

    def train(self, frames: Iterable[Tuple[float, CanFrame]]) -> None:
        for _, frame in frames:
            self.seen_in_training.add(frame.can_id)

    def unused_specs(self) -> set:
        """Spec'd ids never observed in training traffic ("reserved" ids)."""
        return set(self.specs) - self.seen_in_training

    def _evaluate(self, time: float, frame: CanFrame) -> Optional[Alert]:
        spec = self.specs.get(frame.can_id)
        if spec is None:
            return Alert(
                time, self.name, frame.can_id,
                reason=f"unknown id {frame.can_id:#x}", score=1.0,
            )
        if frame.dlc != spec.dlc:
            return Alert(
                time, self.name, frame.can_id,
                reason=f"dlc {frame.dlc} != spec {spec.dlc}", score=1.0,
            )
        if spec.validator is not None and not spec.validator(frame.data):
            return Alert(
                time, self.name, frame.can_id,
                reason="payload out of specified range", score=1.0,
            )
        return None
