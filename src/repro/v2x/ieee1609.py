"""IEEE 1609.2-style signed message envelope.

The envelope carries: payload, PSID (application class), generation time,
the signing certificate (or its 8-byte digest once peers cache it), and an
ECDSA-P256 signature.  Verification enforces the properties the paper's
security scenario requires -- sender identity (chain to a trusted root),
message integrity (signature), and freshness (generation-time window plus
a replay cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional

from repro.crypto import EcdsaSignature, ecdsa_sign, ecdsa_verify, sha256
from repro.v2x.certificates import (
    Certificate,
    CertificateError,
    RevocationList,
    verify_chain,
)


@dataclass(frozen=True)
class SignedMessage:
    """A 1609.2-style SPDU."""

    payload: bytes
    psid: str
    generation_time: float
    certificate: Certificate
    signature: EcdsaSignature

    @cached_property
    def _tbs(self) -> bytes:
        header = f"{self.psid}|{self.generation_time:.6f}|".encode()
        return header + self.certificate.digest + self.payload

    def tbs_bytes(self) -> bytes:
        return self._tbs

    @cached_property
    def message_id(self) -> bytes:
        """Replay-cache key: hash of the whole signed structure (cached)."""
        return sha256(self.tbs_bytes() + self.signature.to_bytes())[:16]


def sign_payload(
    payload: bytes,
    psid: str,
    time: float,
    certificate: Certificate,
    private_key: int,
) -> SignedMessage:
    """Create a signed SPDU (the sender side)."""
    unsigned = SignedMessage(
        payload=payload, psid=psid, generation_time=time,
        certificate=certificate,
        signature=EcdsaSignature(1, 1),  # placeholder, not part of tbs
    )
    sig = ecdsa_sign(private_key, unsigned.tbs_bytes())
    return SignedMessage(payload, psid, time, certificate, sig)


class MessageVerifier:
    """Receiver-side verification pipeline with replay protection.

    ``freshness_window``: maximum age (and maximum clock skew into the
    future) of an acceptable message, per the 1609.2 relevance checks.

    ``skip_crypto``: replace the ECDSA chain/signature checks with a
    no-op while keeping freshness/replay/permission logic.  For *scale*
    experiments only (e.g. E6 density sweeps), where cryptographic cost is
    modelled by the station's ``verify_rate`` (calibrated from the real
    micro-benchmarks) instead of being paid in pure-Python ECDSA time.
    """

    def __init__(
        self,
        trust_store: Dict[str, object],
        freshness_window: float = 0.5,
        replay_cache_size: int = 4096,
        crls: Optional[list] = None,
        skip_crypto: bool = False,
    ) -> None:
        self.trust_store = trust_store
        self.freshness_window = freshness_window
        self.crls = crls or []
        self.skip_crypto = skip_crypto
        self._replay_cache: Dict[bytes, float] = {}
        self._cache_size = replay_cache_size
        self.verified = 0
        self.rejected: Dict[str, int] = {}

    def _reject(self, reason: str) -> str:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return reason

    def verify(self, message: SignedMessage, now: float,
               required_psid: Optional[str] = None) -> Optional[str]:
        """Full verification; returns ``None`` on success or a rejection
        reason string."""
        age = now - message.generation_time
        if age > self.freshness_window or age < -self.freshness_window:
            return self._reject("stale")
        if message.message_id in self._replay_cache:
            return self._reject("replay")
        if required_psid is not None and message.psid != required_psid:
            return self._reject("psid")
        if message.psid not in message.certificate.psids:
            return self._reject("permission")
        if not self.skip_crypto:
            try:
                verify_chain(message.certificate, self.trust_store, now, self.crls)
            except CertificateError:
                return self._reject("certificate")
            if not ecdsa_verify(
                message.certificate.public_key, message.tbs_bytes(), message.signature,
            ):
                return self._reject("signature")
        else:
            # Surrogate mode skips the ECDSA math but must keep the
            # policy checks: validity window and revocation status.
            if not message.certificate.valid_at(now):
                return self._reject("certificate")
            for crl in self.crls:
                if crl.is_revoked(message.certificate):
                    return self._reject("certificate")
        # Accept; remember for replay detection.  Insertion order is time
        # order (entries are never updated), so FIFO eviction is O(1).
        if len(self._replay_cache) >= self._cache_size:
            del self._replay_cache[next(iter(self._replay_cache))]
        self._replay_cache[message.message_id] = now
        self.verified += 1
        return None
