"""Basic Safety Message (BSM) encoding.

The SAE J2735 BSM core data frame, reduced to the fields our experiments
consume: message count, position, speed, heading, and an event flag (e.g.
hazard warning).  Encoded to a canonical byte string for signing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class BasicSafetyMessage:
    """One BSM core frame."""

    msg_count: int
    x: float
    y: float
    speed: float
    heading: float
    event: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.msg_count < 128:
            raise ValueError("msg_count wraps at 128 (J2735)")
        if self.speed < 0:
            raise ValueError("speed must be non-negative")

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def encode(self) -> bytes:
        event_bytes = self.event.encode()[:32]
        return struct.pack(
            ">Bddddl", self.msg_count, self.x, self.y, self.speed, self.heading,
            len(event_bytes),
        ) + event_bytes

    @classmethod
    def decode(cls, data: bytes) -> "BasicSafetyMessage":
        if len(data) < 37:
            raise ValueError("truncated BSM")
        msg_count, x, y, speed, heading, event_len = struct.unpack(">Bddddl", data[:37])
        event = data[37 : 37 + event_len].decode()
        return cls(msg_count, x, y, speed, heading, event)
