"""V2X "Secure Interfaces" layer.

Models the paper's first architecture layer: IEEE 1609.2-style message
authentication for vehicle-to-everything broadcast, an SCMS-like PKI with
pseudonym certificates for the authentication-vs-anonymity conundrum of
§4.2, and the radio/RSU substrate.

- :mod:`repro.v2x.certificates` -- explicit certificates, CA, CRL.
- :mod:`repro.v2x.ieee1609` -- signed-message envelope: generation time,
  freshness window, replay cache, ECDSA-P256 signatures.
- :mod:`repro.v2x.pki` -- root/enrollment/pseudonym authorities with
  batch pseudonym issuance.
- :mod:`repro.v2x.bsm` -- Basic Safety Message encoding.
- :mod:`repro.v2x.channel` -- broadcast radio with range and loss.
- :mod:`repro.v2x.station` -- the on-board unit: signs outgoing BSMs,
  verifies incoming ones under a bounded verification budget (E6).
- :mod:`repro.v2x.rsu` -- roadside unit aggregation.
- :mod:`repro.v2x.privacy` -- pseudonym rotation and the tracking
  adversary that scores linkability (E7).
"""

from repro.v2x.certificates import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    RevocationList,
)
from repro.v2x.ieee1609 import SignedMessage, MessageVerifier, sign_payload
from repro.v2x.pki import PkiHierarchy, PseudonymBatch
from repro.v2x.bsm import BasicSafetyMessage
from repro.v2x.channel import WirelessChannel, Radio
from repro.v2x.station import ObuStation
from repro.v2x.rsu import RoadsideUnit
from repro.v2x.privacy import PseudonymManager, TrackingAdversary
from repro.v2x.misbehavior import BsmPlausibilityChecker, MisbehaviorAuthority, MisbehaviorReport

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "RevocationList",
    "SignedMessage",
    "MessageVerifier",
    "sign_payload",
    "PkiHierarchy",
    "PseudonymBatch",
    "BasicSafetyMessage",
    "WirelessChannel",
    "Radio",
    "ObuStation",
    "RoadsideUnit",
    "PseudonymManager",
    "BsmPlausibilityChecker",
    "MisbehaviorAuthority",
    "MisbehaviorReport",
    "TrackingAdversary",
]
