"""Explicit certificates, certificate authorities, and revocation.

A compact certificate format in the spirit of IEEE 1609.2 explicit
certificates: subject id, public verification key, validity window,
permissions (PSIDs), and the issuer's ECDSA signature over the canonical
encoding.  Pseudonym certificates simply carry an opaque random subject id
and a short validity window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Set, Tuple

from repro.crypto import (
    EcdsaKeyPair,
    EcdsaSignature,
    HmacDrbg,
    ecdsa_sign,
    ecdsa_verify,
    sha256,
)


class CertificateError(Exception):
    """Any certificate validation failure."""


@dataclass(frozen=True)
class Certificate:
    """A signed binding of subject id to a public key."""

    subject: str
    public_key: Tuple[int, int]
    valid_from: float
    valid_to: float
    issuer: str
    psids: frozenset = frozenset({"bsm"})
    is_pseudonym: bool = False
    signature: Optional[EcdsaSignature] = None

    @cached_property
    def _tbs(self) -> bytes:
        psid_str = ",".join(sorted(self.psids))
        header = (
            f"{self.subject}|{self.issuer}|{self.valid_from:.3f}|"
            f"{self.valid_to:.3f}|{psid_str}|{int(self.is_pseudonym)}|"
        ).encode()
        return header + self.public_key[0].to_bytes(32, "big") + self.public_key[1].to_bytes(32, "big")

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding (cached; certs are frozen)."""
        return self._tbs

    @cached_property
    def digest(self) -> bytes:
        """HashedId8-style short identifier (8 bytes, cached)."""
        return sha256(self.tbs_bytes())[:8]

    def valid_at(self, time: float) -> bool:
        return self.valid_from <= time <= self.valid_to


class RevocationList:
    """A CRL keyed by certificate digest."""

    def __init__(self) -> None:
        self._revoked: Set[bytes] = set()

    def revoke(self, cert: Certificate) -> None:
        self._revoked.add(cert.digest)

    def is_revoked(self, cert: Certificate) -> bool:
        return cert.digest in self._revoked

    def __len__(self) -> int:
        return len(self._revoked)


class CertificateAuthority:
    """An issuing CA with its own key pair.

    Root CAs are self-certified; subordinate CAs carry a certificate from
    their parent, forming a verifiable chain.
    """

    def __init__(self, name: str, seed: bytes, parent: Optional["CertificateAuthority"] = None,
                 validity: Tuple[float, float] = (0.0, 1e9)) -> None:
        self.name = name
        self.keypair = EcdsaKeyPair.generate(HmacDrbg(seed, personalization=name.encode()))
        self.parent = parent
        self.crl = RevocationList()
        self.issued_count = 0
        if parent is None:
            self.certificate = self._self_sign(validity)
        else:
            self.certificate = parent.issue(
                subject=name, public_key=self.keypair.public,
                valid_from=validity[0], valid_to=validity[1],
                psids=frozenset({"ca"}),
            )

    def _self_sign(self, validity: Tuple[float, float]) -> Certificate:
        unsigned = Certificate(
            subject=self.name, public_key=self.keypair.public,
            valid_from=validity[0], valid_to=validity[1],
            issuer=self.name, psids=frozenset({"ca"}),
        )
        sig = ecdsa_sign(self.keypair.private, unsigned.tbs_bytes())
        return Certificate(
            subject=unsigned.subject, public_key=unsigned.public_key,
            valid_from=unsigned.valid_from, valid_to=unsigned.valid_to,
            issuer=unsigned.issuer, psids=unsigned.psids,
            signature=sig,
        )

    def issue(
        self,
        subject: str,
        public_key: Tuple[int, int],
        valid_from: float,
        valid_to: float,
        psids: frozenset = frozenset({"bsm"}),
        is_pseudonym: bool = False,
    ) -> Certificate:
        """Sign a certificate for ``subject``."""
        if valid_to <= valid_from:
            raise CertificateError("empty validity window")
        unsigned = Certificate(
            subject=subject, public_key=public_key,
            valid_from=valid_from, valid_to=valid_to,
            issuer=self.name, psids=psids, is_pseudonym=is_pseudonym,
        )
        sig = ecdsa_sign(self.keypair.private, unsigned.tbs_bytes())
        self.issued_count += 1
        return Certificate(
            subject=unsigned.subject, public_key=unsigned.public_key,
            valid_from=unsigned.valid_from, valid_to=unsigned.valid_to,
            issuer=unsigned.issuer, psids=unsigned.psids,
            is_pseudonym=is_pseudonym, signature=sig,
        )

    def verify_issued(self, cert: Certificate) -> bool:
        """Check a certificate's signature against this CA's key."""
        if cert.signature is None or cert.issuer != self.name:
            return False
        return ecdsa_verify(self.keypair.public, cert.tbs_bytes(), cert.signature)


def verify_chain(cert: Certificate, authorities: dict, time: float,
                 crls: Optional[list] = None) -> None:
    """Validate ``cert`` up to a trusted root.

    ``authorities`` maps CA name -> :class:`CertificateAuthority` (the
    receiver's trust store).  Raises :class:`CertificateError` on failure.
    """
    if not cert.valid_at(time):
        raise CertificateError(f"certificate {cert.subject} expired/not yet valid")
    for crl in crls or []:
        if crl.is_revoked(cert):
            raise CertificateError(f"certificate {cert.subject} revoked")
    issuer = authorities.get(cert.issuer)
    if issuer is None:
        raise CertificateError(f"unknown issuer {cert.issuer!r}")
    if not issuer.verify_issued(cert):
        raise CertificateError(f"bad signature on {cert.subject}")
    # Walk up: subordinate CAs must themselves chain to a root.
    if issuer.parent is not None:
        verify_chain(issuer.certificate, authorities, time, crls)
