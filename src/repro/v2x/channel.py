"""Broadcast wireless channel (DSRC/C-V2X abstraction).

Radios register with a position provider; a broadcast reaches every other
radio within ``comm_range`` after a propagation+MAC delay, subject to an
independent loss probability (collisions and fading are folded into one
per-receiver Bernoulli loss -- adequate for the density/overhead trends the
experiments study).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim import Simulator, TraceRecorder

PositionFn = Callable[[], Tuple[float, float]]
ReceiveFn = Callable[[Any, str], None]


class Radio:
    """One V2X transceiver."""

    def __init__(self, channel: "WirelessChannel", name: str, position_fn: PositionFn) -> None:
        self.channel = channel
        self.name = name
        self.position_fn = position_fn
        self.receive_callbacks: List[ReceiveFn] = []
        self.sent = 0
        self.received = 0

    @property
    def position(self) -> Tuple[float, float]:
        return self.position_fn()

    def broadcast(self, message: Any) -> None:
        self.sent += 1
        self.channel.broadcast(self, message)

    def on_receive(self, callback: ReceiveFn) -> None:
        self.receive_callbacks.append(callback)

    def deliver(self, message: Any, sender: str) -> None:
        self.received += 1
        for callback in self.receive_callbacks:
            callback(message, sender)


class WirelessChannel:
    """Shared broadcast medium."""

    def __init__(
        self,
        sim: Simulator,
        comm_range: float = 300.0,
        loss_probability: float = 0.0,
        latency: float = 2e-3,
        rng=None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability in [0, 1)")
        self.sim = sim
        self.comm_range = comm_range
        self.loss_probability = loss_probability
        self.latency = latency
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder()
        self.radios: Dict[str, Radio] = {}
        self.transmissions = 0
        self.deliveries = 0
        self.losses = 0

    def attach(self, name: str, position_fn: PositionFn) -> Radio:
        if name in self.radios:
            raise ValueError(f"radio {name!r} already attached")
        radio = Radio(self, name, position_fn)
        self.radios[name] = radio
        return radio

    def broadcast(self, sender: Radio, message: Any) -> None:
        self.transmissions += 1
        sx, sy = sender.position
        for radio in self.radios.values():
            if radio is sender:
                continue
            rx, ry = radio.position
            if math.hypot(rx - sx, ry - sy) > self.comm_range:
                continue
            if self.loss_probability > 0 and self.rng is not None:
                if self.rng.random() < self.loss_probability:
                    self.losses += 1
                    continue
            self.deliveries += 1
            self.sim.schedule(self.latency, radio.deliver, message, sender.name)
