"""Pseudonym rotation and the tracking adversary.

The privacy scenario of §4.2: broadcast messages must be authenticated
*and* anonymous.  Pseudonym certificates provide sender validity without
identity; their weakness is **linkability** -- an eavesdropper who sees
pseudonym A stop transmitting and pseudonym B start transmitting nearby a
moment later links them.  :class:`TrackingAdversary` implements exactly
that space-time gating attack; E7 sweeps rotation period against its
success rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.v2x.certificates import Certificate
from repro.v2x.pki import PseudonymBatch


class PseudonymManager:
    """Rotates through a batch of pseudonym certificates.

    ``rotation_period``: wall-clock seconds between pseudonym changes; the
    E7 knob.  The batch wraps around when exhausted (a refill callback
    hookpoint exists for campaigns that model re-provisioning).
    """

    def __init__(self, batch: PseudonymBatch, rotation_period: float = 300.0) -> None:
        if rotation_period <= 0:
            raise ValueError("rotation_period must be positive")
        if len(batch) == 0:
            raise ValueError("empty pseudonym batch")
        self.batch = batch
        self.rotation_period = rotation_period
        self.rotations = 0
        self._index = 0
        self._period_start: Optional[float] = None

    def current(self, time: float) -> Tuple[Certificate, int]:
        """The active (certificate, private key), rotating on schedule."""
        if self._period_start is None:
            self._period_start = time
        while time - self._period_start >= self.rotation_period:
            self._period_start += self.rotation_period
            self._index = (self._index + 1) % len(self.batch)
            self.rotations += 1
        return self.batch.entries[self._index]

    def force_rotate(self, time: float) -> None:
        """Rotate immediately (e.g. after a privacy-sensitive event)."""
        self._index = (self._index + 1) % len(self.batch)
        self.rotations += 1
        self._period_start = time


@dataclass
class _Track:
    subject: str
    last_time: float
    last_pos: Tuple[float, float]
    chain: List[str] = field(default_factory=list)


class TrackingAdversary:
    """Passive eavesdropper linking pseudonyms by space-time continuity.

    Feed it every overheard (time, pseudonym subject, position); it keeps
    live tracks and, when a new pseudonym appears, links it to a recently
    silent track whose position is kinematically consistent.  Scoring
    compares predicted links against ground truth.
    """

    def __init__(self, max_speed: float = 50.0, gate_slack: float = 10.0,
                 silence_window: float = 5.0) -> None:
        self.max_speed = max_speed
        self.gate_slack = gate_slack
        self.silence_window = silence_window
        self._tracks: Dict[str, _Track] = {}
        self.predicted_links: List[Tuple[str, str]] = []  # (old, new)

    def observe(self, time: float, subject: str, position: Tuple[float, float]) -> None:
        track = self._tracks.get(subject)
        if track is not None:
            track.last_time = time
            track.last_pos = position
            return
        # New pseudonym: try to link to a recently-silent track.
        best: Optional[_Track] = None
        best_distance = float("inf")
        for candidate in self._tracks.values():
            silence = time - candidate.last_time
            if silence <= 0 or silence > self.silence_window:
                continue
            distance = math.hypot(
                position[0] - candidate.last_pos[0],
                position[1] - candidate.last_pos[1],
            )
            gate = self.max_speed * silence + self.gate_slack
            if distance <= gate and distance < best_distance:
                best = candidate
                best_distance = distance
        new_track = _Track(subject, time, position)
        if best is not None:
            self.predicted_links.append((best.subject, subject))
            new_track.chain = best.chain + [best.subject]
            del self._tracks[best.subject]
        self._tracks[subject] = new_track

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def link_accuracy(self, truth: Dict[str, str]) -> float:
        """Fraction of predicted links that are correct.

        ``truth`` maps pseudonym subject -> vehicle id.
        """
        if not self.predicted_links:
            return 0.0
        correct = sum(
            1 for old, new in self.predicted_links
            if truth.get(old) is not None and truth.get(old) == truth.get(new)
        )
        return correct / len(self.predicted_links)

    def recall(self, truth: Dict[str, str]) -> float:
        """Fraction of true same-vehicle transitions the adversary linked.

        A *transition* is any consecutive pseudonym pair of one vehicle
        that actually appeared on air (approximated by the set of subjects
        seen, grouped by vehicle).
        """
        seen_by_vehicle: Dict[str, int] = {}
        for subject in self._subjects_seen():
            vid = truth.get(subject)
            if vid is not None:
                seen_by_vehicle[vid] = seen_by_vehicle.get(vid, 0) + 1
        total_transitions = sum(max(0, n - 1) for n in seen_by_vehicle.values())
        if total_transitions == 0:
            return 0.0
        correct = sum(
            1 for old, new in self.predicted_links
            if truth.get(old) is not None and truth.get(old) == truth.get(new)
        )
        return min(1.0, correct / total_transitions)

    def _subjects_seen(self) -> List[str]:
        subjects = set(self._tracks)
        for old, new in self.predicted_links:
            subjects.add(old)
            subjects.add(new)
        for track in self._tracks.values():
            subjects.update(track.chain)
        return list(subjects)
